"""Level/bootstrap planning: where must a circuit refresh?

Given an abstract multiplicative-depth schedule (a sequence of circuit
stages, each consuming some levels), the planner decides where to
insert bootstraps using the chain length and the bootstrap's own depth
— the budgeting exercise behind the paper's Table V parameter choices
(LR's L = 38 with 2 bootstraps, LSTM's per-step refreshes).

The planner is deliberately deterministic and greedy: refresh as late
as possible. For CKKS that is the standard policy (noise is additive
and the rescale ladder dominates level consumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class Stage:
    """One circuit stage: a name and the levels it consumes."""

    name: str
    levels: int

    def __post_init__(self):
        if self.levels < 0:
            raise WorkloadError(
                f"stage {self.name!r} has negative level cost"
            )


@dataclass(frozen=True)
class PlanEntry:
    """One scheduled item: a stage or a bootstrap insertion."""

    kind: str               # "stage" | "bootstrap"
    name: str
    level_before: int
    level_after: int


@dataclass(frozen=True)
class BootstrapPlan:
    """The planner's output schedule."""

    entries: tuple[PlanEntry, ...]
    bootstrap_count: int
    final_level: int

    def stages(self) -> list[PlanEntry]:
        return [e for e in self.entries if e.kind == "stage"]

    def bootstraps(self) -> list[PlanEntry]:
        return [e for e in self.entries if e.kind == "bootstrap"]


class LevelPlanner:
    """Greedy lazy-bootstrap scheduler.

    Args:
        top_level: the chain's top level (a bootstrap refreshes here
            before consuming its own depth).
        bootstrap_depth: levels one bootstrap pipeline consumes.
        reserve: levels to keep in hand after any stage (safety margin
            so the *next* operation can still rescale).
    """

    def __init__(
        self,
        *,
        top_level: int,
        bootstrap_depth: int,
        reserve: int = 1,
    ):
        if bootstrap_depth >= top_level:
            raise WorkloadError(
                f"bootstrap depth {bootstrap_depth} exceeds chain top "
                f"{top_level}: no level budget remains after a refresh"
            )
        if reserve < 0:
            raise WorkloadError("reserve must be non-negative")
        self.top_level = top_level
        self.bootstrap_depth = bootstrap_depth
        self.reserve = reserve

    @property
    def refreshed_level(self) -> int:
        """Level available right after a bootstrap completes."""
        return self.top_level - self.bootstrap_depth

    def plan(self, stages, *, start_level: int | None = None) -> BootstrapPlan:
        """Schedule ``stages`` with lazy bootstrap insertion.

        Raises:
            WorkloadError: if any single stage exceeds what even a
                fresh bootstrap can provide.
        """
        level = self.top_level if start_level is None else start_level
        entries: list[PlanEntry] = []
        boots = 0
        for stage in stages:
            need = stage.levels + self.reserve
            if need > self.refreshed_level:
                raise WorkloadError(
                    f"stage {stage.name!r} needs {need} levels but a "
                    f"bootstrap only yields {self.refreshed_level}; "
                    "split the stage or deepen the chain"
                )
            if level < need:
                entries.append(
                    PlanEntry(
                        kind="bootstrap",
                        name=f"bootstrap#{boots}",
                        level_before=level,
                        level_after=self.refreshed_level,
                    )
                )
                level = self.refreshed_level
                boots += 1
            entries.append(
                PlanEntry(
                    kind="stage",
                    name=stage.name,
                    level_before=level,
                    level_after=level - stage.levels,
                )
            )
            level -= stage.levels
        return BootstrapPlan(
            entries=tuple(entries),
            bootstrap_count=boots,
            final_level=level,
        )

    def minimum_bootstraps(self, stages) -> int:
        """Just the count (for budgeting like the paper's Table V)."""
        return self.plan(stages).bootstrap_count


def uniform_stages(count: int, levels_each: int, prefix: str = "stage") -> list[Stage]:
    """Helper: ``count`` identical stages (LSTM steps, conv layers)."""
    return [Stage(f"{prefix}{i}", levels_each) for i in range(count)]
