"""Security estimation for parameter sets.

Maps (ring degree N, total modulus bits log2(P*Q)) to an estimated
classical security level using the homomorphic encryption standard's
tables (Albrecht et al., homomorphicencryption.org, ternary secret,
classical hardness). The paper targets "tough security levels" with a
32-bit-limb chain; this module makes the implied budget explicit and
lets tests assert that the default parameter factory stays within it.

The table gives, per degree, the maximum total modulus bits for 128-,
192- and 256-bit security. Between table rows we interpolate linearly
in log2(N) — a standard, slightly conservative approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.params import CkksParameters
from repro.errors import ParameterError

#: HE-standard maximum log2(Q*P) per (log2 N, security level), ternary
#: secret, classical attacks.
_STANDARD_TABLE: dict[int, dict[int, int]] = {
    10: {128: 27, 192: 19, 256: 14},
    11: {128: 54, 192: 37, 256: 29},
    12: {128: 109, 192: 75, 256: 58},
    13: {128: 218, 192: 152, 256: 118},
    14: {128: 438, 192: 305, 256: 237},
    15: {128: 881, 192: 611, 256: 476},
    16: {128: 1772, 192: 1228, 256: 956},
    17: {128: 3576, 192: 2469, 256: 1918},
}

SECURITY_LEVELS = (128, 192, 256)


@dataclass(frozen=True)
class SecurityEstimate:
    """Outcome of a security check."""

    degree: int
    total_modulus_bits: float
    max_bits_128: float
    achieved_level: int | None

    @property
    def is_standard_secure(self) -> bool:
        """At least 128-bit classical security per the standard."""
        return self.achieved_level is not None


def max_modulus_bits(degree: int, security: int = 128) -> float:
    """Largest total modulus (bits) the standard allows at ``degree``.

    Degrees between table rows interpolate on log2(N); degrees above
    the table extrapolate proportionally (log2 Q budget is ~linear in
    N at fixed security).
    """
    if security not in SECURITY_LEVELS:
        raise ParameterError(
            f"security must be one of {SECURITY_LEVELS}, got {security}"
        )
    logn = math.log2(degree)
    if logn < min(_STANDARD_TABLE):
        return 0.0
    known = sorted(_STANDARD_TABLE)
    if logn >= known[-1]:
        # Linear extrapolation per doubling beyond the table.
        top = _STANDARD_TABLE[known[-1]][security]
        prev = _STANDARD_TABLE[known[-2]][security]
        return top + (top - prev) * (logn - known[-1])
    lo = max(k for k in known if k <= logn)
    hi = min(k for k in known if k >= logn)
    if lo == hi:
        return float(_STANDARD_TABLE[lo][security])
    frac = (logn - lo) / (hi - lo)
    a = _STANDARD_TABLE[lo][security]
    b = _STANDARD_TABLE[hi][security]
    return a + frac * (b - a)


def total_modulus_bits(params: CkksParameters) -> float:
    """log2 of the full key modulus P*Q (chain + aux primes)."""
    bits = 0.0
    for q in params.chain_moduli + params.aux_moduli:
        bits += math.log2(q)
    return bits


def estimate(params: CkksParameters) -> SecurityEstimate:
    """Security estimate for a parameter set."""
    bits = total_modulus_bits(params)
    achieved: int | None = None
    for level in sorted(SECURITY_LEVELS, reverse=True):
        if bits <= max_modulus_bits(params.degree, level):
            achieved = level
            break
    return SecurityEstimate(
        degree=params.degree,
        total_modulus_bits=bits,
        max_bits_128=max_modulus_bits(params.degree, 128),
        achieved_level=achieved,
    )


def max_chain_length(
    degree: int,
    *,
    chain_bits: int = 30,
    aux_count: int = 1,
    aux_bits: int = 31,
    security: int = 128,
) -> int:
    """How many 30-bit chain primes fit at a security level.

    The paper's §IV-A argument in reverse: with 32-bit limbs and a
    modulo-chain length L = 60 the degree must be large; this computes
    the admissible L for any N.
    """
    budget = max_modulus_bits(degree, security)
    budget -= aux_count * aux_bits
    return max(0, int(budget // chain_bits))
