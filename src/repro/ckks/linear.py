"""Homomorphic linear algebra: matrix-vector products on packed slots.

Implements the standard diagonal method: for an ``n x n`` matrix ``M``
acting on the slot vector ``z``,

    M z = sum_d  diag_d(M) ⊙ rot_d(z)

where ``diag_d(M)[i] = M[i, (i+d) mod n]`` and ``rot_d`` rotates slots
left by ``d``. With baby-step/giant-step (BSGS) the rotation count
drops from ``n`` to ``~2*sqrt(n)`` — the optimization every FHE NN
workload (HELR, LSTM, ResNet-20) leans on, and the reason Rotation is
so prominent in the paper's operator breakdowns.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EvaluationError
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.evaluator import CkksEvaluator


def matrix_diagonals(matrix: np.ndarray) -> dict[int, np.ndarray]:
    """Extract the nonzero generalized diagonals of a square matrix.

    Returns a mapping ``d -> diag_d`` including only diagonals with at
    least one nonzero entry (sparse matrices cost fewer rotations).
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise EvaluationError(
            f"expected a square matrix, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    out: dict[int, np.ndarray] = {}
    rows = np.arange(n)
    for d in range(n):
        diag = matrix[rows, (rows + d) % n]
        if np.any(diag != 0):
            out[d] = diag.astype(np.complex128)
    return out


class LinearTransform:
    """A plaintext ``n x n`` matrix applied homomorphically to slots.

    The slot vector is treated as n-periodic across the ciphertext's
    N/2 slots (inputs must be replicated if n < N/2 and rotations by
    ``d`` and ``d - n`` must agree — true when (N/2) % n == 0 and the
    packed vector repeats).

    Args:
        evaluator: the evaluator performing rotations/multiplications.
        encoder: used to encode the diagonals.
        matrix: the complex matrix.
        use_bsgs: enable baby-step/giant-step grouping.
    """

    def __init__(
        self,
        evaluator: CkksEvaluator,
        encoder: CkksEncoder,
        matrix: np.ndarray,
        *,
        use_bsgs: bool = True,
        use_hoisting: bool = False,
    ):
        self.evaluator = evaluator
        self.encoder = encoder
        self.use_hoisting = use_hoisting
        matrix = np.asarray(matrix, dtype=np.complex128)
        self.matrix = matrix
        self.n = matrix.shape[0]
        slots = encoder.slots
        if slots % self.n != 0:
            raise EvaluationError(
                f"matrix dim {self.n} must divide slot count {slots}"
            )
        self.diagonals = matrix_diagonals(matrix)
        self.use_bsgs = use_bsgs and len(self.diagonals) > 4
        self.baby = (
            max(1, int(round(math.sqrt(self.n)))) if self.use_bsgs else 1
        )

    # ------------------------------------------------------------------
    def _tile(self, vec: np.ndarray) -> np.ndarray:
        """Replicate an n-vector across all slots."""
        reps = self.encoder.slots // self.n
        return np.tile(vec, reps)

    def _encode_diag(self, diag: np.ndarray, level: int):
        ctx = self.evaluator.params.context_at_level(level)
        return self.encoder.encode(self._tile(diag), context=ctx)

    # ------------------------------------------------------------------
    def apply(self, ct: Ciphertext) -> Ciphertext:
        """Apply the matrix to a ciphertext; consumes one level.

        The result scale is ``ct.scale * encoder scale`` before the
        final rescale; callers receive a rescaled ciphertext.
        """
        ev = self.evaluator
        if self.use_bsgs:
            result = self._apply_bsgs(ct)
        else:
            result = self._apply_direct(ct)
        return ev.rescale(result)

    def _apply_direct(self, ct: Ciphertext) -> Ciphertext:
        ev = self.evaluator
        acc: Ciphertext | None = None
        for d, diag in sorted(self.diagonals.items()):
            rotated = ev.rotate(ct, d) if d else ct
            term = ev.multiply_plain(
                rotated, self._encode_diag(diag, rotated.level)
            )
            acc = term if acc is None else ev.add(acc, term)
        if acc is None:
            raise EvaluationError("matrix has no nonzero diagonals")
        return acc

    def _apply_bsgs(self, ct: Ciphertext) -> Ciphertext:
        """BSGS: rot_d = rot_{g*baby} ∘ rot_b with pre-rotated diagonals.

        sum_d diag_d ⊙ rot_d(z)
          = sum_g rot_{g*baby}( sum_b rot_{-g*baby}(diag_{g*baby+b}) ⊙ rot_b(z) )
        """
        ev = self.evaluator
        baby = self.baby
        # Baby rotations of the input: hoisted (one shared digit
        # decomposition, see repro.ckks.hoisting) or plain rotations.
        baby_rots: dict[int, Ciphertext] = {}
        needed_babies = {d % baby for d in self.diagonals}
        if self.use_hoisting and len(needed_babies - {0}) > 1:
            from repro.ckks.hoisting import HoistedRotator

            rotator = HoistedRotator(
                ev.params, ev.keys, ct, evaluator=ev
            )
            for b in sorted(needed_babies):
                baby_rots[b] = rotator.rotate(b) if b else ct
        else:
            for b in sorted(needed_babies):
                baby_rots[b] = ev.rotate(ct, b) if b else ct

        # Group diagonals by giant step.
        groups: dict[int, list[int]] = {}
        for d in self.diagonals:
            groups.setdefault(d // baby, []).append(d)

        acc: Ciphertext | None = None
        for g, ds in sorted(groups.items()):
            inner: Ciphertext | None = None
            shift = g * baby
            for d in sorted(ds):
                b = d % baby
                # Pre-rotate the diagonal right by the giant shift.
                diag = np.roll(self.diagonals[d], shift)
                term = ev.multiply_plain(
                    baby_rots[b], self._encode_diag(diag, baby_rots[b].level)
                )
                inner = term if inner is None else ev.add(inner, term)
            assert inner is not None
            outer = ev.rotate(inner, shift) if shift else inner
            acc = outer if acc is None else ev.add(acc, outer)
        if acc is None:
            raise EvaluationError("matrix has no nonzero diagonals")
        return acc

    # ------------------------------------------------------------------
    def reference(self, vec: np.ndarray) -> np.ndarray:
        """Plaintext reference ``M @ vec`` (tiled), for tests."""
        return self._tile(self.matrix @ np.asarray(vec)[: self.n])

    def rotation_count(self) -> int:
        """Rotations :meth:`apply` will perform (cost-model input)."""
        if not self.use_bsgs:
            return sum(1 for d in self.diagonals if d)
        babies = {d % self.baby for d in self.diagonals} - {0}
        giants = {d // self.baby for d in self.diagonals} - {0}
        return len(babies) + len(giants)
