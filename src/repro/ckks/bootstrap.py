"""Packed CKKS bootstrapping (paper §II-A.6, benchmark 4).

Follows the standard packed pipeline the paper's benchmark [30] uses:

1. **ModRaise** — reinterpret a level-0 ciphertext over the full chain.
   Decryption then yields ``t = Delta*m + q_0*I`` for a small integer
   polynomial ``I`` (bounded by the sparse secret's Hamming weight).
2. **CoeffToSlot** — homomorphic linear transforms (the encoding
   matrix, via :class:`~repro.ckks.linear.LinearTransform`) move the
   *coefficients* of ``t`` into slot position, producing two
   ciphertexts ``u`` (low coefficients) and ``v`` (high coefficients).
3. **EvalMod** — remove the ``q_0*I`` term by evaluating
   ``sin(2*pi*u) / (2*pi) ≈ u mod 1`` homomorphically: a Taylor
   expansion of ``exp(i*theta/2^r)`` followed by ``r`` repeated
   squarings (double-angle) and an imaginary-part extraction.
4. **SlotToCoeff** — the inverse linear transform returns the cleaned
   coefficients to coefficient position.

The output decrypts to (approximately) the same message at a much
higher level, refreshing the modulus chain for further multiplications.

Poseidon's interest in bootstrapping is its *operator* footprint: the
pipeline is nothing but PMult/CMult/HAdd/Rotation/Keyswitch/Rescale,
i.e. MA + MM + NTT + Automorphism + SBT, reused at high frequency —
exactly what Table I states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import BootstrapError
from repro.automorphism.galois import ROTATION_GENERATOR
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.linear import LinearTransform
from repro.ckks.params import CkksParameters
from repro.rns.poly import RnsPolynomial


@dataclass(frozen=True)
class BootstrapConfig:
    """Tunable precision/depth knobs for the EvalMod stage.

    Attributes:
        taylor_degree: Taylor truncation of exp(i*theta/2^r).
        double_angles: r — squarings that rebuild exp(i*theta).
        message_bound: |m| assumed for inputs; smaller bounds give a
            more linear sine region and thus better precision.
    """

    taylor_degree: int = 7
    double_angles: int = 4
    message_bound: float = 0.05

    @property
    def depth(self) -> int:
        """Chain levels EvalMod consumes (Horner + squarings + combine)."""
        return self.taylor_degree + self.double_angles + 1

    @property
    def total_depth(self) -> int:
        """Levels the whole bootstrap consumes (+2 for C2S and S2C)."""
        return self.depth + 2


class Bootstrapper:
    """Bootstraps ciphertexts for one parameter set / keychain.

    Args:
        params: must carry enough chain levels —
            ``config.total_depth + 1`` at minimum.
        evaluator: the evaluator (brings the keys along).
        encoder: plaintext encoder.
        config: EvalMod precision knobs.
    """

    def __init__(
        self,
        params: CkksParameters,
        evaluator: CkksEvaluator,
        encoder: CkksEncoder,
        config: BootstrapConfig | None = None,
    ):
        self.params = params
        self.evaluator = evaluator
        self.encoder = encoder
        self.config = config or BootstrapConfig()
        if params.max_level < self.config.total_depth:
            raise BootstrapError(
                f"chain has {params.max_level} usable levels, bootstrap "
                f"needs {self.config.total_depth}"
            )
        self._build_transforms()

    # ------------------------------------------------------------------
    # Linear-transform construction
    # ------------------------------------------------------------------
    def _build_transforms(self) -> None:
        n_ring = self.params.degree
        n = n_ring // 2  # slots
        rot = np.empty(n, dtype=np.int64)
        acc = 1
        for j in range(n):
            rot[j] = acc
            acc = acc * ROTATION_GENERATOR % (2 * n_ring)
        k = np.arange(n)
        # zeta_j^k = exp(i*pi*rot[j]*k / N)
        phase = np.pi / n_ring
        zeta_pow = np.exp(1j * phase * rot[:, None] * k[None, :])
        zeta_pow_hi = np.exp(
            1j * phase * rot[:, None] * (k[None, :] + n)
        )
        ev, enc = self.evaluator, self.encoder
        # CoeffToSlot: c = (1/N) (E^H z + E^T conj(z)); A* build the low
        # half (u), B* the high half (v).
        a1 = zeta_pow.conj().T / n_ring
        a2 = zeta_pow.T / n_ring
        b1 = zeta_pow_hi.conj().T / n_ring
        b2 = zeta_pow_hi.T / n_ring
        self._c2s = tuple(
            LinearTransform(ev, enc, m) for m in (a1, a2, b1, b2)
        )
        # SlotToCoeff: z = E_lo u + E_hi v.
        self._s2c = tuple(
            LinearTransform(ev, enc, m) for m in (zeta_pow, zeta_pow_hi)
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a level-0 ciphertext over the full chain (exact)."""
        if ct.level != 0:
            raise BootstrapError(
                f"mod_raise expects a level-0 ciphertext, got level {ct.level}"
            )
        full_ctx = self.params.context
        parts = tuple(
            RnsPolynomial.from_integers(p.to_integers(signed=True), full_ctx)
            for p in ct.parts
        )
        return Ciphertext(
            parts=parts, scale=ct.scale, level=self.params.max_level
        )

    def coeff_to_slot(self, ct: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Move polynomial coefficients into slots; consumes one level."""
        ev = self.evaluator
        conj = ev.conjugate(ct)
        a1, a2, b1, b2 = self._c2s
        u = ev.add(a1.apply(ct), a2.apply(conj))
        v = ev.add(b1.apply(ct), b2.apply(conj))
        return u, v

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Evaluate ``sin(2*pi*t)/(2*pi) ≈ t mod 1`` on the slots."""
        cfg = self.config
        ev = self.evaluator
        # Horner evaluation of exp(i * 2*pi * t / 2^r) as a poly in t.
        tau = 2.0 * math.pi / (1 << cfg.double_angles)
        coeffs = [
            (1j * tau) ** j / math.factorial(j)
            for j in range(cfg.taylor_degree + 1)
        ]
        w = self._horner(ct, coeffs)
        # Double-angle: square r times to recover exp(i * 2*pi * t).
        for _ in range(cfg.double_angles):
            w = ev.rescale(ev.square(w))
        # Imaginary part: sin = (w - conj(w)) / 2i; divide by 2*pi.
        diff = ev.sub(w, ev.conjugate(w))
        scaled = self._multiply_const(diff, -0.25j / math.pi)
        return scaled

    def slot_to_coeff(self, u: Ciphertext, v: Ciphertext) -> Ciphertext:
        """Inverse of :meth:`coeff_to_slot`; consumes one level."""
        ev = self.evaluator
        e_lo, e_hi = self._s2c
        return ev.add(e_lo.apply(u), e_hi.apply(v))

    # ------------------------------------------------------------------
    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Refresh a level-0 ciphertext to a high level.

        The input message must satisfy ``|m| <= config.message_bound``
        slot-wise for the sine approximation to hold.
        """
        raised = self.mod_raise(ct)
        u, v = self.coeff_to_slot(raised)
        u = self.eval_mod(u)
        v = self.eval_mod(v)
        refreshed = self.slot_to_coeff(u, v)
        # The pipeline's scalars were exact, so the scale tracked on the
        # ciphertext is the true decode scale already.
        return refreshed

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _multiply_const(self, ct: Ciphertext, value: complex) -> Ciphertext:
        """Multiply by a constant encoded at the ciphertext's own scale."""
        ev, enc = self.evaluator, self.encoder
        pt = enc.encode_scalar(
            value,
            context=self.params.context_at_level(ct.level),
        )
        return ev.rescale(ev.multiply_plain(ct, pt))

    def _add_const(self, ct: Ciphertext, value: complex) -> Ciphertext:
        """Add a constant encoded at the ciphertext's exact scale."""
        ev, enc = self.evaluator, self.encoder
        pt = enc.encode_scalar(
            value,
            scale=ct.scale,
            context=self.params.context_at_level(ct.level),
        )
        return ev.add_plain(ct, pt)

    def _horner(self, ct: Ciphertext, coeffs: list[complex]) -> Ciphertext:
        """Evaluate ``sum_j coeffs[j] * ct^j`` by Horner's rule.

        Consumes ``len(coeffs) - 1`` levels.
        """
        ev = self.evaluator
        if len(coeffs) < 2:
            raise BootstrapError("Horner needs a degree >= 1 polynomial")
        acc = self._multiply_const(ct, coeffs[-1])
        acc = self._add_const(acc, coeffs[-2])
        for j in range(len(coeffs) - 3, -1, -1):
            aligned = ev.drop_to_level(ct, acc.level) if ct.level > acc.level else ct
            acc = ev.rescale(ev.multiply(acc, aligned))
            acc = self._add_const(acc, coeffs[j])
        return acc
