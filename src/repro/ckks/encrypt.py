"""Encryption and decryption.

Public-key encryption of a plaintext ``m``:

    ct = (v*b + e_0 + m,  v*a + e_1)

with ``(b, a)`` the public key, ``v`` a fresh ternary polynomial and
``e_i`` Gaussian errors. Decryption evaluates ``sum_i c_i s^i`` and
decodes the result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EncryptionError
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.keys import (
    KeyChain,
    sample_gaussian,
    sample_ternary_integers,
)
from repro.ckks.params import CkksParameters
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.rns.poly import RnsPolynomial


class CkksEncryptor:
    """Public-key encryptor bound to one parameter set and keychain."""

    def __init__(
        self,
        params: CkksParameters,
        keys: KeyChain,
        *,
        seed: int | None = None,
    ):
        if keys.params is not params:
            # Allow equal-valued parameter objects too.
            if keys.params != params:
                raise EncryptionError(
                    "keychain was generated for different parameters"
                )
        self.params = params
        self.keys = keys
        self._rng = np.random.default_rng(seed)

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Encrypt an encoded plaintext at the top level."""
        params = self.params
        ctx = params.context
        if plaintext.poly.context != ctx:
            raise EncryptionError(
                "plaintext must be encoded over the full chain; got "
                f"{plaintext.poly.context}"
            )
        n = params.degree
        v_int = sample_ternary_integers(n, self._rng)
        v = ntt_negacyclic(RnsPolynomial.from_integers(v_int, ctx))
        e0 = sample_gaussian(ctx, n, self._rng)
        e1 = sample_gaussian(ctx, n, self._rng)

        pk = self.keys.public
        c0 = intt_negacyclic(v.hadamard(pk.b)) + e0 + plaintext.poly
        c1 = intt_negacyclic(v.hadamard(pk.a)) + e1
        return Ciphertext(
            parts=(c0, c1), scale=plaintext.scale, level=params.max_level
        )

    def encrypt_symmetric(self, plaintext: Plaintext) -> Ciphertext:
        """Symmetric-key encryption ``( -a*s + e + m, a )``."""
        params = self.params
        ctx = params.context
        n = params.degree
        from repro.ckks.keys import sample_uniform

        a = ntt_negacyclic(sample_uniform(ctx, n, self._rng))
        e = sample_gaussian(ctx, n, self._rng)
        s = self.keys.secret.poly_ntt(ctx)
        c0 = intt_negacyclic(-(a.hadamard(s))) + e + plaintext.poly
        c1 = intt_negacyclic(a)
        return Ciphertext(
            parts=(c0, c1), scale=plaintext.scale, level=params.max_level
        )


class CkksDecryptor:
    """Decryptor holding the secret key."""

    def __init__(self, params: CkksParameters, keys: KeyChain):
        self.params = params
        self.keys = keys

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Decrypt ``sum_i c_i * s^i`` back to an encoded plaintext.

        Handles 2- and 3-part ciphertexts (the latter appear between
        multiplication and relinearization).
        """
        ctx = ciphertext.parts[0].context
        s_ntt = self.keys.secret.poly_ntt(ctx)
        acc = ciphertext.parts[0]
        s_power = s_ntt
        for part in ciphertext.parts[1:]:
            term = intt_negacyclic(ntt_negacyclic(part).hadamard(s_power))
            acc = acc + term
            s_power = s_power.hadamard(s_ntt)
        return Plaintext(poly=acc, scale=ciphertext.scale)
