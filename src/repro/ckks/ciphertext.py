"""Plaintext and ciphertext value types.

A CKKS ciphertext is a tuple of RNS polynomials (normally two; three
transiently after multiplication before relinearization) plus metadata:
the scale carried by the encrypted message and the level (how much of
the modulus chain remains).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import EvaluationError
from repro.rns.poly import RnsPolynomial


@dataclass(frozen=True)
class Plaintext:
    """An encoded (not encrypted) message: polynomial + scale."""

    poly: RnsPolynomial
    scale: float

    @property
    def level(self) -> int:
        """Level implied by the polynomial's limb count."""
        return self.poly.level_count - 1


@dataclass(frozen=True)
class Ciphertext:
    """An RLWE ciphertext ``(c_0, c_1, ...)`` with scale and level.

    Decryption evaluates ``sum_i c_i * s^i`` — two parts for a fresh
    ciphertext, three after an unrelinearized multiplication.

    Attributes:
        parts: the component polynomials, all over the same basis.
        scale: the message scale Delta' currently carried.
        level: index into the modulus chain (level+1 limbs remain).
    """

    parts: tuple[RnsPolynomial, ...]
    scale: float
    level: int

    def __post_init__(self):
        if len(self.parts) < 2:
            raise EvaluationError(
                f"ciphertext needs >= 2 parts, got {len(self.parts)}"
            )
        limbs = {p.level_count for p in self.parts}
        if len(limbs) != 1:
            raise EvaluationError(
                f"ciphertext parts disagree on limb count: {limbs}"
            )
        if self.parts[0].level_count != self.level + 1:
            raise EvaluationError(
                f"level {self.level} implies {self.level + 1} limbs, "
                f"parts have {self.parts[0].level_count}"
            )

    @property
    def size(self) -> int:
        """Number of polynomial parts (2 = relinearized)."""
        return len(self.parts)

    @property
    def degree(self) -> int:
        """Ring degree N."""
        return self.parts[0].degree

    def with_parts(self, parts) -> "Ciphertext":
        """Copy with replaced parts (same scale/level)."""
        return replace(self, parts=tuple(parts))

    def with_scale(self, scale: float) -> "Ciphertext":
        """Copy with replaced scale."""
        return replace(self, scale=scale)

    def __repr__(self) -> str:
        return (
            f"Ciphertext(parts={len(self.parts)}, N={self.degree}, "
            f"level={self.level}, scale={self.scale:.3e})"
        )
