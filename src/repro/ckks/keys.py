"""Key material: secret, public, relinearization and Galois keys.

Switch keys follow the single-gadget hybrid construction the paper's
Keyswitch pipeline (Eq. 1-3) assumes: for a source key ``s'`` the
switch key is

    ksk = ( -a*s + e + P*s' ,  a )   over the extended basis P*Q,

where ``P`` is the product of the auxiliary primes. Applying it to a
polynomial ``d`` costs one ModUp (Q -> PQ), two NTT-domain products
with the key parts, and one ModDown (PQ -> Q) — exactly the operator
sequence Poseidon's RNSconv/NTT/MM cores execute.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.automorphism.galois import (
    conjugation_element,
    galois_element_for_rotation,
)
from repro.ckks.params import ERROR_STD, CkksParameters
from repro.ntt.negacyclic import ntt_negacyclic
from repro.rns.context import RnsContext
from repro.rns.modular import mod_mul
from repro.rns.poly import Domain, RnsPolynomial


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------
def sample_uniform(context: RnsContext, degree: int, rng) -> RnsPolynomial:
    """Uniform polynomial over the basis (independent per limb)."""
    rows = [
        rng.integers(0, q, degree, dtype=np.uint64) for q in context.moduli
    ]
    return RnsPolynomial(np.stack(rows), context, Domain.COEFFICIENT)


def sample_gaussian_integers(degree: int, rng, std: float = ERROR_STD) -> list[int]:
    """Rounded-Gaussian integer coefficients (the RLWE error)."""
    return [int(v) for v in np.round(rng.normal(0.0, std, degree))]


def sample_gaussian(context: RnsContext, degree: int, rng) -> RnsPolynomial:
    """Rounded-Gaussian error polynomial CRT-decomposed into ``context``."""
    return RnsPolynomial.from_integers(
        sample_gaussian_integers(degree, rng), context
    )


def sample_ternary_integers(degree: int, rng, hamming_weight: int = 0) -> list[int]:
    """Ternary secret coefficients in {-1, 0, 1}.

    ``hamming_weight > 0`` fixes the number of nonzeros (sparse secret,
    as bootstrapping-era CKKS deployments use); 0 samples each
    coefficient uniformly from {-1, 0, 1}.
    """
    if hamming_weight:
        coeffs = [0] * degree
        positions = rng.choice(degree, size=hamming_weight, replace=False)
        for pos in positions:
            coeffs[int(pos)] = int(rng.choice((-1, 1)))
        return coeffs
    return [int(v) - 1 for v in rng.integers(0, 3, degree)]


# ----------------------------------------------------------------------
# Key types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SecretKey:
    """The ternary secret ``s``, kept as signed integer coefficients.

    Storing the integer form (not just residues) lets us re-decompose
    ``s`` into any level's basis — needed because ciphertexts shrink
    their basis as the chain is consumed.
    """

    coefficients: tuple[int, ...]

    def poly(self, context: RnsContext) -> RnsPolynomial:
        """The secret over an arbitrary RNS basis (coefficient domain)."""
        return RnsPolynomial.from_integers(list(self.coefficients), context)

    def poly_ntt(self, context: RnsContext) -> RnsPolynomial:
        """The secret over ``context`` in the NTT domain."""
        return ntt_negacyclic(self.poly(context))


@dataclass(frozen=True)
class PublicKey:
    """Encryption key ``(b, a) = (-a*s + e, a)`` over the full chain."""

    b: RnsPolynomial
    a: RnsPolynomial


@dataclass(frozen=True)
class SwitchKey:
    """An RNS-gadget keyswitch key: one ``(b_j, a_j)`` pair per limb.

    Pair ``j`` is an RLWE sample over the extended basis ``P*Q`` whose
    ``b_j`` additionally carries ``P * s_source`` *in limb j only*
    (the diagonal CRT injection): modulo ``q_i`` the accumulated sum
    ``sum_j digit_j * ksk_j`` then reconstructs ``P * d * s_source``
    while the auxiliary limbs carry only noise — so ModDown divides
    the payload by ``P`` and shrinks the noise to ``~digit * e / P``.

    ``s_source`` is the key being switched *from*: ``s^2`` for
    relinearization, ``sigma_k(s)`` for rotation. All parts are stored
    in the NTT domain, since every use multiplies them pointwise.
    """

    pairs: tuple[tuple[RnsPolynomial, RnsPolynomial], ...]
    source_label: str

    @property
    def rank(self) -> int:
        """Number of gadget digits (= chain length at generation)."""
        return len(self.pairs)

    def pair_rows(
        self, j: int, level: int, params: CkksParameters
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residue rows of pair ``j`` for a level-``level`` keyswitch.

        Returns (b_rows, a_rows) covering chain limbs [0..level] plus
        all aux limbs — the extended basis used at that level.
        """
        chain_len = len(params.chain_moduli)
        keep = list(range(level + 1)) + list(
            range(chain_len, chain_len + len(params.aux_moduli))
        )
        b, a = self.pairs[j]
        return b.data[keep], a.data[keep]


class KeyChain:
    """All key material for one party: secret, public, relin, Galois.

    Use :meth:`generate` for a fresh keyset. Galois keys are created
    lazily via :meth:`rotation_key` so workloads only pay for the
    rotation steps they use (the software analogue of loading only the
    needed keyswitch keys into HBM).
    """

    def __init__(
        self,
        params: CkksParameters,
        secret: SecretKey,
        public: PublicKey,
        relin: SwitchKey,
        rng,
    ):
        self.params = params
        self.secret = secret
        self.public = public
        self.relin = relin
        self._rng = rng
        self._galois_keys: dict[int, SwitchKey] = {}

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        params: CkksParameters,
        *,
        seed: int | None = None,
    ) -> "KeyChain":
        """Generate a full keyset (secret, public, relinearization)."""
        rng = np.random.default_rng(seed)
        secret_coeffs = sample_ternary_integers(
            params.degree, rng, params.secret_hamming_weight
        )
        secret = SecretKey(tuple(secret_coeffs))

        ctx = params.context
        s = secret.poly_ntt(ctx)
        a = ntt_negacyclic(sample_uniform(ctx, params.degree, rng))
        e = ntt_negacyclic(sample_gaussian(ctx, params.degree, rng))
        b = (-(a.hadamard(s))) + e
        public = PublicKey(b=b, a=a)

        chain = cls.__new__(cls)
        chain.params = params
        chain.secret = secret
        chain.public = public
        chain._rng = rng
        chain._galois_keys = {}
        # Relinearization switches from s^2 back to s.
        s_int = secret_coeffs
        s_sq = _negacyclic_square_integers(s_int, params.degree)
        chain.relin = chain._make_switch_key(s_sq, "relin")
        return chain

    # ------------------------------------------------------------------
    def _make_switch_key(self, source_integers: list[int], label: str) -> SwitchKey:
        """Build the per-limb gadget key for ``source`` (see SwitchKey).

        Pair ``j``: fresh RLWE sample ``(-a_j*s + e_j, a_j)`` over the
        key basis PQ, plus ``(P mod q_j) * source`` injected into limb
        ``j`` of the ``b`` part only.
        """
        params = self.params
        key_ctx = params.key_context
        rng = self._rng
        s = self.secret.poly_ntt(key_ctx)
        source_ntt = ntt_negacyclic(
            RnsPolynomial.from_integers(source_integers, key_ctx)
        )
        p_product = params.aux_product
        pairs = []
        for j in range(len(params.chain_moduli)):
            a = ntt_negacyclic(sample_uniform(key_ctx, params.degree, rng))
            e = ntt_negacyclic(sample_gaussian(key_ctx, params.degree, rng))
            b = (-(a.hadamard(s))) + e
            q_j = params.chain_moduli[j]
            data = b.data.copy()
            data[j] = mod_mul(
                np.uint64(p_product % q_j), source_ntt.data[j], q_j
            )
            data[j] = (data[j] + b.data[j]) % np.uint64(q_j)
            b = RnsPolynomial(data, key_ctx, Domain.NTT)
            pairs.append((b, a))
        return SwitchKey(pairs=tuple(pairs), source_label=label)

    def rotation_key(self, steps: int) -> SwitchKey:
        """Galois key for a rotation by ``steps`` slots (cached)."""
        galois = galois_element_for_rotation(self.params.degree, steps)
        return self.galois_key(galois)

    def conjugation_key(self) -> SwitchKey:
        """Galois key for slot conjugation."""
        return self.galois_key(conjugation_element(self.params.degree))

    def galois_key(self, galois: int) -> SwitchKey:
        """Switch key for an arbitrary Galois element (cached)."""
        galois %= 2 * self.params.degree
        key = self._galois_keys.get(galois)
        if key is None:
            rotated = _apply_automorphism_integers(
                list(self.secret.coefficients), self.params.degree, galois
            )
            key = self._make_switch_key(rotated, f"galois:{galois}")
            self._galois_keys[galois] = key
        return key

    def __repr__(self) -> str:
        return (
            f"KeyChain(N={self.params.degree}, galois_keys="
            f"{sorted(self._galois_keys)})"
        )


# ----------------------------------------------------------------------
# Integer-domain helpers (exact, independent of any modulus)
# ----------------------------------------------------------------------
def _negacyclic_square_integers(coeffs: list[int], n: int) -> list[int]:
    """``s^2`` in Z[x]/(x^n + 1) over the integers (exact).

    The secret is ternary so the full convolution stays far below
    int64 range; numpy's exact integer convolve is safe and fast.
    """
    arr = np.asarray(coeffs, dtype=np.int64)
    full = np.convolve(arr, arr)  # length 2n - 1, |values| <= n
    out = full[:n].copy()
    out[: n - 1] -= full[n:]
    return [int(v) for v in out]


def _apply_automorphism_integers(coeffs: list[int], n: int, k: int) -> list[int]:
    """``sigma_k`` on signed integer coefficients (exact)."""
    out = [0] * n
    for i, c in enumerate(coeffs):
        if c == 0:
            continue
        idx = (i * k) % n
        sign = -1 if (i * k) % (2 * n) >= n else 1
        out[idx] = sign * c
    return out
