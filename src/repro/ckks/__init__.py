"""RNS-CKKS: the functional FHE scheme Poseidon accelerates.

This is a real, exact implementation (not a mock): ciphertexts encrypt,
evaluate and decrypt correctly. The paper's basic operations map to:

- HAdd        -> :meth:`CkksEvaluator.add` / ``add_plain``
- PMult       -> :meth:`CkksEvaluator.multiply_plain`
- CMult       -> :meth:`CkksEvaluator.multiply` (+ ``relinearize``)
- Rescale     -> :meth:`CkksEvaluator.rescale`
- Keyswitch   -> :mod:`repro.ckks.keyswitch` (ModUp/ModDown inside)
- Rotation    -> :meth:`CkksEvaluator.rotate`
- Bootstrapping -> :class:`repro.ckks.bootstrap.Bootstrapper`

Beyond the basic operations, the subpackage provides the toolbox a
downstream application needs: :mod:`~repro.ckks.linear` (BSGS matrix
products), :mod:`~repro.ckks.hoisting` (shared-decomposition
rotations), :mod:`~repro.ckks.polyeval` (Horner / power-basis
polynomial evaluation), :mod:`~repro.ckks.packing` (slot layouts and
masks), :mod:`~repro.ckks.planner` (bootstrap placement),
:mod:`~repro.ckks.noise` / :mod:`~repro.ckks.security` (budgeting),
:mod:`~repro.ckks.keysize` (key material accounting),
:mod:`~repro.ckks.serialization` (wire format) and
:mod:`~repro.ckks.presets` (named parameter sets).
"""

from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.encrypt import CkksDecryptor, CkksEncryptor
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import KeyChain, PublicKey, SecretKey, SwitchKey
from repro.ckks.params import CkksParameters

__all__ = [
    "Ciphertext",
    "CkksDecryptor",
    "CkksEncoder",
    "CkksEncryptor",
    "CkksEvaluator",
    "CkksParameters",
    "KeyChain",
    "Plaintext",
    "PublicKey",
    "SecretKey",
    "SwitchKey",
]
