"""CKKS parameter sets under Poseidon's 32-bit limb constraint.

The paper fixes limb width to 32 bits (Section IV-A) so that all
datapath arithmetic is single-word; we follow suit with 30-bit chain
primes and 31-bit auxiliary ('special') primes for the hybrid
keyswitch. The default scale is ``2^26``, leaving headroom between the
scale and the ~2^30 primes so rescaling keeps the scale stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import ParameterError
from repro.rns.context import RnsContext
from repro.utils.bitops import is_power_of_two
from repro.utils.primes import find_ntt_primes

#: Gaussian error standard deviation (the lattice-crypto standard).
ERROR_STD = 3.2

#: Paper Table V-style presets: polynomial degree and chain length used
#: by the four benchmarks (scaled-down degrees keep the functional plane
#: fast; the simulator accepts the full-size parameters independently).
PAPER_FULL_DEGREE = 1 << 16
PAPER_FULL_LEVELS = 44


@dataclass(frozen=True)
class CkksParameters:
    """Immutable CKKS parameter set.

    Attributes:
        degree: ring degree N (power of two). Slots = N/2.
        chain_moduli: the ciphertext modulus chain ``(q_0 ... q_{L-1})``.
        aux_moduli: the keyswitch auxiliary basis ``(p_0 ... p_{k-1})``.
        scale: the encoding scale Delta.
        secret_hamming_weight: nonzeros in the ternary secret (0 means
            dense uniform ternary).
    """

    degree: int
    chain_moduli: tuple[int, ...]
    aux_moduli: tuple[int, ...]
    scale: float
    secret_hamming_weight: int = 0

    def __post_init__(self):
        if not is_power_of_two(self.degree) or self.degree < 8:
            raise ParameterError(
                f"degree must be a power of two >= 8, got {self.degree}"
            )
        if not self.chain_moduli:
            raise ParameterError("modulus chain must be non-empty")
        if not self.aux_moduli:
            raise ParameterError("need at least one auxiliary prime")
        if self.scale <= 1:
            raise ParameterError(f"scale must exceed 1, got {self.scale}")
        overlap = set(self.chain_moduli) & set(self.aux_moduli)
        if overlap:
            raise ParameterError(
                f"chain and aux moduli must be disjoint, share {overlap}"
            )
        if self.secret_hamming_weight < 0 or (
            self.secret_hamming_weight > self.degree
        ):
            raise ParameterError(
                "secret hamming weight must be in [0, degree], got "
                f"{self.secret_hamming_weight}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def default(
        cls,
        degree: int = 4096,
        levels: int = 4,
        *,
        aux_count: int = 1,
        scale_bits: int = 26,
        chain_bits: int = 30,
        aux_bits: int = 31,
        secret_hamming_weight: int = 0,
    ) -> "CkksParameters":
        """Generate a parameter set with fresh NTT-friendly primes.

        Args:
            degree: ring degree N.
            levels: chain length L (multiplicative depth = L - 1).
            aux_count: number of special primes for keyswitching.
            scale_bits: log2 of the encoding scale.
            chain_bits: bit width of chain primes (30 keeps products
                in uint64 and mirrors the paper's 32-bit datapath).
            aux_bits: bit width of special primes (disjoint range).
        """
        chain = find_ntt_primes(chain_bits, levels, degree)
        aux = find_ntt_primes(aux_bits, aux_count, degree)
        return cls(
            degree=degree,
            chain_moduli=tuple(chain),
            aux_moduli=tuple(aux),
            scale=float(1 << scale_bits),
            secret_hamming_weight=secret_hamming_weight,
        )

    # ------------------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of complex slots (N/2)."""
        return self.degree // 2

    @property
    def max_level(self) -> int:
        """Highest ciphertext level (L - 1); level 0 is the last one."""
        return len(self.chain_moduli) - 1

    @cached_property
    def context(self) -> RnsContext:
        """RNS context over the full modulus chain."""
        return RnsContext(self.chain_moduli)

    @cached_property
    def aux_context(self) -> RnsContext:
        """RNS context over the auxiliary (special-prime) basis."""
        return RnsContext(self.aux_moduli)

    @cached_property
    def key_context(self) -> RnsContext:
        """RNS context over chain + aux (where switch keys live)."""
        return RnsContext(self.chain_moduli + self.aux_moduli)

    def context_at_level(self, level: int) -> RnsContext:
        """RNS context for a ciphertext at ``level`` (level+1 limbs)."""
        if not (0 <= level <= self.max_level):
            raise ParameterError(
                f"level must be in [0, {self.max_level}], got {level}"
            )
        return self.context.first(level + 1)

    def key_context_at_level(self, level: int) -> RnsContext:
        """Chain-prefix + aux context used by keyswitch at ``level``."""
        return RnsContext(
            self.chain_moduli[: level + 1] + self.aux_moduli
        )

    @property
    def aux_product(self) -> int:
        """P = prod(aux_moduli), the keyswitch scaling factor."""
        product = 1
        for p in self.aux_moduli:
            product *= p
        return product

    def __repr__(self) -> str:
        return (
            f"CkksParameters(N={self.degree}, L={len(self.chain_moduli)}, "
            f"aux={len(self.aux_moduli)}, scale=2^"
            f"{int(round(__import__('math').log2(self.scale)))})"
        )
