"""Hoisted rotations: many rotations of one ciphertext, one decomposition.

A rotation keyswitch spends most of its time lifting the digit
decomposition of ``c_1`` into the extended basis and NTT-transforming
it. When several rotations apply to the *same* ciphertext (BSGS baby
steps), that work is identical across rotations — and in the
*evaluation* domain the automorphism is a pure point permutation
(:func:`repro.automorphism.mapping.apply_automorphism_eval`), so the
hoisted NTT-domain digits can be permuted per rotation essentially for
free. This is standard "hoisting" (HELR, bootstrapping libraries) and
is exactly what the performance plane's ``HoistedRotation`` op models.

Per rotation ``sigma_k`` of ``ct = (c_0, c_1)``:

1. (hoisted, once) digits of ``c_1`` lifted into the extended basis
   and NTT'd;
2. permute each NTT-domain digit by the evaluation-domain map of
   ``sigma_k``;
3. multiply with the Galois key pairs, accumulate, INTT, ModDown;
4. add the coefficient-domain ``sigma_k(c_0)``.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.automorphism.galois import galois_element_for_rotation
from repro.automorphism.mapping import apply_automorphism_eval
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.keys import KeyChain
from repro.ckks.keyswitch import lift_digit
from repro.ckks.params import CkksParameters
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.rns.basis_convert import mod_down
from repro.rns.poly import Domain, RnsPolynomial


class HoistedRotator:
    """Precomputed NTT-domain digit decomposition of one ciphertext.

    Args:
        params: parameter set.
        keys: keychain (Galois keys are pulled lazily per step).
        ciphertext: the 2-part ciphertext to rotate many times.
        evaluator: optional — supplies the coefficient-domain
            automorphism backend (HFAuto vs naive) for ``c_0``.
    """

    def __init__(
        self,
        params: CkksParameters,
        keys: KeyChain,
        ciphertext: Ciphertext,
        *,
        evaluator=None,
    ):
        if ciphertext.size != 2:
            raise EvaluationError(
                "hoisting expects a relinearized (2-part) ciphertext"
            )
        self.params = params
        self.keys = keys
        self.ciphertext = ciphertext
        self.evaluator = evaluator
        level = ciphertext.level
        self._base_ctx = params.context_at_level(level)
        self._ext_ctx = params.key_context_at_level(level)
        # The hoisted work: lift every digit of c_1 into the extended
        # basis and transform it once.
        c1 = ciphertext.parts[1]
        self._digits_ntt = [
            ntt_negacyclic(lift_digit(c1.data[j], self._ext_ctx))
            for j in range(level + 1)
        ]

    # ------------------------------------------------------------------
    def _coeff_automorphism(self, poly: RnsPolynomial, galois: int):
        if self.evaluator is not None:
            return self.evaluator._automorphism(poly, galois)
        from repro.automorphism.hfauto import hfauto_apply

        return hfauto_apply(poly, galois)

    def rotate(self, steps: int) -> Ciphertext:
        """One rotation reusing the hoisted digits."""
        ct = self.ciphertext
        if steps % self.params.slot_count == 0:
            return ct
        galois = galois_element_for_rotation(self.params.degree, steps)
        key = self.keys.galois_key(galois)
        level = ct.level
        if level + 1 > key.rank:
            raise EvaluationError(
                f"switch key rank {key.rank} below needed {level + 1}"
            )

        acc_b: RnsPolynomial | None = None
        acc_a: RnsPolynomial | None = None
        for j, digit_ntt in enumerate(self._digits_ntt):
            rotated = apply_automorphism_eval(digit_ntt, galois)
            b_rows, a_rows = key.pair_rows(j, level, self.params)
            key_b = RnsPolynomial(b_rows, self._ext_ctx, Domain.NTT)
            key_a = RnsPolynomial(a_rows, self._ext_ctx, Domain.NTT)
            term_b = rotated.hadamard(key_b)
            term_a = rotated.hadamard(key_a)
            acc_b = term_b if acc_b is None else acc_b + term_b
            acc_a = term_a if acc_a is None else acc_a + term_a

        delta0 = mod_down(
            intt_negacyclic(acc_b), self._base_ctx, self.params.aux_context
        )
        delta1 = mod_down(
            intt_negacyclic(acc_a), self._base_ctx, self.params.aux_context
        )
        rotated_c0 = self._coeff_automorphism(ct.parts[0], galois)
        return Ciphertext(
            parts=(rotated_c0 + delta0, delta1),
            scale=ct.scale,
            level=ct.level,
        )

    def rotate_many(self, steps_list) -> list[Ciphertext]:
        """All rotations in one call (the BSGS baby-step pattern)."""
        return [self.rotate(steps) for steps in steps_list]
