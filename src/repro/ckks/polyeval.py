"""Homomorphic polynomial evaluation.

Activation functions in the paper's benchmarks (HELR's sigmoid, LSTM's
cubic sigma, ResNet's ReLU surrogate) are low-degree polynomials
evaluated on ciphertexts. This module provides the two standard
strategies:

- :func:`evaluate_horner` — depth = degree, minimal ciphertext count;
  right for the small degrees the benchmarks use.
- :func:`evaluate_power_basis` — precomputes the power basis with
  log-depth squaring, then combines with plaintext coefficients;
  depth = ceil(log2(degree)) + 1, more multiplications. Right when the
  chain is the scarce resource.

Both accept complex coefficients (CKKS slots are complex) and track
scales exactly, encoding every constant at the ciphertext's live scale.
"""

from __future__ import annotations

import math

from repro.errors import EvaluationError
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.evaluator import CkksEvaluator


def _mul_const(
    ev: CkksEvaluator, enc: CkksEncoder, ct: Ciphertext, value: complex
) -> Ciphertext:
    pt = enc.encode_scalar(
        value, context=ev.params.context_at_level(ct.level)
    )
    return ev.rescale(ev.multiply_plain(ct, pt))


def _add_const(
    ev: CkksEvaluator, enc: CkksEncoder, ct: Ciphertext, value: complex
) -> Ciphertext:
    if value == 0:
        return ct
    pt = enc.encode_scalar(
        value,
        scale=ct.scale,
        context=ev.params.context_at_level(ct.level),
    )
    return ev.add_plain(ct, pt)


def _mul_const_to_scale(
    ev: CkksEvaluator,
    enc: CkksEncoder,
    ct: Ciphertext,
    value: complex,
    target_scale: float,
) -> Ciphertext:
    """Multiply by a constant so the rescaled result lands exactly on
    ``target_scale`` — the trick that lets power-basis terms with
    different rescale histories be added together.

    The coefficient is encoded at ``target_scale * q_drop / ct.scale``
    so that after multiply + rescale the ciphertext's scale is
    ``target_scale`` regardless of its history.
    """
    q_drop = ev.params.chain_moduli[ct.level]
    encode_scale = target_scale * q_drop / ct.scale
    if encode_scale < 2.0:
        raise EvaluationError(
            "cannot reach the target scale: term scale too large "
            f"({ct.scale:.3e} vs target {target_scale:.3e})"
        )
    pt = enc.encode_scalar(
        value,
        scale=encode_scale,
        context=ev.params.context_at_level(ct.level),
    )
    return ev.rescale(ev.multiply_plain(ct, pt))


def polynomial_depth_horner(degree: int) -> int:
    """Chain levels Horner evaluation of a degree-``degree`` poly uses."""
    return max(1, degree)


def polynomial_depth_power_basis(degree: int) -> int:
    """Chain levels the power-basis strategy uses."""
    return max(1, math.ceil(math.log2(max(2, degree)))) + 1


def evaluate_horner(
    evaluator: CkksEvaluator,
    encoder: CkksEncoder,
    ct: Ciphertext,
    coefficients,
) -> Ciphertext:
    """Evaluate ``sum_j coefficients[j] * ct^j`` by Horner's rule.

    Args:
        coefficients: degree-ascending (c_0 first), length >= 2.
    """
    coeffs = [complex(c) for c in coefficients]
    if len(coeffs) < 2:
        raise EvaluationError("polynomial must have degree >= 1")
    acc = _mul_const(evaluator, encoder, ct, coeffs[-1])
    acc = _add_const(evaluator, encoder, acc, coeffs[-2])
    for j in range(len(coeffs) - 3, -1, -1):
        aligned = (
            evaluator.drop_to_level(ct, acc.level)
            if ct.level > acc.level
            else ct
        )
        acc = evaluator.rescale(evaluator.multiply(acc, aligned))
        acc = _add_const(evaluator, encoder, acc, coeffs[j])
    return acc


def evaluate_power_basis(
    evaluator: CkksEvaluator,
    encoder: CkksEncoder,
    ct: Ciphertext,
    coefficients,
) -> Ciphertext:
    """Evaluate via precomputed powers (log-depth squaring ladder).

    Powers ``ct^1 .. ct^d`` are built with ``x^(2k) = (x^k)^2`` and
    ``x^(2k+1)``-style products so the multiplicative depth is
    logarithmic; each term is scaled by its plaintext coefficient and
    accumulated at the deepest power's level.
    """
    coeffs = [complex(c) for c in coefficients]
    if len(coeffs) < 2:
        raise EvaluationError("polynomial must have degree >= 1")
    degree = len(coeffs) - 1

    powers: dict[int, Ciphertext] = {1: ct}

    def power(k: int) -> Ciphertext:
        if k in powers:
            return powers[k]
        half = k // 2
        rest = k - half
        a, b = power(half), power(rest)
        if a.level > b.level:
            a = evaluator.drop_to_level(a, b.level)
        elif b.level > a.level:
            b = evaluator.drop_to_level(b, a.level)
        result = evaluator.rescale(evaluator.multiply(a, b))
        powers[k] = result
        return result

    # Build every needed power (all of them for a dense polynomial).
    for k in range(2, degree + 1):
        power(k)

    # Every term is dropped to the deepest power's level, multiplied by
    # its coefficient at a scale chosen to land on the canonical scale,
    # and accumulated — the scale-targeting makes the adds exact.
    common_level = min(p.level for p in powers.values())
    target_scale = evaluator.params.scale
    acc: Ciphertext | None = None
    for j in range(1, degree + 1):
        if coeffs[j] == 0:
            continue
        term = powers[j]
        if term.level > common_level:
            term = evaluator.drop_to_level(term, common_level)
        term = _mul_const_to_scale(
            evaluator, encoder, term, coeffs[j], target_scale
        )
        acc = term if acc is None else evaluator.add(acc, term)
    if acc is None:
        raise EvaluationError("polynomial has no nonzero terms of degree>=1")
    return _add_const(evaluator, encoder, acc, coeffs[0])
