"""CKKS encoder: complex slot vectors <-> scaled integer polynomials.

Uses the canonical embedding: the N/2 slots of a message are the values
of the plaintext polynomial at the primitive 2N-th roots of unity
``zeta_j = exp(i*pi*(5^j mod 2N)/N)``. Encoding inverts the embedding
and rounds ``Delta * m`` to integers; decoding evaluates the polynomial
back at the roots. Both directions run in O(N log N) via length-2N
FFTs, so the encoder scales to the paper's N = 2^16 degrees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.automorphism.galois import ROTATION_GENERATOR
from repro.ckks.params import CkksParameters
from repro.ckks.ciphertext import Plaintext
from repro.rns.context import RnsContext
from repro.rns.poly import RnsPolynomial


class CkksEncoder:
    """Encode/decode complex vectors for a fixed parameter set.

    Args:
        params: the CKKS parameter set (fixes N and the default scale).
    """

    def __init__(self, params: CkksParameters):
        self.params = params
        n = params.degree
        self.degree = n
        self.slots = n // 2
        # rot_group[j] = 5^j mod 2N enumerates the slot evaluation points.
        rot = np.empty(self.slots, dtype=np.int64)
        acc = 1
        for j in range(self.slots):
            rot[j] = acc
            acc = acc * ROTATION_GENERATOR % (2 * n)
        self._rot_group = rot

    # ------------------------------------------------------------------
    def _embed_inverse(self, values: np.ndarray) -> np.ndarray:
        """Real coefficients c with ``c(zeta_j) = values[j]``.

        Computes ``c_k = (2/N) * Re( sum_j values[j] * conj(zeta_j)^k )``
        by scattering into a length-2N spectrum and one FFT.
        """
        n = self.degree
        spectrum = np.zeros(2 * n, dtype=np.complex128)
        spectrum[self._rot_group] = values
        # sum_t spectrum[t] * exp(-i*pi*t*k/N) = DFT_{2N}(spectrum)[k]
        transformed = np.fft.fft(spectrum)[:n]
        return (2.0 / n) * transformed.real

    def _embed_forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate real coefficients at the slot roots ``zeta_j``."""
        n = self.degree
        padded = np.zeros(2 * n, dtype=np.complex128)
        padded[:n] = coeffs
        # sum_k c_k exp(+i*pi*t*k/N) = 2N * IDFT_{2N}(c)[t]
        evaluated = np.fft.ifft(padded) * (2 * n)
        return evaluated[self._rot_group]

    # ------------------------------------------------------------------
    def encode(
        self,
        values,
        *,
        scale: float | None = None,
        context: RnsContext | None = None,
    ) -> Plaintext:
        """Encode complex slots into a plaintext polynomial.

        Args:
            values: up to N/2 complex (or real) slot values; shorter
                inputs are zero-padded.
            scale: encoding scale (defaults to ``params.scale``).
            context: RNS basis to CRT-decompose into (defaults to the
                full chain; pass a level context to encode for a
                partially-consumed ciphertext).
        """
        scale = float(scale if scale is not None else self.params.scale)
        context = context if context is not None else self.params.context
        values = np.asarray(values, dtype=np.complex128).ravel()
        if values.shape[0] > self.slots:
            raise ParameterError(
                f"at most {self.slots} slots, got {values.shape[0]}"
            )
        slots = np.zeros(self.slots, dtype=np.complex128)
        slots[: values.shape[0]] = values
        real_coeffs = self._embed_inverse(slots) * scale
        # Round to nearest integer; work in Python ints for exact CRT.
        rounded = [int(v) for v in np.round(real_coeffs)]
        poly = RnsPolynomial.from_integers(rounded, context)
        return Plaintext(poly=poly, scale=scale)

    def decode(self, plaintext: Plaintext, *, slots: int | None = None) -> np.ndarray:
        """Decode a plaintext back to complex slot values."""
        coeffs = np.array(plaintext.poly.to_integers(), dtype=np.float64)
        values = self._embed_forward(coeffs / plaintext.scale)
        if slots is not None:
            return values[:slots]
        return values

    # ------------------------------------------------------------------
    def encode_scalar(
        self,
        value: complex,
        *,
        scale: float | None = None,
        context: RnsContext | None = None,
    ) -> Plaintext:
        """Encode one value broadcast across all slots."""
        return self.encode(
            np.full(self.slots, value, dtype=np.complex128),
            scale=scale,
            context=context,
        )

    def decode_real(self, plaintext: Plaintext, *, slots: int | None = None) -> np.ndarray:
        """Decode and take real parts (for real-valued pipelines)."""
        return self.decode(plaintext, slots=slots).real
