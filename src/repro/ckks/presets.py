"""Named parameter presets.

Bundles the parameter choices used across this repository so examples,
tests and benches agree on what "toy", "demo" and "paper-scale" mean:

- ``TOY``       — fastest functional correctness checks (N = 256).
- ``DEMO``      — example scripts: real sizes, seconds-scale runtimes.
- ``BOOTSTRAP`` — the smallest set that bootstraps (sparse secret,
  scale = prime so the EvalMod scale algebra closes).
- ``PAPER_*``   — the Table V benchmark shapes for the *simulator*
  (degree/level/aux only; the functional plane cannot execute 2^16
  in reasonable time, which is exactly why the performance plane
  consumes traces instead).

Presets for the functional plane construct real parameter objects;
paper-scale presets return the trace-builder keyword dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.bootstrap import BootstrapConfig
from repro.ckks.params import CkksParameters


def toy() -> CkksParameters:
    """Sub-second everything; matches the test suite's fixtures."""
    return CkksParameters.default(degree=256, levels=4)


def demo() -> CkksParameters:
    """Example-script scale: 1024 slots, a few multiplications deep."""
    return CkksParameters.default(degree=2048, levels=6)


def bootstrap_capable(
    config: BootstrapConfig | None = None,
) -> tuple[CkksParameters, BootstrapConfig]:
    """The smallest functional set that supports full bootstrapping.

    Scale = 2^30 (matching the ~30-bit primes) keeps the rescale
    ladder's scale stable through the deep EvalMod pipeline; the
    sparse secret (h = 8) bounds the ModRaise overflow count.
    """
    config = config or BootstrapConfig(
        taylor_degree=7, double_angles=4, message_bound=0.05
    )
    params = CkksParameters.default(
        degree=64,
        levels=config.total_depth + 2,
        scale_bits=30,
        secret_hamming_weight=8,
    )
    return params, config


@dataclass(frozen=True)
class PaperScale:
    """Trace-builder arguments for one Table V benchmark."""

    name: str
    degree: int
    top_level: int
    aux_limbs: int

    def as_kwargs(self) -> dict:
        return {"degree": self.degree, "top_level": self.top_level}


PAPER_LR = PaperScale("LR", degree=1 << 16, top_level=44, aux_limbs=4)
PAPER_LSTM = PaperScale("LSTM", degree=1 << 16, top_level=24, aux_limbs=4)
PAPER_RESNET = PaperScale(
    "ResNet-20", degree=1 << 16, top_level=44, aux_limbs=4
)
PAPER_BOOTSTRAP = PaperScale(
    "Packed Bootstrapping", degree=1 << 16, top_level=60, aux_limbs=4
)

PAPER_SCALES = {
    p.name: p
    for p in (PAPER_LR, PAPER_LSTM, PAPER_RESNET, PAPER_BOOTSTRAP)
}
