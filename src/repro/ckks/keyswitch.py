"""The keyswitch primitive: digit decomposition -> NTT products -> ModDown.

This is the operation the paper spends most of its architecture on
(Fig. 4, RNSconv). Given a polynomial ``d`` encrypted under a source
key ``s'`` and the per-limb gadget key of :class:`~repro.ckks.keys.
SwitchKey`:

1. **Decompose/ModUp** (Eq. 3): each RNS digit ``d_j = [d]_{q_j}`` is
   lifted exactly into the extended basis ``Q_level ∪ P`` (the digit is
   a small integer, so the lift is a plain remainder per modulus — the
   MM/MA cascade of the hardware RNSconv unit).
2. Pointwise NTT-domain products of each lifted digit with key pair
   ``j``, accumulated across digits (MM + MA cores).
3. **ModDown** (Eq. 2): divide the accumulators by ``P`` and return to
   ``Q_level``.

The output pair ``(delta_0, delta_1)`` satisfies
``delta_0 + delta_1 * s ≈ d * s'`` with noise ``~ sum_j d_j e_j / P``.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.errors import EvaluationError
from repro.ckks.keys import SwitchKey
from repro.ckks.params import CkksParameters
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.obs import metrics
from repro.rns.basis_convert import mod_down
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial


def lift_digit(digit_row: np.ndarray, target: RnsContext) -> RnsPolynomial:
    """Exact lift of one RNS digit into every modulus of ``target``.

    The digit values are bounded by their source prime (< 2^31), so a
    single remainder per target modulus reproduces the integer exactly.
    """
    data = kernels.get_backend().lift(digit_row, target.moduli)
    return RnsPolynomial(data, target, Domain.COEFFICIENT)


def apply_switch_key(
    d: RnsPolynomial,
    key: SwitchKey,
    params: CkksParameters,
) -> tuple[RnsPolynomial, RnsPolynomial]:
    """Switch ``d`` from the key's source secret to the canonical ``s``.

    Args:
        d: coefficient-domain polynomial over a chain-prefix basis
           (e.g. the ``d_2`` part for relinearization, or a rotated
           ``c_1`` for rotation keyswitch).
        key: the per-limb gadget switch key for the source secret.
        params: parameter set (provides the aux basis).

    Returns:
        ``(delta_0, delta_1)`` over ``d``'s basis, coefficient domain.
    """
    if d.domain is not Domain.COEFFICIENT:
        raise EvaluationError("keyswitch input must be in coefficient domain")
    level = d.level_count - 1
    if level + 1 > key.rank:
        raise EvaluationError(
            f"switch key has rank {key.rank}, input needs {level + 1} digits"
        )
    base_ctx = d.context
    ext_ctx = params.key_context_at_level(level)

    reg = metrics.active()
    if reg is not None:
        reg.counter("ckks.keyswitch.calls").inc()
        reg.counter("ckks.keyswitch.digits").inc(level + 1)
        # level+1 forward digit NTTs plus two inverse transforms, each
        # over every limb of the extended basis.
        reg.counter("ckks.keyswitch.ntt_limb_transforms").inc(
            (level + 3) * ext_ctx.level_count
        )

    acc_b: RnsPolynomial | None = None
    acc_a: RnsPolynomial | None = None
    for j in range(level + 1):
        digit_ntt = ntt_negacyclic(lift_digit(d.data[j], ext_ctx))
        b_rows, a_rows = key.pair_rows(j, level, params)
        key_b = RnsPolynomial(b_rows, ext_ctx, Domain.NTT)
        key_a = RnsPolynomial(a_rows, ext_ctx, Domain.NTT)
        term_b = digit_ntt.hadamard(key_b)
        term_a = digit_ntt.hadamard(key_a)
        acc_b = term_b if acc_b is None else acc_b + term_b
        acc_a = term_a if acc_a is None else acc_a + term_a

    prod_b = intt_negacyclic(acc_b)
    prod_a = intt_negacyclic(acc_a)
    delta0 = mod_down(prod_b, base_ctx, params.aux_context)
    delta1 = mod_down(prod_a, base_ctx, params.aux_context)
    return delta0, delta1
