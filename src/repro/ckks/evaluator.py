"""The homomorphic evaluator: every basic operation from paper Table I.

All operations optionally report themselves to a *recorder* (any object
with a ``record(op, **meta)`` method). The compiler subpackage provides
one that turns evaluator runs into operator-level traces for the
cycle-level Poseidon model — the same decomposition the hardware
scheduler performs.
"""

from __future__ import annotations

import functools

from repro import kernels
from repro.errors import EvaluationError
from repro.automorphism.hfauto import hfauto_apply
from repro.automorphism.galois import (
    conjugation_element,
    galois_element_for_rotation,
)
from repro.automorphism.mapping import apply_automorphism_poly
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.keys import KeyChain
from repro.ckks.keyswitch import apply_switch_key
from repro.ckks.params import CkksParameters
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.obs import metrics
from repro.rns.basis_convert import rescale as rns_rescale
from repro.rns.poly import RnsPolynomial

#: Relative scale mismatch tolerated before add/mult refuses to proceed.
SCALE_TOLERANCE = 1e-9


def _kernel_scoped(method):
    """Run ``method`` with this evaluator's kernel backend active.

    A ``None`` backend keeps the process-wide selection, so decorated
    methods cost one no-op context manager in the default case.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with kernels.use_backend(self.kernel_backend):
            return method(self, *args, **kwargs)

    return wrapper


class CkksEvaluator:
    """Homomorphic operations over one parameter set / keychain.

    Args:
        params: CKKS parameters.
        keys: keychain providing relin and Galois keys.
        recorder: optional trace recorder (see ``repro.compiler.trace``).
        use_hfauto: route automorphisms through the HFAuto sub-vector
            pipeline (True, the Poseidon design) or the naive
            element-wise mapping (False, the 'Auto' ablation).
        kernel_backend: kernel backend name for this evaluator's
            operations ("reference"/"batched"); ``None`` follows the
            process-wide selection (``REPRO_KERNEL_BACKEND``).
    """

    def __init__(
        self,
        params: CkksParameters,
        keys: KeyChain,
        *,
        recorder=None,
        use_hfauto: bool = True,
        kernel_backend: str | None = None,
    ):
        self.params = params
        self.keys = keys
        self.recorder = recorder
        self.use_hfauto = use_hfauto
        if kernel_backend is not None:
            kernels.resolve(kernel_backend)  # fail fast on unknown names
        self.kernel_backend = kernel_backend

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _record(self, op: str, ct: Ciphertext | None = None, **meta) -> None:
        reg = metrics.active()
        if reg is not None:
            reg.counter(f"ckks.op.{op}").inc()
        if self.recorder is not None:
            if ct is not None:
                meta.setdefault("level", ct.level)
                meta.setdefault("degree", ct.degree)
            self.recorder.record(op, **meta)

    @staticmethod
    def _check_scales(a: float, b: float, op: str) -> None:
        if abs(a - b) > SCALE_TOLERANCE * max(a, b):
            raise EvaluationError(
                f"{op} requires matching scales, got {a:.6e} vs {b:.6e}; "
                "rescale or adjust one operand first"
            )

    def _align(self, a: Ciphertext, b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts to the same (lower) level."""
        if a.level == b.level:
            return a, b
        if a.level > b.level:
            return self.drop_to_level(a, b.level), b
        return a, self.drop_to_level(b, a.level)

    def _automorphism(self, poly: RnsPolynomial, galois: int) -> RnsPolynomial:
        if self.use_hfauto:
            return hfauto_apply(poly, galois)
        return apply_automorphism_poly(poly, galois)

    # ------------------------------------------------------------------
    # Level management
    # ------------------------------------------------------------------
    @_kernel_scoped
    def drop_to_level(self, ct: Ciphertext, level: int) -> Ciphertext:
        """Modulus-switch down by dropping chain limbs (no rescaling)."""
        if level > ct.level:
            raise EvaluationError(
                f"cannot raise level {ct.level} to {level}"
            )
        parts = list(ct.parts)
        current = ct.level
        while current > level:
            parts = [p.drop_last_limb() for p in parts]
            current -= 1
        self._record("ModDrop", ct, target_level=level)
        return Ciphertext(parts=tuple(parts), scale=ct.scale, level=level)

    @_kernel_scoped
    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last chain prime and drop a level (paper §II-A.3)."""
        if ct.level == 0:
            raise EvaluationError("no levels left to rescale into")
        dropped_prime = self.params.chain_moduli[ct.level]
        parts = tuple(rns_rescale(p) for p in ct.parts)
        self._record("Rescale", ct)
        return Ciphertext(
            parts=parts,
            scale=ct.scale / dropped_prime,
            level=ct.level - 1,
        )

    # ------------------------------------------------------------------
    # Addition (HAdd)
    # ------------------------------------------------------------------
    @_kernel_scoped
    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext-ciphertext homomorphic addition."""
        a, b = self._align(a, b)
        self._check_scales(a.scale, b.scale, "add")
        if a.size != b.size:
            raise EvaluationError(
                f"cannot add ciphertexts of size {a.size} and {b.size}"
            )
        parts = tuple(x + y for x, y in zip(a.parts, b.parts))
        self._record("HAdd", a, kind="ct-ct")
        return Ciphertext(parts=parts, scale=a.scale, level=a.level)

    @_kernel_scoped
    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Ciphertext-ciphertext homomorphic subtraction."""
        a, b = self._align(a, b)
        self._check_scales(a.scale, b.scale, "sub")
        if a.size != b.size:
            raise EvaluationError(
                f"cannot subtract ciphertexts of size {a.size} and {b.size}"
            )
        parts = tuple(x - y for x, y in zip(a.parts, b.parts))
        self._record("HAdd", a, kind="ct-ct-sub")
        return Ciphertext(parts=parts, scale=a.scale, level=a.level)

    @_kernel_scoped
    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Ciphertext-plaintext addition: only ``c_0`` changes."""
        self._check_scales(ct.scale, pt.scale, "add_plain")
        poly = self._plain_at_level(pt, ct.level)
        parts = (ct.parts[0] + poly,) + ct.parts[1:]
        self._record("HAdd", ct, kind="ct-pt")
        return ct.with_parts(parts)

    @_kernel_scoped
    def negate(self, ct: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        self._record("HAdd", ct, kind="negate")
        return ct.with_parts(tuple(-p for p in ct.parts))

    def _plain_at_level(self, pt: Plaintext, level: int) -> RnsPolynomial:
        """Restrict an encoded plaintext to a ciphertext's basis."""
        poly = pt.poly
        while poly.level_count - 1 > level:
            poly = poly.drop_last_limb()
        if poly.level_count - 1 != level:
            raise EvaluationError(
                f"plaintext has {pt.poly.level_count} limbs, cannot reach "
                f"level {level}"
            )
        return poly

    # ------------------------------------------------------------------
    # Multiplication (PMult / CMult)
    # ------------------------------------------------------------------
    @_kernel_scoped
    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Ciphertext-plaintext multiplication (PMult); scale multiplies."""
        poly = self._plain_at_level(pt, ct.level)
        pt_ntt = ntt_negacyclic(poly)
        parts = tuple(
            intt_negacyclic(ntt_negacyclic(p).hadamard(pt_ntt))
            for p in ct.parts
        )
        self._record("PMult", ct)
        return Ciphertext(
            parts=parts, scale=ct.scale * pt.scale, level=ct.level
        )

    @_kernel_scoped
    def multiply(
        self,
        a: Ciphertext,
        b: Ciphertext,
        *,
        relinearize: bool = True,
    ) -> Ciphertext:
        """Ciphertext-ciphertext multiplication (CMult).

        Produces the degree-2 tuple ``(d_0, d_1, d_2)`` and, unless
        ``relinearize=False``, immediately switches ``d_2`` back to a
        2-part ciphertext with the relinearization key.
        """
        a, b = self._align(a, b)
        if a.size != 2 or b.size != 2:
            raise EvaluationError(
                "multiply expects relinearized (2-part) inputs"
            )
        a0, a1 = (ntt_negacyclic(p) for p in a.parts)
        b0, b1 = (ntt_negacyclic(p) for p in b.parts)
        d0 = intt_negacyclic(a0.hadamard(b0))
        d1 = intt_negacyclic(a0.hadamard(b1) + a1.hadamard(b0))
        d2 = intt_negacyclic(a1.hadamard(b1))
        self._record("CMult", a)
        result = Ciphertext(
            parts=(d0, d1, d2), scale=a.scale * b.scale, level=a.level
        )
        if relinearize:
            result = self.relinearize(result)
        return result

    @_kernel_scoped
    def square(self, ct: Ciphertext, *, relinearize: bool = True) -> Ciphertext:
        """Homomorphic squaring (saves one NTT vs generic multiply)."""
        if ct.size != 2:
            raise EvaluationError("square expects a relinearized input")
        c0, c1 = (ntt_negacyclic(p) for p in ct.parts)
        d0 = intt_negacyclic(c0.hadamard(c0))
        cross = c0.hadamard(c1)
        d1 = intt_negacyclic(cross + cross)
        d2 = intt_negacyclic(c1.hadamard(c1))
        self._record("CMult", ct, kind="square")
        result = Ciphertext(
            parts=(d0, d1, d2), scale=ct.scale * ct.scale, level=ct.level
        )
        if relinearize:
            result = self.relinearize(result)
        return result

    @_kernel_scoped
    def relinearize(self, ct: Ciphertext) -> Ciphertext:
        """Switch a 3-part ciphertext back to 2 parts via the relin key."""
        if ct.size == 2:
            return ct
        if ct.size != 3:
            raise EvaluationError(
                f"relinearize supports 3-part ciphertexts, got {ct.size}"
            )
        d0, d1, d2 = ct.parts
        delta0, delta1 = apply_switch_key(d2, self.keys.relin, self.params)
        self._record("Keyswitch", ct, kind="relin")
        return Ciphertext(
            parts=(d0 + delta0, d1 + delta1),
            scale=ct.scale,
            level=ct.level,
        )

    @_kernel_scoped
    def multiply_scalar(self, ct: Ciphertext, value: complex) -> Ciphertext:
        """Multiply by a constant by encoding it at the ciphertext level."""
        from repro.ckks.encoder import CkksEncoder

        encoder = CkksEncoder(self.params)
        pt = encoder.encode_scalar(
            value, context=self.params.context_at_level(ct.level)
        )
        return self.multiply_plain(ct, pt)

    # ------------------------------------------------------------------
    # Rotation / conjugation
    # ------------------------------------------------------------------
    @_kernel_scoped
    def rotate(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Rotate slot vector left by ``steps`` (paper §II-A.5).

        Applies ``sigma_k`` to both parts (index mapping = Automorphism
        operator) and then keyswitches the rotated ``c_1`` back under
        the canonical secret.
        """
        if ct.size != 2:
            raise EvaluationError("rotate expects a relinearized input")
        if steps % self.params.slot_count == 0:
            return ct
        galois = galois_element_for_rotation(self.params.degree, steps)
        return self._apply_galois(ct, galois, f"rotate:{steps}")

    @_kernel_scoped
    def conjugate(self, ct: Ciphertext) -> Ciphertext:
        """Complex-conjugate the slot vector."""
        if ct.size != 2:
            raise EvaluationError("conjugate expects a relinearized input")
        galois = conjugation_element(self.params.degree)
        return self._apply_galois(ct, galois, "conjugate")

    def _apply_galois(self, ct: Ciphertext, galois: int, label: str) -> Ciphertext:
        rotated0 = self._automorphism(ct.parts[0], galois)
        rotated1 = self._automorphism(ct.parts[1], galois)
        self._record("Automorphism", ct, galois=galois, kind=label)
        key = self.keys.galois_key(galois)
        delta0, delta1 = apply_switch_key(rotated1, key, self.params)
        self._record("Keyswitch", ct, kind=label)
        return Ciphertext(
            parts=(rotated0 + delta0, delta1),
            scale=ct.scale,
            level=ct.level,
        )

    # ------------------------------------------------------------------
    # Composite helpers
    # ------------------------------------------------------------------
    def multiply_and_rescale(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """CMult followed by Rescale — the common depth-consuming step."""
        return self.rescale(self.multiply(a, b))

    def rotate_sum(self, ct: Ciphertext, width: int) -> Ciphertext:
        """Sum the first ``width`` slots into every slot (log-depth).

        ``width`` must be a power of two. A standard building block for
        inner products in HELR/LSTM-style workloads.
        """
        if width & (width - 1):
            raise EvaluationError(f"width must be a power of two, got {width}")
        acc = ct
        step = 1
        while step < width:
            acc = self.add(acc, self.rotate(acc, step))
            step <<= 1
        return acc
