"""Key-material size accounting.

FHE accelerators live and die by key traffic: every keyswitch streams
its switch-key pairs from HBM (the paper's Fig. 4 datapath), and a
rotation-heavy workload can touch dozens of distinct Galois keys. These
helpers size the key material exactly as the simulator charges it, so
capacity planning (does the working set fit in 8 GB of HBM?) and the
bandwidth model agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.params import CkksParameters
from repro.sim.config import LIMB_BYTES


@dataclass(frozen=True)
class KeySizeReport:
    """Byte sizes of one party's key material."""

    public_key_bytes: int
    relin_key_bytes: int
    galois_key_bytes: int
    galois_key_count: int

    @property
    def total_bytes(self) -> int:
        return (
            self.public_key_bytes
            + self.relin_key_bytes
            + self.galois_key_bytes
        )


def polynomial_bytes(params: CkksParameters, limbs: int | None = None) -> int:
    """One RNS polynomial's size (N x limbs x 4 bytes)."""
    limbs = len(params.chain_moduli) if limbs is None else limbs
    return params.degree * limbs * LIMB_BYTES


def switch_key_bytes(params: CkksParameters) -> int:
    """One gadget switch key: L pairs of polynomials over chain+aux.

    The per-limb gadget (repro.ckks.keys.SwitchKey) stores
    ``chain_length`` pairs, each pair two polynomials over the extended
    basis — the dominant key cost, and exactly what keyswitch lowering
    streams per digit.
    """
    chain = len(params.chain_moduli)
    ext = chain + len(params.aux_moduli)
    per_pair = 2 * polynomial_bytes(params, ext)
    return chain * per_pair


def ciphertext_bytes(params: CkksParameters, level: int | None = None) -> int:
    """A 2-part ciphertext at ``level`` (defaults to the top)."""
    limbs = (
        len(params.chain_moduli) if level is None else level + 1
    )
    return 2 * polynomial_bytes(params, limbs)


def key_size_report(
    params: CkksParameters, *, rotation_steps: int = 0
) -> KeySizeReport:
    """Total key material for a workload using ``rotation_steps``
    distinct rotation amounts (plus conjugation when > 0)."""
    pk = 2 * polynomial_bytes(params)
    relin = switch_key_bytes(params)
    galois_count = rotation_steps + (1 if rotation_steps else 0)
    galois = galois_count * switch_key_bytes(params)
    return KeySizeReport(
        public_key_bytes=pk,
        relin_key_bytes=relin,
        galois_key_bytes=galois,
        galois_key_count=galois_count,
    )


def fits_in_hbm(
    params: CkksParameters,
    *,
    rotation_steps: int,
    ciphertext_count: int,
    hbm_bytes: int = 8 * 2**30,
) -> bool:
    """Capacity check: keys + working ciphertexts vs HBM capacity.

    The paper's U280 has 8 GB of HBM; BTS/ARK analyses show key
    material dominating at bootstrapping-scale parameters — this
    reproduces that arithmetic.
    """
    report = key_size_report(params, rotation_steps=rotation_steps)
    working = ciphertext_count * ciphertext_bytes(params)
    return report.total_bytes + working <= hbm_bytes
