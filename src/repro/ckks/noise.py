"""Noise budget estimation for CKKS ciphertexts.

CKKS noise is additive in the message, so there is no hard "budget"
like BFV — but tracking the expected noise magnitude against the scale
tells you how many useful message bits remain. The estimator follows
the standard canonical-embedding heuristics (Gentry-Halevi-Smart
style constants) and is used by the tests to sanity-check that
measured decryption error stays within a few standard deviations of
the prediction, and by the workloads to decide when bootstrapping is
required.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ckks.params import ERROR_STD, CkksParameters


@dataclass(frozen=True)
class NoiseEstimate:
    """Expected noise magnitude (canonical embedding, high-probability).

    Attributes:
        magnitude: bound on |noise| in the slot domain.
        scale: the scale the ciphertext carries.
    """

    magnitude: float
    scale: float

    @property
    def message_bits(self) -> float:
        """Bits of message precision left: log2(scale / noise)."""
        if self.magnitude <= 0:
            return float("inf")
        return math.log2(max(self.scale / self.magnitude, 1.0))

    def after_add(self, other: "NoiseEstimate") -> "NoiseEstimate":
        """Noise of a homomorphic addition (independent-sum heuristic)."""
        mag = math.hypot(self.magnitude, other.magnitude)
        return NoiseEstimate(magnitude=mag, scale=self.scale)

    def scaled(self, factor: float) -> "NoiseEstimate":
        """Noise after multiplying the message by a known factor."""
        return NoiseEstimate(
            magnitude=self.magnitude * abs(factor), scale=self.scale
        )


class NoiseEstimator:
    """Per-parameter-set noise model for the basic operations."""

    def __init__(self, params: CkksParameters):
        self.params = params
        n = params.degree
        # Expected l2/l1 norms for fresh errors under canonical embedding.
        self._fresh_std = ERROR_STD * math.sqrt(n)
        h = params.secret_hamming_weight or (2 * n // 3)
        self._secret_norm = math.sqrt(h)

    def fresh(self) -> NoiseEstimate:
        """Noise of a freshly encrypted ciphertext.

        e_total = v*e_pk + e_0 + e_1*s; the dominating contributions
        scale with sqrt(N) under the canonical embedding.
        """
        n = self.params.degree
        mag = ERROR_STD * (
            math.sqrt(2 * n / 3) + 1.0 + self._secret_norm
        ) * math.sqrt(n)
        return NoiseEstimate(magnitude=8 * mag, scale=self.params.scale)

    def after_multiply(
        self, a: NoiseEstimate, b: NoiseEstimate,
        a_message: float = 1.0, b_message: float = 1.0,
    ) -> NoiseEstimate:
        """Noise after CMult: cross terms message*noise dominate."""
        mag = (
            abs(a_message) * a.scale * b.magnitude
            + abs(b_message) * b.scale * a.magnitude
            + a.magnitude * b.magnitude
        ) / max(a.scale, 1.0)
        return NoiseEstimate(magnitude=mag, scale=a.scale * b.scale)

    def after_rescale(self, est: NoiseEstimate, level: int) -> NoiseEstimate:
        """Noise after Rescale: divide by q_level, add rounding noise."""
        q = self.params.chain_moduli[level]
        rounding = math.sqrt(self.params.degree / 12.0) * (
            1.0 + self._secret_norm
        )
        return NoiseEstimate(
            magnitude=est.magnitude / q + rounding,
            scale=est.scale / q,
        )

    def keyswitch_additive(self, level: int) -> float:
        """Extra noise one keyswitch injects at ``level``.

        sum of (level+1) digit*error products divided by P, plus the
        ModDown rounding term.
        """
        n = self.params.degree
        digit_bound = max(self.params.chain_moduli[: level + 1])
        accumulated = (
            (level + 1)
            * digit_bound
            * ERROR_STD
            * math.sqrt(n)
        )
        rounding = math.sqrt(n / 12.0) * (1.0 + self._secret_norm)
        return accumulated / self.params.aux_product + rounding

    def after_keyswitch(self, est: NoiseEstimate, level: int) -> NoiseEstimate:
        """Noise after a rotation/relinearization keyswitch."""
        return NoiseEstimate(
            magnitude=est.magnitude + self.keyswitch_additive(level),
            scale=est.scale,
        )

    def depth_capacity(self, message_bound: float = 1.0) -> int:
        """How many multiply+rescale levels keep noise below the scale.

        A coarse planning figure for workloads deciding where to place
        bootstrapping (paper Table V's multiplicative depths).
        """
        est = self.fresh()
        depth = 0
        level = self.params.max_level
        while level > 0:
            est = self.after_multiply(est, est, message_bound, message_bound)
            est = self.after_rescale(est, level)
            est = self.after_keyswitch(est, level - 1)
            if est.magnitude >= est.scale * abs(message_bound):
                break
            depth += 1
            level -= 1
        return depth
