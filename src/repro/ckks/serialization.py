"""Serialization of ciphertexts, plaintexts and keys.

Wire format: a small JSON header (versioned, carries shape/scale/level
metadata) followed by raw little-endian uint32 residue words — the
paper's 32-bit limb layout, so serialized sizes match the
:mod:`repro.ckks.keysize` accounting and what the simulator charges
for HBM traffic.

The format is deliberately simple and self-describing rather than
clever: a downstream user can parse it with ``json`` + ``numpy`` in a
dozen lines.
"""

from __future__ import annotations

import json
import struct

import numpy as np

from repro.errors import ParameterError
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.params import CkksParameters
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial

#: Format magic + version.
MAGIC = b"PSDN"
VERSION = 1


def _pack(header: dict, payload: bytes) -> bytes:
    head = json.dumps(header, sort_keys=True).encode()
    return MAGIC + struct.pack("<HI", VERSION, len(head)) + head + payload


def _unpack(blob: bytes) -> tuple[dict, bytes]:
    if blob[:4] != MAGIC:
        raise ParameterError("not a Poseidon serialization (bad magic)")
    version, head_len = struct.unpack("<HI", blob[4:10])
    if version != VERSION:
        raise ParameterError(f"unsupported serialization version {version}")
    head = json.loads(blob[10:10 + head_len].decode())
    return head, blob[10 + head_len:]


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------
def poly_to_bytes(poly: RnsPolynomial) -> bytes:
    """Serialize one RNS polynomial (moduli travel in the header)."""
    if np.any(poly.data >> np.uint64(32)):
        raise ParameterError(
            "residues exceed 32 bits; not representable in limb format"
        )
    header = {
        "kind": "poly",
        "degree": poly.degree,
        "moduli": [int(q) for q in poly.context.moduli],
        "domain": poly.domain.value,
    }
    payload = poly.data.astype("<u4").tobytes()
    return _pack(header, payload)


def poly_from_bytes(blob: bytes) -> RnsPolynomial:
    """Inverse of :func:`poly_to_bytes`."""
    header, payload = _unpack(blob)
    if header.get("kind") != "poly":
        raise ParameterError(f"expected a poly blob, got {header.get('kind')}")
    moduli = header["moduli"]
    degree = header["degree"]
    data = np.frombuffer(payload, dtype="<u4").astype(np.uint64)
    data = data.reshape(len(moduli), degree)
    return RnsPolynomial(
        data, RnsContext(moduli), Domain(header["domain"])
    )


# ----------------------------------------------------------------------
# Ciphertexts / plaintexts
# ----------------------------------------------------------------------
def ciphertext_to_bytes(ct: Ciphertext) -> bytes:
    """Serialize a ciphertext (all parts plus scale/level)."""
    parts = [poly_to_bytes(p) for p in ct.parts]
    header = {
        "kind": "ciphertext",
        "scale": ct.scale,
        "level": ct.level,
        "part_lengths": [len(p) for p in parts],
    }
    return _pack(header, b"".join(parts))


def ciphertext_from_bytes(blob: bytes) -> Ciphertext:
    """Inverse of :func:`ciphertext_to_bytes`."""
    header, payload = _unpack(blob)
    if header.get("kind") != "ciphertext":
        raise ParameterError(
            f"expected a ciphertext blob, got {header.get('kind')}"
        )
    parts = []
    offset = 0
    for length in header["part_lengths"]:
        parts.append(poly_from_bytes(payload[offset:offset + length]))
        offset += length
    return Ciphertext(
        parts=tuple(parts),
        scale=float(header["scale"]),
        level=int(header["level"]),
    )


def plaintext_to_bytes(pt: Plaintext) -> bytes:
    """Serialize an encoded plaintext."""
    body = poly_to_bytes(pt.poly)
    header = {"kind": "plaintext", "scale": pt.scale}
    return _pack(header, body)


def plaintext_from_bytes(blob: bytes) -> Plaintext:
    """Inverse of :func:`plaintext_to_bytes`."""
    header, payload = _unpack(blob)
    if header.get("kind") != "plaintext":
        raise ParameterError(
            f"expected a plaintext blob, got {header.get('kind')}"
        )
    return Plaintext(
        poly=poly_from_bytes(payload), scale=float(header["scale"])
    )


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def params_to_bytes(params: CkksParameters) -> bytes:
    """Serialize a parameter set (no key material)."""
    header = {
        "kind": "params",
        "degree": params.degree,
        "chain_moduli": [int(q) for q in params.chain_moduli],
        "aux_moduli": [int(q) for q in params.aux_moduli],
        "scale": params.scale,
        "secret_hamming_weight": params.secret_hamming_weight,
    }
    return _pack(header, b"")


def params_from_bytes(blob: bytes) -> CkksParameters:
    """Inverse of :func:`params_to_bytes`."""
    header, _ = _unpack(blob)
    if header.get("kind") != "params":
        raise ParameterError(
            f"expected a params blob, got {header.get('kind')}"
        )
    return CkksParameters(
        degree=int(header["degree"]),
        chain_moduli=tuple(header["chain_moduli"]),
        aux_moduli=tuple(header["aux_moduli"]),
        scale=float(header["scale"]),
        secret_hamming_weight=int(header["secret_hamming_weight"]),
    )
