"""Slot-packing utilities: layouts, masks, replication, slot selection.

Every packed workload (HELR features, LSTM state, ResNet feature maps)
starts by arranging data into the N/2 complex slots and ends by
extracting results from specific slot positions. These helpers collect
the recurring layout operations:

- :func:`tile_vector` / :func:`pad_vector` — plaintext-side layouts;
- :func:`mask` — zero all slots outside a keep-set (one PMult);
- :func:`extract_slot` — isolate slot ``i`` replicated everywhere
  (mask + rotate-accumulate broadcast);
- :func:`replicate_slot0` — broadcast slot 0 to all slots.

Each homomorphic helper costs the documented operation count, so
workload builders can charge traces consistently with the functional
implementation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EvaluationError
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.encoder import CkksEncoder
from repro.ckks.evaluator import CkksEvaluator


# ----------------------------------------------------------------------
# Plaintext-side layouts
# ----------------------------------------------------------------------
def pad_vector(values, slots: int) -> np.ndarray:
    """Zero-pad a vector to the slot count."""
    values = np.asarray(values, dtype=np.complex128).ravel()
    if values.shape[0] > slots:
        raise EvaluationError(
            f"{values.shape[0]} values exceed {slots} slots"
        )
    out = np.zeros(slots, dtype=np.complex128)
    out[: values.shape[0]] = values
    return out


def tile_vector(values, slots: int) -> np.ndarray:
    """Replicate a vector across the slots (dimension must divide)."""
    values = np.asarray(values, dtype=np.complex128).ravel()
    n = values.shape[0]
    if n == 0 or slots % n != 0:
        raise EvaluationError(
            f"vector length {n} must divide the slot count {slots}"
        )
    return np.tile(values, slots // n)


def interleave(vectors, slots: int) -> np.ndarray:
    """Pack k vectors strided: slot j*k+i holds vectors[i][j].

    The layout used to batch independent records into one ciphertext.
    """
    vectors = [np.asarray(v, dtype=np.complex128).ravel() for v in vectors]
    k = len(vectors)
    if k == 0:
        raise EvaluationError("need at least one vector to interleave")
    length = vectors[0].shape[0]
    if any(v.shape[0] != length for v in vectors):
        raise EvaluationError("interleaved vectors must share a length")
    if k * length > slots:
        raise EvaluationError(
            f"{k} x {length} values exceed {slots} slots"
        )
    out = np.zeros(slots, dtype=np.complex128)
    for i, vec in enumerate(vectors):
        out[i::k][:length] = vec
    return out


# ----------------------------------------------------------------------
# Homomorphic layout operations
# ----------------------------------------------------------------------
def mask(
    evaluator: CkksEvaluator,
    encoder: CkksEncoder,
    ct: Ciphertext,
    keep_slots,
) -> Ciphertext:
    """Zero every slot not in ``keep_slots`` (one PMult + Rescale)."""
    selector = np.zeros(encoder.slots)
    for idx in keep_slots:
        if not (0 <= idx < encoder.slots):
            raise EvaluationError(f"slot {idx} out of range")
        selector[idx] = 1.0
    pt = encoder.encode(
        selector, context=evaluator.params.context_at_level(ct.level)
    )
    return evaluator.rescale(evaluator.multiply_plain(ct, pt))


def replicate_slot0(
    evaluator: CkksEvaluator,
    ct: Ciphertext,
    width: int,
) -> Ciphertext:
    """Broadcast slot 0's value into the first ``width`` slots.

    Requires slot 0 to be the only nonzero slot in that window (mask
    first otherwise). Costs log2(width) rotations + adds: the standard
    doubling broadcast.
    """
    if width & (width - 1):
        raise EvaluationError(f"width must be a power of two, got {width}")
    acc = ct
    step = 1
    while step < width:
        acc = evaluator.add(
            acc, evaluator.rotate(acc, -step)
        )
        step <<= 1
    return acc


def extract_slot(
    evaluator: CkksEvaluator,
    encoder: CkksEncoder,
    ct: Ciphertext,
    index: int,
    *,
    broadcast_width: int = 1,
) -> Ciphertext:
    """Isolate slot ``index`` (optionally broadcast over a window).

    Costs: one rotation (bring the slot to position 0), one mask
    PMult, and log2(broadcast_width) rotations when broadcasting.
    """
    shifted = evaluator.rotate(ct, index) if index else ct
    isolated = mask(evaluator, encoder, shifted, [0])
    if broadcast_width > 1:
        isolated = replicate_slot0(evaluator, isolated, broadcast_width)
    return isolated


def packing_cost_ops(width: int) -> dict[str, int]:
    """Operation counts of extract+broadcast (trace-builder companion)."""
    rotations = 1 + max(0, int(math.log2(max(1, width))))
    return {"Rotation": rotations, "PMult": 1, "HAdd": rotations - 1}
