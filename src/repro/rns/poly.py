"""RNS polynomials: the value type everything else manipulates.

An :class:`RnsPolynomial` is an (L, N) ``uint64`` matrix — one residue
row per limb prime — tagged with the ring degree, its RNS context and
the representation domain (coefficient vs. NTT/point-value). This is
exactly the data layout Poseidon streams through HBM: each limb row is
a contiguous vector that the 512-lane pipeline consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import RNSError
from repro.rns.context import RnsContext
from repro.utils.bitops import is_power_of_two


def _backend():
    """The active kernel backend, imported lazily.

    ``repro.kernels`` imports the NTT subpackage, whose façade imports
    this module back — a top-level import here would leave one of the
    three partially initialized depending on entry point.
    """
    from repro import kernels

    return kernels.get_backend()


class Domain(enum.Enum):
    """Representation domain of a polynomial's residues."""

    COEFFICIENT = "coefficient"
    NTT = "ntt"


@dataclass(frozen=True)
class PolyShape:
    """Degree and limb count of a polynomial, for quick validation."""

    degree: int
    level_count: int


class RnsPolynomial:
    """An element of ``R_Q = Z_Q[x] / (x^N + 1)`` in RNS representation.

    Args:
        data: (L, N) uint64 residue matrix (rows reduced mod each q_i).
        context: the RNS basis the rows live in.
        domain: coefficient or NTT (point-value) representation.

    The class is deliberately *value-like*: arithmetic returns new
    polynomials and never mutates operands, so evaluator pipelines can
    share inputs safely.
    """

    __slots__ = ("data", "context", "domain")

    def __init__(self, data: np.ndarray, context: RnsContext, domain: Domain):
        data = np.asarray(data, dtype=np.uint64)
        if data.ndim != 2:
            raise RNSError(f"expected 2-D residues, got shape {data.shape}")
        if data.shape[0] != context.level_count:
            raise RNSError(
                f"residue rows ({data.shape[0]}) != context limbs "
                f"({context.level_count})"
            )
        if not is_power_of_two(data.shape[1]):
            raise RNSError(f"degree must be a power of two, got {data.shape[1]}")
        self.data = data
        self.context = context
        self.domain = domain

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, degree: int, context: RnsContext,
              domain: Domain = Domain.COEFFICIENT) -> "RnsPolynomial":
        """The zero polynomial of the given degree/basis."""
        return cls(
            np.zeros((context.level_count, degree), dtype=np.uint64),
            context,
            domain,
        )

    @classmethod
    def from_integers(cls, coefficients, context: RnsContext) -> "RnsPolynomial":
        """CRT-decompose signed integer coefficients (coefficient domain)."""
        data = context.to_rns(coefficients)
        return cls(data, context, Domain.COEFFICIENT)

    @classmethod
    def constant(cls, value: int, degree: int, context: RnsContext) -> "RnsPolynomial":
        """The constant polynomial ``value`` (coefficient domain)."""
        coeffs = [int(value)] + [0] * (degree - 1)
        return cls.from_integers(coeffs, context)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Ring degree N."""
        return self.data.shape[1]

    @property
    def level_count(self) -> int:
        """Number of RNS limbs L."""
        return self.data.shape[0]

    @property
    def shape(self) -> PolyShape:
        return PolyShape(self.degree, self.level_count)

    def to_integers(self, *, signed: bool = True) -> list[int]:
        """CRT-reconstruct the coefficients as Python ints.

        Only valid in the coefficient domain.
        """
        if self.domain is not Domain.COEFFICIENT:
            raise RNSError("to_integers requires the coefficient domain")
        return self.context.from_rns(self.data, signed=signed)

    # ------------------------------------------------------------------
    # Element-wise arithmetic (limb-parallel, like the MA/MM cores)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.context != other.context:
            raise RNSError(
                f"mismatched RNS bases: {self.context} vs {other.context}"
            )
        if self.degree != other.degree:
            raise RNSError(
                f"mismatched degrees: {self.degree} vs {other.degree}"
            )
        if self.domain is not other.domain:
            raise RNSError(
                f"mismatched domains: {self.domain} vs {other.domain}"
            )

    def _map_limbs(self, op_name: str, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        op = getattr(_backend(), op_name)
        data = op(self.data, other.data, self.context.moduli)
        return RnsPolynomial(data, self.context, self.domain)

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._map_limbs("mod_add", other)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        return self._map_limbs("mod_sub", other)

    def __neg__(self) -> "RnsPolynomial":
        data = _backend().mod_neg(self.data, self.context.moduli)
        return RnsPolynomial(data, self.context, self.domain)

    def hadamard(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Element-wise product — polynomial product iff both are in NTT."""
        return self._map_limbs("mod_mul", other)

    def scalar_mul(self, scalar: int) -> "RnsPolynomial":
        """Multiply every residue by a Python-int scalar (any domain)."""
        scalars = [int(scalar)] * self.level_count
        data = _backend().mod_scalar_mul(
            self.data, scalars, self.context.moduli
        )
        return RnsPolynomial(data, self.context, self.domain)

    def scalar_mul_per_limb(self, scalars) -> "RnsPolynomial":
        """Multiply limb ``i`` by ``scalars[i]`` (rescale/ModDown helper)."""
        if len(scalars) != self.level_count:
            raise RNSError(
                f"need {self.level_count} scalars, got {len(scalars)}"
            )
        data = _backend().mod_scalar_mul(
            self.data, [int(s) for s in scalars], self.context.moduli
        )
        return RnsPolynomial(data, self.context, self.domain)

    # ------------------------------------------------------------------
    # Limb manipulation
    # ------------------------------------------------------------------
    def drop_last_limb(self) -> "RnsPolynomial":
        """Drop the last residue row (companion to context.drop_last)."""
        return RnsPolynomial(
            self.data[:-1].copy(), self.context.drop_last(), self.domain
        )

    def limb(self, index: int) -> np.ndarray:
        """The residue vector of limb ``index`` (view, do not mutate)."""
        return self.data[index]

    def with_domain(self, domain: Domain) -> "RnsPolynomial":
        """Retag the domain without touching data (transform code only)."""
        return RnsPolynomial(self.data, self.context, domain)

    def copy(self) -> "RnsPolynomial":
        return RnsPolynomial(self.data.copy(), self.context, self.domain)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RnsPolynomial)
            and self.context == other.context
            and self.domain is other.domain
            and np.array_equal(self.data, other.data)
        )

    def __repr__(self) -> str:
        return (
            f"RnsPolynomial(N={self.degree}, L={self.level_count}, "
            f"domain={self.domain.value})"
        )
