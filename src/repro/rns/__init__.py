"""Residue Number System (RNS) arithmetic substrate.

Poseidon keeps every polynomial in RNS form: a big coefficient modulus
``Q = q_0 * q_1 * ... * q_{L-1}`` is split into 30-bit limbs so all
hardware arithmetic is 32-bit (paper Section IV-A). This subpackage
implements the exact arithmetic layer:

- :mod:`repro.rns.modular` — vectorized modular add/sub/mul (MA/MM).
- :mod:`repro.rns.barrett` — Barrett reduction, the SBT operator.
- :mod:`repro.rns.context` — an immutable RNS basis with precomputed
  CRT constants.
- :mod:`repro.rns.poly` — RNS polynomials (L x N residue matrices).
- :mod:`repro.rns.basis_convert` — RNSconv / ModUp / ModDown (Eq. 1-3).
"""

from repro.rns.barrett import BarrettReducer
from repro.rns.context import RnsContext
from repro.rns.modular import mod_add, mod_mul, mod_neg, mod_sub
from repro.rns.poly import RnsPolynomial

__all__ = [
    "BarrettReducer",
    "RnsContext",
    "RnsPolynomial",
    "mod_add",
    "mod_mul",
    "mod_neg",
    "mod_sub",
]
