"""RNS context: a fixed prime basis with precomputed CRT constants.

An :class:`RnsContext` owns the limb primes ``(q_0, ..., q_{L-1})`` and
every constant that RNSconv / ModUp / ModDown (paper Eq. 1-3) and
rescaling need:

- ``q_hat[i]   = Q / q_i``            (CRT punctured products)
- ``q_hat_inv[i] = (Q/q_i)^-1 mod q_i``
- pairwise inverses ``q_i^-1 mod q_j`` for rescale.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.errors import RNSError
from repro.rns.barrett import GLOBAL_SBT_BANK, BarrettReducer
from repro.rns.modular import check_modulus, mod_inverse


class RnsContext:
    """Immutable RNS basis ``Q = prod(moduli)`` with CRT precomputation.

    Args:
        moduli: distinct limb primes, each < 2^31.

    The context is hashable on its moduli tuple so evaluator code can
    cache NTT tables per (context, degree).
    """

    def __init__(self, moduli):
        moduli = tuple(int(q) for q in moduli)
        if not moduli:
            raise RNSError("RNS basis needs at least one modulus")
        if len(set(moduli)) != len(moduli):
            raise RNSError(f"RNS moduli must be distinct, got {moduli}")
        for q in moduli:
            check_modulus(q)
        self.moduli: tuple[int, ...] = moduli
        self.level_count = len(moduli)

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @cached_property
    def modulus_product(self) -> int:
        """The big modulus ``Q = prod(q_i)`` as a Python int."""
        product = 1
        for q in self.moduli:
            product *= q
        return product

    @cached_property
    def punctured_products(self) -> tuple[int, ...]:
        """``q_hat[i] = Q / q_i`` as Python ints."""
        big_q = self.modulus_product
        return tuple(big_q // q for q in self.moduli)

    @cached_property
    def punctured_inverses(self) -> tuple[int, ...]:
        """``q_hat_inv[i] = (Q / q_i)^-1 mod q_i``."""
        return tuple(
            mod_inverse(q_hat % q, q)
            for q, q_hat in zip(self.moduli, self.punctured_products)
        )

    @cached_property
    def barrett(self) -> tuple[BarrettReducer, ...]:
        """One shared Barrett reducer per limb (the SBT bank view)."""
        return tuple(GLOBAL_SBT_BANK.get(q) for q in self.moduli)

    def pairwise_inverse(self, i: int, j: int) -> int:
        """``q_i^-1 mod q_j`` (used by rescale and ModDown)."""
        if i == j:
            raise RNSError(f"q_{i} is not invertible modulo itself")
        return mod_inverse(self.moduli[i] % self.moduli[j], self.moduli[j])

    @cached_property
    def last_limb_inverses(self) -> tuple[int, ...]:
        """``q_{L-1}^-1 mod q_j`` for j < L-1 — the rescale constants."""
        last = self.level_count - 1
        return tuple(self.pairwise_inverse(last, j) for j in range(last))

    # ------------------------------------------------------------------
    # CRT conversions (exact, for tests and encoding)
    # ------------------------------------------------------------------
    def to_rns(self, values) -> np.ndarray:
        """CRT-decompose integer coefficients into an (L, N) residue matrix.

        ``values`` may be arbitrary Python ints (positive or negative).
        """
        ints = [int(v) for v in np.asarray(values, dtype=object).ravel()]
        rows = [
            np.array([v % q for v in ints], dtype=np.uint64)
            for q in self.moduli
        ]
        return np.stack(rows)

    def from_rns(self, residues: np.ndarray, *, signed: bool = True) -> list[int]:
        """CRT-reconstruct integers from an (L, N) residue matrix.

        Args:
            residues: residue matrix, one row per limb.
            signed: map results into ``(-Q/2, Q/2]`` instead of ``[0, Q)``.
        """
        residues = np.asarray(residues)
        if residues.ndim != 2 or residues.shape[0] != self.level_count:
            raise RNSError(
                f"expected ({self.level_count}, N) residues, got "
                f"{residues.shape}"
            )
        big_q = self.modulus_product
        terms = []
        for i, q in enumerate(self.moduli):
            q_hat = self.punctured_products[i]
            q_hat_inv = self.punctured_inverses[i]
            row = residues[i].astype(object)
            terms.append([(int(r) * q_hat_inv % q) * q_hat for r in row])
        n = residues.shape[1]
        out = []
        half = big_q // 2
        for col in range(n):
            v = sum(term[col] for term in terms) % big_q
            if signed and v > half:
                v -= big_q
            out.append(v)
        return out

    # ------------------------------------------------------------------
    # Basis manipulation
    # ------------------------------------------------------------------
    def drop_last(self) -> "RnsContext":
        """Context for the chain with the last limb removed (rescale)."""
        if self.level_count == 1:
            raise RNSError("cannot drop the last remaining limb")
        return RnsContext(self.moduli[:-1])

    def first(self, count: int) -> "RnsContext":
        """Context over the first ``count`` limbs."""
        if not (1 <= count <= self.level_count):
            raise RNSError(
                f"count must be in [1, {self.level_count}], got {count}"
            )
        return RnsContext(self.moduli[:count])

    def extend(self, extra_moduli) -> "RnsContext":
        """Context over ``self.moduli + extra_moduli`` (ModUp target)."""
        return RnsContext(self.moduli + tuple(int(q) for q in extra_moduli))

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, RnsContext) and self.moduli == other.moduli

    def __hash__(self) -> int:
        return hash(self.moduli)

    def __len__(self) -> int:
        return self.level_count

    def __repr__(self) -> str:
        bits = [q.bit_length() for q in self.moduli]
        return f"RnsContext(L={self.level_count}, bits={bits})"
