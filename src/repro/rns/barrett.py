"""Barrett reduction — the Shared Barrett Reduction (SBT) operator.

Division on FPGA is expensive, so Poseidon replaces the ``x mod q``
division with Barrett's multiply-and-shift (paper Fig. 3, Eq. 6): a
precomputed reciprocal ``u = floor(4^k / q)`` turns the quotient
``floor(x / q)`` into two multiplications and shifts, followed by at
most two correction subtractions. The same SBT core is shared by the
NTT and MM cores in hardware; here the class is similarly shared by
the NTT and modular-multiplication code paths.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RNSError
from repro.obs import metrics
from repro.rns.modular import check_modulus


class BarrettReducer:
    """Bit-exact Barrett reduction for a fixed modulus ``q < 2^31``.

    The reducer accepts any ``x < q^2`` (i.e. a product of two reduced
    residues) and returns ``x mod q`` using only multiplications,
    shifts and conditional subtractions — the exact dataflow of the
    SBT hardware core.

    Attributes:
        q: the modulus.
        k: bit width of ``q`` (``2^(k-1) <= q < 2^k``).
        u: the Barrett reciprocal ``floor(2^(2k) / q)``.
    """

    def __init__(self, q: int):
        self.q = check_modulus(q)
        self.k = q.bit_length()
        self.u = (1 << (2 * self.k)) // q
        self._q64 = np.uint64(self.q)
        self._u64 = np.uint64(self.u)
        self._shift_lo = np.uint64(self.k - 1)
        self._shift_hi = np.uint64(self.k + 1)

    def reduce_scalar(self, x: int) -> int:
        """Reduce a single Python int ``x`` (0 <= x < q^2) mod q."""
        reg = metrics.active()
        if reg is not None:
            reg.counter("rns.barrett.reductions").inc()
        if x < 0 or x >= self.q * self.q:
            raise RNSError(
                f"Barrett input must be in [0, q^2) for q={self.q}, got {x}"
            )
        q1 = x >> (self.k - 1)
        q2 = q1 * self.u
        q3 = q2 >> (self.k + 1)
        r = x - q3 * self.q
        while r >= self.q:  # at most 2 iterations by Barrett's bound
            r -= self.q
        return r

    def reduce(self, x: np.ndarray) -> np.ndarray:
        """Vectorized reduction of products of two reduced residues.

        ``x`` must be ``uint64`` products ``a*b`` with ``a, b < q``.
        For ``q < 2^31`` every intermediate fits in ``uint64`` except
        ``q1 * u``; we keep the modulus at 30 bits in practice, where
        ``q1 < 2^(2k - k + 1) = 2^(k+1)`` and ``u < 2^(k+1)`` so the
        product is below ``2^(2k+2) <= 2^64`` for ``k <= 31``.
        """
        x = np.asarray(x, dtype=np.uint64)
        reg = metrics.active()
        if reg is not None:
            reg.counter("rns.barrett.reductions").inc(int(x.size))
        q1 = x >> self._shift_lo
        q3 = (q1 * self._u64) >> self._shift_hi
        r = x - q3 * self._q64
        r = np.where(r >= self._q64, r - self._q64, r)
        r = np.where(r >= self._q64, r - self._q64, r)
        return r

    def mul_mod(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a * b) mod q`` through the Barrett datapath."""
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        return self.reduce(a * b)

    def __repr__(self) -> str:
        return f"BarrettReducer(q={self.q}, k={self.k})"


class SharedBarrettBank:
    """A bank of Barrett reducers keyed by modulus — the 'shared' in SBT.

    In Poseidon one SBT core array serves both the NTT and MM cores.
    Software-side, this cache guarantees each modulus precomputes its
    reciprocal once and every operator reuses the same reducer object.
    """

    def __init__(self):
        self._bank: dict[int, BarrettReducer] = {}

    def get(self, q: int) -> BarrettReducer:
        """Return (creating if needed) the reducer for modulus ``q``."""
        reducer = self._bank.get(q)
        if reducer is None:
            reducer = BarrettReducer(q)
            self._bank[q] = reducer
        return reducer

    def __len__(self) -> int:
        return len(self._bank)

    def __contains__(self, q: int) -> bool:
        return q in self._bank


#: Process-wide bank mirroring the single shared SBT array on the FPGA.
GLOBAL_SBT_BANK = SharedBarrettBank()
