"""Vectorized modular arithmetic — the MA and MM operators.

These functions are the software-exact equivalents of Poseidon's MA
(Modular Addition) and MM (Modular Multiplication) cores. All moduli
are < 2^31 so products of residues fit in ``uint64`` without overflow
(the paper's 32-bit limb constraint serves the same purpose on FPGA).

The conditional-subtract formulation of :func:`mod_add` mirrors the
hardware datapath in the paper's Fig. 3 / Eq. 5: compare against q and
subtract q when the sum spills over.
"""

from __future__ import annotations

import numpy as np

from repro.errors import RNSError

#: Largest modulus for which uint64 products cannot overflow.
MAX_MODULUS_BITS = 31
MAX_MODULUS = (1 << MAX_MODULUS_BITS) - 1


def check_modulus(q: int) -> int:
    """Validate a limb modulus (odd prime-sized, < 2^31); return it."""
    if not (2 < q <= MAX_MODULUS):
        raise RNSError(
            f"modulus must be in (2, 2^{MAX_MODULUS_BITS}), got {q}"
        )
    return int(q)


def _as_u64(a) -> np.ndarray:
    return np.asarray(a, dtype=np.uint64)


def mod_add(a, b, q: int) -> np.ndarray:
    """Element-wise ``(a + b) mod q`` via the hardware compare/subtract.

    Matches Eq. 5 of the paper: the sum is computed once and ``q`` is
    subtracted exactly when the sum reaches ``q``. Inputs must already
    be reduced into ``[0, q)``.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    s = a + b  # < 2q <= 2^32, no uint64 overflow
    return np.where(s >= np.uint64(q), s - np.uint64(q), s)


def mod_sub(a, b, q: int) -> np.ndarray:
    """Element-wise ``(a - b) mod q`` with a conditional add-back."""
    a = _as_u64(a)
    b = _as_u64(b)
    s = a + np.uint64(q) - b
    return np.where(s >= np.uint64(q), s - np.uint64(q), s)


def mod_neg(a, q: int) -> np.ndarray:
    """Element-wise ``(-a) mod q``."""
    a = _as_u64(a)
    return np.where(a == 0, np.uint64(0), np.uint64(q) - a)


def mod_mul(a, b, q: int) -> np.ndarray:
    """Element-wise ``(a * b) mod q`` — the MM operator.

    Residues are < 2^31 so the product fits in uint64; the reduction
    here uses numpy's remainder, while :class:`~repro.rns.barrett.
    BarrettReducer` provides the bit-exact hardware algorithm.
    """
    a = _as_u64(a)
    b = _as_u64(b)
    return (a * b) % np.uint64(q)


def mod_scalar_mul(a, scalar: int, q: int) -> np.ndarray:
    """Element-wise ``(a * scalar) mod q`` for a Python-int scalar."""
    return mod_mul(a, np.uint64(scalar % q), q)


def mod_pow(base: int, exponent: int, q: int) -> int:
    """Scalar modular exponentiation (delegates to Python's pow)."""
    return pow(base, exponent, q)


def mod_inverse(a: int, q: int) -> int:
    """Modular inverse of ``a`` modulo ``q``.

    Raises:
        RNSError: if ``a`` is not invertible mod ``q``.
    """
    try:
        return pow(int(a), -1, int(q))
    except ValueError as exc:
        raise RNSError(f"{a} has no inverse modulo {q}") from exc


def mod_dot(a, b, q: int) -> int:
    """``sum(a[i] * b[i]) mod q`` accumulated without overflow."""
    a = _as_u64(a)
    b = _as_u64(b)
    prods = (a * b) % np.uint64(q)
    # Accumulate in Python ints to avoid uint64 overflow on long sums.
    return int(np.sum(prods.astype(object))) % int(q)
