"""Fast RNS basis conversion: RNSconv, ModUp and ModDown (paper Eq. 1-3).

Keyswitching needs polynomials moved between the ciphertext basis
``B = {q_0..q_{l-1}}`` and an auxiliary basis ``C = {p_0..p_{k-1}}``
without ever reconstructing the big integer. The classic fast basis
conversion computes, per target prime ``p_i``,

    conv(a)_i = sum_j ( [a_j * q_hat_j^{-1}]_{q_j} * q_hat_j ) mod p_i

which equals ``a mod p_i`` up to a small multiple of ``Q`` (absorbed
into noise). Poseidon implements this as a cascade of MM and MA cores
(paper Fig. 4) rather than a dedicated unit; the functions here are the
exact software mirror and are traced as MM/MA operator tasks by the
compiler.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.errors import RNSError
from repro.rns.context import RnsContext
from repro.rns.modular import mod_inverse
from repro.rns.poly import Domain, RnsPolynomial


class BasisConverter:
    """Precomputed fast conversion from basis ``source`` to ``target``.

    The constructor precomputes ``q_hat_j^{-1} mod q_j`` (source side)
    and the table ``q_hat_j mod p_i`` (target side); :meth:`convert`
    then needs only element-wise multiplications and accumulations —
    the MM/MA cascade of the hardware RNSconv unit.
    """

    def __init__(self, source: RnsContext, target: RnsContext):
        overlap = set(source.moduli) & set(target.moduli)
        if overlap:
            raise RNSError(
                f"source and target bases must be disjoint, share {overlap}"
            )
        self.source = source
        self.target = target
        # table[j][i] = (Q/q_j) mod p_i
        self._q_hat_mod_target = np.array(
            [
                [q_hat % p for p in target.moduli]
                for q_hat in source.punctured_products
            ],
            dtype=np.uint64,
        )

    def convert(self, poly: RnsPolynomial) -> RnsPolynomial:
        """RNSconv: map a coefficient-domain polynomial into ``target``.

        The result equals ``a + e*Q (mod p_i)`` for some small integer
        ``e`` per coefficient (0 <= e < l); exact for inputs reduced to
        ``[0, Q)`` whose CRT lift is below ``Q`` — the usual FHE noise
        argument absorbs the ``e*Q`` term.
        """
        if poly.context != self.source:
            raise RNSError(
                f"polynomial basis {poly.context} != converter source "
                f"{self.source}"
            )
        if poly.domain is not Domain.COEFFICIENT:
            raise RNSError("RNSconv operates in the coefficient domain")

        backend = kernels.get_backend()
        # Step 1 (MM): y_j = [a_j * q_hat_j^{-1}]_{q_j}  per source limb.
        y = backend.mod_scalar_mul(
            poly.data, self.source.punctured_inverses, self.source.moduli
        )
        # Step 2 (MM + MA cascade): accumulate sum_j y_j * (Q/q_j) mod p_i.
        out = backend.basis_convert(
            y, self._q_hat_mod_target, self.target.moduli
        )
        return RnsPolynomial(out, self.target, Domain.COEFFICIENT)


def mod_up(poly: RnsPolynomial, aux: RnsContext) -> RnsPolynomial:
    """ModUp (Eq. 3): extend ``a_B`` to the concatenated basis ``B ∪ C``.

    Returns a polynomial over ``poly.context.extend(aux.moduli)`` whose
    first ``l`` rows are the original residues and whose remaining rows
    come from RNSconv.
    """
    converter = BasisConverter(poly.context, aux)
    converted = converter.convert(poly)
    extended = poly.context.extend(aux.moduli)
    data = np.vstack([poly.data, converted.data])
    return RnsPolynomial(data, extended, Domain.COEFFICIENT)


def mod_down(
    poly: RnsPolynomial,
    base: RnsContext,
    aux: RnsContext,
) -> RnsPolynomial:
    """ModDown (Eq. 2): reduce ``(a_B, b_C)`` back to basis ``B``.

    ``poly`` must live over the concatenated basis ``B ∪ C``. Computes
    ``(a_B - RNSconv(b_C → B)) * P^{-1} mod q_j`` where ``P = prod(C)``,
    i.e. an approximate division by the auxiliary modulus that keeps
    the keyswitch noise small.
    """
    expected = base.moduli + aux.moduli
    if poly.context.moduli != expected:
        raise RNSError(
            f"polynomial basis {poly.context.moduli} != base+aux {expected}"
        )
    if poly.domain is not Domain.COEFFICIENT:
        raise RNSError("ModDown operates in the coefficient domain")

    base_limbs = base.level_count
    part_base = RnsPolynomial(poly.data[:base_limbs].copy(), base, Domain.COEFFICIENT)
    part_aux = RnsPolynomial(poly.data[base_limbs:].copy(), aux, Domain.COEFFICIENT)

    converter = BasisConverter(aux, base)
    correction = converter.convert(part_aux)

    p_product = aux.modulus_product
    inv_p = [mod_inverse(p_product % q, q) for q in base.moduli]
    diff = part_base - correction
    return diff.scalar_mul_per_limb(inv_p)


def rescale(poly: RnsPolynomial) -> RnsPolynomial:
    """Drop the last limb with CKKS rescaling semantics.

    Computes ``round(a / q_{l-1})`` in RNS: for each remaining limb j,
    ``a'_j = q_{l-1}^{-1} * (a_j - a_{l-1}) mod q_j`` (the paper's
    Rescale formula in Section II-A.3).
    """
    ctx = poly.context
    if ctx.level_count < 2:
        raise RNSError("rescale needs at least two limbs")
    if poly.domain is not Domain.COEFFICIENT:
        raise RNSError("rescale operates in the coefficient domain")

    last = ctx.level_count - 1
    new_ctx = ctx.drop_last()
    backend = kernels.get_backend()
    # a_{l-1} lifted into every surviving limb, then the per-limb
    # (a_j - a_{l-1}) * q_{l-1}^{-1} — all whole-matrix kernel calls.
    lifted = backend.lift(poly.data[last], new_ctx.moduli)
    diff = backend.mod_sub(poly.data[:last], lifted, new_ctx.moduli)
    data = backend.mod_scalar_mul(
        diff, ctx.last_limb_inverses, new_ctx.moduli
    )
    return RnsPolynomial(data, new_ctx, Domain.COEFFICIENT)
