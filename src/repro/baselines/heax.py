"""HEAX baseline: the state-of-the-art FPGA prototype the paper beats.

HEAX (Riazi et al. [32]) is a fully pipelined FPGA design for CKKS.
The paper estimates its best-case throughput under Poseidon's parameter
setting from the HEAX hardware design (Table IV) and compares resource
consumption (Table XII).
"""

from __future__ import annotations

#: Table IV, HEAX column (operations per second, estimated by the
#: paper for its parameter setting); '/' entries omitted.
HEAX_BASIC_OPS = {
    "PMult": 4161.0,
    "CMult": 119.0,
    # The paper quotes ~3x Keyswitch and ~50x NTT advantages for
    # Poseidon; the implied HEAX numbers:
    "Keyswitch": 104.0,
    "NTT": 249.0,
}

#: Table XII-style resource totals reported for HEAX.
HEAX_RESOURCES = {
    "lut": 569000,
    "ff": 1261000,
    "dsp": 8448,
    "bram": 2528,
}

#: Kim et al. [25][26] resources (the other FPGA row of Table XII).
KIM_RESOURCES = {
    "lut": 798000,
    "ff": 1232000,
    "dsp": 3584,
    "bram": 3360,
}
