"""Uniform access to every comparator the evaluation uses.

The analysis layer asks one object for "GPU throughput on PMult" or
"ARK's ResNet-20 time" without caring whether the number is computed
(CPU model, Poseidon simulator) or published (GPU/HEAX/ASICs).
"""

from __future__ import annotations

from repro.baselines.asics import all_asics
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GPU_BASIC_OPS, GPU_BENCHMARK_MS
from repro.baselines.heax import HEAX_BASIC_OPS
from repro.compiler.ops import FheOp


class BaselineRegistry:
    """All baselines behind one interface."""

    def __init__(self):
        self.cpu = CpuModel()
        self.asics = {a.name: a for a in all_asics()}

    # ------------------------------------------------------------------
    # Basic-operation throughput (Table IV columns)
    # ------------------------------------------------------------------
    def cpu_ops_per_second(self, op: FheOp) -> float:
        """Computed CPU throughput for a basic operation."""
        return self.cpu.operations_per_second(op)

    def gpu_ops_per_second(self, op_name: str) -> float | None:
        """Published GPU throughput, or None if not reported."""
        return GPU_BASIC_OPS.get(op_name)

    def heax_ops_per_second(self, op_name: str) -> float | None:
        """Published/estimated HEAX throughput, or None."""
        return HEAX_BASIC_OPS.get(op_name)

    # ------------------------------------------------------------------
    # Full-system benchmark times (Table VI rows)
    # ------------------------------------------------------------------
    def benchmark_rows(self, benchmark: str) -> dict[str, float]:
        """Reported comparator times (ms) for one benchmark."""
        out: dict[str, float] = {}
        for name, asic in self.asics.items():
            ms = asic.benchmark_ms(benchmark)
            if ms is not None:
                out[name] = ms
        gpu = GPU_BENCHMARK_MS.get(benchmark)
        if gpu is not None:
            out["over100x (GPU)"] = gpu
        return out

    def comparator_names(self) -> list[str]:
        """Every comparator the registry can answer for."""
        return list(self.asics) + ["over100x (GPU)", "HEAX", "CPU"]
