"""ASIC baselines: F1+, CraterLake, BTS and ARK (paper Table VI / X).

These accelerators exist only as simulated prototypes in their papers;
Poseidon compares against their reported benchmark times and energy
efficiency. The constants below encode the paper's comparison rows
(Table VI full-system times; hardware envelopes from the setup table).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Full-system benchmark execution time in milliseconds (Table VI).
#: Rows: accelerator; columns: the four benchmarks. Entries the paper
#: does not report are omitted.
ASIC_BENCHMARK_MS: dict[str, dict[str, float]] = {
    "F1+": {
        "LR": 639.0,
        "Packed Bootstrapping": 321.0,
    },
    "CraterLake": {
        "LR": 119.5,
        "LSTM": 2663.0,
        "ResNet-20": 4919.0,
        "Packed Bootstrapping": 117.0,
    },
    "BTS": {
        "LR": 28.4,
        "LSTM": 1910.0,
        "ResNet-20": 1910.0,
        "Packed Bootstrapping": 58.9,
    },
    "ARK": {
        "LR": 7.42,
        "LSTM": 535.0,
        "ResNet-20": 294.0,
        "Packed Bootstrapping": 3.52,
    },
}

#: Hardware envelopes (from the paper's comparison table): on-chip
#: storage (MB), bandwidth (TB/s where meaningful) and power (W).
ASIC_ENVELOPES = {
    "F1+": {"sram_mb": 256, "power_w": 180.4},
    "CraterLake": {"sram_mb": 256, "power_w": 320.0},
    "BTS": {"sram_mb": 512, "power_w": 163.2},
    "ARK": {"sram_mb": 512, "power_w": 281.3},
}


@dataclass(frozen=True)
class AsicModel:
    """One published-number ASIC comparator."""

    name: str

    @property
    def benchmarks(self) -> dict[str, float]:
        """Reported benchmark times (ms)."""
        return ASIC_BENCHMARK_MS[self.name]

    @property
    def power_watts(self) -> float:
        return ASIC_ENVELOPES[self.name]["power_w"]

    def benchmark_ms(self, benchmark: str) -> float | None:
        """Reported time for one benchmark, or None."""
        return self.benchmarks.get(benchmark)

    def edp(self, benchmark: str) -> float | None:
        """EDP (J*s) from reported time and nominal power."""
        ms = self.benchmark_ms(benchmark)
        if ms is None:
            return None
        seconds = ms / 1e3
        return self.power_watts * seconds * seconds


def all_asics() -> list[AsicModel]:
    """All four comparators in the paper's order."""
    return [AsicModel(name) for name in ASIC_BENCHMARK_MS]
