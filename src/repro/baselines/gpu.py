"""GPU baseline: 'over100x' (Jung et al. [21]), NVIDIA Tesla V100.

The paper compares against Jung et al.'s GPU implementation using its
reported throughputs (Table IV) and benchmark times (Table VI /
Table X). These systems are closed; the constants below are the
figures the paper itself cites.
"""

from __future__ import annotations

#: Table IV, GPU column (operations per second); '/' entries omitted.
GPU_BASIC_OPS = {
    "PMult": 7407.0,
    "CMult": 57.0,
    "Rotation": 61.0,
    "Rescale": 1574.0,
}

#: Table VI, over100x GPU row (benchmark time in milliseconds).
#: The GPU paper reports HELR iterations; others were not reported.
GPU_BENCHMARK_MS = {
    "LR": 775.0,
}

#: Nominal V100 board power (watts), for EDP comparisons (Table X).
GPU_POWER_WATTS = 300.0


def gpu_edp(benchmark: str) -> float | None:
    """EDP (J*s) of the GPU baseline for a benchmark, if reported."""
    ms = GPU_BENCHMARK_MS.get(benchmark)
    if ms is None:
        return None
    seconds = ms / 1e3
    return GPU_POWER_WATTS * seconds * seconds
