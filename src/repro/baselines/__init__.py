"""Baseline comparators for the paper's evaluation tables.

Two kinds:

- **Analytical**: :mod:`repro.baselines.cpu` models the single-thread
  Xeon baseline from operation counts (the paper's CPU column).
- **Published numbers**: :mod:`repro.baselines.gpu` (over100x, Jung et
  al.), :mod:`repro.baselines.heax` (the HEAX FPGA) and
  :mod:`repro.baselines.asics` (F1+, CraterLake, BTS, ARK) encode the
  figures the paper itself compares against — those systems are closed,
  so the paper (and we) cite their reported results.
"""

from repro.baselines.asics import ASIC_BENCHMARK_MS, AsicModel
from repro.baselines.cpu import CpuModel
from repro.baselines.gpu import GPU_BASIC_OPS, GPU_BENCHMARK_MS
from repro.baselines.heax import HEAX_BASIC_OPS, HEAX_RESOURCES
from repro.baselines.registry import BaselineRegistry

__all__ = [
    "ASIC_BENCHMARK_MS",
    "AsicModel",
    "BaselineRegistry",
    "CpuModel",
    "GPU_BASIC_OPS",
    "GPU_BENCHMARK_MS",
    "HEAX_BASIC_OPS",
    "HEAX_RESOURCES",
]
