"""Analytical single-thread CPU baseline (Intel Xeon Gold 6234, 3.3 GHz).

The paper's CPU column runs a SEAL-style software library on one
thread. This model prices each FHE basic operation from its arithmetic
footprint — modular multiplications dominate single-thread time — with
per-primitive costs calibrated to land on the paper's Table IV CPU
throughputs at (N = 2^16, L = 44):

    PMult 38.14 ops/s, CMult 0.38, NTT 9.25, Keyswitch 0.4,
    Rotation 0.39, Rescale 6.9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.decompose import keyswitch_digits
from repro.compiler.ops import FheOp, FheOpName
from repro.errors import WorkloadError

#: Paper Table IV, CPU column (operations per second). HAdd is not
#: reported by the paper; the model derives it from the MA footprint.
PAPER_CPU_OPS_PER_S = {
    "PMult": 38.14,
    "CMult": 0.38,
    "NTT": 9.25,
    "Keyswitch": 0.4,
    "Rotation": 0.39,
    "Rescale": 6.9,
}


@dataclass(frozen=True)
class CpuCosts:
    """Per-primitive costs in seconds on the modelled core."""

    modmul: float = 3.4e-9      # 64-bit mulmod (Barrett) incl. loads
    modadd: float = 0.8e-9
    butterfly: float = 4.7e-9   # NTT butterfly: 1 mulmod + 2 addmod + idx


class CpuModel:
    """Prices FHE basic operations on a single CPU thread."""

    def __init__(self, costs: CpuCosts | None = None):
        self.costs = costs or CpuCosts()

    # ------------------------------------------------------------------
    # Primitive footprints
    # ------------------------------------------------------------------
    def ntt_seconds(self, degree: int, limbs: int) -> float:
        """One polynomial NTT: (N/2) log2 N butterflies per limb."""
        butterflies = (degree // 2) * int(math.log2(degree)) * limbs
        return butterflies * self.costs.butterfly

    def elementwise_seconds(self, degree: int, limbs: int, *,
                            muls: int = 0, adds: int = 0) -> float:
        """Element-wise passes over one polynomial."""
        n = degree * limbs
        return n * (muls * self.costs.modmul + adds * self.costs.modadd)

    def keyswitch_seconds(self, op: FheOp) -> float:
        """Digit decomposition + extended NTTs + products + ModDown."""
        limb_count = op.limbs
        ext = op.extended_limbs
        digits = keyswitch_digits(op)
        seconds = self.ntt_seconds(op.degree, limb_count)  # input INTT
        for _ in range(digits):
            seconds += self.ntt_seconds(op.degree, ext)
            seconds += self.elementwise_seconds(
                op.degree, ext, muls=2, adds=2
            )
        seconds += 2 * self.ntt_seconds(op.degree, ext)  # INTT both
        seconds += self.elementwise_seconds(
            op.degree, limb_count, muls=2, adds=2
        )  # ModDown
        seconds += 2 * self.ntt_seconds(op.degree, limb_count)  # back to NTT form
        return seconds

    # ------------------------------------------------------------------
    def operation_seconds(self, op: FheOp) -> float:
        """Single-thread latency of one basic operation."""
        n, limbs = op.degree, op.limbs
        name = op.name
        if name is FheOpName.HADD:
            return self.elementwise_seconds(n, limbs, adds=2)
        if name is FheOpName.PMULT:
            return self.elementwise_seconds(n, limbs, muls=2)
        if name is FheOpName.CMULT:
            tensor = self.elementwise_seconds(n, limbs, muls=4, adds=1)
            return tensor + self.keyswitch_seconds(op)
        if name is FheOpName.RESCALE:
            # Software libraries keep one part in lazy coefficient
            # form around rescale; ~1.2 poly-NTT equivalents transform.
            return (
                self.elementwise_seconds(n, limbs, muls=2, adds=2)
                + 1.2 * self.ntt_seconds(n, max(1, limbs - 1))
            )
        if name is FheOpName.KEYSWITCH:
            return self.keyswitch_seconds(op)
        if name in (FheOpName.ROTATION, FheOpName.HOISTED_ROTATION):
            automorphism = self.elementwise_seconds(n, limbs, adds=2)
            return (
                2 * automorphism
                + self.keyswitch_seconds(op)
                + self.elementwise_seconds(n, limbs, adds=1)
            )
        if name is FheOpName.AUTOMORPHISM:
            return 2 * self.elementwise_seconds(n, limbs, adds=2)
        if name is FheOpName.MODDROP:
            return self.elementwise_seconds(n, limbs, adds=1)
        raise WorkloadError(f"no CPU model for {name.value}")

    def operations_per_second(self, op: FheOp) -> float:
        """Throughput of one basic operation."""
        return 1.0 / self.operation_seconds(op)

    def ntt_op_seconds(self, degree: int, limbs: int) -> float:
        """The standalone NTT 'operation' of Table IV (one ciphertext)."""
        return self.ntt_seconds(degree, limbs)

    def trace_seconds(self, ops) -> float:
        """Serial execution time of a whole op stream."""
        return sum(self.operation_seconds(op) for op in ops)
