"""Exception hierarchy for the Poseidon reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParameterError(ReproError, ValueError):
    """An invalid or inconsistent parameter set was supplied."""


class PrimeGenerationError(ReproError, RuntimeError):
    """No NTT-friendly prime could be found in the requested range."""


class RNSError(ReproError, ValueError):
    """An RNS invariant was violated (mismatched bases, bad limb count)."""


class NTTError(ReproError, ValueError):
    """An NTT precondition failed (non power-of-two length, bad root)."""


class AutomorphismError(ReproError, ValueError):
    """An automorphism/Galois-element precondition failed."""


class KernelError(ReproError, ValueError):
    """A kernel-backend precondition failed (unknown backend, bad shape)."""


class EncryptionError(ReproError, RuntimeError):
    """Encryption, decryption or key generation failed."""


class EvaluationError(ReproError, RuntimeError):
    """A homomorphic evaluation step could not proceed.

    Typical causes: exhausted modulus chain, mismatched ciphertext
    levels, or a missing rotation key.
    """


class BootstrapError(EvaluationError):
    """Bootstrapping could not proceed or failed to refresh a ciphertext."""


class SimulationError(ReproError, RuntimeError):
    """The cycle-level accelerator simulation hit an inconsistent state."""


class SchedulingError(SimulationError):
    """The task scheduler could not place a task (deadlock, bad graph)."""


class WorkloadError(ReproError, ValueError):
    """A workload description is invalid or unsupported."""
