"""Whole-program assembly: op streams -> one operator task list.

Operations are sequenced with barrier semantics between dependent ops
(each op's entry tasks depend on the previous op's exit tasks), which
matches how Poseidon's controller drains one basic operation's pipeline
before reconfiguring the shared cores for the next.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.decompose import decompose_operation
from repro.compiler.ops import FheOp
from repro.compiler.trace import TraceRecorder
from repro.sim.tasks import OperatorTask


@dataclass(frozen=True)
class OperatorProgram:
    """A compiled task program plus per-op segmentation.

    Attributes:
        tasks: all operator tasks, topologically ordered.
        op_boundaries: (start, end) task-index span per source op.
        source_ops: the originating FHE operations.
    """

    tasks: tuple[OperatorTask, ...]
    op_boundaries: tuple[tuple[int, int], ...]
    source_ops: tuple[FheOp, ...]

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def tasks_for_op(self, index: int) -> tuple[OperatorTask, ...]:
        """The task slice lowered from source op ``index``."""
        start, end = self.op_boundaries[index]
        return self.tasks[start:end]

    def __repr__(self) -> str:
        return (
            f"OperatorProgram({len(self.source_ops)} ops, "
            f"{len(self.tasks)} tasks)"
        )


def compile_trace(trace, *, op_parallel: bool = False) -> OperatorProgram:
    """Compile an op stream (TraceRecorder or FheOp iterable).

    Sequencing: by default the first tasks of op ``i+1`` gain a
    dependency on the final task of op ``i`` (pipeline-drain barrier) —
    the conservative model for a single dependent ciphertext chain.

    ``op_parallel=True`` drops the inter-op barriers: each operation's
    internal DAG is preserved but operations schedule concurrently,
    constrained only by core-array and HBM availability. This models
    *independent* ciphertext streams (batch serving) and is how the
    operator-reuse benefit of time-multiplexing shows up as throughput.
    """
    ops = list(trace.ops if isinstance(trace, TraceRecorder) else trace)
    all_tasks: list[OperatorTask] = []
    boundaries: list[tuple[int, int]] = []
    for op in ops:
        lowered = decompose_operation(op)
        offset = len(all_tasks)
        barrier = () if op_parallel else ((offset - 1,) if offset else ())
        for task in lowered:
            shifted = task.shifted(offset)
            if not shifted.depends_on and barrier:
                shifted = OperatorTask(
                    kind=shifted.kind,
                    elements=shifted.elements,
                    degree=shifted.degree,
                    limbs=shifted.limbs,
                    hbm_read_bytes=shifted.hbm_read_bytes,
                    hbm_write_bytes=shifted.hbm_write_bytes,
                    spad_bytes=shifted.spad_bytes,
                    depends_on=barrier,
                    op_label=shifted.op_label,
                )
            all_tasks.append(shifted)
        boundaries.append((offset, len(all_tasks)))
    return OperatorProgram(
        tasks=tuple(all_tasks),
        op_boundaries=tuple(boundaries),
        source_ops=tuple(ops),
    )
