"""Whole-program assembly: op streams -> one operator task list.

Operations are sequenced with barrier semantics between dependent ops
(each op's entry tasks depend on the previous op's exit tasks), which
matches how Poseidon's controller drains one basic operation's pipeline
before reconfiguring the shared cores for the next. An optional
compiler pass pipeline (:mod:`repro.compiler.passes`) rewrites the
draft between lowering and assembly — relaxing barriers into true
dataflow edges, hoisting ModUp reuse, fusing elementwise handoffs —
before the task list is frozen.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ops import FheOp
from repro.compiler.trace import TraceRecorder
from repro.sim.tasks import OperatorTask


@dataclass(frozen=True)
class OperatorProgram:
    """A compiled task program plus per-op segmentation.

    Attributes:
        tasks: all operator tasks, topologically ordered.
        op_boundaries: (start, end) task-index span per source op.
        source_ops: the originating FHE operations.
    """

    tasks: tuple[OperatorTask, ...]
    op_boundaries: tuple[tuple[int, int], ...]
    source_ops: tuple[FheOp, ...]

    @property
    def task_count(self) -> int:
        return len(self.tasks)

    def tasks_for_op(self, index: int) -> tuple[OperatorTask, ...]:
        """The task slice lowered from source op ``index``."""
        start, end = self.op_boundaries[index]
        return self.tasks[start:end]

    def __repr__(self) -> str:
        return (
            f"OperatorProgram({len(self.source_ops)} ops, "
            f"{len(self.tasks)} tasks)"
        )


def compile_trace(
    trace, *, op_parallel: bool = False, passes=None
) -> OperatorProgram:
    """Compile an op stream (TraceRecorder or FheOp iterable).

    Sequencing: by default the first tasks of op ``i+1`` gain a
    dependency on the final task of op ``i`` (pipeline-drain barrier) —
    the conservative model for a single dependent ciphertext chain.

    ``op_parallel=True`` drops the inter-op barriers: each operation's
    internal DAG is preserved but operations schedule concurrently,
    constrained only by core-array and HBM availability. This models
    *independent* ciphertext streams (batch serving) and is how the
    operator-reuse benefit of time-multiplexing shows up as throughput.

    ``passes`` selects the compiler pass pipeline applied between
    lowering and assembly — anything
    :func:`repro.compiler.passes.resolve_passes` accepts (``None`` or
    ``"none"`` for the legacy byte-identical assembly, ``"default"``
    for the full pipeline, or an explicit pass list).
    """
    from repro.compiler.passes import (
        ProgramDraft,
        apply_pipeline,
        resolve_passes,
    )

    ops = list(trace.ops if isinstance(trace, TraceRecorder) else trace)
    draft = ProgramDraft.from_ops(ops, op_parallel=op_parallel)
    pipeline = resolve_passes(passes)
    if pipeline:
        apply_pipeline(draft, pipeline)
    tasks, boundaries = draft.assemble()
    return OperatorProgram(
        tasks=tasks,
        op_boundaries=boundaries,
        source_ops=tuple(draft.ops),
    )
