"""Compiler: FHE operations -> operator task graphs.

Poseidon has no instruction set for whole FHE operations; its scheduler
decomposes each basic operation into MA/MM/NTT/Automorphism/SBT tasks
(paper Table I) and time-multiplexes the core arrays. This subpackage
is that decomposition in software:

- :mod:`repro.compiler.ops` — the FHE-operation IR.
- :mod:`repro.compiler.decompose` — lowering each op to tasks.
- :mod:`repro.compiler.trace` — capturing op streams from a live
  :class:`~repro.ckks.evaluator.CkksEvaluator` run.
- :mod:`repro.compiler.program` — whole-program task assembly.
- :mod:`repro.compiler.passes` — the optimization pass pipeline run
  between lowering and assembly (see docs/COMPILER.md).
"""

from repro.compiler.decompose import (
    clear_lowering_cache,
    decompose_operation,
    lowering_cache_info,
)
from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    ProgramDraft,
    apply_pipeline,
    build_pipeline,
    resolve_passes,
)
from repro.compiler.program import OperatorProgram, compile_trace
from repro.compiler.trace import TraceRecorder

__all__ = [
    "DEFAULT_PIPELINE",
    "FheOp",
    "FheOpName",
    "OperatorProgram",
    "PASS_REGISTRY",
    "ProgramDraft",
    "TraceRecorder",
    "apply_pipeline",
    "build_pipeline",
    "clear_lowering_cache",
    "compile_trace",
    "decompose_operation",
    "lowering_cache_info",
    "resolve_passes",
]
