"""Compiler: FHE operations -> operator task graphs.

Poseidon has no instruction set for whole FHE operations; its scheduler
decomposes each basic operation into MA/MM/NTT/Automorphism/SBT tasks
(paper Table I) and time-multiplexes the core arrays. This subpackage
is that decomposition in software:

- :mod:`repro.compiler.ops` — the FHE-operation IR.
- :mod:`repro.compiler.decompose` — lowering each op to tasks.
- :mod:`repro.compiler.trace` — capturing op streams from a live
  :class:`~repro.ckks.evaluator.CkksEvaluator` run.
- :mod:`repro.compiler.program` — whole-program task assembly.
"""

from repro.compiler.decompose import decompose_operation
from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import OperatorProgram, compile_trace
from repro.compiler.trace import TraceRecorder

__all__ = [
    "FheOp",
    "FheOpName",
    "OperatorProgram",
    "TraceRecorder",
    "compile_trace",
    "decompose_operation",
]
