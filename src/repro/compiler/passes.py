"""Compiler pass pipeline over the lowered task graph.

``compile_trace`` lowers each FHE basic operation independently and, by
default, sequences operations behind pipeline-drain barriers. That is
the conservative model — Poseidon's dataflow planning does better by
exploiting cross-op structure. This module is that layer: a
:class:`ProgramDraft` sits between ``decompose_operation`` and
:class:`~repro.compiler.program.OperatorProgram` assembly, and a
configurable pipeline of named passes rewrites it.

Shipped passes (default order):

- ``hoist-rotations`` — rewrite runs of consecutive rotations of the
  same ciphertext into hoisted-rotation graphs that share the first
  rotation's digit decomposition (ModUp reuse).
- ``relax-barriers`` — replace the inter-op drain barrier with true
  producer->consumer edges derived from declared ciphertext ``reads``/
  ``writes`` annotations, so independent chains overlap under the OOO
  engine. Unannotated ops remain full barriers.
- ``fuse-elementwise`` — hand adjacent elementwise MA/MM results over
  in the scratchpad: the producer's HBM write and the consumer's
  re-read of it are elided when the value has exactly one consumer.
- ``dce`` — drop tasks whose results are never consumed on-chip and
  never written back to HBM.

Passes report per-pass task/byte deltas through the active
:mod:`repro.obs` metrics registry under ``compiler.pass.<name>.*``.

The shape follows the classic pass-list idiom: ``build_pipeline(...)``
composes a named pass tuple, ``apply_pipeline`` folds it over a draft,
and callers select pipelines by spec string (``"none"``, ``"default"``,
or a comma-separated pass list).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.compiler.decompose import decompose_operation
from repro.compiler.ops import FheOp, FheOpName
from repro.errors import WorkloadError
from repro.obs import metrics
from repro.sim.tasks import OperatorKind, OperatorTask

#: Meta keys carrying dataflow annotations (ciphertext value tokens).
#: They drive ``relax-barriers``/``hoist-rotations`` and are ignored by
#: every lowering, so annotated and bare ops lower identically.
ANNOTATION_KEYS = ("reads", "writes")


# ----------------------------------------------------------------------
# The inter-stage IR
# ----------------------------------------------------------------------
@dataclass
class ProgramDraft:
    """Mutable whole-program IR the passes rewrite.

    Attributes:
        ops: the (possibly rewritten) source operations.
        task_lists: per-op task lists; ``depends_on`` indices are local
            to each list.
        op_deps: per-op sets of producer op indices. At assembly, each
            op's entry tasks (no local deps) gain a dependency on the
            sink task of every producer. The default is the serial
            chain ``{i-1}`` (the drain-barrier model); ``op_parallel``
            traces start with no edges at all.
        pinned_deps: op edges that must survive every pass (e.g. a
            hoisted rotation's edge to the rotation whose digit
            decomposition it reuses). ``relax-barriers`` rebuilds
            ``op_deps`` from annotations but always unions these back.
        op_parallel: the trace was compiled for independent streams.
    """

    ops: list[FheOp]
    task_lists: list[list[OperatorTask]]
    op_deps: list[set[int]]
    pinned_deps: list[set[int]] = field(default_factory=list)
    op_parallel: bool = False

    def __post_init__(self):
        if not self.pinned_deps:
            self.pinned_deps = [set() for _ in self.ops]

    @classmethod
    def from_ops(
        cls, ops: list[FheOp], *, op_parallel: bool = False
    ) -> "ProgramDraft":
        """Lower every op and wire the default sequencing edges."""
        task_lists = [decompose_operation(op) for op in ops]
        if op_parallel:
            op_deps = [set() for _ in ops]
        else:
            op_deps = [({i - 1} if i else set()) for i in range(len(ops))]
        return cls(
            ops=list(ops),
            task_lists=task_lists,
            op_deps=op_deps,
            op_parallel=op_parallel,
        )

    def effective_deps(self, index: int) -> set[int]:
        """Op-level producers of op ``index`` (pass edges + pinned)."""
        return self.op_deps[index] | self.pinned_deps[index]

    def consumers(self) -> list[set[int]]:
        """Inverse of :meth:`effective_deps`: who reads each op."""
        out: list[set[int]] = [set() for _ in self.ops]
        for i in range(len(self.ops)):
            for p in self.effective_deps(i):
                out[p].add(i)
        return out

    def assemble(
        self,
    ) -> tuple[tuple[OperatorTask, ...], tuple[tuple[int, int], ...]]:
        """Flatten to one topologically ordered task list + boundaries.

        Entry tasks of op ``i`` depend on the sink (last) task of every
        producer in ``effective_deps(i)``; sink-transitivity makes that
        sufficient for whole-op ordering. With the default serial
        chain this reproduces the legacy drain-barrier assembly
        byte for byte.
        """
        all_tasks: list[OperatorTask] = []
        boundaries: list[tuple[int, int]] = []
        sink: list[int] = []
        for i, tasks in enumerate(self.task_lists):
            offset = len(all_tasks)
            barrier = tuple(
                sorted(sink[p] for p in self.effective_deps(i) if p < i)
            )
            for task in tasks:
                shifted = task.shifted(offset)
                if not shifted.depends_on and barrier:
                    shifted = replace(shifted, depends_on=barrier)
                all_tasks.append(shifted)
            boundaries.append((offset, len(all_tasks)))
            sink.append(len(all_tasks) - 1)
        return tuple(all_tasks), tuple(boundaries)


def _tokens(op: FheOp, key: str) -> tuple[str, ...] | None:
    """Normalized annotation tokens, or None when undeclared."""
    value = op.get_meta(key)
    if value is None:
        return None
    if isinstance(value, str):
        return (value,)
    return tuple(value)


# ----------------------------------------------------------------------
# Pass: hoist-rotations
# ----------------------------------------------------------------------
def hoist_rotations_pass(draft: ProgramDraft) -> dict[str, int]:
    """Rewrite repeated rotations of one ciphertext to hoisted graphs.

    A run of >= 2 consecutive ``Rotation`` ops at the same shape whose
    declared ``reads`` are identical (and disjoint from their
    ``writes``) all rotate the same ciphertext value: rotations 2..k
    can reuse the first one's digit decomposition + extended-basis
    NTTs. They are re-lowered as ``HoistedRotation`` and pinned behind
    the first (cold) rotation, which is what makes the reuse legal
    even after ``relax-barriers`` rebuilds the op edges.
    """
    stats = {"rotations_hoisted": 0, "tasks_removed": 0,
             "elements_removed": 0}
    ops = draft.ops
    i = 0
    while i < len(ops):
        run = [i]
        if ops[i].name is FheOpName.ROTATION:
            src = _tokens(ops[i], "reads")
            dst = _tokens(ops[i], "writes")
            if src and dst and not set(src) & set(dst):
                j = i + 1
                while j < len(ops):
                    cand = ops[j]
                    if cand.name is not FheOpName.ROTATION:
                        break
                    if (cand.degree, cand.level, cand.aux_limbs) != (
                        ops[i].degree, ops[i].level, ops[i].aux_limbs
                    ):
                        break
                    c_src = _tokens(cand, "reads")
                    c_dst = _tokens(cand, "writes")
                    if c_src != src or not c_dst or set(c_src) & set(c_dst):
                        break
                    run.append(j)
                    j += 1
        if len(run) >= 2:
            for k in run[1:]:
                old = draft.task_lists[k]
                hoisted = FheOp(
                    name=FheOpName.HOISTED_ROTATION,
                    degree=ops[k].degree,
                    level=ops[k].level,
                    aux_limbs=ops[k].aux_limbs,
                    meta=ops[k].meta,
                )
                new = decompose_operation(hoisted)
                draft.ops[k] = hoisted
                draft.task_lists[k] = new
                draft.pinned_deps[k].add(run[0])
                draft.op_deps[k].add(run[0])
                stats["rotations_hoisted"] += 1
                stats["tasks_removed"] += len(old) - len(new)
                stats["elements_removed"] += (
                    sum(t.elements for t in old)
                    - sum(t.elements for t in new)
                )
        i = run[-1] + 1
    return stats


# ----------------------------------------------------------------------
# Pass: relax-barriers
# ----------------------------------------------------------------------
def relax_barriers_pass(draft: ProgramDraft) -> dict[str, int]:
    """Replace drain barriers with true dataflow edges.

    Ops declaring ciphertext ``reads``/``writes`` tokens get exact
    RAW/WAW/WAR edges; an op declaring neither is a full barrier (it
    may touch anything), which keeps fully-unannotated traces on the
    legacy serial chain. ``op_parallel`` traces have no barriers to
    relax and are left untouched.
    """
    stats = {"ops_relaxed": 0, "barrier_edges_removed": 0}
    if draft.op_parallel:
        return stats
    last_writer: dict[str, int] = {}
    readers: dict[str, set[int]] = {}
    undominated: set[int] = set()
    last_barrier = -1
    new_deps: list[set[int]] = []
    for i, op in enumerate(draft.ops):
        reads = _tokens(op, "reads")
        writes = _tokens(op, "writes")
        deps: set[int] = set()
        if reads is None and writes is None:
            # Barrier op: waits for every unconsumed predecessor and
            # resets the token tables (it may have written anything).
            deps = set(undominated)
            if not deps and last_barrier >= 0:
                deps = {last_barrier}
            last_writer.clear()
            readers.clear()
            last_barrier = i
        else:
            for t in reads or ():
                w = last_writer.get(t)
                if w is not None:
                    deps.add(w)
                elif last_barrier >= 0:
                    deps.add(last_barrier)
            for t in writes or ():
                w = last_writer.get(t)
                if w is not None:
                    deps.add(w)
                elif last_barrier >= 0:
                    deps.add(last_barrier)
                deps.update(r for r in readers.get(t, ()) if r != i)
            for t in writes or ():
                last_writer[t] = i
                readers[t] = set()
            for t in reads or ():
                readers.setdefault(t, set()).add(i)
        deps |= draft.pinned_deps[i]
        deps.discard(i)
        undominated -= deps
        undominated.add(i)
        new_deps.append(deps)
        if deps != ({i - 1} if i else set()):
            stats["ops_relaxed"] += 1
        if i and (i - 1) not in deps:
            stats["barrier_edges_removed"] += 1
    draft.op_deps = new_deps
    return stats


# ----------------------------------------------------------------------
# Pass: fuse-elementwise
# ----------------------------------------------------------------------
_ELEMENTWISE = (OperatorKind.MA, OperatorKind.MM)


def fuse_elementwise_pass(draft: ProgramDraft) -> dict[str, int]:
    """Keep single-consumer elementwise results scratchpad-resident.

    When op ``p``'s sink task is an elementwise MA/MM that writes its
    result to HBM and exactly one op ``r`` consumes it through an
    elementwise entry task of the same operand shape, the value can be
    handed over in the scratchpad instead: the producer's HBM write is
    dropped and the consumer's read shrinks by the handed-over bytes.
    The last op of the program is never fused (its write is the
    program output), and multi-consumer values keep their HBM copy.
    """
    stats = {"tasks_fused": 0, "hbm_bytes_elided": 0}
    consumers = draft.consumers()
    last = len(draft.ops) - 1
    for p, users in enumerate(consumers):
        if p == last or len(users) != 1:
            continue
        (r,) = users
        producer_tasks = draft.task_lists[p]
        sink = producer_tasks[-1]
        if sink.kind not in _ELEMENTWISE or sink.hbm_write_bytes <= 0:
            continue
        reader_tasks = draft.task_lists[r]
        entry_idx = None
        for idx, task in enumerate(reader_tasks):
            if (
                not task.depends_on
                and task.kind in _ELEMENTWISE
                and task.hbm_read_bytes > 0
                and task.degree == sink.degree
                and task.limbs == sink.limbs
            ):
                entry_idx = idx
                break
        if entry_idx is None:
            continue
        entry = reader_tasks[entry_idx]
        write = sink.hbm_write_bytes
        elided = write + min(write, entry.hbm_read_bytes)
        producer_tasks[-1] = replace(sink, hbm_write_bytes=0)
        reader_tasks[entry_idx] = replace(
            entry,
            hbm_read_bytes=max(0, entry.hbm_read_bytes - write),
        )
        stats["tasks_fused"] += 1
        stats["hbm_bytes_elided"] += elided
    return stats


# ----------------------------------------------------------------------
# Pass: dce
# ----------------------------------------------------------------------
def dead_task_elimination_pass(draft: ProgramDraft) -> dict[str, int]:
    """Drop tasks whose results nothing consumes.

    A task is dead when no other task in its op depends on it, it is
    not the op's sink (the op result the inter-op edges anchor on),
    and it writes nothing back to HBM. Runs to a fixpoint per op; dep
    indices are remapped after each sweep. The stock lowerings emit no
    dead tasks — this pass is the safety net that keeps future
    rewrites (and hand-built drafts) honest.
    """
    stats = {"tasks_removed": 0, "elements_removed": 0}
    for oi, tasks in enumerate(draft.task_lists):
        while True:
            n = len(tasks)
            dependents = [0] * n
            for task in tasks:
                for d in task.depends_on:
                    dependents[d] += 1
            dead = {
                i
                for i in range(n - 1)
                if not dependents[i] and tasks[i].hbm_write_bytes == 0
            }
            if not dead:
                break
            remap: dict[int, int] = {}
            kept: list[OperatorTask] = []
            for i, task in enumerate(tasks):
                if i in dead:
                    stats["tasks_removed"] += 1
                    stats["elements_removed"] += task.elements
                    continue
                remap[i] = len(kept)
                kept.append(task)
            tasks = [
                replace(
                    t,
                    depends_on=tuple(remap[d] for d in t.depends_on),
                )
                if t.depends_on
                else t
                for t in kept
            ]
        draft.task_lists[oi] = tasks
    return stats


# ----------------------------------------------------------------------
# Pipeline composition
# ----------------------------------------------------------------------
#: Registry in canonical application order.
PASS_REGISTRY = {
    "hoist-rotations": hoist_rotations_pass,
    "relax-barriers": relax_barriers_pass,
    "fuse-elementwise": fuse_elementwise_pass,
    "dce": dead_task_elimination_pass,
}


def build_pipeline(
    *,
    hoist_rotations: bool = True,
    relax_barriers: bool = True,
    fuse_elementwise: bool = True,
    dce: bool = True,
) -> tuple[str, ...]:
    """Compose a pass-name pipeline in canonical order."""
    selected = {
        "hoist-rotations": hoist_rotations,
        "relax-barriers": relax_barriers,
        "fuse-elementwise": fuse_elementwise,
        "dce": dce,
    }
    return tuple(name for name in PASS_REGISTRY if selected[name])


#: The full pipeline, in order.
DEFAULT_PIPELINE = build_pipeline()


def resolve_passes(spec) -> tuple[str, ...]:
    """Resolve a pass spec to an ordered pass-name tuple.

    Accepts ``None``/``"none"`` (no passes), ``"default"``/``"all"``/
    ``"full"`` (the whole pipeline), a comma-separated name string, or
    an iterable of names. Unknown names raise
    :class:`~repro.errors.WorkloadError`.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        key = spec.strip().lower()
        if key in ("", "none", "off"):
            return ()
        if key in ("default", "all", "full"):
            return DEFAULT_PIPELINE
        names = [p for p in (part.strip() for part in key.split(",")) if p]
    else:
        names = [str(p).strip() for p in spec]
        if names == ["none"]:
            return ()
    for name in names:
        if name not in PASS_REGISTRY:
            raise WorkloadError(
                f"unknown compiler pass {name!r}; known passes: "
                f"{', '.join(PASS_REGISTRY)} (or 'none'/'default')"
            )
    return tuple(names)


def apply_pipeline(
    draft: ProgramDraft, passes: tuple[str, ...]
) -> ProgramDraft:
    """Run each pass over the draft, reporting per-pass deltas."""
    reg = metrics.active()
    for name in passes:
        stats = PASS_REGISTRY[name](draft)
        if reg is not None:
            reg.counter(f"compiler.passes.{name}.runs").inc()
            for key, value in stats.items():
                if value:
                    reg.counter(f"compiler.passes.{name}.{key}").inc(value)
    return draft
