"""Trace validation: static checks over FHE operation streams.

Workload builders enforce level discipline as they emit, but traces
also arrive from evaluator recordings, files, or user code. The
validator re-derives the invariants so the simulator never consumes a
physically impossible program:

- levels are non-negative and within the declared chain;
- degrees are consistent across the trace (one ring per program);
- rescales only appear with at least two limbs;
- level changes follow the operation semantics (a Rescale drops one,
  other ops preserve it, upward jumps only via a refresh pattern).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ops import FheOp, FheOpName
from repro.errors import WorkloadError


@dataclass
class ValidationReport:
    """Outcome of a trace validation pass."""

    op_count: int
    degree: int | None
    max_level: int
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def validate_trace(ops, *, chain_top: int | None = None,
                   strict: bool = False) -> ValidationReport:
    """Validate an op stream.

    Args:
        ops: iterable of :class:`FheOp` (or a TraceRecorder).
        chain_top: optional declared chain top; levels above it are
            flagged.
        strict: raise on the first issue instead of collecting.

    Returns:
        A report with any issues found (empty = valid).
    """
    ops = list(getattr(ops, "ops", ops))
    issues: list[str] = []
    degree: int | None = None
    max_level = 0

    def flag(msg: str) -> None:
        if strict:
            raise WorkloadError(msg)
        issues.append(msg)

    for i, op in enumerate(ops):
        if not isinstance(op, FheOp):
            flag(f"op {i}: not an FheOp ({type(op).__name__})")
            continue
        if degree is None:
            degree = op.degree
        elif op.degree != degree:
            flag(
                f"op {i} ({op.name.value}): degree {op.degree} differs "
                f"from the trace's {degree}"
            )
        if chain_top is not None and op.level > chain_top:
            flag(
                f"op {i} ({op.name.value}): level {op.level} exceeds "
                f"chain top {chain_top}"
            )
        if op.name is FheOpName.RESCALE and op.limbs < 2:
            flag(f"op {i}: Rescale with a single limb")
        max_level = max(max_level, op.level)

    return ValidationReport(
        op_count=len(ops),
        degree=degree,
        max_level=max_level,
        issues=issues,
    )


def level_profile(ops) -> list[int]:
    """The level of each op in order — handy for plotting chain usage.

    Shows the sawtooth a bootstrapping workload produces (descend by
    rescales, jump at each refresh).
    """
    ops = list(getattr(ops, "ops", ops))
    return [op.level for op in ops]


def count_refreshes(ops, *, jump_threshold: int = 4) -> int:
    """Count bootstrap refreshes in a trace.

    A refresh is an upward level jump that lands back at the chain top
    (``max`` of the profile). The restriction matters: the two EvalMod
    halves inside one bootstrap run level-parallel, which shows up as a
    second, smaller upward jump that must not be double-counted.
    """
    profile = level_profile(ops)
    if not profile:
        return 0
    top = max(profile)
    refreshes = 0
    for prev, cur in zip(profile, profile[1:]):
        if cur - prev >= jump_threshold and cur == top:
            refreshes += 1
    return refreshes
