"""The FHE-operation intermediate representation.

One :class:`FheOp` is one basic operation at the granularity the paper
reports (HAdd, PMult, CMult, Rescale, Keyswitch, Rotation, plus the
Automorphism index-map and bookkeeping ModDrop). Workload generators
emit streams of these; the decomposer lowers them to operator tasks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FheOpName(enum.Enum):
    """Basic operations of the CKKS-alike scheme (paper §II-A)."""

    HADD = "HAdd"
    PMULT = "PMult"
    CMULT = "CMult"
    RESCALE = "Rescale"
    KEYSWITCH = "Keyswitch"
    ROTATION = "Rotation"
    HOISTED_ROTATION = "HoistedRotation"
    AUTOMORPHISM = "Automorphism"
    MODDROP = "ModDrop"
    BOOTSTRAP = "Bootstrapping"

    @classmethod
    def from_label(cls, label: str) -> "FheOpName":
        for member in cls:
            if member.value == label:
                return member
        raise KeyError(f"unknown FHE operation label {label!r}")


@dataclass(frozen=True)
class FheOp:
    """One basic FHE operation instance.

    Attributes:
        name: which basic operation.
        degree: ring degree N of the operands.
        level: ciphertext level (level+1 chain limbs active).
        aux_limbs: auxiliary limbs involved in keyswitching.
        meta: free-form annotations (rotation step, ct/pt kind, ...).
    """

    name: FheOpName
    degree: int
    level: int
    aux_limbs: int = 1
    meta: tuple[tuple[str, object], ...] = ()

    def __post_init__(self):
        if self.degree < 2:
            raise ValueError(f"degree must be >= 2, got {self.degree}")
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        if self.aux_limbs < 0:
            raise ValueError(f"aux_limbs must be >= 0, got {self.aux_limbs}")

    @property
    def limbs(self) -> int:
        """Active chain limbs (level + 1)."""
        return self.level + 1

    @property
    def extended_limbs(self) -> int:
        """Chain + auxiliary limbs (the keyswitch working basis)."""
        return self.limbs + self.aux_limbs

    def get_meta(self, key: str, default=None):
        """Look up an annotation by key."""
        for k, v in self.meta:
            if k == key:
                return v
        return default

    @classmethod
    def make(cls, name: FheOpName, degree: int, level: int,
             aux_limbs: int = 1, **meta) -> "FheOp":
        """Convenience constructor accepting keyword metadata."""
        return cls(
            name=name,
            degree=degree,
            level=level,
            aux_limbs=aux_limbs,
            meta=tuple(sorted(meta.items())),
        )
