"""Trace capture: recording FHE-operation streams.

A :class:`TraceRecorder` plugs into :class:`~repro.ckks.evaluator.
CkksEvaluator` (the ``recorder`` argument) and converts every evaluator
call into an :class:`~repro.compiler.ops.FheOp`. Workload generators
can also append ops directly for full-scale parameter sets that would
be too slow to execute functionally.
"""

from __future__ import annotations

from collections import Counter

from repro.compiler.ops import FheOp, FheOpName
from repro.errors import WorkloadError


class TraceRecorder:
    """Accumulates a stream of FHE basic operations.

    Args:
        default_aux_limbs: auxiliary limb count assumed for keyswitch
            operations when the evaluator does not say otherwise.
    """

    def __init__(self, *, default_aux_limbs: int = 1):
        self.ops: list[FheOp] = []
        self.default_aux_limbs = default_aux_limbs

    # ------------------------------------------------------------------
    # Evaluator hook
    # ------------------------------------------------------------------
    def record(self, op: str, **meta) -> None:
        """Record one operation (called by the evaluator).

        Expects ``degree`` and ``level`` in the metadata; extra keys
        are preserved as annotations.
        """
        degree = meta.pop("degree", None)
        level = meta.pop("level", None)
        if degree is None or level is None:
            raise WorkloadError(
                f"trace record for {op!r} missing degree/level metadata"
            )
        name = FheOpName.from_label(op)
        self.ops.append(
            FheOp.make(
                name,
                int(degree),
                int(level),
                aux_limbs=self.default_aux_limbs,
                **meta,
            )
        )

    # ------------------------------------------------------------------
    # Direct construction (synthetic workloads)
    # ------------------------------------------------------------------
    def emit(
        self,
        name: FheOpName,
        degree: int,
        level: int,
        *,
        aux_limbs: int | None = None,
        count: int = 1,
        **meta,
    ) -> None:
        """Append ``count`` identical operations."""
        aux = self.default_aux_limbs if aux_limbs is None else aux_limbs
        op = FheOp.make(name, degree, level, aux_limbs=aux, **meta)
        self.ops.extend([op] * count)

    def extend(self, ops) -> None:
        """Append a sequence of prebuilt ops."""
        self.ops.extend(ops)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def op_histogram(self) -> Counter:
        """Count of operations by name (Fig. 8-style mixes)."""
        return Counter(op.name.value for op in self.ops)

    def clear(self) -> None:
        """Drop all recorded operations."""
        self.ops.clear()

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self) -> str:
        hist = dict(self.op_histogram())
        return f"TraceRecorder({len(self.ops)} ops: {hist})"
