"""Lowering FHE basic operations to operator task DAGs (paper Table I).

Each ``_lower_*`` function mirrors the structure of the corresponding
functional implementation in :mod:`repro.ckks` — same NTT counts, same
digit loops, same ModDown cascades — so the cycle model charges exactly
the work the algorithm performs. Ciphertext polynomials are assumed
NTT-resident between operations (the hardware keeps point-value form in
HBM, as ASIC accelerators do), so e.g. HAdd is pure MA and PMult is
pure MM, matching the paper's Fig. 7 operator analysis.
"""

from __future__ import annotations

from repro.compiler.ops import FheOp, FheOpName
from repro.errors import WorkloadError
from repro.obs import metrics
from repro.sim.tasks import OperatorKind, OperatorTask
from repro.sim.config import LIMB_BYTES


def _poly_bytes(degree: int, limbs: int) -> int:
    """HBM footprint of one RNS polynomial."""
    return degree * limbs * LIMB_BYTES


def _task(
    kind: OperatorKind,
    op: FheOp,
    *,
    polys: int = 1,
    limbs: int | None = None,
    read_polys: float = 0,
    write_polys: float = 0,
    deps: tuple[int, ...] = (),
) -> OperatorTask:
    """Build a task covering ``polys`` polynomials of ``limbs`` limbs."""
    limbs = op.limbs if limbs is None else limbs
    elements = polys * limbs * op.degree
    unit = _poly_bytes(op.degree, limbs)
    return OperatorTask(
        kind=kind,
        elements=elements,
        degree=op.degree,
        limbs=limbs,
        hbm_read_bytes=int(read_polys * unit),
        hbm_write_bytes=int(write_polys * unit),
        spad_bytes=2 * elements * LIMB_BYTES,
        depends_on=deps,
        op_label=op.name.value,
    )


# ----------------------------------------------------------------------
# Basic-operation lowerings
# ----------------------------------------------------------------------
def _lower_hadd(op: FheOp) -> list[OperatorTask]:
    """HAdd: element-wise MA on both parts (ct-ct) or c0 only (ct-pt).

    Streams all operand polynomials from HBM and writes the sums back:
    computationally trivial, bandwidth heavy — which is why the paper's
    Table VII shows HAdd pinning the HBM near 98% utilization.

    ``kind='fused'`` marks scratchpad-resident accumulations (the
    diagonal-method inner sums the paper's dataflow planning keeps
    on-chip): no HBM traffic is charged.
    """
    kind = op.get_meta("kind", "ct-ct")
    if kind == "fused":
        return [_task(OperatorKind.MA, op, polys=2)]
    polys = 1 if kind == "ct-pt" else 2
    return [
        _task(
            OperatorKind.MA, op, polys=polys,
            read_polys=2 * polys, write_polys=polys,
        )
    ]


def _lower_pmult(op: FheOp) -> list[OperatorTask]:
    """PMult: element-wise MM of both parts with the plaintext.

    ``resident=True`` marks inputs already staged in the scratchpad
    (linear-transform inner loops): only the plaintext diagonal streams
    from HBM and the product stays on-chip for the fused accumulate.
    """
    if op.get_meta("resident", False):
        return [_task(OperatorKind.MM, op, polys=2, read_polys=1)]
    return [
        _task(
            OperatorKind.MM, op, polys=2,
            read_polys=3,  # two ct parts + one shared plaintext
            write_polys=2,
        )
    ]


def _lower_automorphism(op: FheOp) -> list[OperatorTask]:
    """Index mapping of both ciphertext parts (Rotation, step 1)."""
    return [
        _task(
            OperatorKind.AUTO, op, polys=2,
            read_polys=2, write_polys=2,
        )
    ]


def _lower_rescale(op: FheOp) -> list[OperatorTask]:
    """Rescale: per-limb subtract + scalar multiply + NTT back.

    RNS rescale operates on coefficient-domain data. In the pipeline it
    always follows a CMult/keyswitch whose ModDown already produced
    coefficient form, so the lowering charges the MA (subtract the last
    limb), the MM (multiply by q_l^-1) and the NTT that restores
    point-value residency — but no extra INTT.
    """
    if op.limbs < 2:
        raise WorkloadError("rescale needs at least two limbs")
    remaining = op.limbs - 1
    tasks = [
        _task(OperatorKind.MA, op, polys=2, limbs=remaining, read_polys=2),
        _task(OperatorKind.MM, op, polys=2, limbs=remaining, deps=(0,)),
        _task(
            OperatorKind.NTT, op, polys=2, limbs=remaining,
            write_polys=2 * remaining / op.limbs, deps=(1,),
        ),
    ]
    return tasks


def keyswitch_digits(op: FheOp) -> int:
    """Hybrid-keyswitch digit count: ``ceil(limbs / alpha)``.

    The digit size alpha equals the auxiliary-limb count (each digit's
    sub-basis product must stay below P for the noise argument), so
    more special primes mean fewer, larger digits — the paper-scale
    configurations run alpha = 3. With alpha = 1 this degrades to the
    per-limb gadget our functional plane implements.
    """
    alpha = max(1, op.aux_limbs)
    return -(-op.limbs // alpha)


def _lower_keyswitch(op: FheOp) -> list[OperatorTask]:
    """Keyswitch: digit decomposition + ModUp + key products + ModDown.

    Mirrors :func:`repro.ckks.keyswitch.apply_switch_key` generalized
    to hybrid digits:

    - INTT the input part (it arrives NTT-resident, digits are RNS
      residues in coefficient form);
    - per digit j: basis conversion into the extended basis (SBT
      reductions), NTT over the extended basis, two MM with the key
      pair, two MA accumulations — the key pairs stream in from HBM;
    - two INTT over the extended basis;
    - ModDown both accumulators: RNSconv (MM+MA cascade) from the aux
      basis plus the final subtract/scale, then NTT back.

    Every digit is lifted from the *same* coefficient-domain input, so
    the digit pipelines are mutually independent: only the running MA
    accumulation chains digit to digit. Emitting that true DAG (rather
    than serializing each digit behind the previous one's accumulate)
    is what lets digit j+1's SBT/NTT overlap digit j's MM/MA across
    the shared core arrays — the paper's Table I operator reuse.
    """
    base_limbs = op.limbs
    ext = op.extended_limbs
    aux = op.aux_limbs
    digits = keyswitch_digits(op)
    tasks: list[OperatorTask] = []
    # Input to coefficient domain.
    tasks.append(_task(OperatorKind.INTT, op, polys=1, read_polys=1))
    prev_acc: tuple[int, ...] = ()
    for _ in range(digits):
        base = len(tasks)
        # Digit lift: one Barrett reduction per extended-basis element.
        # Depends only on the shared input INTT — digits are parallel.
        tasks.append(
            _task(OperatorKind.SBT, op, polys=1, limbs=ext, deps=(0,))
        )
        tasks.append(
            _task(
                OperatorKind.NTT, op, polys=1, limbs=ext,
                deps=(base,),
            )
        )
        # Two key-pair products; the key rows stream from HBM.
        tasks.append(
            _task(
                OperatorKind.MM, op, polys=2, limbs=ext,
                read_polys=2 * ext / max(base_limbs, 1), deps=(base + 1,),
            )
        )
        # Accumulate into (delta_b, delta_a): the only digit-to-digit
        # dependency is this running sum.
        tasks.append(
            _task(
                OperatorKind.MA, op, polys=2, limbs=ext,
                deps=(base + 2,) + prev_acc,
            )
        )
        prev_acc = (base + 3,)
    # Back to coefficient domain for ModDown.
    base = len(tasks)
    tasks.append(
        _task(OperatorKind.INTT, op, polys=2, limbs=ext, deps=prev_acc)
    )
    # RNSconv aux->base: per aux limb, MM then MA cascade over base limbs.
    tasks.append(
        _task(
            OperatorKind.MM, op, polys=2, limbs=max(aux, 1), deps=(base,)
        )
    )
    tasks.append(
        _task(OperatorKind.MA, op, polys=2, limbs=base_limbs, deps=(base + 1,))
    )
    # Final scale by P^-1 and NTT back to residency.
    tasks.append(_task(OperatorKind.MM, op, polys=2, deps=(base + 2,)))
    tasks.append(
        _task(
            OperatorKind.NTT, op, polys=2, write_polys=2,
            deps=(base + 3,),
        )
    )
    return tasks


def _lower_cmult(op: FheOp) -> list[OperatorTask]:
    """CMult: tensor products + relinearization keyswitch + adds."""
    tasks: list[OperatorTask] = []
    # d0 = a0*b0 ; d1 = a0*b1 + a1*b0 ; d2 = a1*b1  (NTT-resident).
    tasks.append(
        _task(OperatorKind.MM, op, polys=4, read_polys=4)
    )
    tasks.append(_task(OperatorKind.MA, op, polys=1, deps=(0,)))
    offset = len(tasks)
    ks = _lower_keyswitch(op)
    tasks.extend(
        t.shifted(offset).relabel(op.name.value) for t in ks
    )
    last = len(tasks) - 1
    # Add (delta0, delta1) into (d0, d1) and write the result.
    tasks.append(
        _task(
            OperatorKind.MA, op, polys=2, write_polys=2,
            deps=(1, last),
        )
    )
    return tasks


def _lower_rotation(op: FheOp) -> list[OperatorTask]:
    """Rotation = Automorphism (both parts) + Keyswitch (paper §II-A.5).

    The automorphism runs on coefficient-domain data, so the parts are
    INTT'd first and the keyswitched result is NTT'd back inside the
    keyswitch lowering.
    """
    tasks: list[OperatorTask] = []
    tasks.append(_task(OperatorKind.INTT, op, polys=2, read_polys=2))
    tasks.append(
        _task(OperatorKind.AUTO, op, polys=2, deps=(0,))
    )
    offset = len(tasks)
    ks = _lower_keyswitch(op)
    tasks.extend(
        t.shifted(offset).relabel(op.name.value) for t in ks
    )
    last = len(tasks) - 1
    tasks.append(
        _task(
            OperatorKind.MA, op, polys=2, write_polys=2,
            deps=(1, last),
        )
    )
    return tasks


def _lower_hoisted_rotation(op: FheOp) -> list[OperatorTask]:
    """An extra rotation sharing a previous rotation's ModUp (hoisting).

    When several rotations apply to the same ciphertext (BSGS baby
    steps), the digit decomposition + extended-basis NTTs are computed
    once and reused; each additional rotation then costs only the
    automorphism on the extended NTT form, the key-pair products, the
    accumulations, and its own ModDown. This skips the per-digit NTTs
    that dominate a cold keyswitch — the standard trick HELR-style
    workloads (and the paper's benchmarks) rely on.
    """
    base_limbs = op.limbs
    ext = op.extended_limbs
    aux = op.aux_limbs
    digits = keyswitch_digits(op)
    tasks: list[OperatorTask] = []
    # Automorphism applied to the hoisted extended-basis digits.
    tasks.append(
        _task(OperatorKind.AUTO, op, polys=1, limbs=ext, read_polys=0)
    )
    prev = (0,)
    for _ in range(digits):
        base = len(tasks)
        tasks.append(
            _task(
                OperatorKind.MM, op, polys=2, limbs=ext,
                read_polys=2 * ext / max(base_limbs, 1), deps=prev,
            )
        )
        tasks.append(
            _task(OperatorKind.MA, op, polys=2, limbs=ext, deps=(base,))
        )
        prev = (base + 1,)
    base = len(tasks)
    tasks.append(_task(OperatorKind.INTT, op, polys=2, limbs=ext, deps=prev))
    tasks.append(
        _task(OperatorKind.MM, op, polys=2, limbs=max(aux, 1), deps=(base,))
    )
    tasks.append(_task(OperatorKind.MA, op, polys=2, limbs=base_limbs, deps=(base + 1,)))
    tasks.append(_task(OperatorKind.MM, op, polys=2, deps=(base + 2,)))
    tasks.append(
        _task(OperatorKind.NTT, op, polys=2, write_polys=2, deps=(base + 3,))
    )
    return tasks


def _lower_moddrop(op: FheOp) -> list[OperatorTask]:
    """ModDrop: drop limbs — pure data movement, modelled as a thin MA."""
    return [
        _task(OperatorKind.MA, op, polys=2, read_polys=2, write_polys=2)
    ]


_LOWERERS = {
    FheOpName.HADD: _lower_hadd,
    FheOpName.PMULT: _lower_pmult,
    FheOpName.CMULT: _lower_cmult,
    FheOpName.RESCALE: _lower_rescale,
    FheOpName.KEYSWITCH: _lower_keyswitch,
    FheOpName.ROTATION: _lower_rotation,
    FheOpName.HOISTED_ROTATION: _lower_hoisted_rotation,
    FheOpName.AUTOMORPHISM: _lower_automorphism,
    FheOpName.MODDROP: _lower_moddrop,
}


#: Meta keys that annotate dataflow for the pass pipeline; every
#: lowering ignores them, so they are stripped from cache keys and
#: annotated/bare variants of one op share a cache entry.
_ANNOTATION_KEYS = frozenset({"reads", "writes"})

#: Memoized lowerings: serve arrivals and repeated workload compiles
#: hit the same few (name, shape) combinations over and over.
_lowering_cache: dict[tuple, tuple[OperatorTask, ...]] = {}
_cache_hits = 0
_cache_misses = 0


def _cache_key(op: FheOp) -> tuple:
    meta = tuple(
        (k, v) for k, v in op.meta if k not in _ANNOTATION_KEYS
    )
    return (op.name, op.degree, op.limbs, op.aux_limbs, meta)


def lowering_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the lowering cache."""
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "size": len(_lowering_cache),
    }


def clear_lowering_cache() -> None:
    """Drop every memoized lowering and reset the counters."""
    global _cache_hits, _cache_misses
    _lowering_cache.clear()
    _cache_hits = 0
    _cache_misses = 0


def decompose_operation(op: FheOp, *, use_cache: bool = True) -> list[OperatorTask]:
    """Lower one FHE basic operation to its operator task list.

    Lowerings are memoized on ``(name, degree, limbs, aux_limbs,
    metadata)`` with dataflow annotations stripped — tasks are frozen,
    so cached entries are shared safely and each call returns a fresh
    list. ``use_cache=False`` bypasses the cache (used by its tests).

    Raises:
        WorkloadError: for operations without a direct lowering
            (Bootstrapping must be expressed as its constituent ops by
            the workload generator, as the paper's Table I implies).
    """
    global _cache_hits, _cache_misses
    lowerer = _LOWERERS.get(op.name)
    if lowerer is None:
        raise WorkloadError(
            f"no direct lowering for {op.name.value}; expand it into "
            "basic operations first"
        )
    if not use_cache:
        return lowerer(op)
    try:
        key = _cache_key(op)
        cached = _lowering_cache.get(key)
    except TypeError:  # unhashable annotation value: lower directly
        return lowerer(op)
    reg = metrics.active()
    if cached is None:
        _cache_misses += 1
        cached = tuple(lowerer(op))
        _lowering_cache[key] = cached
        if reg is not None:
            reg.counter("compiler.lowering_cache.misses").inc()
    else:
        _cache_hits += 1
        if reg is not None:
            reg.counter("compiler.lowering_cache.hits").inc()
    return list(cached)


def operator_usage(op: FheOp) -> dict[str, bool]:
    """Which operator core arrays an operation touches (Table I row).

    Reports the *task kinds* the lowering actually emits: SBT is
    checked only when a real SBT (digit-lift) task exists — the
    keyswitch-bearing ops — not merely because MM/NTT tasks share
    silicon with the SBT cores.
    """
    kinds = {t.kind for t in decompose_operation(op)}
    return {
        "MA": OperatorKind.MA in kinds,
        "MM": OperatorKind.MM in kinds,
        "NTT/INTT": bool(kinds & {OperatorKind.NTT, OperatorKind.INTT}),
        "Automorphism": OperatorKind.AUTO in kinds,
        "SBT": OperatorKind.SBT in kinds,
    }
