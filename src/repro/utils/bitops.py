"""Bit-manipulation helpers used by the NTT and automorphism kernels.

The Poseidon pipeline indexes polynomial coefficients by bit-reversed
order (radix-2 NTT) and by digit-reversed order (radix-2^k NTT-fusion),
so these helpers are on the hot path of table construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NTTError


def is_power_of_two(n: int) -> bool:
    """Return ``True`` if ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Return ``log2(n)`` for a power-of-two ``n``.

    Raises:
        NTTError: if ``n`` is not a positive power of two.
    """
    if not is_power_of_two(n):
        raise NTTError(f"expected a power of two, got {n}")
    return n.bit_length() - 1


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two that is >= ``n`` (n >= 1)."""
    if n < 1:
        raise ValueError(f"expected n >= 1, got {n}")
    return 1 << (n - 1).bit_length()


def bit_length(n: int) -> int:
    """Bit length of a non-negative integer (0 has bit length 0)."""
    if n < 0:
        raise ValueError(f"expected n >= 0, got {n}")
    return n.bit_length()


def bit_reverse(value: int, width: int) -> int:
    """Reverse the lowest ``width`` bits of ``value``.

    Example: ``bit_reverse(0b0011, 4) == 0b1100``.
    """
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Return the length-``n`` bit-reversal permutation as an index array.

    ``x[bit_reverse_permutation(n)]`` reorders ``x`` into bit-reversed
    order, the input ordering expected by a decimation-in-time NTT.
    """
    logn = ilog2(n)
    perm = np.zeros(n, dtype=np.int64)
    for i in range(1, n):
        perm[i] = (perm[i >> 1] >> 1) | ((i & 1) << (logn - 1))
    return perm


def digit_reverse(value: int, base_bits: int, num_digits: int) -> int:
    """Reverse base-``2^base_bits`` digits of ``value``.

    This generalizes :func:`bit_reverse` to the radix-2^k NTT-fusion
    ordering: the coefficient index is decomposed into ``num_digits``
    digits of ``base_bits`` bits each and the digit order is reversed.
    """
    mask = (1 << base_bits) - 1
    result = 0
    for _ in range(num_digits):
        result = (result << base_bits) | (value & mask)
        value >>= base_bits
    return result


def digit_reverse_permutation(n: int, base_bits: int) -> np.ndarray:
    """Digit-reversal permutation for a mixed/even radix-2^k transform.

    ``n`` must be a power of ``2**base_bits``.
    """
    logn = ilog2(n)
    if logn % base_bits != 0:
        raise NTTError(
            f"n=2^{logn} is not a power of the radix 2^{base_bits}"
        )
    num_digits = logn // base_bits
    perm = np.fromiter(
        (digit_reverse(i, base_bits, num_digits) for i in range(n)),
        dtype=np.int64,
        count=n,
    )
    return perm


def reverse_bits_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorized bit reversal of an int64 array over ``width`` bits."""
    values = np.asarray(values, dtype=np.int64)
    result = np.zeros_like(values)
    v = values.copy()
    for _ in range(width):
        result = (result << 1) | (v & 1)
        v >>= 1
    return result
