"""Shared low-level utilities: bit manipulation, prime generation, checks."""

from repro.utils.bitops import (
    bit_length,
    bit_reverse,
    bit_reverse_permutation,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)
from repro.utils.primes import (
    find_ntt_primes,
    find_primitive_root,
    is_prime,
    minimal_primitive_root,
    nth_root_of_unity,
)

__all__ = [
    "bit_length",
    "bit_reverse",
    "bit_reverse_permutation",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "find_ntt_primes",
    "find_primitive_root",
    "is_prime",
    "minimal_primitive_root",
    "nth_root_of_unity",
]
