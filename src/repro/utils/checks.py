"""Validation helpers shared across the library.

Keeping precondition checks in one place gives uniform error messages
and lets hot paths skip re-validation once inputs are normalized.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ParameterError, RNSError
from repro.utils.bitops import is_power_of_two


def check_power_of_two(name: str, value: int) -> int:
    """Validate that ``value`` is a positive power of two; return it."""
    if not isinstance(value, (int, np.integer)) or not is_power_of_two(int(value)):
        raise ParameterError(f"{name} must be a power of two, got {value!r}")
    return int(value)


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer; return it."""
    if not isinstance(value, (int, np.integer)) or value <= 0:
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_in_range(name: str, value: float, low: float, high: float) -> float:
    """Validate ``low <= value <= high``; return ``value``."""
    if not (low <= value <= high):
        raise ParameterError(
            f"{name} must be in [{low}, {high}], got {value!r}"
        )
    return value


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate that two sequences have equal length."""
    if len(a) != len(b):
        raise RNSError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) "
            "must have the same length"
        )


def as_uint64_coeffs(values, n: int, q: int) -> np.ndarray:
    """Normalize coefficients to a length-``n`` ``uint64`` array mod ``q``.

    Accepts lists or arrays of Python ints / numpy ints; reduces into
    ``[0, q)``.
    """
    arr = np.asarray(values, dtype=object)
    if arr.ndim != 1 or arr.shape[0] != n:
        raise RNSError(f"expected {n} coefficients, got shape {arr.shape}")
    reduced = np.array([int(v) % q for v in arr.tolist()], dtype=np.uint64)
    return reduced
