"""NTT-friendly prime generation and primitive roots.

RNS-CKKS needs a chain of primes ``q_i`` with ``q_i ≡ 1 (mod 2N)`` so
that Z_{q_i} contains a primitive 2N-th root of unity (negacyclic NTT).
Poseidon constrains limbs to 32 bits; we default to 30-bit primes so a
product of two residues fits comfortably in ``uint64``.
"""

from __future__ import annotations

from functools import lru_cache
from math import gcd

from repro.errors import PrimeGenerationError

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)

# Deterministic Miller-Rabin witnesses valid for all n < 3.3e24.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test (exact for n < 3.3e24)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _pollard_rho(n: int) -> int:
    """A non-trivial factor of composite odd ``n`` (Brent's variant).

    Deterministic: cycles through fixed polynomial offsets ``c`` until a
    factor splits off, so repeated runs factor identically. ``n`` must
    be composite, odd and free of the small trial-division primes.
    """
    for c in range(1, 64):
        y, m, g, r, q = 2, 128, 1, 1, 1
        x = ys = y
        while g == 1:
            x = y
            for _ in range(r):
                y = (y * y + c) % n
            k = 0
            while k < r and g == 1:
                ys = y
                for _ in range(min(m, r - k)):
                    y = (y * y + c) % n
                    q = q * abs(x - y) % n
                g = gcd(q, n)
                k += m
            r <<= 1
        if g == n:
            g = 1
            while g == 1:
                ys = (ys * ys + c) % n
                g = gcd(abs(x - ys), n)
        if g != n:
            return g
    raise PrimeGenerationError(f"pollard-rho failed to split {n}")


def _factorize(n: int) -> list[int]:
    """Return the distinct prime factors of ``n`` (trial division, then
    Pollard rho for large cofactors — fast even for 62-bit moduli)."""
    factors: list[int] = []
    for p in _SMALL_PRIMES:
        if n % p == 0:
            factors.append(p)
            while n % p == 0:
                n //= p
    # Trial division covers small cofactors cheaply; anything bigger is
    # split recursively with Pollard rho (needed once moduli pass ~40
    # bits, where a sqrt(n) scan stops terminating in bounded time).
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            if m not in factors:
                factors.append(m)
            continue
        if m < 1 << 20:
            d = 101
            while d * d <= m:
                if m % d == 0:
                    stack.append(d)
                    while m % d == 0:
                        m //= d
                    stack.append(m)
                    break
                d += 2
            else:
                if m > 1 and m not in factors:
                    factors.append(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return factors


@lru_cache(maxsize=4096)
def minimal_primitive_root(q: int) -> int:
    """Return the smallest primitive root modulo a prime ``q``.

    Raises:
        PrimeGenerationError: if ``q`` is not prime or no root is found.
    """
    if not is_prime(q):
        raise PrimeGenerationError(f"{q} is not prime")
    phi = q - 1
    factors = _factorize(phi)
    for g in range(2, q):
        if all(pow(g, phi // f, q) != 1 for f in factors):
            return g
    raise PrimeGenerationError(f"no primitive root found for {q}")


def find_primitive_root(q: int, order: int) -> int:
    """Return an element of multiplicative order exactly ``order`` mod ``q``.

    ``order`` must divide ``q - 1``.
    """
    if (q - 1) % order != 0:
        raise PrimeGenerationError(
            f"order {order} does not divide q-1 for q={q}"
        )
    g = minimal_primitive_root(q)
    root = pow(g, (q - 1) // order, q)
    # Sanity: root^order == 1 and root^(order/p) != 1 for prime p | order.
    if pow(root, order, q) != 1:
        raise PrimeGenerationError(f"bad root of order {order} mod {q}")
    for p in _factorize(order):
        if pow(root, order // p, q) == 1:
            raise PrimeGenerationError(
                f"root has order smaller than {order} mod {q}"
            )
    return root


def nth_root_of_unity(q: int, n: int) -> int:
    """Primitive ``n``-th root of unity modulo prime ``q`` (n | q-1)."""
    return find_primitive_root(q, n)


def find_ntt_primes(
    bit_size: int,
    count: int,
    n: int,
    *,
    descending: bool = True,
) -> list[int]:
    """Find ``count`` primes of ``bit_size`` bits with ``p ≡ 1 (mod 2n)``.

    Such primes admit a primitive 2n-th root of unity, which the
    negacyclic NTT over ``Z_p[x]/(x^n + 1)`` requires.

    Args:
        bit_size: target bit width of each prime (e.g. 30).
        count: how many distinct primes to return.
        n: polynomial degree (power of two).
        descending: scan downward from ``2^bit_size`` (default) so the
            largest qualifying primes are used first, mirroring how FHE
            libraries pick the top of the 32-bit space.

    Raises:
        PrimeGenerationError: if the range is exhausted first.
    """
    if count < 1:
        raise PrimeGenerationError(f"count must be >= 1, got {count}")
    modulus = 2 * n
    upper = (1 << bit_size) - 1
    lower = 1 << (bit_size - 1)
    # First candidate ≡ 1 (mod 2n) at or below ``upper``.
    candidate = upper - ((upper - 1) % modulus)
    step = -modulus if descending else modulus
    if not descending:
        candidate = lower + ((1 - lower) % modulus)

    primes: list[int] = []
    while lower <= candidate <= upper:
        if is_prime(candidate):
            primes.append(candidate)
            if len(primes) == count:
                return primes
        candidate += step
    raise PrimeGenerationError(
        f"only found {len(primes)}/{count} NTT primes of {bit_size} bits "
        f"for n={n}"
    )


def default_modulus_chain(n: int, length: int, *, bit_size: int = 30) -> list[int]:
    """Convenience: the default RNS modulus chain for degree ``n``.

    Returns ``length`` distinct NTT-friendly primes of ``bit_size`` bits,
    largest first (chain head is consumed last by rescaling).
    """
    return find_ntt_primes(bit_size, length, n)


def special_primes(n: int, count: int, *, bit_size: int = 31) -> list[int]:
    """Auxiliary ('special') primes for the hybrid keyswitch base P.

    Drawn from a disjoint bit range (default 31-bit) so they never
    collide with the ciphertext chain primes.
    """
    return find_ntt_primes(bit_size, count, n)
