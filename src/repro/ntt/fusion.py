"""NTT-fusion: the radix-2^k transform at the heart of Poseidon's NTT core.

The paper observes (Section III-A) that the basic NTT step is a chain of
"Twiddle, Accumulate, Modulo" (TAM) operations and that modular
reduction dominates its cost. Fusing ``k`` consecutive radix-2 stages
into one radix-``2^k`` butterfly lets the accumulation run at full
width and reduce **once per output**: a radix-8 butterfly (k = 3)
produces its 8 outputs with 8 modular reductions where three radix-2
stages would spend 24.

The price is twiddle-factor storage and extra multiply/adds (Table II),
which is why the paper sweeps ``k`` and lands on ``k = 3`` (Fig. 10).

This module provides:

- :class:`FusedNtt` — a bit-exact radix-2^k negacyclic NTT/INTT that
  matches the radix-2 kernels on every input.
- :class:`FusionCostModel` — the operation/twiddle count model behind
  Table II, plus structural counts measured from the actual butterfly.
- :func:`access_offsets` — the BRAM access pattern of Table III/Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NTTError
from repro.ntt.tables import TwiddleTable, get_twiddle_table
from repro.utils.bitops import ilog2

#: Literal contents of the paper's Table II, keyed by radix exponent k:
#: (W unfused, W fused, Mult=Add unfused, Mult=Add fused).
PAPER_TABLE_II: dict[int, tuple[int, int, int, int]] = {
    2: (2, 2, 8, 12),
    3: (4, 5, 24, 56),
    4: (8, 13, 64, 240),
    5: (16, 34, 160, 992),
    6: (32, 85, 384, 4160),
}


@dataclass(frozen=True)
class FusionCosts:
    """Operation counts for one radix-2^k block (2^k inputs)."""

    radix_log2: int
    twiddles_unfused: int
    twiddles_fused: int
    mult_unfused: int
    mult_fused: int
    add_unfused: int
    add_fused: int
    modred_unfused: int
    modred_fused: int


class FusionCostModel:
    """Analytic cost model for fusing ``k`` radix-2 NTT stages.

    For a block of ``B = 2^k`` points:

    - Unfused: ``k`` radix-2 stages of ``B/2`` butterflies, each with
      1 twiddle multiply, 2 add/subs and 3 modular reductions (one per
      TAM output plus the twiddle product), i.e. ``B*k`` mults worth of
      work and ``3 * k * B/2`` reductions (the paper quotes 24 for
      k = 3: three phases of 8).
    - Fused: one dense ``B x B`` evaluation — each output accumulates
      ``B`` products and reduces once, so ``B`` reductions, ``B*(B-1)``
      general multiplies/adds.

    :attr:`paper_row` carries the literal Table II numbers so the bench
    can print both the analytic and the published values.
    """

    def __init__(self, radix_log2: int):
        if radix_log2 < 1:
            raise NTTError(f"radix exponent must be >= 1, got {radix_log2}")
        self.radix_log2 = radix_log2
        self.block = 1 << radix_log2

    @property
    def paper_row(self) -> tuple[int, int, int, int] | None:
        """The literal Table II row for this k (None outside 2..6)."""
        return PAPER_TABLE_II.get(self.radix_log2)

    def costs(self) -> FusionCosts:
        """Analytic per-block operation counts.

        Modular reductions follow the paper's counting: one per output
        per phase — ``k * B`` for the unfused k-stage cascade (24 for
        k = 3, matching §IV-B.3) versus ``B`` for the fused block.
        """
        k, b = self.radix_log2, self.block
        return FusionCosts(
            radix_log2=k,
            twiddles_unfused=b // 2 * 1 if k == 1 else 2 ** (k - 1),
            twiddles_fused=self.fused_twiddle_count(),
            mult_unfused=b * k,
            mult_fused=b * (b - 1),
            add_unfused=b * k,
            add_fused=b * (b - 1),
            modred_unfused=k * b,
            modred_fused=b,
        )

    def mults_per_output(self) -> int:
        """Twiddle/DFT multiplies each fused output accumulates (B-1).

        This is the quantity that saturates the DSP budget for large k
        and caps the core's sustained throughput (Fig. 10's rising
        right side).
        """
        return self.block - 1

    def fused_twiddle_count(self) -> int:
        """Distinct twiddle powers a fused radix-2^k butterfly touches.

        The dense block uses powers ``w^(j*k mod B)`` of the B-th root
        combined with inter-stage twiddles; counting distinct non-unit
        exponents in the B x B evaluation matrix gives the storage the
        hardware must hold per block.
        """
        b = self.block
        exponents = {(j * m) % b for j in range(b) for m in range(b)}
        exponents.discard(0)
        return len(exponents)

    def phases(self, n: int) -> int:
        """Pipeline phases for an n-point transform: ceil(log2 n / k)."""
        logn = ilog2(n)
        k = self.radix_log2
        return (logn + k - 1) // k

    def total_modular_reductions(self, n: int) -> int:
        """Whole-transform modular reduction count (fused)."""
        logn = ilog2(n)
        k = self.radix_log2
        total = 0
        remaining = logn
        while remaining > 0:
            step = min(k, remaining)
            blocks = n // (1 << step)
            total += blocks * (1 << step)
            remaining -= step
        return total

    def total_modular_reductions_unfused(self, n: int) -> int:
        """Whole-transform modular reduction count (radix-2 baseline).

        One reduction per element per stage, as the paper counts TAMs.
        """
        logn = ilog2(n)
        return n * logn


def access_offsets(n: int, radix_log2: int, iteration: int) -> np.ndarray:
    """BRAM read indices of the first fused butterfly in ``iteration``.

    Reproduces Table III / Fig. 5: in iteration ``i`` (1-based) the
    radix-2^k core reads ``2^k`` operands with stride ``2^(k*(i-1))``
    (e.g. k = 3, N = 4096: iteration 1 reads 0..7, iteration 2 reads
    0, 8, ..., 56, iteration 3 reads 0, 64, ..., 448).
    """
    if iteration < 1:
        raise NTTError(f"iteration is 1-based, got {iteration}")
    block = 1 << radix_log2
    stride = 1 << (radix_log2 * (iteration - 1))
    if stride * block > n:
        raise NTTError(
            f"iteration {iteration} exceeds the transform depth for n={n}"
        )
    return np.arange(block, dtype=np.int64) * stride


def bram_bank_of(index: int, iteration: int, radix_log2: int) -> int:
    """Bank assignment that makes every fused read conflict-free.

    The 2^k operands of one butterfly must land in distinct BRAMs
    (Fig. 5's diagonal layout). Assigning element ``i`` to bank
    ``(sum of its base-2^k digits) mod 2^k`` guarantees the operands of
    any butterfly in any iteration differ in exactly one digit and thus
    map to 2^k distinct banks.
    """
    block = 1 << radix_log2
    acc = 0
    v = index
    while v:
        acc += v % block
        v //= block
    return acc % block


class FusedNtt:
    """Bit-exact negacyclic radix-2^k NTT/INTT.

    Functionally identical to :func:`repro.ntt.radix2.ntt_radix2` /
    ``intt_radix2`` — the tests assert equality on random inputs — but
    organized as ``ceil(log2(n)/k)`` phases of dense radix-2^k blocks,
    the structure the hardware NTT core pipelines.

    The negacyclic twist uses the classic psi pre/post-scaling so the
    core cyclic transform stays a textbook Cooley-Tukey decomposition.
    """

    def __init__(self, q: int, n: int, radix_log2: int = 3):
        if radix_log2 < 1:
            raise NTTError(f"radix exponent must be >= 1, got {radix_log2}")
        self.table: TwiddleTable = get_twiddle_table(q, n)
        self.q = q
        self.n = n
        self.radix_log2 = radix_log2
        self.cost_model = FusionCostModel(radix_log2)
        # uint64 accumulation of B products of (<2^30)^2 values is safe
        # while B * q^2 < 2^64; otherwise fall back to object ints.
        self._wide_safe = (1 << radix_log2) * q * q < (1 << 64)

    # ------------------------------------------------------------------
    def _cyclic(self, values: np.ndarray, root: int) -> np.ndarray:
        """Recursive mixed-radix cyclic NTT with fused dense blocks."""
        n = values.shape[0]
        if n == 1:
            return values.copy()
        b = min(1 << self.radix_log2, n)
        m = n // b
        q = self.q
        sub_root = pow(root, b, q)
        subs = [self._cyclic(values[j2::b], sub_root) for j2 in range(b)]

        # Dense combine: X[k1 + m*k2] = sum_{j2} w^{j2*k1} (w^m)^{j2*k2} Y_j2[k1]
        # Each output accumulates b products and reduces once — the
        # "fused TAM" with b modular reductions per block.
        out = np.empty(n, dtype=np.uint64)
        w_m = pow(root, m, q)  # primitive b-th root
        if self._wide_safe:
            y = np.stack(subs)  # (b, m)
            for k2 in range(b):
                acc = np.zeros(m, dtype=np.uint64)
                for j2 in range(b):
                    # twiddle w^{j2*k1} folded with the DFT factor.
                    dft = pow(w_m, j2 * k2, q)
                    tw = np.array(
                        [pow(root, j2 * k1, q) for k1 in range(m)],
                        dtype=np.uint64,
                    )
                    coef = (tw * np.uint64(dft)) % np.uint64(q)
                    # Deferred reduction: accumulate full-width products
                    # (b * q^2 < 2^64 is guaranteed by _wide_safe) and
                    # reduce once per output — the fused TAM.
                    acc += y[j2] * coef
                out[k2 * m:(k2 + 1) * m] = acc % np.uint64(q)
        else:
            y = [row.astype(object) for row in subs]
            for k2 in range(b):
                acc = [0] * m
                for j2 in range(b):
                    dft = pow(w_m, j2 * k2, q)
                    for k1 in range(m):
                        coef = pow(root, j2 * k1, q) * dft % q
                        acc[k1] += int(y[j2][k1]) * coef
                out[k2 * m:(k2 + 1) * m] = np.array(
                    [v % q for v in acc], dtype=np.uint64
                )
        return out

    # ------------------------------------------------------------------
    def forward(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT (natural order in and out)."""
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.n,):
            raise NTTError(f"expected shape ({self.n},), got {values.shape}")
        q = np.uint64(self.q)
        twisted = (values * self.table.psi_powers) % q
        return self._cyclic(twisted, self.table.omega)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT (natural order in and out)."""
        values = np.asarray(values, dtype=np.uint64)
        if values.shape != (self.n,):
            raise NTTError(f"expected shape ({self.n},), got {values.shape}")
        q = np.uint64(self.q)
        cyc = self._cyclic(values, self.table.inv_omega)
        scaled = (cyc * np.uint64(self.table.inv_n)) % q
        return (scaled * self.table.ipsi_powers) % q
