"""Twiddle-factor tables, cached per (modulus, degree).

On the FPGA the twiddle factors live in BRAM and their count is the
resource cost NTT-fusion trades against (Table II). Software-side the
tables are precomputed once per (q, n) pair and shared by every kernel.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import NTTError
from repro.utils.bitops import bit_reverse_permutation, ilog2, is_power_of_two
from repro.utils.primes import find_primitive_root


class TwiddleTable:
    """Precomputed roots for the negacyclic NTT over ``Z_q[x]/(x^n+1)``.

    Attributes:
        q: limb modulus, with ``q ≡ 1 (mod 2n)``.
        n: ring degree (power of two).
        psi: a primitive ``2n``-th root of unity mod ``q``.
        omega: ``psi^2``, a primitive ``n``-th root (cyclic NTT root).
        psi_powers_bitrev: ``psi^i`` in bit-reversed index order — the
            layout the merged negacyclic butterfly consumes.
        ipsi_powers_bitrev: same for ``psi^{-1}``.
    """

    def __init__(self, q: int, n: int):
        if not is_power_of_two(n):
            raise NTTError(f"degree must be a power of two, got {n}")
        if (q - 1) % (2 * n) != 0:
            raise NTTError(
                f"q={q} is not NTT-friendly for n={n} (needs q ≡ 1 mod 2n)"
            )
        self.q = q
        self.n = n
        self.logn = ilog2(n)
        self.psi = find_primitive_root(q, 2 * n)
        self.omega = pow(self.psi, 2, q)
        self.inv_psi = pow(self.psi, q - 2, q)
        self.inv_omega = pow(self.omega, q - 2, q)
        self.inv_n = pow(n, q - 2, q)

        psi_powers = self._power_table(self.psi, n)
        ipsi_powers = self._power_table(self.inv_psi, n)
        rev = bit_reverse_permutation(n)
        self.psi_powers = psi_powers
        self.ipsi_powers = ipsi_powers
        self.psi_powers_bitrev = psi_powers[rev]
        self.ipsi_powers_bitrev = ipsi_powers[rev]
        self.omega_powers = self._power_table(self.omega, n)

    def _power_table(self, base: int, count: int) -> np.ndarray:
        table = np.empty(count, dtype=np.uint64)
        acc = 1
        for i in range(count):
            table[i] = acc
            acc = acc * base % self.q
        return table

    def __repr__(self) -> str:
        return f"TwiddleTable(q={self.q}, n={self.n})"


@lru_cache(maxsize=512)
def get_twiddle_table(q: int, n: int) -> TwiddleTable:
    """Process-wide cache of :class:`TwiddleTable` objects."""
    return TwiddleTable(q, n)
