"""Quadratic-time reference NTT used as the correctness oracle.

Evaluates the polynomial at every power of the root directly from the
definition. Only used in tests: the radix-2 and fused kernels must
agree with this on random inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NTTError
from repro.utils.bitops import is_power_of_two


def ntt_reference(coeffs: np.ndarray, root: int, q: int) -> np.ndarray:
    """Forward cyclic NTT by direct evaluation: ``X_k = sum_j x_j w^(jk)``."""
    coeffs = np.asarray(coeffs, dtype=np.uint64)
    n = coeffs.shape[0]
    if not is_power_of_two(n):
        raise NTTError(f"length must be a power of two, got {n}")
    if pow(int(root), n, q) != 1:
        raise NTTError(f"root {root} is not an n-th root of unity mod {q}")
    out = np.zeros(n, dtype=np.uint64)
    for k in range(n):
        acc = 0
        wk = pow(int(root), k, q)
        w = 1
        for j in range(n):
            acc = (acc + int(coeffs[j]) * w) % q
            w = w * wk % q
        out[k] = acc
    return out


def intt_reference(values: np.ndarray, root: int, q: int) -> np.ndarray:
    """Inverse cyclic NTT by direct evaluation with the 1/n scaling."""
    values = np.asarray(values, dtype=np.uint64)
    n = values.shape[0]
    inv_root = pow(int(root), q - 2, q)
    unscaled = ntt_reference(values, inv_root, q)
    inv_n = pow(n, q - 2, q)
    return np.array(
        [int(v) * inv_n % q for v in unscaled], dtype=np.uint64
    )
