"""Number Theoretic Transform substrate.

The NTT is the most expensive Poseidon operator. This subpackage holds:

- :mod:`repro.ntt.reference` — O(n^2) evaluation-at-roots reference.
- :mod:`repro.ntt.radix2` — iterative Cooley-Tukey / Gentleman-Sande.
- :mod:`repro.ntt.fusion` — the paper's radix-2^k "NTT-fusion" with its
  operation-count cost model (Table II) and BRAM access pattern
  (Table III / Fig. 5).
- :mod:`repro.ntt.negacyclic` — negacyclic wrapping for R = Z_q[x]/(x^n+1).
- :mod:`repro.ntt.tables` — per-(q, n) twiddle caches.
"""

from repro.ntt.negacyclic import (
    NegacyclicTransformer,
    intt_negacyclic,
    ntt_negacyclic,
)
from repro.ntt.radix2 import intt_radix2, ntt_radix2
from repro.ntt.fusion import FusionCostModel, FusedNtt
from repro.ntt.tables import TwiddleTable, get_twiddle_table

__all__ = [
    "NegacyclicTransformer",
    "FusedNtt",
    "FusionCostModel",
    "TwiddleTable",
    "get_twiddle_table",
    "intt_negacyclic",
    "intt_radix2",
    "ntt_negacyclic",
    "ntt_radix2",
]
