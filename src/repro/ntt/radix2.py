"""Iterative radix-2 NTT/INTT kernels (the unfused baseline).

Forward: Cooley-Tukey decimation-in-time with the psi-merged negacyclic
twist, natural-order input -> natural-order output.
Inverse: Gentleman-Sande decimation-in-frequency, the standard partner.

Each butterfly is one "TAM" in the paper's terminology — Twiddle
(multiply by w), Accumulate (add/sub) and Modulo — so a full radix-2
transform of length n executes ``(n/2) * log2(n)`` TAMs. NTT-fusion
(:mod:`repro.ntt.fusion`) reduces the modular-reduction count by fusing
k consecutive radix-2 stages.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NTTError
from repro.ntt.tables import TwiddleTable, get_twiddle_table
from repro.utils.bitops import bit_reverse_permutation, ilog2


def _check_input(values: np.ndarray, table: TwiddleTable) -> np.ndarray:
    values = np.asarray(values, dtype=np.uint64)
    if values.shape != (table.n,):
        raise NTTError(
            f"expected shape ({table.n},), got {values.shape}"
        )
    return values


def ntt_radix2(values: np.ndarray, table: TwiddleTable) -> np.ndarray:
    """Forward negacyclic NTT (Cooley-Tukey DIT, psi powers merged).

    Uses the Longa-Naehrig formulation: stage ``s`` applies twiddles
    ``psi^(bitrev)`` so the x^n+1 twist needs no separate pre-scaling.
    Output is in natural order.
    """
    a = _check_input(values, table).copy()
    n, q = table.n, np.uint64(table.q)
    psi_br = table.psi_powers_bitrev

    t = n
    m = 1
    while m < n:
        t >>= 1
        for i in range(m):
            j1 = 2 * i * t
            j2 = j1 + t
            w = psi_br[m + i]
            # lo stays a view: both outputs are materialized before the
            # write-back, so no defensive copy is needed.
            lo = a[j1:j2]
            hi = (a[j2:j2 + t] * w) % q
            new_lo = (lo + hi) % q
            new_hi = (lo + q - hi) % q
            a[j1:j2] = new_lo
            a[j2:j2 + t] = new_hi
        m <<= 1
    # The merged CT network leaves results in bit-reversed order;
    # normalize to natural order so all kernels share one convention.
    return a[bit_reverse_permutation(n)]


def intt_radix2(values: np.ndarray, table: TwiddleTable) -> np.ndarray:
    """Inverse negacyclic NTT (Gentleman-Sande DIF) with 1/n scaling.

    Exact inverse of :func:`ntt_radix2`: natural order in and out.
    """
    a = _check_input(values, table).copy()
    n, q = table.n, np.uint64(table.q)
    ipsi_br = table.ipsi_powers_bitrev

    # The GS network consumes bit-reversed input (the CT partner's raw
    # output); re-apply the permutation our forward kernel normalized.
    a = a[bit_reverse_permutation(n)]
    t = 1
    m = n
    while m > 1:
        j1 = 0
        h = m >> 1
        for i in range(h):
            j2 = j1 + t
            w = ipsi_br[h + i]
            lo = a[j1:j2]
            hi = a[j2:j2 + t]
            new_lo = (lo + hi) % q
            new_hi = ((lo + q - hi) * w) % q
            a[j1:j2] = new_lo
            a[j2:j2 + t] = new_hi
            j1 += 2 * t
        t <<= 1
        m = h
    inv_n = np.uint64(table.inv_n)
    return (a * inv_n) % q


def ntt_radix2_cyclic(values: np.ndarray, q: int, omega: int) -> np.ndarray:
    """Plain cyclic radix-2 NTT with explicit root (for Table III demos).

    Natural-order input, uses an on-the-fly omega power table. Slower
    than :func:`ntt_radix2`; exists for pedagogy and the access-pattern
    experiments where the cyclic transform is the textbook object.
    """
    a = np.asarray(values, dtype=np.uint64).copy()
    n = a.shape[0]
    ilog2(n)  # validates n is a power of two
    if pow(omega, n, q) != 1 or pow(omega, n // 2, q) == 1:
        raise NTTError(f"omega={omega} is not a primitive {n}-th root mod {q}")
    # Bit-reverse input for in-place DIT.
    a = a[bit_reverse_permutation(n)]
    q64 = np.uint64(q)
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, q)
        half = length // 2
        w_powers = np.empty(half, dtype=np.uint64)
        acc = 1
        for i in range(half):
            w_powers[i] = acc
            acc = acc * w_len % q
        for start in range(0, n, length):
            lo = a[start:start + half]
            hi = (a[start + half:start + length] * w_powers) % q64
            a[start:start + half] = (lo + hi) % q64
            a[start + half:start + length] = (lo + q64 - hi) % q64
        length <<= 1
    return a


def ntt_poly(data: np.ndarray, moduli, degree: int) -> np.ndarray:
    """Forward-transform every limb row of an (L, N) residue matrix."""
    rows = [
        ntt_radix2(data[i], get_twiddle_table(q, degree))
        for i, q in enumerate(moduli)
    ]
    return np.stack(rows)


def intt_poly(data: np.ndarray, moduli, degree: int) -> np.ndarray:
    """Inverse-transform every limb row of an (L, N) residue matrix."""
    rows = [
        intt_radix2(data[i], get_twiddle_table(q, degree))
        for i, q in enumerate(moduli)
    ]
    return np.stack(rows)
