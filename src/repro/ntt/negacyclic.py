"""Negacyclic transform façade used by the CKKS layer.

The ring is ``R_q = Z_q[x]/(x^n + 1)``, so polynomial products are
*negacyclic* convolutions. :class:`NegacyclicTransformer` bundles the
forward/inverse kernels (radix-2 by default, radix-2^k fused when the
caller opts in) behind one object per (q, n) pair, and the module-level
functions transform whole RNS matrices limb by limb — which is exactly
how the 64 parallel NTT cores in Poseidon chew through limbs.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro import kernels
from repro.errors import NTTError
from repro.ntt.fusion import FusedNtt
from repro.ntt.radix2 import intt_radix2, ntt_radix2
from repro.ntt.tables import get_twiddle_table
from repro.obs import metrics
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.bitops import ilog2


class NegacyclicTransformer:
    """Forward/inverse negacyclic NTT for one modulus and degree.

    Args:
        q: NTT-friendly limb prime (q ≡ 1 mod 2n).
        n: ring degree.
        radix_log2: 1 selects the iterative radix-2 kernels; >= 2
            selects the fused radix-2^k kernel (bit-identical results).
    """

    def __init__(self, q: int, n: int, *, radix_log2: int = 1):
        self.q = q
        self.n = n
        self.radix_log2 = radix_log2
        self.table = get_twiddle_table(q, n)
        self._fused = FusedNtt(q, n, radix_log2) if radix_log2 >= 2 else None

    def _count_transform(self, direction: str) -> None:
        # (n/2) * log2(n) TAM butterflies per length-n transform,
        # independent of the kernel (fusion changes reductions, not
        # butterfly count).
        reg = metrics.active()
        if reg is not None:
            reg.counter(f"ntt.transforms.{direction}").inc()
            reg.counter("ntt.butterflies").inc(
                (self.n // 2) * ilog2(self.n)
            )

    def forward(self, values: np.ndarray) -> np.ndarray:
        """Coefficient -> point-value (NTT) representation."""
        self._count_transform("forward")
        if self._fused is not None:
            return self._fused.forward(values)
        return ntt_radix2(values, self.table)

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Point-value (NTT) -> coefficient representation."""
        self._count_transform("inverse")
        if self._fused is not None:
            return self._fused.inverse(values)
        return intt_radix2(values, self.table)

    def negacyclic_multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full negacyclic product of two coefficient vectors."""
        fa = self.forward(a)
        fb = self.forward(b)
        prod = (fa * fb) % np.uint64(self.q)
        return self.inverse(prod)


@lru_cache(maxsize=1024)
def get_transformer(q: int, n: int, radix_log2: int = 1) -> NegacyclicTransformer:
    """Cached transformer per (q, n, radix)."""
    return NegacyclicTransformer(q, n, radix_log2=radix_log2)


def _count_poly_transforms(direction: str, limbs: int, degree: int) -> None:
    """Semantic TAM counters for an all-limbs transform, any backend."""
    reg = metrics.active()
    if reg is not None:
        reg.counter(f"ntt.transforms.{direction}").inc(limbs)
        reg.counter("ntt.butterflies").inc(
            limbs * (degree // 2) * ilog2(degree)
        )


def ntt_negacyclic(
    poly: RnsPolynomial,
    *,
    radix_log2: int = 1,
    backend: str | kernels.KernelBackend | None = None,
) -> RnsPolynomial:
    """Transform an RNS polynomial to the NTT domain (all limbs).

    Routed through the active kernel backend (``reference`` per-limb
    loop or ``batched`` limb-parallel matrix kernel); ``backend``
    overrides the process-wide selection for this call.
    """
    if poly.domain is not Domain.COEFFICIENT:
        raise NTTError("polynomial is already in the NTT domain")
    _count_poly_transforms("forward", poly.level_count, poly.degree)
    data = kernels.resolve(backend).ntt(
        poly.data, poly.context.moduli, radix_log2=radix_log2
    )
    return RnsPolynomial(data, poly.context, Domain.NTT)


def intt_negacyclic(
    poly: RnsPolynomial,
    *,
    radix_log2: int = 1,
    backend: str | kernels.KernelBackend | None = None,
) -> RnsPolynomial:
    """Transform an RNS polynomial back to the coefficient domain."""
    if poly.domain is not Domain.NTT:
        raise NTTError("polynomial is already in the coefficient domain")
    _count_poly_transforms("inverse", poly.level_count, poly.degree)
    data = kernels.resolve(backend).intt(
        poly.data, poly.context.moduli, radix_log2=radix_log2
    )
    return RnsPolynomial(data, poly.context, Domain.COEFFICIENT)


def poly_multiply(a: RnsPolynomial, b: RnsPolynomial) -> RnsPolynomial:
    """Negacyclic product of two coefficient-domain RNS polynomials."""
    fa = ntt_negacyclic(a)
    fb = ntt_negacyclic(b)
    return intt_negacyclic(fa.hadamard(fb))
