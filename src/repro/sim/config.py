"""Hardware configuration of the modelled Poseidon accelerator.

Defaults mirror the paper's prototype on the Xilinx Alveo U280:
512 vector lanes, 64 radix-8 NTT cores, an 8.6 MB scratchpad at
3.4 TB/s, two HBM2 stacks at 460 GB/s, 300 MHz core clock, 32-bit
limbs. Every field is sweepable — Fig. 10 sweeps ``ntt_radix_log2``,
Fig. 11 sweeps ``lanes``, Table IX toggles ``use_hfauto``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ParameterError
from repro.sim.ntt_cores import DEFAULT_NTT_CORE, available_ntt_cores
from repro.utils.bitops import is_power_of_two

#: Bytes per RNS limb element (the paper's 32-bit datapath).
LIMB_BYTES = 4

#: The physical operator core arrays the scheduler manages (NTT/INTT
#: share the NTT array, SBT shares the MM array; see
#: :class:`repro.sim.tasks.OperatorKind`).
CORE_ARRAYS = ("MA", "MM", "NTT", "Automorphism")


@dataclass(frozen=True)
class HardwareConfig:
    """Immutable accelerator configuration.

    Attributes:
        lanes: vector-lane width C (elements processed per cycle).
        frequency_hz: core clock.
        hbm_bandwidth: off-chip HBM bandwidth in bytes/second.
        hbm_channels: HBM pseudo-channel count (access granularity).
        scratchpad_bytes: on-chip scratchpad capacity.
        scratchpad_bandwidth: on-chip bandwidth in bytes/second.
        ntt_radix_log2: NTT-fusion parameter k (paper default 3).
        ntt_cores: parallel NTT butterfly cores (64 x 8-input = 512).
        ntt_core: NTT core microarchitecture variant (see
            :mod:`repro.sim.ntt_cores` and ``docs/CORES.md``); the
            default ``"poseidon"`` is the paper's fused radix-2^k
            design and reproduces every baseline number byte-for-byte.
        use_hfauto: HFAuto (True) vs naive one-element Auto (False).
        pcie_bandwidth: host link bandwidth (staging only).
        core_instances: per-core-array instance counts as sorted
            ``(core, count)`` pairs; arrays not listed have one
            instance (the paper's prototype). Stored as a tuple so the
            config stays hashable/frozen.
    """

    lanes: int = 512
    frequency_hz: float = 300e6
    hbm_bandwidth: float = 460e9
    hbm_channels: int = 32
    scratchpad_bytes: int = int(8.6 * 2**20)
    scratchpad_bandwidth: float = 3.4e12
    ntt_radix_log2: int = 3
    ntt_cores: int = 64
    use_hfauto: bool = True
    pcie_bandwidth: float = 16e9
    core_instances: tuple[tuple[str, int], ...] = ()
    ntt_core: str = DEFAULT_NTT_CORE

    def __post_init__(self):
        if not is_power_of_two(self.lanes):
            raise ParameterError(f"lanes must be a power of two, got {self.lanes}")
        if self.frequency_hz <= 0:
            raise ParameterError("frequency must be positive")
        if self.ntt_radix_log2 < 1:
            raise ParameterError(
                f"NTT radix exponent must be >= 1, got {self.ntt_radix_log2}"
            )
        if self.hbm_bandwidth <= 0 or self.scratchpad_bandwidth <= 0:
            raise ParameterError("bandwidths must be positive")
        if self.hbm_channels < 1:
            raise ParameterError(
                f"need at least one HBM channel, got {self.hbm_channels}"
            )
        for core, count in self.core_instances:
            if core not in CORE_ARRAYS:
                raise ParameterError(
                    f"unknown core array {core!r} in core_instances "
                    f"(known: {', '.join(CORE_ARRAYS)})"
                )
            if not isinstance(count, int) or count < 1:
                raise ParameterError(
                    f"core {core} needs a positive instance count, got {count!r}"
                )
        if self.ntt_core not in available_ntt_cores():
            raise ParameterError(
                f"unknown NTT core variant {self.ntt_core!r} "
                f"(registered: {', '.join(available_ntt_cores())})"
            )

    # ------------------------------------------------------------------
    @property
    def cycle_seconds(self) -> float:
        """Duration of one core clock cycle."""
        return 1.0 / self.frequency_hz

    @property
    def hbm_bytes_per_cycle(self) -> float:
        """HBM bytes deliverable per core cycle."""
        return self.hbm_bandwidth / self.frequency_hz

    @property
    def scratchpad_bytes_per_cycle(self) -> float:
        """Scratchpad bytes deliverable per core cycle."""
        return self.scratchpad_bandwidth / self.frequency_hz

    def with_lanes(self, lanes: int) -> "HardwareConfig":
        """Copy with a different lane count (Fig. 11 sweeps).

        NTT cores scale with lanes (each 2^k-input core consumes 2^k
        lanes' worth of operands per cycle), and the scratchpad is
        sized proportionally as in the paper (8.6 MB at 512 lanes).
        Both scale from *this* config's values — not the paper default
        — so a customized scratchpad (or core count) survives a sweep,
        and chained ``with_lanes`` calls compose instead of compounding
        against a stale base.
        """
        ratio = lanes / self.lanes
        return replace(
            self,
            lanes=lanes,
            ntt_cores=max(1, int(self.ntt_cores * ratio)),
            scratchpad_bytes=max(1, int(self.scratchpad_bytes * ratio)),
        )

    def with_radix(self, radix_log2: int) -> "HardwareConfig":
        """Copy with a different NTT-fusion k (Fig. 10 sweeps)."""
        return replace(self, ntt_radix_log2=radix_log2)

    def with_hfauto(self, enabled: bool) -> "HardwareConfig":
        """Copy toggling HFAuto (Table IX ablation)."""
        return replace(self, use_hfauto=enabled)

    def with_ntt_core(self, name: str) -> "HardwareConfig":
        """Copy with a different NTT core microarchitecture.

        ``name`` must be registered in
        :mod:`repro.sim.ntt_cores` (``poseidon``, ``hermes``,
        ``hf-ntt``, ``digit-serial`` out of the box); validation
        happens in ``__post_init__``.
        """
        return replace(self, ntt_core=name)

    # ------------------------------------------------------------------
    def instances_of(self, core: str) -> int:
        """Instance count of one core array (1 unless overridden)."""
        for name, count in self.core_instances:
            if name == core:
                return count
        return 1

    def with_core_instances(self, **counts: int) -> "HardwareConfig":
        """Copy with per-array instance counts, e.g. ``NTT=2, MA=2``.

        Unnamed arrays keep their current count. Replicating an array
        lets the scheduler dispatch multiple tasks of that operator
        concurrently (an area-for-latency trade the paper's single
        prototype does not take, but the design space supports).
        """
        merged = dict(self.core_instances)
        merged.update(counts)
        return replace(self, core_instances=tuple(sorted(merged.items())))


#: The paper's default Poseidon configuration.
POSEIDON_U280 = HardwareConfig()

#: The ablation configuration with the naive automorphism core.
POSEIDON_U280_NAIVE_AUTO = HardwareConfig(use_hfauto=False)
