"""Energy model: per-operator dynamic energy plus memory access energy.

Fig. 12 of the paper shows memory access dominating benchmark energy,
with the MM and NTT core arrays leading the compute share and MA
nearly free. The model charges:

- a per-element dynamic energy per core array (MM/NTT high, MA low),
- a per-byte energy for HBM and scratchpad traffic,
- static power integrated over the makespan.

Constants are calibrated to the U280's ~60-90 W envelope at full tilt
and, relatively, to Fig. 12's breakdown shape. EDP (energy x delay) is
the Table X efficiency metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import HardwareConfig
from repro.sim.engine import SimulationResult
from repro.sim.ntt_cores import get_ntt_core

#: Dynamic energy per processed element, in joules (32-bit datapath).
#: The NTT entry is the default ``poseidon`` variant's coefficient;
#: :class:`EnergyModel` swaps in the configured variant's own value
#: (see :mod:`repro.sim.ntt_cores`) so the design explorer prices
#: alternative microarchitectures honestly.
CORE_ENERGY_PER_ELEMENT = {
    "MA": 2.0e-12,          # compare + conditional subtract
    "MM": 28.0e-12,         # DSP multiply + Barrett reduce
    "NTT": 45.0e-12,        # butterfly network + twiddle fetch + reduce
    "Automorphism": 6.0e-12,  # permutation network + FIFO moves
}

#: Memory access energy per byte.
HBM_ENERGY_PER_BYTE = 60.0e-12
SPAD_ENERGY_PER_BYTE = 2.0e-12

#: Static (leakage + clocking) power of the configured FPGA, watts.
STATIC_POWER_WATTS = 18.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy attribution of one simulated run (joules)."""

    core_energy: dict[str, float]
    hbm_energy: float
    spad_energy: float
    static_energy: float

    @property
    def total(self) -> float:
        return (
            sum(self.core_energy.values())
            + self.hbm_energy
            + self.spad_energy
            + self.static_energy
        )

    @property
    def memory_energy(self) -> float:
        """Combined off-chip + on-chip memory energy (Fig. 12's bar)."""
        return self.hbm_energy + self.spad_energy

    def shares(self) -> dict[str, float]:
        """Normalized breakdown: memory + each core array."""
        total = self.total
        if total <= 0:
            return {}
        out = {"memory": self.memory_energy / total,
               "static": self.static_energy / total}
        for core, e in self.core_energy.items():
            out[core] = e / total
        return out


class EnergyModel:
    """Computes energy and EDP for simulation results."""

    def __init__(self, config: HardwareConfig):
        self.config = config
        # Lane-count scaling: wider arrays burn proportionally more
        # per cycle but the per-element energy is constant, so only
        # static power needs adjusting (bigger deployed design).
        self._static_watts = STATIC_POWER_WATTS * (
            0.5 + 0.5 * config.lanes / 512
        )
        # The configured NTT core variant sets the NTT per-element
        # energy (identical to the table above for ``poseidon``).
        self._core_energy_per_element = dict(CORE_ENERGY_PER_ELEMENT)
        self._core_energy_per_element["NTT"] = get_ntt_core(
            config.ntt_core
        ).energy_per_element

    def breakdown(
        self, result: SimulationResult, program
    ) -> EnergyBreakdown:
        """Energy attribution for a simulated program."""
        core_energy: dict[str, float] = {
            name: 0.0 for name in self._core_energy_per_element
        }
        spad_bytes = 0
        for task in program.tasks:
            core = task.kind.core
            per_elem = self._core_energy_per_element.get(core)
            if per_elem is None:
                continue
            core_energy[core] += per_elem * task.elements
            spad_bytes += task.spad_bytes
        hbm_energy = result.hbm_bytes * HBM_ENERGY_PER_BYTE
        spad_energy = spad_bytes * SPAD_ENERGY_PER_BYTE
        static = self._static_watts * result.total_seconds
        return EnergyBreakdown(
            core_energy=core_energy,
            hbm_energy=hbm_energy,
            spad_energy=spad_energy,
            static_energy=static,
        )

    def edp(self, result: SimulationResult, program) -> float:
        """Energy-delay product in joule-seconds (Table X metric)."""
        return self.breakdown(result, program).total * result.total_seconds

    def average_power(self, result: SimulationResult, program) -> float:
        """Average power draw over the run, watts."""
        if result.total_seconds <= 0:
            return 0.0
        return self.breakdown(result, program).total / result.total_seconds
