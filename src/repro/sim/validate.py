"""Schedule-invariant validator for simulated runs.

Checks a committed :class:`~repro.sim.engine.SimulationResult` against
the physical invariants the event-driven scheduler must uphold:

1. **No overlap per core instance** — one task at a time on each
   instance of each operator core array.
2. **No HBM over-subscription** — at every instant the pseudo-channel
   slots engaged by concurrent transfers sum to at most
   ``config.hbm_channels``; tasks with zero off-chip traffic never
   occupy a channel.
3. **Dependencies respected** — a task neither starts on its core nor
   begins its HBM stream before every dependency has finished
   (requires the ``program``).
4. **Conservation** — per task, ``end - start == busy + stall``; per
   core array, held time + idle time == instances x makespan; the
   per-core busy/stall aggregates match the record sums.

All comparisons use a tolerance relative to the makespan, since the
schedule's floats are sums of ~1e-3 s spans. Violations raise
:class:`~repro.errors.SimulationError` with the offending task index.

Used by the scheduler tests, by ``benchmarks/regress.py`` (every bench
run self-checks), and behind the CLI's ``--validate`` flag.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.config import HardwareConfig
from repro.sim.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.compiler.program import OperatorProgram


def validate_program(program: "OperatorProgram") -> None:
    """Static sanity check of a compiled program's task DAG.

    Verifies what must hold *before* any simulation — used by the
    compiler pass tests and benchmarks to reject a malformed rewrite
    without paying for a run:

    - every dependency index is in range and strictly backward (the
      task list is topologically ordered by construction, so this is
      also the acyclicity proof);
    - op boundaries partition ``[0, task_count)`` in order with
      non-empty spans, so per-op attribution (Fig. 7-9) stays
      coherent after any rewrite.

    Raises:
        SimulationError: on the first violated property.
    """
    tasks = program.tasks
    for i, task in enumerate(tasks):
        for dep in task.depends_on:
            if not 0 <= dep < i:
                raise SimulationError(
                    f"task {i} depends on {dep}: dependencies must be "
                    "strictly backward in-range indices"
                )
    cursor = 0
    for oi, (start, end) in enumerate(program.op_boundaries):
        if start != cursor or end <= start:
            raise SimulationError(
                f"op {oi} boundary ({start}, {end}) does not continue "
                f"the partition at {cursor}"
            )
        cursor = end
    if cursor != len(tasks):
        raise SimulationError(
            f"op boundaries cover {cursor} tasks, program has "
            f"{len(tasks)}"
        )
    if len(program.op_boundaries) != len(program.source_ops):
        raise SimulationError(
            f"{len(program.op_boundaries)} boundary spans for "
            f"{len(program.source_ops)} source ops"
        )


def validate_schedule(
    result: SimulationResult,
    *,
    program: "OperatorProgram | None" = None,
    config: HardwareConfig | None = None,
    rel_eps: float = 1e-9,
) -> None:
    """Check every schedule invariant; raise on the first violation.

    Args:
        result: the committed schedule to check.
        program: the compiled program the run executed; enables the
            dependency-ordering check (record ``i`` corresponds to
            ``program.tasks[i]``).
        config: hardware configuration of the run; enables the HBM
            channel-budget check. Defaults to the paper configuration.
        rel_eps: tolerance as a fraction of the makespan.

    Raises:
        SimulationError: on any violated invariant.
    """
    config = config or HardwareConfig()
    records = result.task_records
    makespan = result.total_seconds
    eps = max(1e-15, rel_eps * makespan)

    # --- per-task sanity + conservation -------------------------------
    for i, rec in enumerate(records):
        if rec.end < rec.start - eps:
            raise SimulationError(f"task {i}: end {rec.end} < start {rec.start}")
        if rec.end > makespan + eps:
            raise SimulationError(
                f"task {i}: end {rec.end} exceeds makespan {makespan}"
            )
        if rec.start < rec.ready_seconds - eps:
            raise SimulationError(
                f"task {i}: started at {rec.start} before ready "
                f"{rec.ready_seconds}"
            )
        held = rec.end - rec.start
        busy = held - rec.stall_seconds
        if rec.stall_seconds < -eps or busy < -eps:
            raise SimulationError(
                f"task {i}: busy/stall split ({busy}, {rec.stall_seconds}) "
                f"does not conserve held time {held}"
            )
        if rec.hbm_bytes == 0:
            if rec.hbm_seconds or rec.hbm_channels_used:
                raise SimulationError(
                    f"task {i}: moves no bytes but claims HBM time "
                    f"{rec.hbm_seconds} on {rec.hbm_channels_used} channels"
                )
            if rec.hbm_start or rec.hbm_end:
                raise SimulationError(
                    f"task {i}: moves no bytes but occupies the HBM span "
                    f"[{rec.hbm_start}, {rec.hbm_end}]"
                )
        else:
            if rec.hbm_channels_used < 1:
                raise SimulationError(
                    f"task {i}: moves {rec.hbm_bytes} bytes on zero channels"
                )
            if rec.hbm_channels_used > config.hbm_channels:
                raise SimulationError(
                    f"task {i}: uses {rec.hbm_channels_used} channels, "
                    f"budget is {config.hbm_channels}"
                )
            if rec.hbm_start < rec.ready_seconds - eps:
                raise SimulationError(
                    f"task {i}: HBM stream granted at {rec.hbm_start} "
                    f"before ready {rec.ready_seconds}"
                )
            if rec.hbm_end < rec.hbm_start - eps:
                raise SimulationError(
                    f"task {i}: HBM span [{rec.hbm_start}, {rec.hbm_end}] "
                    "is reversed"
                )
            if rec.hbm_end > rec.end + eps:
                raise SimulationError(
                    f"task {i}: HBM stream ends at {rec.hbm_end} after "
                    f"task end {rec.end}"
                )

    # --- no overlap per (core, instance) ------------------------------
    by_instance: dict[tuple[str, int], list[tuple[float, float, int]]] = {}
    for i, rec in enumerate(records):
        by_instance.setdefault((rec.core, rec.instance), []).append(
            (rec.start, rec.end, i)
        )
    for (core, instance), spans in by_instance.items():
        spans.sort()
        for (s0, e0, i0), (s1, e1, i1) in zip(spans, spans[1:]):
            if s1 < e0 - eps:
                raise SimulationError(
                    f"core {core}#{instance} double-booked: task {i0} "
                    f"[{s0:.3e}, {e0:.3e}] overlaps task {i1} "
                    f"[{s1:.3e}, {e1:.3e}]"
                )

    # --- HBM channel budget -------------------------------------------
    # Sweep transfer edges; at every instant the engaged channel slots
    # must fit the budget. Shrink each span by eps so abutting
    # transfers (one ends exactly when the next starts) don't double
    # count.
    edges: list[tuple[float, int]] = []
    for rec in records:
        if rec.hbm_bytes and rec.hbm_end - rec.hbm_start > eps:
            edges.append((rec.hbm_start + eps, rec.hbm_channels_used))
            edges.append((rec.hbm_end - eps, -rec.hbm_channels_used))
    edges.sort()
    engaged = 0
    for t, delta in edges:
        engaged += delta
        if engaged > config.hbm_channels:
            raise SimulationError(
                f"HBM over-subscribed at t={t:.3e}: {engaged} channel "
                f"slots engaged, budget is {config.hbm_channels}"
            )

    # --- dependency ordering ------------------------------------------
    if program is not None:
        tasks = program.tasks
        if len(tasks) != len(records):
            raise SimulationError(
                f"program has {len(tasks)} tasks but the result recorded "
                f"{len(records)}"
            )
        for i, (task, rec) in enumerate(zip(tasks, records)):
            for dep in task.depends_on:
                dep_end = records[dep].end
                if rec.start < dep_end - eps:
                    raise SimulationError(
                        f"task {i} started at {rec.start} before "
                        f"dependency {dep} finished at {dep_end}"
                    )
                if rec.hbm_bytes and rec.hbm_start < dep_end - eps:
                    raise SimulationError(
                        f"task {i} streamed at {rec.hbm_start} before "
                        f"dependency {dep} finished at {dep_end}"
                    )

    # --- aggregate consistency ----------------------------------------
    busy_sum: dict[str, float] = {}
    stall_sum: dict[str, float] = {}
    for rec in records:
        held = rec.end - rec.start
        busy_sum[rec.core] = busy_sum.get(rec.core, 0.0) + (
            held - rec.stall_seconds
        )
        stall_sum[rec.core] = stall_sum.get(rec.core, 0.0) + rec.stall_seconds
    agg_eps = max(eps, rel_eps * makespan * max(1, len(records)))
    for core, busy in result.core_busy_seconds.items():
        if abs(busy - busy_sum.get(core, 0.0)) > agg_eps:
            raise SimulationError(
                f"core {core}: core_busy_seconds {busy} != record sum "
                f"{busy_sum.get(core, 0.0)}"
            )
    for core, stall in result.core_stall_seconds.items():
        if abs(stall - stall_sum.get(core, 0.0)) > agg_eps:
            raise SimulationError(
                f"core {core}: core_stall_seconds {stall} != record sum "
                f"{stall_sum.get(core, 0.0)}"
            )
    # Per-core conservation: held + idle spans the instances' makespan.
    instances: dict[str, int] = {}
    for rec in records:
        instances[rec.core] = max(
            instances.get(rec.core, 1), rec.instance + 1
        )
    for core, count in instances.items():
        held = busy_sum[core] + stall_sum[core]
        capacity = count * makespan
        if held > capacity + agg_eps:
            raise SimulationError(
                f"core {core}: held time {held} exceeds capacity "
                f"{capacity} ({count} instance(s) x makespan)"
            )
