"""Per-core cycle models for the five operator arrays.

Each model answers: how many core cycles does one task take on this
array under the given :class:`~repro.sim.config.HardwareConfig`? The
formulas follow the paper's architecture:

- **MA / MM / SBT** — fully pipelined element-wise arrays, ``lanes``
  elements per cycle plus a fixed pipeline-fill latency (MM/SBT are
  deeper than MA because of the Barrett datapath).
- **NTT / INTT** — ``ceil(log2(N)/k)`` fused phases (Table III); each
  phase streams the N-point limb through the 2^k-input cores at
  ``lanes`` elements per cycle, with a per-phase reconfiguration
  bubble that grows with the fused twiddle count (the Table II
  overhead that makes k > 3 lose, Fig. 10).
- **Automorphism** — HFAuto's four stages move ``lanes`` elements per
  cycle (:meth:`HFAutoPlan.total_cycles`); the naive Auto ablation
  resolves one index map per cycle (Table VIII: N cycles per limb).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.ntt.fusion import FusionCostModel
from repro.sim.config import HardwareConfig
from repro.sim.tasks import OperatorKind, OperatorTask

#: Pipeline-fill depths (cycles) per core array.
PIPELINE_DEPTH = {
    "MA": 4,
    "MM": 12,      # multiplier + Barrett reduce
    "SBT": 8,      # shared Barrett reduction datapath
    "NTT": 16,     # butterfly network + reduce
    "Automorphism": 6,
}

#: Per-phase reconfiguration bubble of the NTT core, in cycles, per
#: fused twiddle factor that must be staged into BRAM.
NTT_TWIDDLE_STAGE_CYCLES = 2.0

#: DSP multiplies each NTT lane can issue per cycle. A fused radix-2^k
#: output needs B-1 = 2^k - 1 accumulated multiplies; once that exceeds
#: the budget the core's sustained rate drops below one element per
#: lane per cycle — the effect that makes k > 3 lose in Fig. 10.
NTT_MULTS_PER_LANE = 8


@dataclass(frozen=True)
class CoreTiming:
    """Cycle cost of one task on its core array."""

    cycles: float
    core: str


class CoreModel:
    """Cycle model bound to one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config
        self._fusion = FusionCostModel(config.ntt_radix_log2)

    # ------------------------------------------------------------------
    def elementwise_cycles(self, task: OperatorTask, depth: int) -> float:
        """Streaming cycles for an element-wise array (MA/MM/SBT)."""
        return task.elements / self.config.lanes + depth

    def ntt_cycles(self, task: OperatorTask) -> float:
        """Fused-NTT cycles: phases x (stream + twiddle staging).

        One limb of degree N costs ``phases * N / lanes`` streaming
        cycles; limbs stream back-to-back through the pipelined cores.
        The per-phase bubble charges the Table II twiddle overhead.
        """
        n = task.degree
        phases = self._fusion.phases(n)
        limb_count = task.elements / n
        # Throughput cap: each output accumulates B-1 multiplies; the
        # lane's DSP budget sustains NTT_MULTS_PER_LANE per cycle.
        rate_penalty = max(
            1.0, self._fusion.mults_per_output() / NTT_MULTS_PER_LANE
        )
        stream = (
            phases * (n / self.config.lanes) * limb_count * rate_penalty
        )
        bubble = (
            phases
            * NTT_TWIDDLE_STAGE_CYCLES
            * self._fusion.fused_twiddle_count()
        )
        return stream + bubble + PIPELINE_DEPTH["NTT"]

    def automorphism_cycles(self, task: OperatorTask) -> float:
        """HFAuto (4 sub-vector stages) or naive Auto (1 element/cycle)."""
        n = task.degree
        limb_count = task.elements / n
        if not self.config.use_hfauto:
            return n * limb_count + PIPELINE_DEPTH["Automorphism"]
        c = min(self.config.lanes, n)
        r = n // c
        per_limb = 3 * r + c  # row map, fifo shift, dim switch, col map
        return per_limb * limb_count + PIPELINE_DEPTH["Automorphism"]

    # ------------------------------------------------------------------
    def task_cycles(self, task: OperatorTask) -> CoreTiming:
        """Dispatch to the right core model."""
        kind = task.kind
        if kind is OperatorKind.MA:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["MA"]), "MA"
            )
        if kind is OperatorKind.MM:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["MM"]), "MM"
            )
        if kind is OperatorKind.SBT:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["SBT"]), "MM"
            )
        if kind in (OperatorKind.NTT, OperatorKind.INTT):
            return CoreTiming(self.ntt_cycles(task), "NTT")
        if kind is OperatorKind.AUTO:
            return CoreTiming(
                self.automorphism_cycles(task), "Automorphism"
            )
        raise SimulationError(f"no cycle model for task kind {kind}")

    def task_seconds(self, task: OperatorTask) -> float:
        """Wall-clock compute time of one task."""
        return self.task_cycles(task).cycles * self.config.cycle_seconds
