"""Per-core cycle models for the five operator arrays.

Each model answers: how many core cycles does one task take on this
array under the given :class:`~repro.sim.config.HardwareConfig`? The
formulas follow the paper's architecture:

- **MA / MM / SBT** — fully pipelined element-wise arrays, ``lanes``
  elements per cycle plus a fixed pipeline-fill latency (MM/SBT are
  deeper than MA because of the Barrett datapath).
- **NTT / INTT** — dispatched to the NTT core microarchitecture the
  config selects (:mod:`repro.sim.ntt_cores`). The default
  ``poseidon`` variant is the paper's fused radix-2^k core:
  ``ceil(log2(N)/k)`` fused phases (Table III), each streaming the
  N-point limb through the 2^k-input cores at ``lanes`` elements per
  cycle, with a per-phase reconfiguration bubble that grows with the
  fused twiddle count (the Table II overhead that makes k > 3 lose,
  Fig. 10). ``hermes``, ``hf-ntt`` and ``digit-serial`` model the
  competing microarchitectures from PAPERS.md (see ``docs/CORES.md``).
- **Automorphism** — HFAuto's four stages move ``lanes`` elements per
  cycle; the per-limb cost comes from
  :func:`repro.automorphism.hfauto.hfauto_cycles_per_limb`, the same
  formula behind :meth:`HFAutoPlan.total_cycles`, so the functional
  plan and the cycle model cannot drift apart. The naive Auto
  ablation resolves one index map per cycle (Table VIII: N cycles per
  limb).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automorphism.hfauto import hfauto_cycles_per_limb
from repro.errors import SimulationError
from repro.sim.config import HardwareConfig
from repro.sim.ntt_cores import (  # noqa: F401  (re-exported for compat)
    NTT_MULTS_PER_LANE,
    NTT_TWIDDLE_STAGE_CYCLES,
    NTTCoreModel,
    get_ntt_core,
)
from repro.sim.tasks import OperatorKind, OperatorTask

#: Pipeline-fill depths (cycles) per core array. The NTT entry is the
#: fill of the default ``poseidon`` variant; other NTT variants carry
#: their own fill in :mod:`repro.sim.ntt_cores`.
PIPELINE_DEPTH = {
    "MA": 4,
    "MM": 12,      # multiplier + Barrett reduce
    "SBT": 8,      # shared Barrett reduction datapath
    "NTT": 16,     # butterfly network + reduce
    "Automorphism": 6,
}


@dataclass(frozen=True)
class CoreTiming:
    """Cycle cost of one task on its core array."""

    cycles: float
    core: str


class CoreModel:
    """Cycle model bound to one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config
        self.ntt_core_model: NTTCoreModel = get_ntt_core(config.ntt_core)

    # ------------------------------------------------------------------
    def elementwise_cycles(self, task: OperatorTask, depth: int) -> float:
        """Streaming cycles for an element-wise array (MA/MM/SBT)."""
        return task.elements / self.config.lanes + depth

    def ntt_cycles(self, task: OperatorTask) -> float:
        """NTT/INTT cycles under the configured core variant.

        Delegates to the selected :class:`NTTCoreModel`; the default
        ``poseidon`` variant reproduces the paper's fused radix-2^k
        formula byte-for-byte (stream + twiddle-staging bubble +
        pipeline fill; see :mod:`repro.sim.ntt_cores`).
        """
        return self.ntt_core_model.cycles(task, self.config)

    def automorphism_cycles(self, task: OperatorTask) -> float:
        """HFAuto (4 sub-vector stages) or naive Auto (1 element/cycle).

        The HFAuto per-limb cost is
        :func:`~repro.automorphism.hfauto.hfauto_cycles_per_limb` —
        the sum of the four stage costs (``3R + C``) that
        :meth:`HFAutoPlan.total_cycles` also reports.
        """
        n = task.degree
        limb_count = task.elements / n
        if not self.config.use_hfauto:
            return n * limb_count + PIPELINE_DEPTH["Automorphism"]
        c = min(self.config.lanes, n)
        per_limb = hfauto_cycles_per_limb(n, c)
        return per_limb * limb_count + PIPELINE_DEPTH["Automorphism"]

    # ------------------------------------------------------------------
    def task_cycles(self, task: OperatorTask) -> CoreTiming:
        """Dispatch to the right core model."""
        kind = task.kind
        if kind is OperatorKind.MA:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["MA"]), "MA"
            )
        if kind is OperatorKind.MM:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["MM"]), "MM"
            )
        if kind is OperatorKind.SBT:
            return CoreTiming(
                self.elementwise_cycles(task, PIPELINE_DEPTH["SBT"]), "MM"
            )
        if kind in (OperatorKind.NTT, OperatorKind.INTT):
            return CoreTiming(self.ntt_cycles(task), "NTT")
        if kind is OperatorKind.AUTO:
            return CoreTiming(
                self.automorphism_cycles(task), "Automorphism"
            )
        raise SimulationError(f"no cycle model for task kind {kind}")

    def task_seconds(self, task: OperatorTask) -> float:
        """Wall-clock compute time of one task."""
        return self.task_cycles(task).cycles * self.config.cycle_seconds
