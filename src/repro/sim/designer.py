"""Design-space exploration: pick an accelerator configuration.

The paper hand-tunes three key parameters — NTT-fusion degree k, lane
count, scratchpad size — and argues each choice (Fig. 10, Fig. 11,
§VI). This module automates that exercise: grid-search configurations
under the target FPGA's resource budget, evaluate each on a workload
with the cycle model, and return the Pareto frontier over (time,
energy, resources).

It reproduces the paper's conclusions as a *search result* rather than
a narrative: with the U280 budget and any of the four benchmarks, the
winner lands on k = 3 and the widest lane count that fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.config import HardwareConfig
from repro.sim.energy import EnergyModel
from repro.sim.engine import PoseidonSimulator
from repro.sim.resources import ResourceModel, ResourceVector

#: Xilinx Alveo U280 budgets (post-place&route usable fractions).
U280_BUDGET = {"lut": 1_200_000, "ff": 2_400_000, "dsp": 9_024,
               "bram": 1_800}


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration."""

    lanes: int
    radix_log2: int
    seconds: float
    energy_joules: float
    edp: float
    resources: ResourceVector
    fits: bool
    ntt_core: str = "poseidon"

    @property
    def label(self) -> str:
        label = f"lanes={self.lanes}, k={self.radix_log2}"
        if self.ntt_core != "poseidon":
            label += f", ntt_core={self.ntt_core}"
        return label


def _within_budget(resources: ResourceVector, budget: dict) -> bool:
    return (
        resources.lut <= budget["lut"]
        and resources.ff <= budget["ff"]
        and resources.dsp <= budget["dsp"]
        and resources.bram <= budget["bram"]
    )


class DesignExplorer:
    """Grid search over (lanes, radix) for one compiled workload.

    Args:
        program: the compiled operator program to optimize for.
        budget: FPGA resource limits (defaults to the U280).
        base_config: configuration every grid point is derived from
            (defaults to the paper's U280 config). Caller-customized
            fields — ``use_hfauto``, ``core_instances``, ``ntt_core``,
            bandwidths — survive the sweep; only lanes and radix are
            overridden per point.
    """

    def __init__(
        self,
        program,
        *,
        budget: dict | None = None,
        base_config: HardwareConfig | None = None,
    ):
        self.program = program
        self.budget = dict(U280_BUDGET if budget is None else budget)
        self.base_config = (
            HardwareConfig() if base_config is None else base_config
        )

    def evaluate(self, lanes: int, radix_log2: int) -> DesignPoint:
        """Simulate one configuration and price its resources.

        The point's config is ``base_config`` with lanes and radix
        swapped in — never a fresh default, so customizations on the
        base (HFAuto ablation, replicated core arrays, the NTT core
        variant) are honored at every grid point.
        """
        config = self.base_config.with_lanes(lanes).with_radix(radix_log2)
        result = PoseidonSimulator(config).run(self.program)
        energy_model = EnergyModel(config)
        energy = energy_model.breakdown(result, self.program).total
        resources = ResourceModel(config).total(include_scratchpad=False)
        return DesignPoint(
            lanes=lanes,
            radix_log2=radix_log2,
            seconds=result.total_seconds,
            energy_joules=energy,
            edp=energy * result.total_seconds,
            resources=resources,
            fits=_within_budget(resources, self.budget),
            ntt_core=config.ntt_core,
        )

    def sweep(
        self,
        *,
        lanes_options=(64, 128, 256, 512),
        radix_options=(2, 3, 4, 5),
    ) -> list[DesignPoint]:
        """Evaluate the whole grid."""
        return [
            self.evaluate(lanes, radix)
            for lanes in lanes_options
            for radix in radix_options
        ]

    def best(
        self,
        *,
        objective: str = "seconds",
        lanes_options=(64, 128, 256, 512),
        radix_options=(2, 3, 4, 5),
    ) -> DesignPoint:
        """The best in-budget point by ``objective`` (seconds or edp)."""
        if objective not in ("seconds", "edp", "energy_joules"):
            raise SimulationError(
                f"unknown objective {objective!r}; use seconds/edp/"
                "energy_joules"
            )
        candidates = [
            p
            for p in self.sweep(
                lanes_options=lanes_options, radix_options=radix_options
            )
            if p.fits
        ]
        if not candidates:
            raise SimulationError("no configuration fits the budget")
        return min(candidates, key=lambda p: getattr(p, objective))

    def pareto(self, points=None) -> list[DesignPoint]:
        """Pareto frontier over (seconds, energy, LUTs) of in-budget
        points — no point on the frontier is dominated in all three."""
        points = [
            p for p in (points if points is not None else self.sweep())
            if p.fits
        ]

        def dominates(a: DesignPoint, b: DesignPoint) -> bool:
            return (
                a.seconds <= b.seconds
                and a.energy_joules <= b.energy_joules
                and a.resources.lut <= b.resources.lut
                and (
                    a.seconds < b.seconds
                    or a.energy_joules < b.energy_joules
                    or a.resources.lut < b.resources.lut
                )
            )

        return [
            p for p in points
            if not any(dominates(q, p) for q in points if q is not p)
        ]
