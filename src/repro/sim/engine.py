"""The discrete-event scheduler: operator tasks onto shared resources.

Resources:

- one array per operator core type ("MA", "MM", "NTT", "Automorphism"),
  each processing one task at a time (the arrays are internally
  SIMD-wide; task-level concurrency across *different* arrays is what
  the paper's operator reuse exploits);
- the HBM, a shared bandwidth channel whose occupancy serializes.

A task starts when its dependencies have finished and its core array is
free; its HBM traffic is overlapped with compute (double-buffered
streaming), so the task occupies the core for
``max(compute, own-hbm-time-after-contention)``. Busy-time statistics
per core and per FHE basic operation feed Figs. 7/8/9, and HBM
occupancy feeds the Table VII bandwidth-utilization analysis.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.obs import metrics
from repro.sim.config import HardwareConfig
from repro.sim.cores import CoreModel
from repro.sim.memory import MemoryModel

if TYPE_CHECKING:  # avoid a circular import; engine only needs the type
    from repro.compiler.program import OperatorProgram

CORE_NAMES = ("MA", "MM", "NTT", "Automorphism")


@dataclass
class TaskRecord:
    """Scheduling outcome of one task.

    ``queue_wait_seconds`` is the time the task sat ready (dependencies
    satisfied) waiting for its core array; ``hbm_start``/``hbm_end``
    bound its slot on the shared HBM channel (both zero when the task
    moves no off-chip bytes). These feed the Chrome-trace exporter's
    per-core and HBM tracks (:mod:`repro.obs.trace_export`).
    """

    start: float
    end: float
    core: str
    compute_seconds: float
    hbm_seconds: float
    hbm_bytes: int
    op_label: str
    queue_wait_seconds: float = 0.0
    hbm_start: float = 0.0
    hbm_end: float = 0.0


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated program.

    Attributes:
        total_seconds: makespan.
        core_busy_seconds: busy time per core array.
        op_seconds: attributed busy time per FHE basic operation.
        operator_seconds: attributed busy time per operator core,
            nested by basic operation (Fig. 7 data).
        hbm_busy_seconds: time the HBM channel was occupied.
        hbm_bytes: total off-chip traffic.
        task_records: per-task schedule (ordered as submitted).
    """

    total_seconds: float
    core_busy_seconds: dict[str, float]
    op_seconds: dict[str, float]
    operator_seconds: dict[str, dict[str, float]]
    hbm_busy_seconds: float
    hbm_bytes: int
    task_records: list[TaskRecord] = field(repr=False, default_factory=list)

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the run during which the HBM was streaming."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.hbm_busy_seconds / self.total_seconds)

    def achieved_bandwidth(self, config: HardwareConfig) -> float:
        """Average delivered HBM bandwidth in bytes/second."""
        if self.total_seconds <= 0:
            return 0.0
        return self.hbm_bytes / self.total_seconds

    def core_share(self) -> dict[str, float]:
        """Normalized busy-time share per core (Fig. 9-style)."""
        total = sum(self.core_busy_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.core_busy_seconds}
        return {
            name: busy / total
            for name, busy in self.core_busy_seconds.items()
        }

    def op_share(self) -> dict[str, float]:
        """Normalized time share per basic operation (Fig. 8-style)."""
        total = sum(self.op_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.op_seconds}
        return {name: t / total for name, t in self.op_seconds.items()}


class PoseidonSimulator:
    """Schedules compiled operator programs on the modelled hardware."""

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig()
        self.cores = CoreModel(self.config)
        self.memory = MemoryModel(self.config)

    # ------------------------------------------------------------------
    def run(self, program: "OperatorProgram") -> SimulationResult:
        """Simulate a compiled program and return aggregate statistics."""
        tasks = program.tasks
        finish = [0.0] * len(tasks)
        core_free: dict[str, float] = {name: 0.0 for name in CORE_NAMES}
        hbm_free = 0.0
        core_busy: dict[str, float] = defaultdict(float)
        op_seconds: dict[str, float] = defaultdict(float)
        operator_seconds: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        hbm_busy = 0.0
        hbm_bytes_total = 0
        records: list[TaskRecord] = []
        makespan = 0.0

        for i, task in enumerate(tasks):
            timing = self.cores.task_cycles(task)
            if timing.core not in core_free:
                raise SchedulingError(
                    f"task {i} targets unknown core {timing.core!r}"
                )
            compute = timing.cycles * self.config.cycle_seconds
            mem = self.memory.task_timing(task)

            deps_done = 0.0
            for dep in task.depends_on:
                if dep < 0 or dep >= i:
                    raise SchedulingError(
                        f"task {i} has forward/invalid dependency {dep}"
                    )
                deps_done = max(deps_done, finish[dep])

            # HBM occupancy: traffic serializes on the shared channel.
            hbm_start = max(deps_done, hbm_free)
            hbm_end = hbm_start + mem.hbm_seconds
            hbm_free = hbm_end
            hbm_busy += mem.hbm_seconds
            hbm_bytes_total += mem.hbm_bytes

            # Core occupancy: starts once deps + input stream allow;
            # double-buffering overlaps the stream with compute, so the
            # core holds for max(compute, residual stream time).
            start = max(deps_done, core_free[timing.core])
            stream_bound = hbm_end
            duration = max(compute, mem.spad_seconds)
            end = max(start + duration, stream_bound)
            core_free[timing.core] = end
            finish[i] = end
            makespan = max(makespan, end)

            busy = end - start
            core_busy[timing.core] += busy
            label = task.op_label or "unlabelled"
            op_seconds[label] += busy
            operator_seconds[label][timing.core] += busy
            records.append(
                TaskRecord(
                    start=start,
                    end=end,
                    core=timing.core,
                    compute_seconds=compute,
                    hbm_seconds=mem.hbm_seconds,
                    hbm_bytes=mem.hbm_bytes,
                    op_label=label,
                    queue_wait_seconds=start - deps_done,
                    hbm_start=hbm_start if mem.hbm_seconds > 0 else 0.0,
                    hbm_end=hbm_end if mem.hbm_seconds > 0 else 0.0,
                )
            )

        reg = metrics.active()
        if reg is not None:
            self._record_metrics(reg, records, makespan, hbm_busy, core_busy)

        return SimulationResult(
            total_seconds=makespan,
            core_busy_seconds=dict(core_busy),
            op_seconds=dict(op_seconds),
            operator_seconds={
                k: dict(v) for k, v in operator_seconds.items()
            },
            hbm_busy_seconds=hbm_busy,
            hbm_bytes=hbm_bytes_total,
            task_records=records,
        )

    @staticmethod
    def _record_metrics(reg, records, makespan, hbm_busy, core_busy) -> None:
        """Publish one run's spans into the active metrics registry.

        Kept out of the scheduling loop so the disabled path costs a
        single ``metrics.active()`` check per run.
        """
        reg.counter("sim.tasks").inc(len(records))
        reg.gauge("sim.makespan_seconds").set(makespan)
        reg.gauge("sim.hbm.busy_seconds").set(hbm_busy)
        for core, busy in core_busy.items():
            reg.counter(f"sim.core.{core}.busy_seconds").inc(busy)
        wait = reg.histogram("sim.task.queue_wait_seconds")
        busy_h = reg.histogram("sim.task.busy_seconds")
        hbm_bytes = reg.counter("sim.hbm.bytes")
        for record in records:
            wait.observe(record.queue_wait_seconds)
            busy_h.observe(record.end - record.start)
            hbm_bytes.inc(record.hbm_bytes)
            reg.counter(f"sim.op.{record.op_label}.tasks").inc()

    # ------------------------------------------------------------------
    def run_ops(self, ops) -> SimulationResult:
        """Convenience: compile an op stream then simulate it."""
        from repro.compiler.program import compile_trace

        return self.run(compile_trace(ops))

    def operation_seconds(self, op) -> float:
        """Makespan of a single basic operation (Table IV latencies)."""
        return self.run_ops([op]).total_seconds

    def operations_per_second(self, op) -> float:
        """Steady-state throughput of one basic operation."""
        seconds = self.operation_seconds(op)
        if seconds <= 0:
            raise SchedulingError("operation simulated to zero time")
        return 1.0 / seconds

    def sustained_throughput(self, op, *, batch: int = 8) -> float:
        """Throughput of a pipelined batch of independent operations.

        Independent instances overlap across core arrays and the HBM,
        so the sustained rate can exceed 1/latency — the number a
        served accelerator actually delivers (and closer to how
        hardware papers report ops/s).
        """
        from repro.compiler.program import compile_trace

        if batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        program = compile_trace([op] * batch, op_parallel=True)
        result = self.run(program)
        if result.total_seconds <= 0:
            raise SchedulingError("batch simulated to zero time")
        return batch / result.total_seconds
