"""The discrete-event scheduler: operator tasks onto shared resources.

Resources:

- one array per operator core type ("MA", "MM", "NTT", "Automorphism"),
  each with :meth:`HardwareConfig.instances_of` identical instances
  (the paper's prototype has one of each; the arrays are internally
  SIMD-wide, so task-level concurrency across *different* arrays is
  what the paper's operator reuse exploits);
- the HBM, modelled as ``hbm_channels`` pseudo-channel slots; a
  transfer occupies :meth:`MemoryModel.channels_for` of them, so small
  transfers can stream concurrently while full-stripe transfers
  serialize.

Scheduling is event-driven and out of order: a task enters the ready
queue when its dependencies finish, its off-chip transfer is granted
channel slots as soon as they are free (in ready order, not submission
order), and the task dispatches onto the first free instance of its
core array. A ready task is never blocked behind a stalled
earlier-submitted one — the head-of-line hazard the one-pass in-order
scheduler (kept as :func:`in_order_makespan` for comparison) suffers.

Busy time and stall time are attributed separately: a task occupies
its core for ``max(compute, residual stream time)``, but only the
compute-occupied part counts as busy; the tail spent waiting on the
HBM stream is recorded as ``stall_seconds``. Busy-time statistics per
core and per FHE basic operation feed Figs. 7/8/9, and HBM occupancy
feeds the Table VII bandwidth-utilization analysis.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.obs import metrics
from repro.sim.config import CORE_ARRAYS, HardwareConfig
from repro.sim.cores import CoreModel
from repro.sim.memory import MemoryModel

if TYPE_CHECKING:  # avoid a circular import; engine only needs the type
    from repro.compiler.program import OperatorProgram

#: Kept as the canonical core list (re-exported for compatibility).
CORE_NAMES = CORE_ARRAYS


@dataclass(slots=True)
class TaskRecord:
    """Scheduling outcome of one task.

    Wait/stall semantics:

    - ``ready_seconds`` — when every dependency had finished.
    - ``core_wait_seconds`` — ``start - ready``: time spent ready but
      waiting for a free instance of the core array.
    - ``hbm_wait_seconds`` — ``hbm_start - ready``: time the task's
      off-chip transfer sat ready waiting for HBM channel slots (zero
      when the task moves no off-chip bytes).
    - ``queue_wait_seconds`` — ``max(core_wait, hbm_wait)``: total
      time the task sat ready before *both* its core dispatch and its
      HBM grant were underway. This includes HBM arbitration, not just
      core contention.
    - ``stall_seconds`` — ``end - start - max(compute, spad)``: time
      the core instance was held but idle, waiting for the task's own
      residual HBM stream. Busy attribution everywhere downstream
      (``core_busy_seconds``, Figs. 7/8/9) excludes this.

    ``hbm_start``/``hbm_end`` bound the task's slot on the HBM
    channels and ``hbm_channels_used`` counts the pseudo-channel slots
    it occupied (all zero when the task moves no off-chip bytes).
    ``instance`` is which instance of the core array ran the task.
    These feed the Chrome-trace exporter's per-instance, stall and HBM
    tracks (:mod:`repro.obs.trace_export`).
    """

    start: float
    end: float
    core: str
    compute_seconds: float
    hbm_seconds: float
    hbm_bytes: int
    op_label: str
    queue_wait_seconds: float = 0.0
    hbm_start: float = 0.0
    hbm_end: float = 0.0
    instance: int = 0
    ready_seconds: float = 0.0
    stall_seconds: float = 0.0
    core_wait_seconds: float = 0.0
    hbm_wait_seconds: float = 0.0
    hbm_channels_used: int = 0


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated program.

    Attributes:
        total_seconds: makespan.
        core_busy_seconds: compute-occupied time per core array
            (stall-free: HBM-stall tails are *not* counted as busy).
        op_seconds: attributed busy time per FHE basic operation.
        operator_seconds: attributed busy time per operator core,
            nested by basic operation (Fig. 7 data).
        hbm_busy_seconds: time at least one HBM channel was streaming
            (union of transfer intervals, so it never exceeds the
            makespan).
        hbm_bytes: total off-chip traffic.
        task_records: per-task schedule (ordered as submitted).
        core_stall_seconds: per-core time instances were held but
            stalled on their task's residual HBM stream.
    """

    total_seconds: float
    core_busy_seconds: dict[str, float]
    op_seconds: dict[str, float]
    operator_seconds: dict[str, dict[str, float]]
    hbm_busy_seconds: float
    hbm_bytes: int
    task_records: list[TaskRecord] = field(repr=False, default_factory=list)
    core_stall_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the run during which the HBM was streaming."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.hbm_busy_seconds / self.total_seconds)

    @property
    def stall_seconds(self) -> float:
        """Total core-held-but-stalled time across all arrays."""
        return sum(self.core_stall_seconds.values())

    def achieved_bandwidth(self) -> float:
        """Average delivered HBM bandwidth in bytes/second."""
        if self.total_seconds <= 0:
            return 0.0
        return self.hbm_bytes / self.total_seconds

    def delivered_bandwidth_fraction(self, config: HardwareConfig) -> float:
        """Achieved bandwidth as a fraction of the configured peak."""
        return self.achieved_bandwidth() / config.hbm_bandwidth

    def core_share(self) -> dict[str, float]:
        """Normalized busy-time share per core (Fig. 9-style)."""
        total = sum(self.core_busy_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.core_busy_seconds}
        return {
            name: busy / total
            for name, busy in self.core_busy_seconds.items()
        }

    def op_share(self) -> dict[str, float]:
        """Normalized time share per basic operation (Fig. 8-style)."""
        total = sum(self.op_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.op_seconds}
        return {name: t / total for name, t in self.op_seconds.items()}


def _merged_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


#: Event kinds, ordered so arrivals at a time t are visible before the
#: grant/dispatch passes triggered by releases at the same t, and both
#: before completion notifications at the same t.
_EV_READY = 0
_EV_RELEASE = 1
_EV_COMPLETE = 2


@dataclass
class Submission:
    """One admitted task list on a :class:`ScheduleEngine`.

    ``finish_seconds`` stays ``None`` until every task in the
    submission has committed its end time. ``base``/``count`` locate
    the submission's tasks in the engine's global index space (and in
    the eventual :class:`SimulationResult` record list).
    """

    index: int
    base: int
    count: int
    release_seconds: float
    label: str = ""
    finish_seconds: float | None = None
    _remaining: int = field(repr=False, default=0)
    _max_end: float = field(repr=False, default=0.0)

    @property
    def done(self) -> bool:
        return self.finish_seconds is not None


@dataclass(frozen=True)
class CrashReport:
    """Outcome of :meth:`ScheduleEngine.crash`.

    ``lost`` are the submissions whose completion had not been
    *observed* by the crash instant — their unfinished tasks were
    cancelled, their schedules truncated, and their ``finish_seconds``
    reset to ``None``. The serving layer re-routes or abandons them.
    """

    at_seconds: float
    lost: tuple[Submission, ...]
    kept_tasks: int
    dropped_tasks: int


class ScheduleEngine:
    """Incremental ("warm") event-driven scheduler.

    Holds the live resource state — per-instance core free times, HBM
    pseudo-channel slots, ready/grant queues and the event heap — so
    task lists can be :meth:`submit`-ted at *any* simulated time, while
    previously admitted work is still in flight. The open-system
    serving layer (:mod:`repro.serve`) interleaves admissions with
    :meth:`advance_until`; the closed-system
    :meth:`PoseidonSimulator.run` is the special case of one submission
    at t=0 followed by :meth:`drain`.

    Scheduling semantics are identical to the one-shot engine: a task
    becomes ready at ``max(release, dependency ends)``, transfers are
    granted channel slots in ready order with no head-of-line blocking,
    and a ready task dispatches onto the first free instance of its
    core array.
    """

    def __init__(
        self,
        config: HardwareConfig | None = None,
        *,
        cores: CoreModel | None = None,
        memory: MemoryModel | None = None,
        epoch: float = 0.0,
    ):
        if epoch < 0:
            raise SchedulingError(
                f"engine epoch must be >= 0, got {epoch}"
            )
        self.config = config or HardwareConfig()
        self.cores = cores or CoreModel(self.config)
        self.memory = memory or MemoryModel(self.config)
        cfg = self.config
        # Resource state: per-instance core free times (None = occupied
        # by a task whose stream has not been granted yet, so its end is
        # still unknown) and per-pseudo-channel HBM slot free times.
        self._inst_free: dict[str, list[float | None]] = {
            name: [0.0] * cfg.instances_of(name) for name in CORE_NAMES
        }
        self._chan_free: list[float] = [0.0] * cfg.hbm_channels
        self._events: list[tuple[float, int, int]] = []
        # Timestamps with a release event already queued. Releases are
        # anonymous pass triggers (payload -1), so queueing the same
        # instant twice only burns heap traffic — finalize/grant dedupe
        # through this set, and _step clears an entry when it fires.
        self._release_times: set[float] = set()
        self._core_queue: dict[str, list[tuple[float, int]]] = {
            name: [] for name in CORE_NAMES
        }
        self._hbm_queue: list[tuple[float, int]] = []
        self._hbm_intervals: list[tuple[float, float]] = []
        self._finished = 0
        # ``epoch`` lets an instance be born mid-run on a shared master
        # clock (cluster autoscaling): the engine starts at that
        # simulated time and rejects submissions from before it, just
        # as if it had idled since t=0.
        self._now = epoch
        # Per-task state, indexed by global task id (grows on submit).
        self._tasks: list = []
        self._timings: list = []
        self._mems: list = []
        self._durations: list[float] = []
        self._remaining: list[int] = []
        self._dependents: list[list[int]] = []
        self._ready: list[float] = []
        self._start: list[float | None] = []
        self._hbm_span: list[tuple[float, float] | None] = []
        self._end: list[float | None] = []
        self._instance_of: list[int] = []
        self._owner: list[Submission] = []
        self.submissions: list[Submission] = []
        #: Submissions in the order they completed (serving layer polls
        #: this after each :meth:`advance_until`).
        self.completions: list[Submission] = []
        # Set by crash(): a dead engine rejects submissions and time
        # advances; its truncated schedule stays readable via result().
        self._dead = False

    # -- admission -----------------------------------------------------
    def submit(
        self,
        tasks,
        *,
        release: float = 0.0,
        label: str = "",
        compute_scale: float = 1.0,
        hbm_scale: float = 1.0,
    ) -> Submission:
        """Admit a task list; its tasks become ready no earlier than
        ``release``.

        Dependency indices in ``tasks`` are local to the list (the
        compiler's convention) and are re-based onto the engine's
        global index space.

        ``compute_scale`` multiplies each task's core occupancy and
        ``hbm_scale`` each transfer's channel time — the fault layer's
        straggler and HBM-degradation derates, applied at admission.
        Both default to 1.0, in which case this path is arithmetically
        untouched (no multiplication happens at all).
        """
        if self._dead:
            raise SchedulingError(
                f"engine crashed at t={self._now}; restart as a fresh "
                "epoch to submit again"
            )
        if compute_scale <= 0 or hbm_scale <= 0:
            raise SchedulingError(
                "derate scales must be positive, got "
                f"compute_scale={compute_scale} hbm_scale={hbm_scale}"
            )
        if release < self._now:
            raise SchedulingError(
                f"cannot submit in the past: release {release} < "
                f"engine time {self._now}"
            )
        base = len(self._tasks)
        submission = Submission(
            index=len(self.submissions),
            base=base,
            count=len(tasks),
            release_seconds=release,
            label=label,
            _remaining=len(tasks),
        )
        self.submissions.append(submission)
        if not tasks:
            submission.finish_seconds = release
            heapq.heappush(
                self._events, (release, _EV_COMPLETE, submission.index)
            )
            return submission
        cfg = self.config
        for local, task in enumerate(tasks):
            i = base + local
            timing = self.cores.task_cycles(task)
            if timing.core not in CORE_NAMES:
                raise SchedulingError(
                    f"task {i} targets unknown core {timing.core!r}"
                )
            for dep in task.depends_on:
                if dep < 0 or dep >= local:
                    raise SchedulingError(
                        f"task {i} has forward/invalid dependency {dep}"
                    )
            mem = self.memory.task_timing(task)
            if hbm_scale != 1.0 and mem.hbm_bytes:
                mem = replace(
                    mem, hbm_seconds=mem.hbm_seconds * hbm_scale
                )
            self._tasks.append(task.shifted(base) if base else task)
            self._timings.append(timing)
            self._mems.append(mem)
            duration = max(
                timing.cycles * cfg.cycle_seconds, mem.spad_seconds
            )
            if compute_scale != 1.0:
                duration *= compute_scale
            self._durations.append(duration)
            uniq = {dep + base for dep in task.depends_on}
            self._remaining.append(len(uniq))
            self._dependents.append([])
            for dep in uniq:
                self._dependents[dep].append(i)
            self._ready.append(release)
            self._start.append(None)
            self._hbm_span.append(
                (0.0, 0.0) if mem.hbm_bytes == 0 else None
            )
            self._end.append(None)
            self._instance_of.append(0)
            self._owner.append(submission)
            if not uniq:
                heapq.heappush(self._events, (release, _EV_READY, i))
        return submission

    # -- event processing ----------------------------------------------
    def _push_release(self, t: float) -> None:
        """Queue a release pass at ``t`` unless one is already queued."""
        if t not in self._release_times:
            self._release_times.add(t)
            heapq.heappush(self._events, (t, _EV_RELEASE, -1))

    def _finalize(self, i: int) -> None:
        """Both dispatch and grant committed: the end is known."""
        task_end = max(self._start[i] + self._durations[i],
                       self._hbm_span[i][1])
        self._end[i] = task_end
        self._inst_free[self._timings[i].core][self._instance_of[i]] = (
            task_end
        )
        self._push_release(task_end)
        self._finished += 1
        owner = self._owner[i]
        if task_end > owner._max_end:
            owner._max_end = task_end
        owner._remaining -= 1
        if owner._remaining == 0:
            # The end is *known* now (dispatch commits it analytically),
            # but the completion is only observable once simulated time
            # reaches it — the serving layer polls ``completions`` after
            # advance_until() and must not see a finish from the future
            # (it would free a batch slot while cores are still busy).
            owner.finish_seconds = owner._max_end
            heapq.heappush(
                self._events,
                (owner._max_end, _EV_COMPLETE, owner.index),
            )
        for d in self._dependents[i]:
            if task_end > self._ready[d]:
                self._ready[d] = task_end
            self._remaining[d] -= 1
            if self._remaining[d] == 0:
                heapq.heappush(
                    self._events, (self._ready[d], _EV_READY, d)
                )

    def _grant_pass(self, t: float) -> None:
        """Grant channel slots to ready transfers, in ready order.

        A transfer that does not fit is bypassed (no head-of-line
        blocking) and retried at the next release event.
        """
        queue = self._hbm_queue
        if not queue:
            return
        # One free-slot scan per pass, consumed incrementally: a grant
        # always takes the lowest-index free slots, so deleting the
        # granted prefix leaves exactly the slots a rescan would find.
        chan_free = self._chan_free
        free_slots = [s for s, free in enumerate(chan_free) if free <= t]
        if not free_slots:
            return
        deferred = []
        while queue and free_slots:
            entry = heapq.heappop(queue)
            i = entry[1]
            need = self._mems[i].channels_used
            if need > len(free_slots):
                deferred.append(entry)
                continue
            done = t + self._mems[i].hbm_seconds
            for s in free_slots[:need]:
                chan_free[s] = done
            del free_slots[:need]
            self._hbm_span[i] = (t, done)
            self._hbm_intervals.append((t, done))
            self._push_release(done)
            if self._start[i] is not None:
                self._finalize(i)
        for entry in deferred:
            heapq.heappush(queue, entry)

    def _dispatch_pass(self, t: float) -> None:
        """Dispatch ready tasks onto free core instances."""
        for core in CORE_NAMES:
            queue = self._core_queue[core]
            if not queue:
                continue
            # One free-instance scan per core per pass. A dispatched
            # task can re-free its own instance at the same instant
            # (zero-duration work), in which case the cursor stays put
            # so the instance is reused — matching a fresh rescan.
            frees = self._inst_free[core]
            free_idx = [
                j for j, f in enumerate(frees) if f is not None and f <= t
            ]
            cursor = 0
            while queue and cursor < len(free_idx):
                k = free_idx[cursor]
                i = heapq.heappop(queue)[1]
                self._start[i] = t
                self._instance_of[i] = k
                if self._hbm_span[i] is not None:
                    self._finalize(i)
                    if self._inst_free[core][k] > t:
                        cursor += 1
                else:
                    # Core held; end unknown until the HBM grant.
                    frees[k] = None
                    cursor += 1

    def _step(self) -> None:
        """Process exactly one event from the heap."""
        t, kind, payload = heapq.heappop(self._events)
        self._now = max(self._now, t)
        if kind == _EV_RELEASE:
            self._release_times.discard(t)
        elif kind == _EV_READY:
            i = payload
            if self._mems[i].hbm_bytes > 0:
                heapq.heappush(self._hbm_queue, (self._ready[i], i))
            heapq.heappush(
                self._core_queue[self._timings[i].core],
                (self._ready[i], i),
            )
        elif kind == _EV_COMPLETE:
            self.completions.append(self.submissions[payload])
            return
        self._grant_pass(t)
        self._dispatch_pass(t)

    def next_event_time(self) -> float | None:
        """Timestamp of the earliest pending event, if any."""
        return self._events[0][0] if self._events else None

    def advance_until(self, t: float) -> None:
        """Process every pending event with timestamp <= ``t``."""
        while self._events and self._events[0][0] <= t:
            self._step()
        if t > self._now:
            self._now = t

    def drain(self) -> None:
        """Process all pending events (run the admitted work dry)."""
        while self._events:
            self._step()

    # -- failure -------------------------------------------------------
    def crash(self, at: float) -> CrashReport:
        """Fail the instance at simulated time ``at``.

        Everything that finished by ``at`` stays in the schedule;
        every task still running or not yet started is cancelled and
        *erased* (a crashed accelerator leaves no partial results —
        the work must be redone elsewhere). Submissions whose
        completion had not been observed by ``at`` are reported lost
        with ``finish_seconds`` reset to ``None``; their kept prefix of
        finished tasks remains in the truncated schedule, so
        :meth:`result` and :meth:`as_program` stay mutually consistent
        and the truncated schedule passes
        :func:`repro.sim.validate.validate_schedule`.

        The engine is dead afterwards: :meth:`submit` raises. Recovery
        is a *new* engine at a later ``epoch=`` (cluster restart
        semantics — fresh queues, cold caches).
        """
        if self._dead:
            raise SchedulingError(
                f"engine already crashed at t={self._now}"
            )
        if at < self._now:
            raise SchedulingError(
                f"cannot crash in the past: {at} < engine time "
                f"{self._now}"
            )
        # Events at exactly ``at`` land before the failure: a task (or
        # submission) finishing at the crash instant survived it.
        self.advance_until(at)
        keep = [
            i for i, end in enumerate(self._end)
            if end is not None and end <= at
        ]
        dropped = len(self._tasks) - len(keep)
        remap = {old: new for new, old in enumerate(keep)}
        # A kept task's dependencies are provably kept (dep end <=
        # task ready <= start <= end <= at), so the remap is total
        # over every dependency edge we keep.
        new_tasks = []
        for old in keep:
            task = self._tasks[old]
            if task.depends_on:
                deps = tuple(remap[d] for d in task.depends_on)
                if deps != task.depends_on:
                    task = replace(task, depends_on=deps)
            new_tasks.append(task)
        self._tasks = new_tasks
        self._timings = [self._timings[o] for o in keep]
        self._mems = [self._mems[o] for o in keep]
        self._durations = [self._durations[o] for o in keep]
        self._ready = [self._ready[o] for o in keep]
        self._start = [self._start[o] for o in keep]
        self._hbm_span = [self._hbm_span[o] for o in keep]
        self._end = [self._end[o] for o in keep]
        self._instance_of = [self._instance_of[o] for o in keep]
        self._owner = [self._owner[o] for o in keep]
        self._remaining = [0] * len(keep)
        self._dependents = [[] for _ in keep]
        for i, task in enumerate(self._tasks):
            for dep in set(task.depends_on):
                self._dependents[dep].append(i)
        self._hbm_intervals = [
            self._hbm_span[i]
            for i in range(len(keep))
            if self._mems[i].hbm_bytes > 0
        ]
        # Re-base every submission onto the truncated index space.
        # Bases are contiguous and ``keep`` ascending, so one cursor
        # walk assigns each kept task to its owning submission; a lost
        # submission keeps its finished prefix (possibly empty).
        lost = []
        cursor = 0
        for sub in self.submissions:
            sub_end = sub.base + sub.count
            new_base = cursor
            while cursor < len(keep) and keep[cursor] < sub_end:
                cursor += 1
            if sub.finish_seconds is None or sub.finish_seconds > at:
                # Either still running, or committed analytically for
                # a future instant the crash pre-empted — the serving
                # layer never observed the completion, so it is lost.
                sub.finish_seconds = None
                lost.append(sub)
            sub.base = new_base
            sub.count = cursor - new_base
        self._events.clear()
        self._release_times.clear()
        for queue in self._core_queue.values():
            queue.clear()
        self._hbm_queue.clear()
        self._finished = len(keep)
        self._dead = True
        return CrashReport(
            at_seconds=at,
            lost=tuple(lost),
            kept_tasks=len(keep),
            dropped_tasks=dropped,
        )

    @property
    def dead(self) -> bool:
        """True once :meth:`crash` has fired."""
        return self._dead

    @property
    def now(self) -> float:
        """Current engine time (latest processed event or advance)."""
        return self._now

    @property
    def pending(self) -> int:
        """Admitted tasks whose end is not yet committed."""
        return len(self._tasks) - self._finished

    # -- results -------------------------------------------------------
    def as_program(self, source_ops=()) -> "OperatorProgram":
        """The merged tasks of every submission, as one compiled program.

        Record ``i`` of :meth:`result` corresponds to task ``i`` of
        this program, so :func:`repro.sim.validate.validate_schedule`
        can check dependency ordering across the whole served run.
        """
        from repro.compiler.program import OperatorProgram

        return OperatorProgram(
            tasks=tuple(self._tasks),
            op_boundaries=tuple(
                (s.base, s.base + s.count) for s in self.submissions
            ),
            source_ops=tuple(source_ops),
        )

    def result(self) -> SimulationResult:
        """Aggregate statistics over every submitted task.

        Requires the engine to be drained (every task finished).
        """
        n = len(self._tasks)
        if self._finished != n:
            raise SchedulingError(
                f"engine finished {self._finished}/{n} tasks; call "
                "drain() before result()"
            )
        cfg = self.config
        core_busy: dict[str, float] = defaultdict(float)
        core_stall: dict[str, float] = defaultdict(float)
        op_seconds: dict[str, float] = defaultdict(float)
        operator_seconds: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        hbm_bytes_total = 0
        records: list[TaskRecord] = []
        makespan = 0.0
        for i, task in enumerate(self._tasks):
            mem = self._mems[i]
            core = self._timings[i].core
            compute = self._timings[i].cycles * cfg.cycle_seconds
            hbm_start, hbm_end = self._hbm_span[i]
            busy = self._durations[i]
            start = self._start[i]
            end = self._end[i]
            ready = self._ready[i]
            # Clamp tiny float-negative residues so stall stays a
            # physical (non-negative) quantity and monotone counters
            # downstream never see a negative increment.
            stall = max(0.0, end - start - busy)
            core_wait = max(0.0, start - ready)
            hbm_wait = (
                max(0.0, hbm_start - ready) if mem.hbm_bytes else 0.0
            )
            makespan = max(makespan, end)
            hbm_bytes_total += mem.hbm_bytes
            core_busy[core] += busy
            core_stall[core] += stall
            label = task.op_label or "unlabelled"
            op_seconds[label] += busy
            operator_seconds[label][core] += busy
            records.append(
                TaskRecord(
                    start=start,
                    end=end,
                    core=core,
                    compute_seconds=compute,
                    hbm_seconds=mem.hbm_seconds,
                    hbm_bytes=mem.hbm_bytes,
                    op_label=label,
                    queue_wait_seconds=max(core_wait, hbm_wait),
                    hbm_start=hbm_start,
                    hbm_end=hbm_end,
                    instance=self._instance_of[i],
                    ready_seconds=ready,
                    stall_seconds=stall,
                    core_wait_seconds=core_wait,
                    hbm_wait_seconds=hbm_wait,
                    hbm_channels_used=(
                        mem.channels_used if mem.hbm_bytes else 0
                    ),
                )
            )
        return SimulationResult(
            total_seconds=makespan,
            core_busy_seconds=dict(core_busy),
            op_seconds=dict(op_seconds),
            operator_seconds={
                k: dict(v) for k, v in operator_seconds.items()
            },
            hbm_busy_seconds=_merged_length(list(self._hbm_intervals)),
            hbm_bytes=hbm_bytes_total,
            task_records=records,
            core_stall_seconds=dict(core_stall),
        )


class PoseidonSimulator:
    """Schedules compiled operator programs on the modelled hardware."""

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig()
        self.cores = CoreModel(self.config)
        self.memory = MemoryModel(self.config)

    # ------------------------------------------------------------------
    def run(self, program: "OperatorProgram") -> SimulationResult:
        """Simulate a compiled program and return aggregate statistics.

        The closed-system special case of :class:`ScheduleEngine`: one
        submission at t=0, drained to completion.
        """
        engine = ScheduleEngine(
            self.config, cores=self.cores, memory=self.memory
        )
        engine.submit(program.tasks)
        engine.drain()
        result = engine.result()

        reg = metrics.active()
        if reg is not None:
            self._record_metrics(
                reg,
                result.task_records,
                result.total_seconds,
                result.hbm_busy_seconds,
                result.core_busy_seconds,
                result.core_stall_seconds,
            )
        return result

    @staticmethod
    def _record_metrics(
        reg, records, makespan, hbm_busy, core_busy, core_stall
    ) -> None:
        """Publish one run's spans into the active metrics registry.

        Kept out of the scheduling loop so the disabled path costs a
        single ``metrics.active()`` check per run.
        """
        reg.counter("sim.tasks").inc(len(records))
        reg.gauge("sim.makespan_seconds").set(makespan)
        reg.gauge("sim.hbm.busy_seconds").set(hbm_busy)
        for core, busy in core_busy.items():
            reg.counter(f"sim.core.{core}.busy_seconds").inc(busy)
        for core, stall in core_stall.items():
            reg.counter(f"sim.core.{core}.stall_seconds").inc(stall)
        wait = reg.histogram("sim.task.queue_wait_seconds")
        busy_h = reg.histogram("sim.task.busy_seconds")
        stall_h = reg.histogram("sim.task.stall_seconds")
        hbm_bytes = reg.counter("sim.hbm.bytes")
        for record in records:
            wait.observe(record.queue_wait_seconds)
            busy_h.observe(record.end - record.start)
            stall_h.observe(record.stall_seconds)
            hbm_bytes.inc(record.hbm_bytes)
            reg.counter(f"sim.op.{record.op_label}.tasks").inc()

    # ------------------------------------------------------------------
    def run_ops(self, ops) -> SimulationResult:
        """Convenience: compile an op stream then simulate it."""
        from repro.compiler.program import compile_trace

        return self.run(compile_trace(ops))

    def operation_seconds(self, op) -> float:
        """Makespan of a single basic operation (Table IV latencies)."""
        return self.run_ops([op]).total_seconds

    def operations_per_second(self, op) -> float:
        """Steady-state throughput of one basic operation."""
        seconds = self.operation_seconds(op)
        if seconds <= 0:
            raise SchedulingError("operation simulated to zero time")
        return 1.0 / seconds

    def sustained_throughput(self, op, *, batch: int = 8) -> float:
        """Throughput of a pipelined batch of independent operations.

        Independent instances overlap across core arrays and the HBM,
        so the sustained rate can exceed 1/latency — the number a
        served accelerator actually delivers (and closer to how
        hardware papers report ops/s).
        """
        from repro.compiler.program import compile_trace

        if batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        program = compile_trace([op] * batch, op_parallel=True)
        result = self.run(program)
        if result.total_seconds <= 0:
            raise SchedulingError("batch simulated to zero time")
        return batch / result.total_seconds


# ----------------------------------------------------------------------
def in_order_makespan(
    program: "OperatorProgram", config: HardwareConfig | None = None
) -> float:
    """Makespan under the legacy one-pass in-order scheduler.

    This is the pre-event-driven engine, kept verbatim as a comparison
    oracle: it reserves the (single, fully serialized) HBM channel and
    each core array in *submission* order, so a ready later task can
    sit blocked behind a stalled earlier one. Tests and benchmarks use
    it to demonstrate that the out-of-order scheduler removes that
    head-of-line blocking (its makespan should not exceed this one on
    the paper workloads).
    """
    config = config or HardwareConfig()
    cores = CoreModel(config)
    memory = MemoryModel(config)
    tasks = program.tasks
    finish = [0.0] * len(tasks)
    core_free: dict[str, float] = {name: 0.0 for name in CORE_NAMES}
    hbm_free = 0.0
    makespan = 0.0
    for i, task in enumerate(tasks):
        timing = cores.task_cycles(task)
        if timing.core not in core_free:
            raise SchedulingError(
                f"task {i} targets unknown core {timing.core!r}"
            )
        compute = timing.cycles * config.cycle_seconds
        mem = memory.task_timing(task)
        deps_done = 0.0
        for dep in task.depends_on:
            if dep < 0 or dep >= i:
                raise SchedulingError(
                    f"task {i} has forward/invalid dependency {dep}"
                )
            deps_done = max(deps_done, finish[dep])
        hbm_start = max(deps_done, hbm_free)
        hbm_free = hbm_start + mem.hbm_seconds
        start = max(deps_done, core_free[timing.core])
        duration = max(compute, mem.spad_seconds)
        task_end = max(start + duration, hbm_free)
        core_free[timing.core] = task_end
        finish[i] = task_end
        makespan = max(makespan, task_end)
    return makespan
