"""The discrete-event scheduler: operator tasks onto shared resources.

Resources:

- one array per operator core type ("MA", "MM", "NTT", "Automorphism"),
  each with :meth:`HardwareConfig.instances_of` identical instances
  (the paper's prototype has one of each; the arrays are internally
  SIMD-wide, so task-level concurrency across *different* arrays is
  what the paper's operator reuse exploits);
- the HBM, modelled as ``hbm_channels`` pseudo-channel slots; a
  transfer occupies :meth:`MemoryModel.channels_for` of them, so small
  transfers can stream concurrently while full-stripe transfers
  serialize.

Scheduling is event-driven and out of order: a task enters the ready
queue when its dependencies finish, its off-chip transfer is granted
channel slots as soon as they are free (in ready order, not submission
order), and the task dispatches onto the first free instance of its
core array. A ready task is never blocked behind a stalled
earlier-submitted one — the head-of-line hazard the one-pass in-order
scheduler (kept as :func:`in_order_makespan` for comparison) suffers.

Busy time and stall time are attributed separately: a task occupies
its core for ``max(compute, residual stream time)``, but only the
compute-occupied part counts as busy; the tail spent waiting on the
HBM stream is recorded as ``stall_seconds``. Busy-time statistics per
core and per FHE basic operation feed Figs. 7/8/9, and HBM occupancy
feeds the Table VII bandwidth-utilization analysis.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import SchedulingError
from repro.obs import metrics
from repro.sim.config import CORE_ARRAYS, HardwareConfig
from repro.sim.cores import CoreModel
from repro.sim.memory import MemoryModel

if TYPE_CHECKING:  # avoid a circular import; engine only needs the type
    from repro.compiler.program import OperatorProgram

#: Kept as the canonical core list (re-exported for compatibility).
CORE_NAMES = CORE_ARRAYS


@dataclass
class TaskRecord:
    """Scheduling outcome of one task.

    Wait/stall semantics:

    - ``ready_seconds`` — when every dependency had finished.
    - ``core_wait_seconds`` — ``start - ready``: time spent ready but
      waiting for a free instance of the core array.
    - ``hbm_wait_seconds`` — ``hbm_start - ready``: time the task's
      off-chip transfer sat ready waiting for HBM channel slots (zero
      when the task moves no off-chip bytes).
    - ``queue_wait_seconds`` — ``max(core_wait, hbm_wait)``: total
      time the task sat ready before *both* its core dispatch and its
      HBM grant were underway. This includes HBM arbitration, not just
      core contention.
    - ``stall_seconds`` — ``end - start - max(compute, spad)``: time
      the core instance was held but idle, waiting for the task's own
      residual HBM stream. Busy attribution everywhere downstream
      (``core_busy_seconds``, Figs. 7/8/9) excludes this.

    ``hbm_start``/``hbm_end`` bound the task's slot on the HBM
    channels and ``hbm_channels_used`` counts the pseudo-channel slots
    it occupied (all zero when the task moves no off-chip bytes).
    ``instance`` is which instance of the core array ran the task.
    These feed the Chrome-trace exporter's per-instance, stall and HBM
    tracks (:mod:`repro.obs.trace_export`).
    """

    start: float
    end: float
    core: str
    compute_seconds: float
    hbm_seconds: float
    hbm_bytes: int
    op_label: str
    queue_wait_seconds: float = 0.0
    hbm_start: float = 0.0
    hbm_end: float = 0.0
    instance: int = 0
    ready_seconds: float = 0.0
    stall_seconds: float = 0.0
    core_wait_seconds: float = 0.0
    hbm_wait_seconds: float = 0.0
    hbm_channels_used: int = 0


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated program.

    Attributes:
        total_seconds: makespan.
        core_busy_seconds: compute-occupied time per core array
            (stall-free: HBM-stall tails are *not* counted as busy).
        op_seconds: attributed busy time per FHE basic operation.
        operator_seconds: attributed busy time per operator core,
            nested by basic operation (Fig. 7 data).
        hbm_busy_seconds: time at least one HBM channel was streaming
            (union of transfer intervals, so it never exceeds the
            makespan).
        hbm_bytes: total off-chip traffic.
        task_records: per-task schedule (ordered as submitted).
        core_stall_seconds: per-core time instances were held but
            stalled on their task's residual HBM stream.
    """

    total_seconds: float
    core_busy_seconds: dict[str, float]
    op_seconds: dict[str, float]
    operator_seconds: dict[str, dict[str, float]]
    hbm_busy_seconds: float
    hbm_bytes: int
    task_records: list[TaskRecord] = field(repr=False, default_factory=list)
    core_stall_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def bandwidth_utilization(self) -> float:
        """Fraction of the run during which the HBM was streaming."""
        if self.total_seconds <= 0:
            return 0.0
        return min(1.0, self.hbm_busy_seconds / self.total_seconds)

    @property
    def stall_seconds(self) -> float:
        """Total core-held-but-stalled time across all arrays."""
        return sum(self.core_stall_seconds.values())

    def achieved_bandwidth(self) -> float:
        """Average delivered HBM bandwidth in bytes/second."""
        if self.total_seconds <= 0:
            return 0.0
        return self.hbm_bytes / self.total_seconds

    def delivered_bandwidth_fraction(self, config: HardwareConfig) -> float:
        """Achieved bandwidth as a fraction of the configured peak."""
        return self.achieved_bandwidth() / config.hbm_bandwidth

    def core_share(self) -> dict[str, float]:
        """Normalized busy-time share per core (Fig. 9-style)."""
        total = sum(self.core_busy_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.core_busy_seconds}
        return {
            name: busy / total
            for name, busy in self.core_busy_seconds.items()
        }

    def op_share(self) -> dict[str, float]:
        """Normalized time share per basic operation (Fig. 8-style)."""
        total = sum(self.op_seconds.values())
        if total <= 0:
            return {name: 0.0 for name in self.op_seconds}
        return {name: t / total for name, t in self.op_seconds.items()}


def _merged_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    return total + (cur_end - cur_start)


#: Event kinds, ordered so arrivals at a time t are visible before the
#: grant/dispatch passes triggered by releases at the same t.
_EV_READY = 0
_EV_RELEASE = 1


class PoseidonSimulator:
    """Schedules compiled operator programs on the modelled hardware."""

    def __init__(self, config: HardwareConfig | None = None):
        self.config = config or HardwareConfig()
        self.cores = CoreModel(self.config)
        self.memory = MemoryModel(self.config)

    # ------------------------------------------------------------------
    def run(self, program: "OperatorProgram") -> SimulationResult:
        """Simulate a compiled program and return aggregate statistics."""
        tasks = program.tasks
        n = len(tasks)
        cfg = self.config

        # Pre-pass: cycle/memory timing and dependency bookkeeping.
        timings = []
        mems = []
        durations = []
        remaining = [0] * n
        dependents: list[list[int]] = [[] for _ in range(n)]
        for i, task in enumerate(tasks):
            timing = self.cores.task_cycles(task)
            if timing.core not in CORE_NAMES:
                raise SchedulingError(
                    f"task {i} targets unknown core {timing.core!r}"
                )
            for dep in task.depends_on:
                if dep < 0 or dep >= i:
                    raise SchedulingError(
                        f"task {i} has forward/invalid dependency {dep}"
                    )
            mem = self.memory.task_timing(task)
            timings.append(timing)
            mems.append(mem)
            durations.append(
                max(timing.cycles * cfg.cycle_seconds, mem.spad_seconds)
            )
            uniq = set(task.depends_on)
            remaining[i] = len(uniq)
            for dep in uniq:
                dependents[dep].append(i)

        # Resource state: per-instance core free times (None = occupied
        # by a task whose stream has not been granted yet, so its end is
        # still unknown) and per-pseudo-channel HBM slot free times.
        inst_free: dict[str, list[float | None]] = {
            name: [0.0] * cfg.instances_of(name) for name in CORE_NAMES
        }
        chan_free = [0.0] * cfg.hbm_channels

        ready = [0.0] * n
        start: list[float | None] = [None] * n
        hbm_span: list[tuple[float, float] | None] = [
            (0.0, 0.0) if mems[i].hbm_bytes == 0 else None for i in range(n)
        ]
        end: list[float | None] = [None] * n
        instance_of = [0] * n

        events: list[tuple[float, int, int]] = []
        core_queue: dict[str, list[tuple[float, int]]] = {
            name: [] for name in CORE_NAMES
        }
        hbm_queue: list[tuple[float, int]] = []
        hbm_intervals: list[tuple[float, float]] = []
        finished = 0

        def finalize(i: int) -> None:
            """Both dispatch and grant committed: the end is known."""
            nonlocal finished
            task_end = max(start[i] + durations[i], hbm_span[i][1])
            end[i] = task_end
            inst_free[timings[i].core][instance_of[i]] = task_end
            heapq.heappush(events, (task_end, _EV_RELEASE, -1))
            finished += 1
            for d in dependents[i]:
                if task_end > ready[d]:
                    ready[d] = task_end
                remaining[d] -= 1
                if remaining[d] == 0:
                    heapq.heappush(events, (ready[d], _EV_READY, d))

        def grant_pass(t: float) -> None:
            """Grant channel slots to ready transfers, in ready order.

            A transfer that does not fit is bypassed (no head-of-line
            blocking) and retried at the next release event.
            """
            if not hbm_queue:
                return
            deferred = []
            while hbm_queue:
                entry = heapq.heappop(hbm_queue)
                i = entry[1]
                need = mems[i].channels_used
                free_slots = [
                    s for s, free in enumerate(chan_free) if free <= t
                ]
                if len(free_slots) < need:
                    deferred.append(entry)
                    continue
                done = t + mems[i].hbm_seconds
                for s in free_slots[:need]:
                    chan_free[s] = done
                hbm_span[i] = (t, done)
                hbm_intervals.append((t, done))
                heapq.heappush(events, (done, _EV_RELEASE, -1))
                if start[i] is not None:
                    finalize(i)
            for entry in deferred:
                heapq.heappush(hbm_queue, entry)

        def dispatch_pass(t: float) -> None:
            """Dispatch ready tasks onto free core instances."""
            for core in CORE_NAMES:
                queue = core_queue[core]
                frees = inst_free[core]
                while queue:
                    k = next(
                        (j for j, f in enumerate(frees)
                         if f is not None and f <= t),
                        None,
                    )
                    if k is None:
                        break
                    i = heapq.heappop(queue)[1]
                    start[i] = t
                    instance_of[i] = k
                    if hbm_span[i] is not None:
                        finalize(i)
                    else:
                        # Core held; end unknown until the HBM grant.
                        frees[k] = None

        for i in range(n):
            if remaining[i] == 0:
                heapq.heappush(events, (0.0, _EV_READY, i))

        while events:
            t, kind, payload = heapq.heappop(events)
            if kind == _EV_READY:
                i = payload
                if mems[i].hbm_bytes > 0:
                    heapq.heappush(hbm_queue, (ready[i], i))
                heapq.heappush(core_queue[timings[i].core], (ready[i], i))
            grant_pass(t)
            dispatch_pass(t)

        if finished != n:  # pragma: no cover - internal invariant
            raise SchedulingError(
                f"scheduler finished {finished}/{n} tasks (internal bug)"
            )

        # Aggregate statistics from the committed schedule.
        core_busy: dict[str, float] = defaultdict(float)
        core_stall: dict[str, float] = defaultdict(float)
        op_seconds: dict[str, float] = defaultdict(float)
        operator_seconds: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float)
        )
        hbm_bytes_total = 0
        records: list[TaskRecord] = []
        makespan = 0.0
        for i, task in enumerate(tasks):
            mem = mems[i]
            core = timings[i].core
            compute = timings[i].cycles * cfg.cycle_seconds
            hbm_start, hbm_end = hbm_span[i]
            busy = durations[i]
            # Clamp tiny float-negative residues so stall stays a
            # physical (non-negative) quantity and monotone counters
            # downstream never see a negative increment.
            stall = max(0.0, end[i] - start[i] - busy)
            core_wait = max(0.0, start[i] - ready[i])
            hbm_wait = max(0.0, hbm_start - ready[i]) if mem.hbm_bytes else 0.0
            makespan = max(makespan, end[i])
            hbm_bytes_total += mem.hbm_bytes
            core_busy[core] += busy
            core_stall[core] += stall
            label = task.op_label or "unlabelled"
            op_seconds[label] += busy
            operator_seconds[label][core] += busy
            records.append(
                TaskRecord(
                    start=start[i],
                    end=end[i],
                    core=core,
                    compute_seconds=compute,
                    hbm_seconds=mem.hbm_seconds,
                    hbm_bytes=mem.hbm_bytes,
                    op_label=label,
                    queue_wait_seconds=max(core_wait, hbm_wait),
                    hbm_start=hbm_start,
                    hbm_end=hbm_end,
                    instance=instance_of[i],
                    ready_seconds=ready[i],
                    stall_seconds=stall,
                    core_wait_seconds=core_wait,
                    hbm_wait_seconds=hbm_wait,
                    hbm_channels_used=(
                        mem.channels_used if mem.hbm_bytes else 0
                    ),
                )
            )

        reg = metrics.active()
        if reg is not None:
            self._record_metrics(
                reg, records, makespan,
                _merged_length(hbm_intervals), core_busy, core_stall,
            )

        return SimulationResult(
            total_seconds=makespan,
            core_busy_seconds=dict(core_busy),
            op_seconds=dict(op_seconds),
            operator_seconds={
                k: dict(v) for k, v in operator_seconds.items()
            },
            hbm_busy_seconds=_merged_length(hbm_intervals),
            hbm_bytes=hbm_bytes_total,
            task_records=records,
            core_stall_seconds=dict(core_stall),
        )

    @staticmethod
    def _record_metrics(
        reg, records, makespan, hbm_busy, core_busy, core_stall
    ) -> None:
        """Publish one run's spans into the active metrics registry.

        Kept out of the scheduling loop so the disabled path costs a
        single ``metrics.active()`` check per run.
        """
        reg.counter("sim.tasks").inc(len(records))
        reg.gauge("sim.makespan_seconds").set(makespan)
        reg.gauge("sim.hbm.busy_seconds").set(hbm_busy)
        for core, busy in core_busy.items():
            reg.counter(f"sim.core.{core}.busy_seconds").inc(busy)
        for core, stall in core_stall.items():
            reg.counter(f"sim.core.{core}.stall_seconds").inc(stall)
        wait = reg.histogram("sim.task.queue_wait_seconds")
        busy_h = reg.histogram("sim.task.busy_seconds")
        stall_h = reg.histogram("sim.task.stall_seconds")
        hbm_bytes = reg.counter("sim.hbm.bytes")
        for record in records:
            wait.observe(record.queue_wait_seconds)
            busy_h.observe(record.end - record.start)
            stall_h.observe(record.stall_seconds)
            hbm_bytes.inc(record.hbm_bytes)
            reg.counter(f"sim.op.{record.op_label}.tasks").inc()

    # ------------------------------------------------------------------
    def run_ops(self, ops) -> SimulationResult:
        """Convenience: compile an op stream then simulate it."""
        from repro.compiler.program import compile_trace

        return self.run(compile_trace(ops))

    def operation_seconds(self, op) -> float:
        """Makespan of a single basic operation (Table IV latencies)."""
        return self.run_ops([op]).total_seconds

    def operations_per_second(self, op) -> float:
        """Steady-state throughput of one basic operation."""
        seconds = self.operation_seconds(op)
        if seconds <= 0:
            raise SchedulingError("operation simulated to zero time")
        return 1.0 / seconds

    def sustained_throughput(self, op, *, batch: int = 8) -> float:
        """Throughput of a pipelined batch of independent operations.

        Independent instances overlap across core arrays and the HBM,
        so the sustained rate can exceed 1/latency — the number a
        served accelerator actually delivers (and closer to how
        hardware papers report ops/s).
        """
        from repro.compiler.program import compile_trace

        if batch < 1:
            raise SchedulingError(f"batch must be >= 1, got {batch}")
        program = compile_trace([op] * batch, op_parallel=True)
        result = self.run(program)
        if result.total_seconds <= 0:
            raise SchedulingError("batch simulated to zero time")
        return batch / result.total_seconds


# ----------------------------------------------------------------------
def in_order_makespan(
    program: "OperatorProgram", config: HardwareConfig | None = None
) -> float:
    """Makespan under the legacy one-pass in-order scheduler.

    This is the pre-event-driven engine, kept verbatim as a comparison
    oracle: it reserves the (single, fully serialized) HBM channel and
    each core array in *submission* order, so a ready later task can
    sit blocked behind a stalled earlier one. Tests and benchmarks use
    it to demonstrate that the out-of-order scheduler removes that
    head-of-line blocking (its makespan should not exceed this one on
    the paper workloads).
    """
    config = config or HardwareConfig()
    cores = CoreModel(config)
    memory = MemoryModel(config)
    tasks = program.tasks
    finish = [0.0] * len(tasks)
    core_free: dict[str, float] = {name: 0.0 for name in CORE_NAMES}
    hbm_free = 0.0
    makespan = 0.0
    for i, task in enumerate(tasks):
        timing = cores.task_cycles(task)
        if timing.core not in core_free:
            raise SchedulingError(
                f"task {i} targets unknown core {timing.core!r}"
            )
        compute = timing.cycles * config.cycle_seconds
        mem = memory.task_timing(task)
        deps_done = 0.0
        for dep in task.depends_on:
            if dep < 0 or dep >= i:
                raise SchedulingError(
                    f"task {i} has forward/invalid dependency {dep}"
                )
            deps_done = max(deps_done, finish[dep])
        hbm_start = max(deps_done, hbm_free)
        hbm_free = hbm_start + mem.hbm_seconds
        start = max(deps_done, core_free[timing.core])
        duration = max(compute, mem.spad_seconds)
        task_end = max(start + duration, hbm_free)
        core_free[timing.core] = task_end
        finish[i] = task_end
        makespan = max(makespan, task_end)
    return makespan
