"""Pluggable NTT core microarchitecture models.

Poseidon's NTT core (the fused radix-2^k design of Section III-A,
Table II, Fig. 10) is one point in a crowded design space: the related
work in PAPERS.md fields direct competitors that trade cycles/element,
pipeline-hazard stalls, and twiddle-memory traffic very differently.
This module abstracts the NTT cycle/resource/energy model behind a
registry of :class:`NTTCoreModel` variants so the simulator, the
resource and energy models, and the design-space explorer can price
any of them — turning the reproduction into a cross-design exploration
tool rather than a single-point model (see ``docs/CORES.md``).

Registered variants:

- ``poseidon`` — the paper's fused radix-2^k core. Byte-identical to
  the formula that used to live in ``CoreModel.ntt_cycles``; the
  default, so every existing baseline number is unchanged.
- ``hermes`` — hybrid-dataflow unified NTT/INTT datapath (Gu et al.,
  arXiv:2603.01556). Two radix-2 stages per pass with a tiny constant
  per-pass reconfiguration bubble, but every butterfly re-fetches its
  twiddle from BRAM, so the stream rate carries a twiddle-port-sharing
  overhead. Wins at small transforms where the fused design's twiddle
  staging bubble and deep pipeline fill dominate.
- ``hf-ntt`` — hazard-free dataflow accelerator (Meng et al.,
  arXiv:2410.04805). A fixed-size butterfly PE array with dataflow
  forwarding instead of stalls: zero per-phase bubbles, shallow fill,
  but a *fixed* per-butterfly rate independent of the vector-lane
  width. Wins at narrow lane counts where Poseidon's lane-coupled
  throughput collapses.
- ``digit-serial`` — homogeneous pipelined digit-serial modulo
  arithmetic (Alexakis et al., arXiv:2507.12418). Each modular
  operation is processed D digits at a time by deeply pipelined
  LUT-based units: half the per-lane throughput and a deep fill, but
  almost no DSPs — the variant the design explorer reaches for when
  the DSP budget binds.

Cycle accounting is exposed via :meth:`NTTCoreModel.cycle_breakdown`
(``stream`` / ``bubble`` / ``fill``) so tests and benches can assert
the hazard/stall structure, not just the total.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.ntt.fusion import FusionCostModel
from repro.utils.bitops import ilog2

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import HardwareConfig
    from repro.sim.tasks import OperatorTask

# ----------------------------------------------------------------------
# Fabric-level constants shared with the resource model
# ----------------------------------------------------------------------

#: 36Kb BRAM => 4 KB usable (UltraScale+; re-exported by
#: :mod:`repro.sim.resources`).
BRAM_PER_KB = 1 / 4.0

# ----------------------------------------------------------------------
# poseidon (fused radix-2^k) constants — moved verbatim from
# repro.sim.cores so the default cycle model stays byte-identical.
# ----------------------------------------------------------------------

#: Per-phase reconfiguration bubble of the fused NTT core, in cycles,
#: per fused twiddle factor that must be staged into BRAM.
NTT_TWIDDLE_STAGE_CYCLES = 2.0

#: DSP multiplies each NTT lane can issue per cycle. A fused radix-2^k
#: output needs B-1 = 2^k - 1 accumulated multiplies; once that exceeds
#: the budget the core's sustained rate drops below one element per
#: lane per cycle — the effect that makes k > 3 lose in Fig. 10.
NTT_MULTS_PER_LANE = 8

#: Pipeline-fill depth of the fused butterfly network + reduce
#: (mirrors ``PIPELINE_DEPTH["NTT"]`` in :mod:`repro.sim.cores`).
POSEIDON_PIPELINE_FILL = 16

#: Relative logic cost vs the k = 3 design point, calibrated to the
#: paper's Fig. 10 sweep. The structural trade: smaller k needs more
#: cascaded pipeline phases (more inter-stage buffering and control),
#: larger k needs superlinearly more butterfly multipliers and
#: twiddle staging (Table II) — the minimum sits at k = 3.
NTT_SHAPE = {1: 1.35, 2: 1.12, 3: 1.0, 4: 1.15, 5: 1.5, 6: 2.3}

#: Baseline fused-NTT-array resources at k = 3, 512 lanes. The DSP
#: count reflects multiplier sharing between the butterfly network and
#: the fused SBT reductions (the whole accelerator must undercut the
#: Table XII rivals' 3584/8448 DSPs).
NTT_BASE = {"lut": 44000, "ff": 73700, "dsp": 1344, "bram": 128}

# ----------------------------------------------------------------------
# hermes (hybrid-dataflow unified NTT/INTT) constants
# ----------------------------------------------------------------------

#: Radix-2 stages retired per dataflow pass (the MDC/MDF ping-pong).
HERMES_STAGES_PER_PASS = 2

#: Stream-rate overhead from sharing the twiddle-BRAM read ports with
#: the butterfly datapath: every butterfly re-fetches its twiddle, so
#: the effective element rate is lanes / this factor.
HERMES_TWIDDLE_PORT_FACTOR = 1.25

#: Per-pass dataflow reconfiguration bubble, cycles. The unified
#: datapath swaps dataflow direction instead of staging fused twiddle
#: sets, so this is constant and tiny.
HERMES_PASS_BUBBLE = 1.0

#: Pipeline fill of the unified butterfly pipeline.
HERMES_PIPELINE_FILL = 8

# ----------------------------------------------------------------------
# hf-ntt (hazard-free dataflow) constants
# ----------------------------------------------------------------------

#: Radix-2 butterflies the fixed PE array retires per cycle. The array
#: is sized by its own DSP/routing budget, *not* by the accelerator's
#: vector-lane width — the hazard-free dataflow keeps every PE busy
#: regardless of how wide the surrounding scratchpad datapath is.
HF_NTT_BUTTERFLIES_PER_CYCLE = 256

#: Pipeline fill; hazard-free forwarding needs no flush between
#: stages or limbs, so only the initial fill is charged.
HF_NTT_PIPELINE_FILL = 8

# ----------------------------------------------------------------------
# digit-serial (pipelined digit-serial modulo arithmetic) constants
# ----------------------------------------------------------------------

#: Digits per 32-bit operand (8-bit digits): a modular multiply
#: occupies a unit for this many cycles.
DIGIT_SERIAL_DIGITS = 4

#: Digit-serial units per vector lane. The units are LUT-cheap, so the
#: array affords two per lane — net rate lanes/2 elements per cycle.
DIGIT_SERIAL_UNITS_PER_LANE = 2

#: Deep digit pipeline fill (D digit phases x pipeline depth).
DIGIT_SERIAL_PIPELINE_FILL = 64


@lru_cache(maxsize=16)
def _fusion(radix_log2: int) -> FusionCostModel:
    """Cached per-k fusion cost model (hot path: one lookup per task)."""
    return FusionCostModel(radix_log2)


@lru_cache(maxsize=16)
def _fused_twiddles(radix_log2: int) -> int:
    """Cached fused twiddle count (set-building is O(4^k) per call)."""
    return _fusion(radix_log2).fused_twiddle_count()


class NTTCoreModel:
    """One NTT core microarchitecture: cycles, resources, energy.

    Subclasses define the three quantities the simulator stack needs:

    - :meth:`cycle_breakdown` — ``stream`` / ``bubble`` / ``fill``
      cycles of one NTT/INTT task (:meth:`cycles` sums them in that
      order, which keeps float results byte-stable);
    - :meth:`resources` — the core array's LUT/FF/DSP/BRAM dict,
      wrapped into a vector by :class:`repro.sim.resources.ResourceModel`;
    - :attr:`energy_per_element` — dynamic joules per processed
      element, consumed by :class:`repro.sim.energy.EnergyModel`.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    #: One-line description for docs/CLI listings.
    description = ""

    #: Dynamic energy per processed element, joules.
    energy_per_element = 0.0

    def cycle_breakdown(
        self, task: "OperatorTask", config: "HardwareConfig"
    ) -> dict[str, float]:
        raise NotImplementedError

    def cycles(
        self, task: "OperatorTask", config: "HardwareConfig"
    ) -> float:
        breakdown = self.cycle_breakdown(task, config)
        return breakdown["stream"] + breakdown["bubble"] + breakdown["fill"]

    def resources(self, config: "HardwareConfig") -> dict[str, int]:
        raise NotImplementedError


class PoseidonFusedCore(NTTCoreModel):
    """The paper's fused radix-2^k core (Table II / Fig. 10).

    ``ceil(log2(N)/k)`` fused phases stream each N-point limb through
    the 2^k-input cores at ``lanes`` elements per cycle, throttled once
    the B-1 accumulated multiplies per output exceed the per-lane DSP
    budget, plus a per-phase twiddle-staging bubble (Table II) and the
    butterfly-network pipeline fill. Byte-identical to the pre-registry
    ``CoreModel.ntt_cycles`` formula.
    """

    name = "poseidon"
    description = "fused radix-2^k butterflies (the paper's core)"
    energy_per_element = 45.0e-12  # butterfly + twiddle fetch + reduce

    def cycle_breakdown(self, task, config):
        fusion = _fusion(config.ntt_radix_log2)
        n = task.degree
        phases = fusion.phases(n)
        limb_count = task.elements / n
        # Throughput cap: each output accumulates B-1 multiplies; the
        # lane's DSP budget sustains NTT_MULTS_PER_LANE per cycle.
        rate_penalty = max(
            1.0, fusion.mults_per_output() / NTT_MULTS_PER_LANE
        )
        stream = (
            phases * (n / config.lanes) * limb_count * rate_penalty
        )
        bubble = (
            phases
            * NTT_TWIDDLE_STAGE_CYCLES
            * _fused_twiddles(config.ntt_radix_log2)
        )
        return {
            "stream": stream,
            "bubble": bubble,
            "fill": POSEIDON_PIPELINE_FILL,
        }

    def resources(self, config):
        fusion = _fusion(config.ntt_radix_log2)
        costs = fusion.costs()
        block = 1 << config.ntt_radix_log2
        cores = max(1, config.lanes // block)
        shape = ntt_shape_factor(config.ntt_radix_log2)
        lane_scale = config.lanes / 512
        twiddle_bram = max(
            1, int(costs.twiddles_fused * block * 4 / 1024 * BRAM_PER_KB)
        ) * cores
        return {
            "lut": int(NTT_BASE["lut"] * shape * lane_scale),
            "ff": int(NTT_BASE["ff"] * shape * lane_scale),
            "dsp": int(NTT_BASE["dsp"] * shape * lane_scale),
            "bram": int(NTT_BASE["bram"] * shape * lane_scale)
            + twiddle_bram,
        }


class HermesHybridCore(NTTCoreModel):
    """Hermes: unified hybrid-dataflow NTT/INTT (arXiv:2603.01556).

    One datapath serves NTT and INTT by ping-ponging between two
    dataflow organizations, retiring two radix-2 stages per pass. There
    is no fused-twiddle staging — each butterfly reads its twiddle from
    BRAM, which costs stream bandwidth (the port-sharing factor) but
    makes the per-pass reconfiguration bubble a small constant. The
    fill is shallow because the butterflies are plain radix-2.
    """

    name = "hermes"
    description = "unified hybrid-dataflow NTT/INTT (Hermes)"
    energy_per_element = 52.0e-12  # extra twiddle-BRAM traffic

    def cycle_breakdown(self, task, config):
        n = task.degree
        limb_count = task.elements / n
        passes = -(-ilog2(n) // HERMES_STAGES_PER_PASS)  # ceil
        stream = (
            passes
            * (n / config.lanes)
            * limb_count
            * HERMES_TWIDDLE_PORT_FACTOR
        )
        bubble = passes * HERMES_PASS_BUBBLE
        return {
            "stream": stream,
            "bubble": bubble,
            "fill": HERMES_PIPELINE_FILL,
        }

    def resources(self, config):
        lane_scale = config.lanes / 512
        # Unified datapath: extra muxing LUTs and double-buffered
        # twiddle BRAM banks, fewer DSPs than the dense fused block.
        return {
            "lut": int(52000 * lane_scale),
            "ff": int(78000 * lane_scale),
            "dsp": int(1152 * lane_scale),
            "bram": int(320 * lane_scale),
        }


class HazardFreeCore(NTTCoreModel):
    """HF-NTT: hazard-free dataflow butterfly array (arXiv:2410.04805).

    A fixed PE array retires :data:`HF_NTT_BUTTERFLIES_PER_CYCLE`
    radix-2 butterflies every cycle; dataflow forwarding removes all
    inter-stage and inter-limb pipeline hazards, so there is no bubble
    term at all — but the rate is a property of the array, not of the
    accelerator's vector-lane width.
    """

    name = "hf-ntt"
    description = "hazard-free fixed-rate dataflow array (HF-NTT)"
    energy_per_element = 38.0e-12  # no stall/flush energy, simple PEs

    def cycle_breakdown(self, task, config):
        n = task.degree
        limb_count = task.elements / n
        butterflies = ilog2(n) * (n / 2) * limb_count
        stream = butterflies / HF_NTT_BUTTERFLIES_PER_CYCLE
        return {
            "stream": stream,
            "bubble": 0.0,
            "fill": HF_NTT_PIPELINE_FILL,
        }

    def resources(self, config):
        # The array is fixed-size: resources do not scale with lanes.
        return {"lut": 38000, "ff": 61000, "dsp": 768, "bram": 96}


class DigitSerialCore(NTTCoreModel):
    """Pipelined digit-serial modulo arithmetic (arXiv:2507.12418).

    Modular multiplies proceed D = :data:`DIGIT_SERIAL_DIGITS` digits
    at a time through deeply pipelined LUT-based units — two per lane,
    so the sustained rate is ``lanes / 2`` elements per cycle across
    ``log2(N)`` radix-2 stages. The fill is deep (digit phases x
    pipeline depth) but there are no hazard bubbles, and the DSP cost
    is near zero: the design the explorer picks when DSPs bind.
    """

    name = "digit-serial"
    description = "pipelined digit-serial modulo arithmetic"
    energy_per_element = 30.0e-12  # LUT digit ops, minimal DSP toggling

    def cycle_breakdown(self, task, config):
        n = task.degree
        limb_count = task.elements / n
        rate = (
            config.lanes * DIGIT_SERIAL_UNITS_PER_LANE
            / DIGIT_SERIAL_DIGITS
        )
        stream = ilog2(n) * n * limb_count / rate
        return {
            "stream": stream,
            "bubble": 0.0,
            "fill": DIGIT_SERIAL_PIPELINE_FILL,
        }

    def resources(self, config):
        lane_scale = config.lanes / 512
        # Digit arithmetic lives in LUTs/FFs; DSPs nearly free.
        return {
            "lut": int(72000 * lane_scale),
            "ff": int(96000 * lane_scale),
            "dsp": int(64 * lane_scale),
            "bram": int(72 * lane_scale),
        }


def ntt_shape_factor(radix_log2: int) -> float:
    """Fig.-10-calibrated logic-cost shape of the fused core vs k = 3."""
    shape = NTT_SHAPE.get(radix_log2)
    if shape is None:
        # Extrapolate the superlinear butterfly growth beyond k = 6.
        shape = NTT_SHAPE[6] * (1.6 ** (radix_log2 - 6))
    return shape


#: Registry of selectable NTT core microarchitectures.
NTT_CORE_REGISTRY: dict[str, NTTCoreModel] = {}


def register_ntt_core(model: NTTCoreModel) -> NTTCoreModel:
    """Register a variant under ``model.name`` (last write wins)."""
    NTT_CORE_REGISTRY[model.name] = model
    return model


def get_ntt_core(name: str) -> NTTCoreModel:
    """Look up a registered variant by name."""
    try:
        return NTT_CORE_REGISTRY[name]
    except KeyError:
        raise SimulationError(
            f"unknown NTT core variant {name!r} "
            f"(registered: {', '.join(sorted(NTT_CORE_REGISTRY))})"
        ) from None


def available_ntt_cores() -> tuple[str, ...]:
    """Sorted names of all registered variants."""
    return tuple(sorted(NTT_CORE_REGISTRY))


DEFAULT_NTT_CORE = "poseidon"

register_ntt_core(PoseidonFusedCore())
register_ntt_core(HermesHybridCore())
register_ntt_core(HazardFreeCore())
register_ntt_core(DigitSerialCore())
