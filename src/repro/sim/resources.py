"""FPGA resource model: LUT/FF/DSP/BRAM per operator core array.

The paper reports resource consumption per core (Table XI), the
Auto-vs-HFAuto tradeoff (Table VIII), an NTT-fusion resource sweep
(Fig. 10) and a cross-prototype comparison (Table XII). Synthesis is
obviously out of reach in Python; this model is *structural*: each core
array's resources are derived from its datapath composition (lane
count, multiplier width, fused-butterfly operation counts) with unit
costs calibrated so the default configuration reproduces the paper's
Table VIII/XI rows, and it extrapolates for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automorphism.hfauto import hfauto_cycles_per_limb
from repro.sim.config import HardwareConfig
from repro.sim.ntt_cores import (
    BRAM_PER_KB,  # noqa: F401  (canonical home moved; re-exported)
    NTT_BASE,
    NTT_SHAPE,
    get_ntt_core,
    ntt_shape_factor,
)

#: Unit costs of one 32-bit datapath element on UltraScale+ fabric.
LUT_PER_ADDER = 32          # 32-bit add/sub + compare
FF_PER_STAGE = 36           # pipeline register per 32-bit value
DSP_PER_MULT = 3            # 32x32 multiply = 3 DSP48 slices
LUT_PER_MULT_GLUE = 58      # reduction glue logic around the DSPs


@dataclass(frozen=True)
class ResourceVector:
    """FPGA resource counts."""

    lut: int
    ff: int
    dsp: int
    bram: int

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
            self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            int(self.lut * factor),
            int(self.ff * factor),
            int(self.dsp * factor),
            int(self.bram * factor),
        )


#: Paper Table VIII rows (naive Auto vs HFAuto, C = 512).
PAPER_AUTO = {"ff": 88, "dsp": 0, "lut": 0, "bram": 0, "latency": 65536}
PAPER_HFAUTO = {"ff": 572, "dsp": 0, "lut": 25751, "bram": 512,
                "latency": 512}


class ResourceModel:
    """Structural resource estimates for one configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Per-core arrays
    # ------------------------------------------------------------------
    def ma_core(self) -> ResourceVector:
        """MA array: one adder + compare/subtract per lane."""
        lanes = self.config.lanes
        return ResourceVector(
            lut=2 * LUT_PER_ADDER * lanes,
            ff=2 * FF_PER_STAGE * lanes,
            dsp=0,
            bram=0,
        )

    def mm_core(self) -> ResourceVector:
        """MM array: multiplier + Barrett reduction per lane."""
        lanes = self.config.lanes
        return ResourceVector(
            lut=LUT_PER_MULT_GLUE * lanes,
            ff=6 * FF_PER_STAGE * lanes,
            dsp=DSP_PER_MULT * lanes,
            bram=0,
        )

    def sbt_core(self) -> ResourceVector:
        """Shared Barrett reduction array (reciprocal mults + shifts).

        One DSP per lane: the second Barrett multiply rides the MM
        array's multipliers (that sharing is the point of SBT).
        """
        lanes = self.config.lanes
        return ResourceVector(
            lut=(LUT_PER_MULT_GLUE // 2) * lanes,
            ff=4 * FF_PER_STAGE * lanes,
            dsp=lanes,
            bram=0,
        )

    #: Fused-core (``poseidon``) shape/base tables — canonical values
    #: live in :mod:`repro.sim.ntt_cores`; kept here as class attrs for
    #: backwards compatibility.
    NTT_SHAPE = NTT_SHAPE
    NTT_BASE = NTT_BASE

    def _ntt_shape(self, k: int) -> float:
        return ntt_shape_factor(k)

    def ntt_core(self) -> ResourceVector:
        """NTT array resources of the configured core variant.

        The default ``poseidon`` variant models the 2^k-input fused
        butterflies + twiddle BRAM: logic scales with lanes and with
        the Fig.-10-calibrated shape factor over the fusion radix (see
        :attr:`NTT_SHAPE`), and BRAM also carries the fused twiddle
        factors of Table II. The competing variants carry their own
        structural formulas in :mod:`repro.sim.ntt_cores` (e.g.
        ``hf-ntt`` is a fixed-size array independent of lanes,
        ``digit-serial`` trades nearly all DSPs for LUT digit
        arithmetic).
        """
        variant = get_ntt_core(self.config.ntt_core)
        return ResourceVector(**variant.resources(self.config))

    def automorphism_core(self) -> ResourceVector:
        """HFAuto (C-wide crossbar + FIFOs + BRAM) or naive Auto."""
        if not self.config.use_hfauto:
            return ResourceVector(
                lut=0, ff=PAPER_AUTO["ff"], dsp=0, bram=0
            )
        c = self.config.lanes
        # Calibrated to Table VIII at C = 512: LUT ~= 25,751, FF 572,
        # BRAM 512 (one column per lane for the dimension switch).
        return ResourceVector(
            lut=int(25751 * c / 512),
            ff=int(572 * c / 512),
            dsp=0,
            bram=int(512 * c / 512),
        )

    def scratchpad(self) -> ResourceVector:
        """Scratchpad BRAM (capacity / 4KB per 36Kb block)."""
        blocks = int(self.config.scratchpad_bytes / 1024 * BRAM_PER_KB)
        return ResourceVector(lut=0, ff=0, dsp=0, bram=blocks)

    # ------------------------------------------------------------------
    def per_core_table(self) -> dict[str, ResourceVector]:
        """Table XI: resources per operator core array."""
        return {
            "MA": self.ma_core(),
            "MM": self.mm_core(),
            "SBT": self.sbt_core(),
            "NTT": self.ntt_core(),
            "Automorphism": self.automorphism_core(),
        }

    def total(self, *, include_scratchpad: bool = True) -> ResourceVector:
        """Whole-accelerator resource total."""
        total = ResourceVector(0, 0, 0, 0)
        for vec in self.per_core_table().values():
            total = total + vec
        if include_scratchpad:
            total = total + self.scratchpad()
        return total

    def automorphism_latency_cycles(self, degree: int) -> int:
        """Latency of one automorphism pass (Table VIII's last column).

        Delegates to the same stage-cost formula the functional
        :class:`~repro.automorphism.hfauto.HFAutoPlan` reports, so the
        published-table renderer and the cycle model agree by
        construction.
        """
        if not self.config.use_hfauto:
            return degree
        c = min(self.config.lanes, degree)
        return hfauto_cycles_per_limb(degree, c)


#: Published resource totals of competing FPGA prototypes (Table XII).
PAPER_FPGA_PROTOTYPES = {
    "Kim et al. [25][26]": {"lut": 798000, "ff": 1232000, "dsp": 3584,
                            "bram": 3360},
    "HEAX [32]": {"lut": 569000, "ff": 1261000, "dsp": 8448, "bram": 2528},
}
