"""FPGA resource model: LUT/FF/DSP/BRAM per operator core array.

The paper reports resource consumption per core (Table XI), the
Auto-vs-HFAuto tradeoff (Table VIII), an NTT-fusion resource sweep
(Fig. 10) and a cross-prototype comparison (Table XII). Synthesis is
obviously out of reach in Python; this model is *structural*: each core
array's resources are derived from its datapath composition (lane
count, multiplier width, fused-butterfly operation counts) with unit
costs calibrated so the default configuration reproduces the paper's
Table VIII/XI rows, and it extrapolates for sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ntt.fusion import FusionCostModel
from repro.sim.config import HardwareConfig

#: Unit costs of one 32-bit datapath element on UltraScale+ fabric.
LUT_PER_ADDER = 32          # 32-bit add/sub + compare
FF_PER_STAGE = 36           # pipeline register per 32-bit value
DSP_PER_MULT = 3            # 32x32 multiply = 3 DSP48 slices
LUT_PER_MULT_GLUE = 58      # reduction glue logic around the DSPs
BRAM_PER_KB = 1 / 4.0       # 36Kb BRAM => 4 KB usable


@dataclass(frozen=True)
class ResourceVector:
    """FPGA resource counts."""

    lut: int
    ff: int
    dsp: int
    bram: int

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.lut + other.lut,
            self.ff + other.ff,
            self.dsp + other.dsp,
            self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            int(self.lut * factor),
            int(self.ff * factor),
            int(self.dsp * factor),
            int(self.bram * factor),
        )


#: Paper Table VIII rows (naive Auto vs HFAuto, C = 512).
PAPER_AUTO = {"ff": 88, "dsp": 0, "lut": 0, "bram": 0, "latency": 65536}
PAPER_HFAUTO = {"ff": 572, "dsp": 0, "lut": 25751, "bram": 512,
                "latency": 512}


class ResourceModel:
    """Structural resource estimates for one configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    # ------------------------------------------------------------------
    # Per-core arrays
    # ------------------------------------------------------------------
    def ma_core(self) -> ResourceVector:
        """MA array: one adder + compare/subtract per lane."""
        lanes = self.config.lanes
        return ResourceVector(
            lut=2 * LUT_PER_ADDER * lanes,
            ff=2 * FF_PER_STAGE * lanes,
            dsp=0,
            bram=0,
        )

    def mm_core(self) -> ResourceVector:
        """MM array: multiplier + Barrett reduction per lane."""
        lanes = self.config.lanes
        return ResourceVector(
            lut=LUT_PER_MULT_GLUE * lanes,
            ff=6 * FF_PER_STAGE * lanes,
            dsp=DSP_PER_MULT * lanes,
            bram=0,
        )

    def sbt_core(self) -> ResourceVector:
        """Shared Barrett reduction array (reciprocal mults + shifts).

        One DSP per lane: the second Barrett multiply rides the MM
        array's multipliers (that sharing is the point of SBT).
        """
        lanes = self.config.lanes
        return ResourceVector(
            lut=(LUT_PER_MULT_GLUE // 2) * lanes,
            ff=4 * FF_PER_STAGE * lanes,
            dsp=lanes,
            bram=0,
        )

    #: Relative logic cost vs the k = 3 design point, calibrated to the
    #: paper's Fig. 10 sweep. The structural trade: smaller k needs more
    #: cascaded pipeline phases (more inter-stage buffering and control),
    #: larger k needs superlinearly more butterfly multipliers and
    #: twiddle staging (Table II) — the minimum sits at k = 3.
    NTT_SHAPE = {1: 1.35, 2: 1.12, 3: 1.0, 4: 1.15, 5: 1.5, 6: 2.3}

    #: Baseline NTT-array resources at k = 3, 512 lanes. The DSP count
    #: reflects multiplier sharing between the butterfly network and
    #: the fused SBT reductions (the whole accelerator must undercut
    #: the Table XII rivals' 3584/8448 DSPs).
    NTT_BASE = {"lut": 44000, "ff": 73700, "dsp": 1344, "bram": 128}

    def _ntt_shape(self, k: int) -> float:
        shape = self.NTT_SHAPE.get(k)
        if shape is None:
            # Extrapolate the superlinear butterfly growth beyond k = 6.
            shape = self.NTT_SHAPE[6] * (1.6 ** (k - 6))
        return shape

    def ntt_core(self) -> ResourceVector:
        """NTT array: 2^k-input fused butterflies + twiddle BRAM.

        Logic scales with lanes and with the Fig.-10-calibrated shape
        factor over the fusion radix (see :attr:`NTT_SHAPE`); BRAM also
        carries the fused twiddle factors of Table II.
        """
        cfg = self.config
        fusion = FusionCostModel(cfg.ntt_radix_log2)
        costs = fusion.costs()
        block = 1 << cfg.ntt_radix_log2
        cores = max(1, cfg.lanes // block)
        shape = self._ntt_shape(cfg.ntt_radix_log2)
        lane_scale = cfg.lanes / 512
        twiddle_bram = max(
            1, int(costs.twiddles_fused * block * 4 / 1024 * BRAM_PER_KB)
        ) * cores
        return ResourceVector(
            lut=int(self.NTT_BASE["lut"] * shape * lane_scale),
            ff=int(self.NTT_BASE["ff"] * shape * lane_scale),
            dsp=int(self.NTT_BASE["dsp"] * shape * lane_scale),
            bram=int(self.NTT_BASE["bram"] * shape * lane_scale)
            + twiddle_bram,
        )

    def automorphism_core(self) -> ResourceVector:
        """HFAuto (C-wide crossbar + FIFOs + BRAM) or naive Auto."""
        if not self.config.use_hfauto:
            return ResourceVector(
                lut=0, ff=PAPER_AUTO["ff"], dsp=0, bram=0
            )
        c = self.config.lanes
        # Calibrated to Table VIII at C = 512: LUT ~= 25,751, FF 572,
        # BRAM 512 (one column per lane for the dimension switch).
        return ResourceVector(
            lut=int(25751 * c / 512),
            ff=int(572 * c / 512),
            dsp=0,
            bram=int(512 * c / 512),
        )

    def scratchpad(self) -> ResourceVector:
        """Scratchpad BRAM (capacity / 4KB per 36Kb block)."""
        blocks = int(self.config.scratchpad_bytes / 1024 * BRAM_PER_KB)
        return ResourceVector(lut=0, ff=0, dsp=0, bram=blocks)

    # ------------------------------------------------------------------
    def per_core_table(self) -> dict[str, ResourceVector]:
        """Table XI: resources per operator core array."""
        return {
            "MA": self.ma_core(),
            "MM": self.mm_core(),
            "SBT": self.sbt_core(),
            "NTT": self.ntt_core(),
            "Automorphism": self.automorphism_core(),
        }

    def total(self, *, include_scratchpad: bool = True) -> ResourceVector:
        """Whole-accelerator resource total."""
        total = ResourceVector(0, 0, 0, 0)
        for vec in self.per_core_table().values():
            total = total + vec
        if include_scratchpad:
            total = total + self.scratchpad()
        return total

    def automorphism_latency_cycles(self, degree: int) -> int:
        """Latency of one automorphism pass (Table VIII's last column)."""
        if not self.config.use_hfauto:
            return degree
        c = min(self.config.lanes, degree)
        r = degree // c
        return 3 * r + c


#: Published resource totals of competing FPGA prototypes (Table XII).
PAPER_FPGA_PROTOTYPES = {
    "Kim et al. [25][26]": {"lut": 798000, "ff": 1232000, "dsp": 3584,
                            "bram": 3360},
    "HEAX [32]": {"lut": 569000, "ff": 1261000, "dsp": 8448, "bram": 2528},
}
