"""Operator-level task records — the simulator's instruction set.

A task is one invocation of an operator core array over a batch of
elements (typically one polynomial: L limbs x N coefficients), plus the
memory traffic it induces. The compiler lowers every FHE basic
operation into a small DAG of these tasks (paper Table I), and the
engine schedules them onto the core/memory resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperatorKind(enum.Enum):
    """The five Poseidon operators (SBT is fused into MM/NTT cores but
    tracked separately where the paper reports it standalone)."""

    MA = "MA"
    MM = "MM"
    NTT = "NTT"
    INTT = "INTT"
    AUTO = "Automorphism"
    SBT = "SBT"

    @property
    def core(self) -> str:
        """Which physical core array executes this kind."""
        if self in (OperatorKind.NTT, OperatorKind.INTT):
            return "NTT"
        if self is OperatorKind.SBT:
            return "MM"  # SBT cores are shared with the MM/NTT arrays
        return self.value


@dataclass(frozen=True)
class OperatorTask:
    """One schedulable unit of operator work.

    Attributes:
        kind: operator executed.
        elements: total elements processed (limbs * degree * polys).
        degree: ring degree N (NTT/AUTO cycle models need it).
        limbs: RNS limb count covered by this task.
        hbm_read_bytes / hbm_write_bytes: off-chip traffic.
        spad_bytes: on-chip scratchpad traffic (reads+writes).
        depends_on: indices of prerequisite tasks within the same
            task list (the compiler emits topologically ordered lists).
        op_label: the FHE basic operation this task was lowered from
            (for Fig. 7/8/9-style attributions).
    """

    kind: OperatorKind
    elements: int
    degree: int
    limbs: int
    hbm_read_bytes: int = 0
    hbm_write_bytes: int = 0
    spad_bytes: int = 0
    depends_on: tuple[int, ...] = ()
    op_label: str = ""

    def __post_init__(self):
        if self.elements <= 0:
            raise ValueError(f"task needs elements > 0, got {self.elements}")
        if self.limbs <= 0 or self.degree <= 0:
            raise ValueError("task needs positive limbs and degree")

    @property
    def hbm_bytes(self) -> int:
        """Total off-chip bytes moved."""
        return self.hbm_read_bytes + self.hbm_write_bytes

    def relabel(self, op_label: str) -> "OperatorTask":
        """Copy with a new basic-operation label."""
        return OperatorTask(
            kind=self.kind,
            elements=self.elements,
            degree=self.degree,
            limbs=self.limbs,
            hbm_read_bytes=self.hbm_read_bytes,
            hbm_write_bytes=self.hbm_write_bytes,
            spad_bytes=self.spad_bytes,
            depends_on=self.depends_on,
            op_label=op_label,
        )

    def shifted(self, offset: int) -> "OperatorTask":
        """Copy with dependency indices shifted by ``offset``.

        Used when concatenating per-operation task lists into one
        program-level list.
        """
        return OperatorTask(
            kind=self.kind,
            elements=self.elements,
            degree=self.degree,
            limbs=self.limbs,
            hbm_read_bytes=self.hbm_read_bytes,
            hbm_write_bytes=self.hbm_write_bytes,
            spad_bytes=self.spad_bytes,
            depends_on=tuple(d + offset for d in self.depends_on),
            op_label=self.op_label,
        )
