"""Memory-system model: HBM, scratchpad, and PCIe staging.

The HBM is modelled as a shared bandwidth resource with channel
granularity: Alveo U280 HBM2 exposes 32 pseudo-channels of ~14.4 GB/s
each, and a transfer only reaches the aggregate 460 GB/s if its
footprint stripes across all of them. Each task's off-chip traffic
occupies the HBM for ``bytes / effective_bandwidth`` seconds,
serialized against other tasks' traffic (the engine overlaps it with
compute where dependencies allow).

The scratchpad provides enough bandwidth (3.4 TB/s) that it is never
the bottleneck at 512 lanes — but the model still checks the working
set against its capacity and charges spill traffic when a task's
footprint exceeds it, which is what makes small-scratchpad
configurations degrade (see the scratchpad-ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import metrics
from repro.sim.config import HardwareConfig, LIMB_BYTES

#: Bytes one HBM pseudo-channel serves per striping unit. Transfers
#: smaller than ``stripe * channels`` cannot engage every channel.
HBM_STRIPE_BYTES = 64 * 1024


@dataclass(frozen=True)
class MemoryTiming:
    """Timing/traffic summary of one task's memory behaviour."""

    hbm_seconds: float
    hbm_bytes: int
    spad_seconds: float
    spill_bytes: int
    channels_used: int


class MemoryModel:
    """Traffic/timing model bound to one hardware configuration."""

    def __init__(self, config: HardwareConfig):
        self.config = config

    def working_set_bytes(self, task) -> int:
        """Scratchpad bytes a task needs resident (in + out tiles)."""
        return 2 * min(task.elements, task.degree) * LIMB_BYTES

    def channels_for(self, transfer_bytes: int) -> int:
        """HBM pseudo-channels a transfer of this size can engage."""
        if transfer_bytes <= 0:
            return self.config.hbm_channels
        stripes = -(-transfer_bytes // HBM_STRIPE_BYTES)
        return max(1, min(self.config.hbm_channels, stripes))

    def effective_hbm_bandwidth(self, transfer_bytes: int) -> float:
        """Delivered bandwidth after channel-granularity effects."""
        cfg = self.config
        used = self.channels_for(transfer_bytes)
        return cfg.hbm_bandwidth * used / cfg.hbm_channels

    def task_timing(self, task) -> MemoryTiming:
        """Memory timing for one task.

        If the task's streaming working set exceeds the scratchpad, the
        overflow is charged as extra HBM traffic (spill + refill).
        """
        cfg = self.config
        spill = 0
        working = self.working_set_bytes(task)
        if working > cfg.scratchpad_bytes:
            spill = 2 * (working - cfg.scratchpad_bytes)
        hbm_bytes = task.hbm_bytes + spill
        channels = self.channels_for(hbm_bytes)
        if hbm_bytes:
            hbm_seconds = hbm_bytes / self.effective_hbm_bandwidth(
                hbm_bytes
            )
        else:
            hbm_seconds = 0.0
        spad_seconds = task.spad_bytes / cfg.scratchpad_bandwidth
        reg = metrics.active()
        if reg is not None:
            if spill:
                reg.counter("sim.spad.misses").inc()
                reg.counter("sim.spad.spill_bytes").inc(spill)
            else:
                reg.counter("sim.spad.hits").inc()
            if hbm_bytes:
                reg.counter("sim.hbm.transfers").inc()
                reg.histogram("sim.hbm.channels_used").observe(channels)
        return MemoryTiming(
            hbm_seconds=hbm_seconds,
            hbm_bytes=hbm_bytes,
            spad_seconds=spad_seconds,
            spill_bytes=spill,
            channels_used=channels,
        )

    def pcie_seconds(self, payload_bytes: int) -> float:
        """Host staging time over PCIe (used once per workload)."""
        return payload_bytes / self.config.pcie_bandwidth
