"""Timeline analysis of a simulated run — the scheduler's Gantt view.

Turns the per-task records of a :class:`~repro.sim.engine.
SimulationResult` into per-core occupancy intervals, idle-gap
statistics and a coarse text rendering. Used to debug operator-reuse
behaviour (is the NTT array actually saturated during keyswitch?) and
by tests asserting the scheduler's invariants (no overlap on any core
instance).

Occupancy vs. compute: an interval spans the whole time the core
instance was *held* (including the stall tail waiting on the task's
residual HBM stream); :meth:`Timeline.utilization` reports that
occupancy while :meth:`Timeline.compute_utilization` excludes the
stall, matching the stall-free busy attribution of Figs. 7/8/9.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class CoreInterval:
    """One occupancy interval on a core array instance.

    ``stall`` is the tail of the interval during which the instance was
    held but idle (waiting on the task's own HBM stream); the
    compute-busy part is ``duration - stall``.
    """

    core: str
    start: float
    end: float
    op_label: str
    instance: int = 0
    stall: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (start, end) intervals, sorted and coalesced."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start > last_end:
            merged.append((start, end))
        else:
            merged[-1] = (last_start, max(last_end, end))
    return merged


class Timeline:
    """Per-core occupancy extracted from a simulation result."""

    def __init__(self, result: SimulationResult):
        self.result = result
        self.intervals: dict[str, list[CoreInterval]] = {}
        self.instance_counts: dict[str, int] = {}
        for record in result.task_records:
            self.intervals.setdefault(record.core, []).append(
                CoreInterval(
                    core=record.core,
                    start=record.start,
                    end=record.end,
                    op_label=record.op_label,
                    instance=record.instance,
                    stall=record.stall_seconds,
                )
            )
            prev = self.instance_counts.get(record.core, 1)
            self.instance_counts[record.core] = max(prev, record.instance + 1)
        for intervals in self.intervals.values():
            intervals.sort(key=lambda iv: (iv.start, iv.instance))

    # ------------------------------------------------------------------
    def verify_no_overlap(self) -> None:
        """Assert the scheduler never double-booked a core instance.

        Intervals are grouped per ``(core, instance)`` — replicated
        arrays legitimately run concurrent tasks on different
        instances. The overlap tolerance is relative to the makespan
        (spans are ~1e-3 s, so a fixed 1e-15 would be far below the
        float resolution of the arithmetic that produced them).

        Raises:
            SimulationError: on any overlapping pair.
        """
        eps = max(1e-15, 1e-9 * self.result.total_seconds)
        for core, intervals in self.intervals.items():
            by_instance: dict[int, list[CoreInterval]] = {}
            for iv in intervals:
                by_instance.setdefault(iv.instance, []).append(iv)
            for instance, ivs in by_instance.items():
                ivs.sort(key=lambda iv: iv.start)
                for prev, cur in zip(ivs, ivs[1:]):
                    if cur.start < prev.end - eps:
                        raise SimulationError(
                            f"core {core}#{instance} double-booked: "
                            f"[{prev.start:.3e}, {prev.end:.3e}] overlaps "
                            f"[{cur.start:.3e}, {cur.end:.3e}]"
                        )

    def utilization(self, core: str) -> float:
        """Occupancy fraction of one core array over the makespan.

        Normalized by the array's instance count, so a two-instance
        array running one task half the time reports 0.25. Includes
        stall tails; see :meth:`compute_utilization` for the stall-free
        figure.
        """
        total = self.result.total_seconds * self.instance_counts.get(core, 1)
        if total <= 0:
            return 0.0
        held = sum(iv.duration for iv in self.intervals.get(core, []))
        return min(1.0, held / total)

    def compute_utilization(self, core: str) -> float:
        """Stall-free busy fraction of one core array (Fig. 7/8/9 basis)."""
        total = self.result.total_seconds * self.instance_counts.get(core, 1)
        if total <= 0:
            return 0.0
        busy = sum(
            iv.duration - iv.stall for iv in self.intervals.get(core, [])
        )
        return min(1.0, busy / total)

    def idle_gaps(self, core: str) -> list[tuple[float, float]]:
        """Idle intervals of one core between its first and last task.

        Computed over the union across instances: a gap is a span when
        *no* instance of the array held a task.
        """
        merged = _merge(
            [(iv.start, iv.end) for iv in self.intervals.get(core, [])]
        )
        return [
            (prev_end, cur_start)
            for (_, prev_end), (cur_start, _) in zip(merged, merged[1:])
            if cur_start > prev_end
        ]

    def busiest_core(self) -> str:
        """The core with the highest occupancy time."""
        if not self.intervals:
            raise SimulationError("empty timeline")
        return max(
            self.intervals,
            key=lambda core: sum(iv.duration for iv in self.intervals[core]),
        )

    # ------------------------------------------------------------------
    def render(self, *, width: int = 64) -> str:
        """Coarse text Gantt: one row per core, '#' where busy."""
        total = self.result.total_seconds
        if total <= 0:
            return "(empty timeline)"
        lines = []
        for core in sorted(self.intervals):
            cells = [" "] * width
            for iv in self.intervals[core]:
                lo = int(iv.start / total * width)
                hi = max(lo + 1, int(iv.end / total * width))
                for i in range(lo, min(hi, width)):
                    cells[i] = "#"
            busy = 100 * self.utilization(core)
            lines.append(f"{core:14s} |{''.join(cells)}| {busy:5.1f}%")
        return "\n".join(lines)
