"""Timeline analysis of a simulated run — the scheduler's Gantt view.

Turns the per-task records of a :class:`~repro.sim.engine.
SimulationResult` into per-core occupancy intervals, idle-gap
statistics and a coarse text rendering. Used to debug operator-reuse
behaviour (is the NTT array actually saturated during keyswitch?) and
by tests asserting the scheduler's invariants (no core overlaps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class CoreInterval:
    """One busy interval on a core array."""

    core: str
    start: float
    end: float
    op_label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Per-core occupancy extracted from a simulation result."""

    def __init__(self, result: SimulationResult):
        self.result = result
        self.intervals: dict[str, list[CoreInterval]] = {}
        for record in result.task_records:
            self.intervals.setdefault(record.core, []).append(
                CoreInterval(
                    core=record.core,
                    start=record.start,
                    end=record.end,
                    op_label=record.op_label,
                )
            )
        for intervals in self.intervals.values():
            intervals.sort(key=lambda iv: iv.start)

    # ------------------------------------------------------------------
    def verify_no_overlap(self) -> None:
        """Assert the scheduler never double-booked a core array.

        Raises:
            SimulationError: on any overlapping pair.
        """
        for core, intervals in self.intervals.items():
            for prev, cur in zip(intervals, intervals[1:]):
                if cur.start < prev.end - 1e-15:
                    raise SimulationError(
                        f"core {core} double-booked: "
                        f"[{prev.start:.3e}, {prev.end:.3e}] overlaps "
                        f"[{cur.start:.3e}, {cur.end:.3e}]"
                    )

    def utilization(self, core: str) -> float:
        """Busy fraction of one core over the makespan."""
        total = self.result.total_seconds
        if total <= 0:
            return 0.0
        busy = sum(iv.duration for iv in self.intervals.get(core, []))
        return min(1.0, busy / total)

    def idle_gaps(self, core: str) -> list[tuple[float, float]]:
        """Idle intervals of one core between its first and last task."""
        intervals = self.intervals.get(core, [])
        gaps = []
        for prev, cur in zip(intervals, intervals[1:]):
            if cur.start > prev.end:
                gaps.append((prev.end, cur.start))
        return gaps

    def busiest_core(self) -> str:
        """The core with the highest busy time."""
        if not self.intervals:
            raise SimulationError("empty timeline")
        return max(
            self.intervals,
            key=lambda core: sum(iv.duration for iv in self.intervals[core]),
        )

    # ------------------------------------------------------------------
    def render(self, *, width: int = 64) -> str:
        """Coarse text Gantt: one row per core, '#' where busy."""
        total = self.result.total_seconds
        if total <= 0:
            return "(empty timeline)"
        lines = []
        for core in sorted(self.intervals):
            cells = [" "] * width
            for iv in self.intervals[core]:
                lo = int(iv.start / total * width)
                hi = max(lo + 1, int(iv.end / total * width))
                for i in range(lo, min(hi, width)):
                    cells[i] = "#"
            busy = 100 * self.utilization(core)
            lines.append(f"{core:14s} |{''.join(cells)}| {busy:5.1f}%")
        return "\n".join(lines)
