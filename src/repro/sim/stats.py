"""Post-simulation analysis: bandwidth utilization and time breakdowns.

These helpers turn :class:`~repro.sim.engine.SimulationResult` objects
into the aggregates the paper reports:

- Table VII: per-operation and per-benchmark HBM bandwidth utilization;
- Fig. 7: operator-core time share per basic operation;
- Fig. 8: basic-operation time share per benchmark;
- Fig. 9: key-operator time share per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ops import FheOp
from repro.sim.config import HardwareConfig
from repro.sim.engine import PoseidonSimulator, SimulationResult


@dataclass(frozen=True)
class BandwidthReport:
    """Bandwidth utilization of one operation or benchmark.

    ``utilization`` is occupancy (fraction of the run during which the
    HBM streamed); ``delivered_fraction`` is achieved average bytes/s
    over the configured peak — the two differ when transfers engage
    only a subset of the pseudo-channels.
    """

    name: str
    utilization: float          # fraction of runtime the HBM streamed
    achieved_bytes_per_s: float
    delivered_fraction: float   # achieved / configured peak bandwidth
    total_bytes: int
    seconds: float

    @property
    def utilization_percent(self) -> float:
        return 100.0 * self.utilization


def bandwidth_report(
    name: str, result: SimulationResult, config: HardwareConfig
) -> BandwidthReport:
    """Summarize HBM usage of one simulated run."""
    return BandwidthReport(
        name=name,
        utilization=result.bandwidth_utilization,
        achieved_bytes_per_s=result.achieved_bandwidth(),
        delivered_fraction=result.delivered_bandwidth_fraction(config),
        total_bytes=result.hbm_bytes,
        seconds=result.total_seconds,
    )


def operation_bandwidth(
    op: FheOp, simulator: PoseidonSimulator
) -> BandwidthReport:
    """Table VII row: bandwidth utilization of one basic operation."""
    result = simulator.run_ops([op])
    return bandwidth_report(op.name.value, result, simulator.config)


def operator_core_shares(result: SimulationResult) -> dict[str, dict[str, float]]:
    """Fig. 7: per basic operation, the share of time in each core.

    Returns ``{op_label: {core: share}}`` with shares summing to 1 per
    operation.
    """
    out: dict[str, dict[str, float]] = {}
    for label, cores in result.operator_seconds.items():
        total = sum(cores.values())
        if total <= 0:
            continue
        out[label] = {core: t / total for core, t in cores.items()}
    return out


def benchmark_op_shares(result: SimulationResult) -> dict[str, float]:
    """Fig. 8: share of total busy time per basic operation."""
    return result.op_share()


def benchmark_operator_shares(result: SimulationResult) -> dict[str, float]:
    """Fig. 9: share of total busy time per operator core array."""
    totals: dict[str, float] = {}
    for cores in result.operator_seconds.values():
        for core, t in cores.items():
            totals[core] = totals.get(core, 0.0) + t
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {core: t / grand for core, t in totals.items()}
