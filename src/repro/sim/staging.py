"""Host staging model: PCIe transfers around an accelerator run.

The paper's data flow (§IV-A) stages inputs host->HBM over PCIe before
compute (Stage 1) and returns only results afterwards. For the long-
running benchmarks this cost is negligible — which this model makes
checkable rather than assumed — while for small one-shot operations it
dominates, the classic offload break-even analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.params import CkksParameters
from repro.sim.config import HardwareConfig, LIMB_BYTES
from repro.sim.engine import SimulationResult


@dataclass(frozen=True)
class StagingPlan:
    """Bytes moved over PCIe before/after a run."""

    upload_bytes: int
    download_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.upload_bytes + self.download_bytes


@dataclass(frozen=True)
class FullSystemLatency:
    """Compute + staging breakdown of one offloaded run."""

    compute_seconds: float
    upload_seconds: float
    download_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.upload_seconds + (
            self.download_seconds
        )

    @property
    def staging_fraction(self) -> float:
        total = self.total_seconds
        if total <= 0:
            return 0.0
        return (self.upload_seconds + self.download_seconds) / total


def ciphertext_staging(
    params: CkksParameters,
    *,
    input_ciphertexts: int,
    output_ciphertexts: int,
    key_bytes: int = 0,
) -> StagingPlan:
    """Staging plan for a workload moving whole ciphertexts.

    Keys are uploaded once (they persist in HBM across runs, so
    amortized callers pass 0).
    """
    ct_bytes = 2 * params.degree * len(params.chain_moduli) * LIMB_BYTES
    return StagingPlan(
        upload_bytes=input_ciphertexts * ct_bytes + key_bytes,
        download_bytes=output_ciphertexts * ct_bytes,
    )


def full_system_latency(
    result: SimulationResult,
    plan: StagingPlan,
    config: HardwareConfig,
) -> FullSystemLatency:
    """Combine a simulated run with its PCIe staging."""
    return FullSystemLatency(
        compute_seconds=result.total_seconds,
        upload_seconds=plan.upload_bytes / config.pcie_bandwidth,
        download_seconds=plan.download_bytes / config.pcie_bandwidth,
    )


def offload_break_even_ops(
    per_op_seconds: float,
    plan: StagingPlan,
    config: HardwareConfig,
) -> int:
    """Operations needed before offloading beats the staging cost.

    Returns the smallest op count for which staging is under half the
    total time — the practical "is the accelerator worth invoking"
    threshold for a given payload.
    """
    staging = plan.total_bytes / config.pcie_bandwidth
    if per_op_seconds <= 0:
        raise ValueError("per-op time must be positive")
    return max(1, int(staging / per_op_seconds) + 1)
