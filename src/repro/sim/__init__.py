"""Cycle-level model of the Poseidon accelerator.

The simulator consumes operator-level task graphs (produced by
:mod:`repro.compiler` from FHE-operation traces) and replays them on a
model of the paper's hardware: five operator core arrays (MA, MM, NTT,
Automorphism, SBT) behind an 8.6 MB scratchpad and HBM2.

Submodules:

- :mod:`repro.sim.config` — hardware configuration (lanes, clocks,
  HBM/scratchpad, NTT radix, HFAuto toggle).
- :mod:`repro.sim.tasks` — operator task records.
- :mod:`repro.sim.cores` — per-core cycle models.
- :mod:`repro.sim.ntt_cores` — pluggable NTT core microarchitectures
  (fused radix-2^k default plus competing designs from the literature).
- :mod:`repro.sim.memory` — HBM/scratchpad traffic and timing.
- :mod:`repro.sim.engine` — the discrete-event scheduler.
- :mod:`repro.sim.energy` — energy and EDP models.
- :mod:`repro.sim.resources` — FPGA resource (LUT/FF/DSP/BRAM) model.
- :mod:`repro.sim.stats` — busy-time breakdowns and bandwidth stats.
"""

from repro.sim.config import HardwareConfig
from repro.sim.engine import PoseidonSimulator, SimulationResult
from repro.sim.tasks import OperatorKind, OperatorTask

__all__ = [
    "HardwareConfig",
    "OperatorKind",
    "OperatorTask",
    "PoseidonSimulator",
    "SimulationResult",
]
