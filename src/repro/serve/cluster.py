"""Fleet-scale serving: N Poseidon instances behind a request router.

One :class:`~repro.serve.simulator.ServingSimulator` drives a single
warm engine; a production deployment runs *many* accelerator instances
behind a router. This module is that fleet, still fully deterministic
per seed:

- each instance is an independent warm
  :class:`~repro.sim.engine.ScheduleEngine` with its own
  :class:`~repro.serve.batcher.DynamicBatcher` queue and an LRU
  :class:`~repro.serve.router.KeyCache` of resident
  rotation/relinearization key sets;
- a pluggable :mod:`router <repro.serve.router>` policy (round-robin,
  least-queue, shortest-expected-job, key-affinity) assigns every
  arrival to an instance;
- a key-cache *miss* charges the modeled key-set upload to that
  instance's HBM timeline — a ``KeyUpload`` task (pure off-chip
  stream) prepended to the request's task chain, so the transfer
  contends for real HBM channels and delays the request;
- optional autoscaling activates standby instances against the
  queue-depth knee (the signal ``bench_serving_sweep.py`` measures);
- optional per-tenant fair admission caps any tenant's share of an
  instance's queue on top of the batcher's depth backpressure;
- optional deterministic fault injection
  (:mod:`repro.serve.faults`): seeded crash/straggler/HBM-degradation
  plans, client-side deadlines and retries, a health-filtered router
  view with a modeled detection delay, and a request-conservation
  guarantee — every arrival ends exactly one of completed / rejected /
  abandoned / exhausted. Crashed instances restart as fresh engine
  epochs with cold key caches, so failover pays real key re-uploads.

All instance engines advance on one master clock: every decision
instant is the earliest of the next arrival, any instance's batcher
deadline, and any instance's next engine event; every engine is then
advanced to that instant. Each instance's schedule is validated
independently via ``engine.as_program()`` +
:func:`repro.sim.validate.validate_schedule`.

``benchmarks/bench_fleet_scaling.py`` sweeps instance count x routing
policy and gates near-linear aggregate throughput scaling until the
router or key movement saturates.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field, replace

from repro.errors import ParameterError, SimulationError
from repro.obs import metrics
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.estimate import ServiceEstimator
from repro.serve.faults import (
    OUTCOMES,
    FaultPlan,
    ResiliencePolicy,
)
from repro.serve.requests import (
    KEY_SET_BYTES,
    RequestType,
    TenantPopulation,
    resolve_request_mix,
)
from repro.serve.router import KeyCache, InstanceView, resolve_router
from repro.serve.simulator import (
    Request,
    RequestRecord,
    RequestStats,
    _Batch,
)
from repro.sim.config import HardwareConfig
from repro.sim.engine import ScheduleEngine, SimulationResult
from repro.sim.tasks import OperatorKind, OperatorTask


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Scale-out policy against the queue-depth knee.

    When the mean queue depth per active instance exceeds
    ``queue_high`` (the congestion signal of the serving sweep's knee
    curve), one standby instance is activated, at most once per
    ``cooldown_seconds``. Scale-down is deliberately absent: a drained
    instance simply idles, which keeps completed schedules intact.

    Attributes:
        max_instances: hard ceiling on active instances.
        queue_high: mean queued requests per active instance that
            triggers a scale-out.
        cooldown_seconds: minimum simulated time between scale-outs.
    """

    max_instances: int
    queue_high: float = 4.0
    cooldown_seconds: float = 0.002

    def __post_init__(self):
        if self.max_instances < 1:
            raise ParameterError(
                f"max_instances must be >= 1, got {self.max_instances}"
            )
        if self.queue_high <= 0:
            raise ParameterError(
                f"queue_high must be positive, got {self.queue_high}"
            )
        if self.cooldown_seconds < 0:
            raise ParameterError(
                "cooldown_seconds must be >= 0, got "
                f"{self.cooldown_seconds}"
            )


@dataclass(frozen=True)
class ClusterPolicy:
    """Fleet-level knobs (per-instance batching stays in
    :class:`~repro.serve.batcher.BatchPolicy`).

    Attributes:
        instances: instances active from t=0.
        router: dispatch policy name (see
            :data:`repro.serve.router.ROUTER_POLICIES`).
        key_cache_capacity: key sets resident per instance (LRU);
            ``0`` disables caching (every request uploads), ``None``
            is unbounded.
        key_upload_bytes: modeled size of one key-set upload; ``None``
            uses the mix-shape switch-key size
            (:data:`repro.serve.requests.KEY_SET_BYTES`, ~569 MB).
        max_tenant_share: fair admission — a tenant may hold at most
            this fraction of an instance's queue (floor of one slot);
            ``None`` disables the cap.
        autoscaler: optional scale-out policy; its ``max_instances``
            must be >= ``instances``.
    """

    instances: int = 2
    router: str = "key-affinity"
    key_cache_capacity: int | None = 4
    key_upload_bytes: int | None = None
    max_tenant_share: float | None = None
    autoscaler: AutoscalerPolicy | None = None

    def __post_init__(self):
        if self.instances < 1:
            raise ParameterError(
                f"need at least one instance, got {self.instances}"
            )
        if self.key_upload_bytes is not None and self.key_upload_bytes < 0:
            raise ParameterError(
                "key_upload_bytes must be >= 0, got "
                f"{self.key_upload_bytes}"
            )
        if self.max_tenant_share is not None and not (
            0 < self.max_tenant_share <= 1
        ):
            raise ParameterError(
                "max_tenant_share must be in (0, 1], got "
                f"{self.max_tenant_share}"
            )
        if (
            self.autoscaler is not None
            and self.autoscaler.max_instances < self.instances
        ):
            raise ParameterError(
                f"autoscaler max_instances {self.autoscaler.max_instances}"
                f" < initial instances {self.instances}"
            )

    @property
    def max_instances(self) -> int:
        """Largest instance count this policy can reach."""
        if self.autoscaler is None:
            return self.instances
        return self.autoscaler.max_instances

    @property
    def upload_bytes(self) -> int:
        """Effective key-set upload size (default: mix-shape keys)."""
        if self.key_upload_bytes is not None:
            return self.key_upload_bytes
        return KEY_SET_BYTES


#: Label carried by modeled key-set uploads in schedules and traces.
KEY_UPLOAD_LABEL = "KeyUpload"


def _with_key_upload(
    tasks, upload_bytes: int, key_set: int
) -> list[OperatorTask]:
    """Prepend a key-set upload to a request's task chain.

    The upload is a pure off-chip stream (negligible compute on the MA
    array) whose HBM traffic is the key-set size; every root task of
    the request gains a dependency on it, so the request cannot start
    until its keys are resident — and the transfer contends for the
    instance's HBM channels against everything else in flight.
    """
    upload = OperatorTask(
        kind=OperatorKind.MA,
        elements=1,
        degree=1,
        limbs=1,
        hbm_read_bytes=upload_bytes,
        op_label=f"{KEY_UPLOAD_LABEL}:k{key_set}",
    )
    out = [upload]
    for task in tasks:
        shifted = task.shifted(1)
        if not shifted.depends_on:
            shifted = replace(shifted, depends_on=(0,))
        out.append(shifted)
    return out


@dataclass
class _Instance:
    """Mutable state of one fleet member during a run.

    ``epoch`` counts rebirths of the same instance index (0 = original
    hardware, +1 per crash restart). A crashed instance stays in the
    fleet list with ``up=False`` until its restart replaces it;
    ``ghost_view`` freezes its last pre-crash state for the router's
    detection-delay window.
    """

    index: int
    engine: ScheduleEngine
    batcher: DynamicBatcher
    cache: KeyCache
    activated_seconds: float = 0.0
    inflight: int = 0
    inflight_estimate: float = 0.0
    completion_ptr: int = 0
    batches: int = 0
    upload_bytes: int = 0
    rejects: int = 0
    epoch: int = 0
    up: bool = True
    down_since: float = 0.0
    ghost_view: InstanceView | None = None
    source_ops: list = field(default_factory=list)
    by_submission: dict = field(default_factory=dict)

    def view(self) -> InstanceView:
        return InstanceView(
            index=self.index,
            queue_depth=self.batcher.depth,
            inflight=self.inflight,
            backlog_seconds=(
                self.batcher.queued_estimate_seconds()
                + self.inflight_estimate
            ),
            key_cache=self.cache,
        )


@dataclass
class InstanceReport:
    """Committed outcome of one instance *epoch* after it drains.

    A crash splits an instance index into several reports: one per
    epoch, each carrying that lifetime's truncated-or-complete
    schedule. ``crashed_seconds`` is when the epoch died (``None`` if
    it survived to the end of the run).
    """

    index: int
    sim: SimulationResult
    program: object
    activated_seconds: float
    batches: int
    admitted: int
    completed: int
    rejected: int
    key_hits: int
    key_misses: int
    key_evictions: int
    upload_bytes: int
    epoch: int = 0
    crashed_seconds: float | None = None

    @property
    def makespan_seconds(self) -> float:
        return self.sim.total_seconds


class ClusterResult(RequestStats):
    """Aggregate outcome of one routed fleet run."""

    def __init__(
        self,
        *,
        records: list[RequestRecord],
        instances: list[InstanceReport],
        queue_depth_series: list[tuple[float, int]],
        scale_events: list[tuple[float, int]],
        config: HardwareConfig,
        policy: ClusterPolicy,
        batch_policy: BatchPolicy,
        fault_events: list[tuple[float, str, int]] | None = None,
        availability: dict | None = None,
    ):
        self.records = records
        self.instances = instances
        self.queue_depth_series = queue_depth_series
        self.scale_events = scale_events
        self.config = config
        self.policy = policy
        self.batch_policy = batch_policy
        #: ``(seconds, "crash" | "restart", instance index)`` in firing
        #: order — the trace exporter turns these into instant markers.
        self.fault_events = fault_events or []
        #: Per-instance-index availability timeline: tuples of
        #: ``(up_from, down_at)`` windows, ``down_at=None`` while still
        #: up at the end of the run.
        self.availability = availability or {}

    @property
    def makespan_seconds(self) -> float:
        """Latest task end across the fleet (shared master clock)."""
        return max(
            (r.sim.total_seconds for r in self.instances), default=0.0
        )

    @property
    def key_hits(self) -> int:
        return sum(r.key_hits for r in self.instances)

    @property
    def key_misses(self) -> int:
        return sum(r.key_misses for r in self.instances)

    @property
    def key_hit_rate(self) -> float:
        looked = self.key_hits + self.key_misses
        return self.key_hits / looked if looked else 0.0

    @property
    def upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.instances)

    def rejected_by_instance(self) -> dict[int, int]:
        """Rejection counts attributed to the routed instance."""
        out: dict[int, int] = {r.index: 0 for r in self.instances}
        for rec in self.records:
            if rec.rejected:
                out[rec.instance] = out.get(rec.instance, 0) + 1
        return out

    # -- fault / resilience surface -----------------------------------
    @property
    def goodput(self) -> int:
        """Completions that met their deadline (every completion when
        no deadline policy was in force)."""
        return sum(1 for r in self.records if r.slo_met)

    @property
    def goodput_rps(self) -> float:
        """Within-deadline completions per simulated second."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.goodput / self.makespan_seconds

    @property
    def abandoned(self) -> int:
        """Requests whose client deadline expired before service."""
        return sum(1 for r in self.records if r.outcome == "abandoned")

    @property
    def exhausted(self) -> int:
        """Requests lost to crashes with no retry attempts left."""
        return sum(1 for r in self.records if r.outcome == "exhausted")

    @property
    def lost_events(self) -> int:
        """Delivery attempts destroyed by crashes (queued or in
        flight); one request can contribute several."""
        return sum(r.lost for r in self.records)

    @property
    def total_retries(self) -> int:
        """Re-deliveries actually scheduled after losses."""
        return sum(r.retries for r in self.records)

    @property
    def crashes(self) -> int:
        return sum(
            1 for _, kind, _ in self.fault_events if kind == "crash"
        )

    @property
    def restarts(self) -> int:
        return sum(
            1 for _, kind, _ in self.fault_events if kind == "restart"
        )

    @property
    def slo_violations(self) -> int:
        """Completions that finished past their deadline."""
        return sum(1 for r in self.records if r.slo_met is False)

    @property
    def slo_violation_rate(self) -> float:
        """Late completions as a fraction of all completions."""
        done = self.completed
        return self.slo_violations / done if done else 0.0

    def check_conservation(self) -> None:
        """Assert the request-conservation invariant.

        Every arrival must have ended in exactly one terminal outcome
        (:data:`repro.serve.faults.OUTCOMES`) and the outcome counts
        must agree with the lifecycle fields — the "no silently
        dropped requests" guarantee the chaos gate enforces.
        """
        counts = dict.fromkeys(OUTCOMES, 0)
        for rec in self.records:
            if rec.outcome not in counts:
                raise SimulationError(
                    f"request {rec.request_id} has no terminal outcome "
                    f"(outcome={rec.outcome!r}, finish="
                    f"{rec.finish_seconds!r}) — a request was silently "
                    "dropped"
                )
            counts[rec.outcome] += 1
        if counts["completed"] != self.completed:
            raise SimulationError(
                f"outcome bookkeeping drifted: {counts['completed']} "
                f"'completed' outcomes vs {self.completed} finished "
                "records"
            )
        if counts["rejected"] != self.rejected:
            raise SimulationError(
                f"outcome bookkeeping drifted: {counts['rejected']} "
                f"'rejected' outcomes vs {self.rejected} rejected "
                "records"
            )
        if sum(counts.values()) != self.arrived:
            raise SimulationError(  # pragma: no cover - defensive
                f"conservation violated: {self.arrived} arrivals != "
                f"{counts}"
            )

    def summary(self) -> dict:
        """Flat, JSON-ready headline numbers (deterministic)."""
        ordered = self.latencies()
        mean = sum(ordered) / len(ordered) if ordered else 0.0
        return {
            "instances": len({r.index for r in self.instances}),
            "router": self.policy.router,
            "requests_arrived": self.arrived,
            "requests_admitted": self.admitted,
            "requests_rejected": self.rejected,
            "requests_completed": self.completed,
            "requests_abandoned": self.abandoned,
            "requests_exhausted": self.exhausted,
            "goodput": self.goodput,
            "goodput_rps": self.goodput_rps,
            "lost_events": self.lost_events,
            "retries": self.total_retries,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "slo_violation_rate": self.slo_violation_rate,
            "batches": sum(r.batches for r in self.instances),
            "throughput_rps": self.throughput_rps,
            "latency_mean_seconds": mean,
            "latency_p50_seconds": self.latency_percentile(0.50),
            "latency_p95_seconds": self.latency_percentile(0.95),
            "latency_p99_seconds": self.latency_percentile(0.99),
            "max_queue_depth": self.max_queue_depth,
            "makespan_seconds": self.makespan_seconds,
            "key_hits": self.key_hits,
            "key_misses": self.key_misses,
            "key_hit_rate": self.key_hit_rate,
            "key_upload_bytes": self.upload_bytes,
            "scale_events": len(self.scale_events),
            "per_instance": [
                {
                    "instance": r.index,
                    "epoch": r.epoch,
                    "activated_seconds": r.activated_seconds,
                    "crashed_seconds": r.crashed_seconds,
                    "admitted": r.admitted,
                    "completed": r.completed,
                    "rejected": r.rejected,
                    "batches": r.batches,
                    "key_hits": r.key_hits,
                    "key_misses": r.key_misses,
                    "upload_bytes": r.upload_bytes,
                    "makespan_seconds": r.sim.total_seconds,
                }
                for r in self.instances
            ],
        }

    def validate(self) -> None:
        """Check every instance epoch's schedule against every engine
        invariant (each is an independent accelerator lifetime — a
        crashed epoch contributes its truncated-at-crash schedule),
        then the request-conservation invariant."""
        from repro.sim.validate import validate_schedule

        for report in self.instances:
            validate_schedule(
                report.sim,
                program=report.program,
                config=self.config,
            )
        self.check_conservation()


class ClusterSimulator:
    """Open-system serving across a routed fleet of instances."""

    def __init__(
        self,
        config: HardwareConfig | None = None,
        policy: ClusterPolicy | None = None,
        batch_policy: BatchPolicy | None = None,
    ):
        self.config = config or HardwareConfig()
        self.policy = policy or ClusterPolicy()
        self.batch_policy = batch_policy or BatchPolicy()
        self._estimator = ServiceEstimator()

    # ------------------------------------------------------------------
    def _service_estimate(
        self, engine: ScheduleEngine, job: RequestType
    ) -> float:
        """Serial-execution estimate, cached per resolved program
        (identical across instances — they share one hardware
        config)."""
        return self._estimator.estimate(engine, job)

    def _fair_rejects(self, inst: _Instance, req: Request) -> bool:
        """Whether fair admission turns this arrival away.

        A tenant may hold at most ``max_tenant_share`` of the
        instance's queue, with a floor of one slot so a lone tenant is
        never locked out of an idle system.
        """
        share = self.policy.max_tenant_share
        if share is None:
            return False
        queued = inst.batcher.queued_count_for(req.tenant)
        cap = max(1, math.ceil(share * (inst.batcher.depth + 1)))
        return queued + 1 > cap

    def _launch(
        self,
        inst: _Instance,
        now: float,
        records: list[RequestRecord],
        arrivals_pending: bool,
        plan: FaultPlan | None = None,
    ) -> int:
        """Launch every batch the instance's policy allows at ``now``;
        returns how many batches launched.

        With a fault plan, straggler / HBM-degradation windows open at
        ``now`` derate the submitted work (admission-time sampling:
        work admitted inside a window runs slow for its whole life,
        work admitted outside runs at full speed).
        """
        compute_scale = hbm_scale = 1.0
        if plan is not None:
            compute_scale = plan.compute_scale(inst.index, now)
            hbm_scale = plan.hbm_scale(inst.index, now)
        launched = 0
        while inst.batcher.should_launch(
            now, inst.inflight, arrivals_pending
        ):
            launched += 1
            members = inst.batcher.take_batch(now)
            batch = _Batch(
                index=inst.batches,
                admit_seconds=now,
                size=len(members),
                remaining=len(members),
            )
            inst.batches += 1
            inst.inflight += 1
            for req in members:
                rec = records[req.request_id]
                hit = inst.cache.admit(req.key_set)
                tasks = req.job.program.tasks
                if not hit:
                    upload_bytes = self.policy.upload_bytes
                    if upload_bytes:
                        tasks = _with_key_upload(
                            tasks, upload_bytes, req.key_set
                        )
                        inst.upload_bytes += upload_bytes
                sub = inst.engine.submit(
                    tasks,
                    release=now,
                    label=(
                        f"req{req.request_id}:{req.job.name}"
                        f"@i{inst.index}"
                    ),
                    compute_scale=compute_scale,
                    hbm_scale=hbm_scale,
                )
                rec.admit_seconds = now
                rec.batch_index = batch.index
                rec.key_hit = hit
                rec._base = sub.base
                rec._count = sub.count
                inst.inflight_estimate += req.service_estimate
                inst.by_submission[sub.index] = (rec, batch, req)
                inst.source_ops.extend(req.job.program.source_ops)
        return launched

    def _archive(
        self,
        inst: _Instance,
        *,
        crashed_at: float | None = None,
    ) -> InstanceReport:
        """Commit one instance epoch into an :class:`InstanceReport`.

        Live instances are drained first; a crashed instance's engine
        is already truncated-and-dead, so its (validator-clean) partial
        schedule is committed as-is. Per-request start times come from
        each *completed* submission's post-crash ``base``/``count`` —
        a lost submission's surviving prefix stays in the schedule but
        never stamps the request record.
        """
        engine = inst.engine
        if crashed_at is None:
            engine.drain()
        sim = engine.result()
        admitted = 0
        completed = 0
        for sub in engine.submissions:
            entry = inst.by_submission.get(sub.index)
            if entry is None:  # pragma: no cover - defensive
                continue
            rec, _, _ = entry
            admitted += 1
            if sub.done:
                completed += 1
                if sub.count:
                    rec.start_seconds = min(
                        r.start
                        for r in sim.task_records[
                            sub.base:sub.base + sub.count
                        ]
                    )
        return InstanceReport(
            index=inst.index,
            sim=sim,
            program=engine.as_program(inst.source_ops),
            activated_seconds=inst.activated_seconds,
            batches=inst.batches,
            admitted=admitted,
            completed=completed,
            rejected=inst.rejects,
            key_hits=inst.cache.hits,
            key_misses=inst.cache.misses,
            key_evictions=inst.cache.evictions,
            upload_bytes=inst.upload_bytes,
            epoch=inst.epoch,
            crashed_seconds=crashed_at,
        )

    def run(
        self,
        workloads: str | tuple[RequestType, ...],
        arrivals,
        *,
        seed: int = 0,
        population: TenantPopulation | None = None,
        passes=None,
        faults: FaultPlan | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> ClusterResult:
        """Serve one arrival stream across the fleet to completion.

        Args:
            workloads: request-mix spec or pre-resolved job tuple, as
                in :meth:`repro.serve.simulator.ServingSimulator.run`.
            arrivals: an arrival process with a ``times()`` method.
            seed: drives the job-type and tenant/key-set draws (the
                same seed and stream as the single-instance simulator,
                so job sequences match across fleet sizes) plus the
                retry-jitter stream.
            population: tenant/key-set identity of the arrivals;
                defaults to one tenant with one key set.
            passes: compiler pass pipeline applied to each job type's
                program when ``workloads`` is a spec string.
            faults: optional :class:`~repro.serve.faults.FaultPlan`.
                Crashes lose the instance's queued + in-flight
                requests and truncate its schedule; a restart is a
                fresh engine epoch with a cold key cache. Restarts
                only materialize while the run is live — a restart
                falling after the last pending work never happens.
            resilience: optional client-side
                :class:`~repro.serve.faults.ResiliencePolicy`
                (deadlines, retries, failure-detection delay). With
                neither argument the run is byte-identical to the
                fault-unaware simulator.
        """
        if isinstance(workloads, str):
            jobs = resolve_request_mix(workloads, passes=passes)
        else:
            jobs = tuple(workloads)
        if not jobs:
            raise ParameterError("need at least one request job type")
        population = population or TenantPopulation()
        policy = self.policy
        plan = faults if faults else None
        times = arrivals.times()
        job_rng = random.Random(f"repro.serve.jobs:{seed}")
        identities = population.draw(len(times), seed=seed)

        instances: list[_Instance] = [
            _Instance(
                index=i,
                engine=ScheduleEngine(self.config),
                batcher=DynamicBatcher(self.batch_policy),
                cache=KeyCache(policy.key_cache_capacity),
            )
            for i in range(policy.instances)
        ]
        # Bounded affinity: following a key is worth at most one
        # key-upload of extra backlog on the holding instance.
        router = resolve_router(
            policy.router,
            spill_seconds=(
                policy.upload_bytes / self.config.hbm_bandwidth
            ),
        )

        rel_deadline = (
            resilience.deadline_seconds
            if resilience is not None else None
        )
        requests: list[Request] = []
        records: list[RequestRecord] = []
        for rid, t in enumerate(times):
            job = jobs[0] if len(jobs) == 1 else job_rng.choice(jobs)
            tenant, key_set = identities[rid]
            deadline = (
                None if rel_deadline is None else t + rel_deadline
            )
            requests.append(
                Request(
                    request_id=rid,
                    job=job,
                    arrival_seconds=t,
                    service_estimate=self._service_estimate(
                        instances[0].engine, job
                    ),
                    tenant=tenant,
                    key_set=key_set,
                    deadline_seconds=deadline,
                )
            )
            records.append(
                RequestRecord(
                    request_id=rid,
                    job=job.name,
                    arrival_seconds=t,
                    tenant=tenant,
                    key_set=key_set,
                    deadline_seconds=deadline,
                )
            )

        depth_series: list[tuple[float, int]] = [(0.0, 0)]
        scale_events: list[tuple[float, int]] = []
        fault_events: list[tuple[float, str, int]] = []
        availability: dict[int, list[list]] = {
            i: [[0.0, None]] for i in range(policy.instances)
        }
        archived: list[InstanceReport] = []
        last_scale = 0.0
        ai = 0
        now = 0.0
        n = len(requests)

        # Fault events as a heap so dynamically scheduled restarts
        # merge deterministically with the plan's crashes.
        fault_heap: list[tuple] = []
        fault_seq = 0
        if plan is not None:
            for ev in plan.crashes:
                fault_heap.append((
                    ev.at_seconds, fault_seq, "crash",
                    ev.instance, ev.restart_after,
                ))
                fault_seq += 1
            heapq.heapify(fault_heap)
        retry_heap: list[tuple[float, int, Request]] = []
        max_attempts = (
            resilience.max_attempts if resilience is not None else 1
        )

        def total_depth() -> int:
            return sum(inst.batcher.depth for inst in instances)

        def lose(req: Request, rec: RequestRecord, t: float) -> None:
            """One delivery attempt destroyed at ``t`` (crash loss or
            routed into a dead instance): reset the admission state
            and retry, abandon, or exhaust."""
            rec.lost += 1
            rec.admit_seconds = None
            rec.batch_index = None
            rec.key_hit = None
            rec._base = -1
            rec._count = 0
            if (
                rec.deadline_seconds is not None
                and t >= rec.deadline_seconds
            ):
                rec.outcome = "abandoned"
                return
            if req.attempt >= max_attempts:
                rec.outcome = "exhausted"
                return
            # max_attempts > 1 implies resilience.retry is set.
            delay = resilience.retry.delay_seconds(
                req.attempt, seed=seed, request_id=req.request_id
            )
            due = t + delay
            if (
                rec.deadline_seconds is not None
                and due >= rec.deadline_seconds
            ):
                rec.outcome = "abandoned"
                return
            rec.retries += 1
            heapq.heappush(retry_heap, (
                due,
                req.request_id,
                replace(
                    req, arrival_seconds=due, attempt=req.attempt + 1
                ),
            ))

        def routable_views(t: float) -> list[InstanceView]:
            """Health-filtered router input: live views of up
            instances, plus frozen pre-crash ghosts of instances that
            are down but not yet detected as such."""
            views = []
            for inst in instances:
                if inst.up:
                    views.append(inst.view())
                elif (
                    inst.ghost_view is not None
                    and resilience is not None
                    and t < inst.down_since
                    + resilience.detection_seconds
                ):
                    views.append(inst.ghost_view)
            return views

        def deliver(
            req: Request, rec: RequestRecord, t: float
        ) -> bool:
            """Route one delivery attempt at ``t``; ``True`` means it
            entered an instance's queue."""
            views = routable_views(t)
            if not views:
                # The whole fleet is dark: the attempt dies in flight.
                lose(req, rec, t)
                return False
            target = router.route(views, req)
            inst = instances[target]
            rec.instance = target
            if not inst.up:
                # A stale (ghost) view routed onto a dead instance.
                lose(req, rec, t)
                return False
            if self._fair_rejects(inst, req):
                rec.rejected = True
                rec.reject_reason = "tenant-share"
                inst.rejects += 1
                return False
            if not inst.batcher.offer(req):
                rec.rejected = True
                rec.reject_reason = "queue-full"
                inst.rejects += 1
                return False
            return True

        while ai < n or retry_heap or any(
            inst.up and (inst.batcher.depth or inst.inflight)
            for inst in instances
        ):
            # Launch pass: every up instance, in index order.
            launched = 0
            for inst in instances:
                if inst.up:
                    launched += self._launch(
                        inst, now, records, ai < n, plan
                    )
            if launched:
                depth_series.append((now, total_depth()))

            # Earliest decision instant across the whole fleet.
            candidates = []
            if ai < n:
                candidates.append(requests[ai].arrival_seconds)
            if retry_heap:
                candidates.append(retry_heap[0][0])
            if fault_heap:
                candidates.append(fault_heap[0][0])
            for inst in instances:
                if not inst.up:
                    continue
                if (
                    inst.batcher.depth
                    and inst.inflight
                    < self.batch_policy.max_inflight_batches
                ):
                    deadline = inst.batcher.next_deadline()
                    if deadline is not None:
                        candidates.append(deadline)
                if rel_deadline is not None:
                    expiry = inst.batcher.next_expiry()
                    if expiry is not None:
                        candidates.append(expiry)
                next_event = inst.engine.next_event_time()
                if next_event is not None:
                    candidates.append(next_event)
            if not candidates:  # pragma: no cover - loop invariant
                break
            horizon = min(candidates)

            # One master clock: every live engine advances.
            for inst in instances:
                if inst.up:
                    inst.engine.advance_until(horizon)

            # Completions release batch slots and backlog estimate.
            for inst in instances:
                if not inst.up:
                    continue
                while inst.completion_ptr < len(inst.engine.completions):
                    sub = inst.engine.completions[inst.completion_ptr]
                    inst.completion_ptr += 1
                    rec, batch, req_c = inst.by_submission[sub.index]
                    rec.finish_seconds = sub.finish_seconds
                    inst.inflight_estimate -= req_c.service_estimate
                    batch.remaining -= 1
                    if batch.remaining == 0:
                        inst.inflight -= 1

            # Fault events due at the horizon. A task or submission
            # finishing exactly at the crash instant survived it (its
            # completion was observed above).
            while fault_heap and fault_heap[0][0] <= horizon:
                t_ev, _, kind, idx, restart_after = heapq.heappop(
                    fault_heap
                )
                if kind == "crash":
                    if idx >= len(instances) or not instances[idx].up:
                        continue  # never activated, or already down
                    inst = instances[idx]
                    inst.ghost_view = inst.view()
                    doomed = inst.batcher.drain()
                    crash = inst.engine.crash(t_ev)
                    archived.append(
                        self._archive(inst, crashed_at=t_ev)
                    )
                    fault_events.append((t_ev, "crash", idx))
                    availability[idx][-1][1] = t_ev
                    inst.up = False
                    inst.down_since = t_ev
                    inst.inflight = 0
                    inst.inflight_estimate = 0.0
                    for req_q in doomed:
                        lose(req_q, records[req_q.request_id], t_ev)
                    for sub in crash.lost:
                        entry = inst.by_submission.get(sub.index)
                        if entry is None:  # pragma: no cover
                            continue
                        rec_l, _, req_l = entry
                        lose(req_l, rec_l, t_ev)
                    depth_series.append((t_ev, total_depth()))
                    if restart_after is not None:
                        heapq.heappush(fault_heap, (
                            t_ev + restart_after, fault_seq,
                            "restart", idx, None,
                        ))
                        fault_seq += 1
                else:  # restart: same index, next epoch, cold caches
                    old = instances[idx]
                    if old.up:  # pragma: no cover - defensive
                        continue
                    instances[idx] = _Instance(
                        index=idx,
                        engine=ScheduleEngine(self.config, epoch=t_ev),
                        batcher=DynamicBatcher(self.batch_policy),
                        cache=KeyCache(policy.key_cache_capacity),
                        activated_seconds=t_ev,
                        epoch=old.epoch + 1,
                    )
                    fault_events.append((t_ev, "restart", idx))
                    availability[idx].append([t_ev, None])

            # Queued requests whose client deadline passed are
            # abandoned in place (frees backpressure capacity).
            if rel_deadline is not None:
                expired_any = False
                for inst in instances:
                    if not inst.up:
                        continue
                    for req_x in inst.batcher.expired(horizon):
                        records[req_x.request_id].outcome = "abandoned"
                        expired_any = True
                if expired_any:
                    depth_series.append((horizon, total_depth()))

            # Retries due at the horizon re-enter routing.
            while retry_heap and retry_heap[0][0] <= horizon:
                due, rid, req_r = heapq.heappop(retry_heap)
                if deliver(req_r, records[rid], due):
                    depth_series.append((due, total_depth()))

            # Route arrivals at (or before) the horizon.
            while ai < n and requests[ai].arrival_seconds <= horizon:
                req = requests[ai]
                ai += 1
                if deliver(
                    req, records[req.request_id], req.arrival_seconds
                ):
                    depth_series.append(
                        (req.arrival_seconds, total_depth())
                    )
                # Scale out against the queue-depth knee.
                scaler = policy.autoscaler
                if (
                    scaler is not None
                    and len(instances) < scaler.max_instances
                    and total_depth()
                    > scaler.queue_high * len(instances)
                    and (
                        not scale_events
                        or req.arrival_seconds - last_scale
                        >= scaler.cooldown_seconds
                    )
                ):
                    t_scale = max(now, req.arrival_seconds)
                    new_idx = len(instances)
                    instances.append(
                        _Instance(
                            index=new_idx,
                            engine=ScheduleEngine(
                                self.config, epoch=t_scale
                            ),
                            batcher=DynamicBatcher(self.batch_policy),
                            cache=KeyCache(policy.key_cache_capacity),
                            activated_seconds=t_scale,
                        )
                    )
                    availability[new_idx] = [[t_scale, None]]
                    scale_events.append((t_scale, len(instances)))
                    last_scale = t_scale
            now = max(now, horizon)

        reports: list[InstanceReport] = list(archived)
        for inst in instances:
            if inst.up:
                reports.append(self._archive(inst))
        reports.sort(key=lambda r: (r.index, r.epoch))

        # Terminal outcome per record — the conservation invariant
        # every faulted run is gated on.
        for rec in records:
            if rec.rejected:
                rec.outcome = "rejected"
            elif rec.finish_seconds is not None:
                rec.outcome = "completed"

        result = ClusterResult(
            records=records,
            instances=reports,
            queue_depth_series=depth_series,
            scale_events=scale_events,
            fault_events=fault_events,
            availability={
                idx: tuple(tuple(win) for win in wins)
                for idx, wins in sorted(availability.items())
            },
            config=self.config,
            policy=policy,
            batch_policy=self.batch_policy,
        )
        reg = metrics.active()
        if reg is not None:
            self._record_metrics(reg, result)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _record_metrics(reg, result: ClusterResult) -> None:
        """Publish the fleet run under the ``cluster.*`` namespace."""
        reg.gauge("cluster.instances").set(
            len({r.index for r in result.instances})
        )
        reg.counter("cluster.requests.arrived").inc(result.arrived)
        reg.counter("cluster.requests.admitted").inc(result.admitted)
        reg.counter("cluster.requests.rejected").inc(result.rejected)
        reg.counter("cluster.requests.completed").inc(result.completed)
        reg.counter("cluster.key_cache.hits").inc(result.key_hits)
        reg.counter("cluster.key_cache.misses").inc(result.key_misses)
        reg.counter("cluster.key_upload.bytes").inc(result.upload_bytes)
        reg.counter("cluster.scale_events").inc(len(result.scale_events))
        reg.counter("cluster.faults.crashes").inc(result.crashes)
        reg.counter("cluster.faults.restarts").inc(result.restarts)
        reg.counter("cluster.faults.lost_requests").inc(
            result.lost_events
        )
        reg.counter("cluster.faults.retries").inc(result.total_retries)
        reg.counter("cluster.faults.abandoned").inc(result.abandoned)
        reg.counter("cluster.faults.exhausted").inc(result.exhausted)
        reg.gauge("cluster.goodput_rps").set(result.goodput_rps)
        reg.gauge("cluster.slo_violation_rate").set(
            result.slo_violation_rate
        )
        reg.gauge("cluster.throughput_rps").set(result.throughput_rps)
        reg.gauge("cluster.queue_depth.max").set(result.max_queue_depth)
        reg.gauge("cluster.makespan_seconds").set(result.makespan_seconds)
        for q in (0.50, 0.95, 0.99):
            reg.gauge(f"cluster.latency.p{int(q * 100)}_seconds").set(
                result.latency_percentile(q)
            )
        latency_h = reg.histogram("cluster.request.latency_seconds")
        for rec in result.records:
            if rec.latency_seconds is not None:
                latency_h.observe(rec.latency_seconds)
        for report in result.instances:
            prefix = f"cluster.instance.{report.index}"
            reg.counter(f"{prefix}.admitted").inc(report.admitted)
            reg.counter(f"{prefix}.completed").inc(report.completed)
            reg.counter(f"{prefix}.rejected").inc(report.rejected)
            reg.counter(f"{prefix}.key_hits").inc(report.key_hits)
            reg.counter(f"{prefix}.key_misses").inc(report.key_misses)
            reg.counter(f"{prefix}.upload_bytes").inc(
                report.upload_bytes
            )
            reg.gauge(f"{prefix}.makespan_seconds").set(
                report.sim.total_seconds
            )
