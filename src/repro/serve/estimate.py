"""Shared service-time estimation for the serving layer.

Both the single-instance :class:`~repro.serve.simulator.ServingSimulator`
and the fleet :class:`~repro.serve.cluster.ClusterSimulator` need a
serial-execution estimate per request: it is the SJF batching key and
the shortest-expected-job / key-affinity routing backlog unit. The two
simulators used to carry copy-pasted private caches keyed on
``job.name`` — which silently went stale when one simulator object was
reused across ``run()`` calls with different ``passes=`` pipelines (the
pipeline rewrites the job's task list without renaming the job). This
module is the single implementation, and the cache is keyed on the
*resolved program*, so two jobs with the same name but different
compiled task lists never share an estimate.
"""

from __future__ import annotations


class ServiceEstimator:
    """Serial-execution estimates, cached per resolved program.

    The estimate is the sum over the program's tasks of each task's
    core-side occupancy (``max(compute, scratchpad stream)``) — the
    serial lower bound a request adds to an instance's backlog.

    The cache key is the program object itself (by identity, with the
    program kept alive by the cache so ids cannot be recycled), not the
    job name: compiler passes produce *different programs under the
    same job name*, and a name-keyed cache would keep quoting the old
    pipeline's estimate.
    """

    def __init__(self):
        self._cache: dict[int, tuple[object, float]] = {}

    def estimate(self, engine, job) -> float:
        """Serial-execution estimate of ``job`` on ``engine``'s models."""
        program = job.program
        hit = self._cache.get(id(program))
        if hit is not None and hit[0] is program:
            return hit[1]
        cfg = engine.config
        est = sum(
            max(
                engine.cores.task_cycles(t).cycles * cfg.cycle_seconds,
                engine.memory.task_timing(t).spad_seconds,
            )
            for t in program.tasks
        )
        self._cache[id(program)] = (program, est)
        return est
