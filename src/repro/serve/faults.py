"""Deterministic fault injection and client-side resilience policy.

A served fleet is only as good as its behavior when an accelerator
dies: a crashed instance loses every in-flight and queued request *and*
its resident key sets (~569 MB per set,
:data:`~repro.serve.requests.KEY_SET_BYTES`), so failover is never
free — re-routed requests pay cold key uploads on whichever instance
picks them up. This module defines the seeded, fully deterministic
fault model the cluster simulator executes:

- :class:`InstanceCrash` — the instance dies at a simulated instant;
  in-flight and queued requests are lost, the schedule is truncated at
  the crash point (still validator-clean), and the instance optionally
  restarts later as a fresh engine epoch with a *cold* key cache.
- :class:`Straggler` — a cycle-time multiplier over a window: work
  admitted to the instance while the window is open runs slower.
- :class:`HBMDegradation` — a bandwidth derate over a window: streams
  admitted while the window is open take ``1/factor`` longer.
- :class:`FaultPlan` — an ordered, validated collection of the above;
  :func:`poisson_crashes` generates seeded Poisson crash processes.

Client-side resilience is policy, not magic: :class:`RetryPolicy`
(bounded attempts, exponential backoff, deterministic seeded jitter)
and :class:`ResiliencePolicy` (per-request deadlines and a modeled
failure-detection delay during which the router still routes to the
dead instance's last-known state). The cluster guarantees request
*conservation* under any plan: every arrival ends in exactly one of
``completed`` / ``rejected`` / ``abandoned`` / ``exhausted``
(:data:`OUTCOMES`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError

#: Terminal request outcomes; conservation means every arrival lands in
#: exactly one. ``completed`` includes deadline-missing completions
#: (those are SLO violations, not drops); ``abandoned`` is a deadline
#: expiry before service; ``exhausted`` is a loss with no retry
#: attempts left.
OUTCOMES = ("completed", "rejected", "abandoned", "exhausted")


@dataclass(frozen=True)
class InstanceCrash:
    """Instance ``instance`` dies at ``at_seconds``.

    Everything in flight or queued there at that instant is lost (the
    serving layer retries or abandons per its
    :class:`ResiliencePolicy`); the engine's schedule is truncated at
    the crash point. With ``restart_after`` set, the instance comes
    back that many seconds later as a fresh engine epoch — empty queue,
    cold key cache; ``None`` means it stays down for the rest of the
    run.
    """

    instance: int
    at_seconds: float
    restart_after: float | None = None

    def __post_init__(self):
        if self.instance < 0:
            raise ParameterError(
                f"crash instance must be >= 0, got {self.instance}"
            )
        if self.at_seconds < 0:
            raise ParameterError(
                f"crash at_seconds must be >= 0, got {self.at_seconds}"
            )
        if self.restart_after is not None and self.restart_after <= 0:
            raise ParameterError(
                "restart_after must be positive or None, got "
                f"{self.restart_after}"
            )


@dataclass(frozen=True)
class Straggler:
    """A slow instance: cycle time multiplied by ``slowdown`` over
    ``[start_seconds, start_seconds + duration_seconds)``.

    The derate applies at admission: work submitted to the instance
    while the window is open occupies its cores ``slowdown`` times
    longer (thermal throttling, a sick clock domain). Work admitted
    before or after the window runs at full speed.
    """

    instance: int
    start_seconds: float
    duration_seconds: float
    slowdown: float

    def __post_init__(self):
        if self.instance < 0:
            raise ParameterError(
                f"straggler instance must be >= 0, got {self.instance}"
            )
        if self.start_seconds < 0 or self.duration_seconds <= 0:
            raise ParameterError(
                "straggler window must have start >= 0 and positive "
                f"duration, got [{self.start_seconds}, "
                f"+{self.duration_seconds})"
            )
        if self.slowdown < 1.0:
            raise ParameterError(
                f"slowdown must be >= 1.0, got {self.slowdown}"
            )

    def covers(self, t: float) -> bool:
        return (
            self.start_seconds <= t
            < self.start_seconds + self.duration_seconds
        )


@dataclass(frozen=True)
class HBMDegradation:
    """Degraded HBM: delivered bandwidth scaled by ``factor`` (in
    ``(0, 1]``) over ``[start_seconds, start + duration_seconds)``.

    Streams admitted to the instance while the window is open take
    ``1/factor`` longer on their channel slots (a flaky pseudo-channel,
    a thermally derated stack). Channel *count* is unchanged — the
    transfer occupies the same slots, just longer.
    """

    instance: int
    start_seconds: float
    duration_seconds: float
    factor: float

    def __post_init__(self):
        if self.instance < 0:
            raise ParameterError(
                f"degradation instance must be >= 0, got {self.instance}"
            )
        if self.start_seconds < 0 or self.duration_seconds <= 0:
            raise ParameterError(
                "degradation window must have start >= 0 and positive "
                f"duration, got [{self.start_seconds}, "
                f"+{self.duration_seconds})"
            )
        if not 0.0 < self.factor <= 1.0:
            raise ParameterError(
                f"bandwidth factor must be in (0, 1], got {self.factor}"
            )

    def covers(self, t: float) -> bool:
        return (
            self.start_seconds <= t
            < self.start_seconds + self.duration_seconds
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of typed fault events for one cluster run.

    Events targeting instances that do not exist when they fire (an
    index never activated by the initial fleet or the autoscaler, or an
    instance already down) are skipped — a plan can therefore be reused
    across fleet sizes. Crash events fire in ``(at_seconds, instance)``
    order.
    """

    events: tuple = ()

    def __post_init__(self):
        for ev in self.events:
            if not isinstance(
                ev, (InstanceCrash, Straggler, HBMDegradation)
            ):
                raise ParameterError(
                    f"unknown fault event type {type(ev).__name__!r}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    @property
    def crashes(self) -> tuple[InstanceCrash, ...]:
        """Crash events in deterministic firing order."""
        return tuple(sorted(
            (e for e in self.events if isinstance(e, InstanceCrash)),
            key=lambda e: (e.at_seconds, e.instance),
        ))

    def compute_scale(self, instance: int, t: float) -> float:
        """Cycle-time multiplier for work admitted to ``instance`` at
        ``t`` (product of all open straggler windows; 1.0 = healthy)."""
        scale = 1.0
        for ev in self.events:
            if (
                isinstance(ev, Straggler)
                and ev.instance == instance
                and ev.covers(t)
            ):
                scale *= ev.slowdown
        return scale

    def hbm_scale(self, instance: int, t: float) -> float:
        """HBM stream-time multiplier for work admitted to ``instance``
        at ``t`` (product of ``1/factor`` over open windows)."""
        scale = 1.0
        for ev in self.events:
            if (
                isinstance(ev, HBMDegradation)
                and ev.instance == instance
                and ev.covers(t)
            ):
                scale /= ev.factor
        return scale


def poisson_crashes(
    *,
    rate: float,
    horizon_seconds: float,
    instances: int,
    seed: int = 0,
    restart_after: float | None = None,
) -> FaultPlan:
    """A seeded Poisson crash process per instance.

    Each instance draws independent exponential inter-crash gaps at
    ``rate`` crashes per simulated second until ``horizon_seconds``;
    equal seeds give identical plans. ``restart_after`` applies to
    every generated crash.
    """
    if rate <= 0:
        raise ParameterError(f"crash rate must be positive, got {rate}")
    if horizon_seconds <= 0:
        raise ParameterError(
            f"horizon must be positive, got {horizon_seconds}"
        )
    if instances < 1:
        raise ParameterError(
            f"need at least one instance, got {instances}"
        )
    events = []
    for i in range(instances):
        rng = random.Random(f"repro.serve.faults:{seed}:{i}")
        t = rng.expovariate(rate)
        while t < horizon_seconds:
            events.append(InstanceCrash(
                instance=i, at_seconds=t, restart_after=restart_after,
            ))
            t += rng.expovariate(rate)
    return FaultPlan(tuple(events))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``max_attempts`` counts the *initial* try: a request lost on its
    ``max_attempts``-th attempt ends ``exhausted``. Backoff after
    losing attempt ``k`` is ``backoff_seconds * multiplier**(k - 1)``,
    stretched by up to ``jitter`` (a fraction) using a private RNG
    seeded per ``(run seed, request, attempt)`` — so retry storms
    de-synchronize, deterministically.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.0005
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ParameterError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.multiplier < 1.0:
            raise ParameterError(
                f"multiplier must be >= 1.0, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay_seconds(
        self, attempt: int, *, seed: int, request_id: int
    ) -> float:
        """Backoff before the retry that follows losing ``attempt``."""
        delay = self.backoff_seconds * self.multiplier ** (attempt - 1)
        if self.jitter:
            rng = random.Random(
                f"repro.serve.retry:{seed}:{request_id}:{attempt}"
            )
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass(frozen=True)
class ResiliencePolicy:
    """Client-side deadline/retry/detection knobs for a cluster run.

    Attributes:
        deadline_seconds: per-request deadline, relative to the
            *original* arrival (retries do not reset it). A request
            still queued at its deadline is ``abandoned``; a completion
            after the deadline still counts ``completed`` but is an
            SLO violation and excluded from goodput. ``None`` disables
            deadlines.
        retry: retry policy for requests lost to crashes; ``None``
            means a lost request immediately ends ``exhausted``.
        detection_seconds: modeled failure-detection delay. For this
            long after a crash the router still sees the dead
            instance's last-known (ghost) state and requests routed to
            it are lost on arrival; afterwards the instance drops out
            of the routable view until it restarts.
    """

    deadline_seconds: float | None = None
    retry: RetryPolicy | None = None
    detection_seconds: float = 0.0

    def __post_init__(self):
        if (
            self.deadline_seconds is not None
            and self.deadline_seconds <= 0
        ):
            raise ParameterError(
                "deadline_seconds must be positive or None, got "
                f"{self.deadline_seconds}"
            )
        if self.detection_seconds < 0:
            raise ParameterError(
                "detection_seconds must be >= 0, got "
                f"{self.detection_seconds}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts a request gets (1 without a retry policy)."""
        return self.retry.max_attempts if self.retry else 1
