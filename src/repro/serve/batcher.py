"""Dynamic batching and admission control for the serving simulator.

The batcher sits between the arrival process and the warm engine. It
holds the request queue, rejects arrivals when the queue is full
(backpressure), and decides *when* a batch launches and *which*
requests it contains:

- a batch launches when it is full (``max_batch_size``), when the
  oldest queued request has waited ``max_queue_delay`` simulated
  seconds, when the engine has a free batch slot and nothing is in
  flight (work conservation), or when no further arrivals are coming
  (tail drain);
- request order is FIFO (arrival order) or SJF (shortest estimated
  service time first; ties broken by arrival order so the schedule
  stays deterministic).

The batcher is pure policy — it never touches the engine. The serving
loop (:mod:`repro.serve.simulator`) asks it what to do at each decision
instant, which keeps the policy unit-testable without a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.simulator import Request

#: Accepted queue-ordering policies.
ORDERS = ("fifo", "sjf")


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher.

    Attributes:
        max_batch_size: most requests admitted in one batch.
        max_queue_delay: oldest-request wait (simulated seconds) that
            forces a partial batch out; ``None`` disables the timer
            (batches then launch full, work-conserving, or at tail
            drain).
        order: ``"fifo"`` (arrival order) or ``"sjf"`` (shortest
            estimated service time first).
        max_queue_depth: arrivals beyond this queue depth are rejected
            (backpressure); ``None`` means an unbounded queue.
        max_inflight_batches: batches the engine may hold concurrently;
            1 models a strict batch server, higher values pipeline
            admission against in-flight work.
    """

    max_batch_size: int = 8
    max_queue_delay: float | None = None
    order: str = "fifo"
    max_queue_depth: int | None = None
    max_inflight_batches: int = 1

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ParameterError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_queue_delay is not None and self.max_queue_delay < 0:
            raise ParameterError(
                f"max_queue_delay must be >= 0, got {self.max_queue_delay}"
            )
        if self.order not in ORDERS:
            raise ParameterError(
                f"order must be one of {ORDERS}, got {self.order!r}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight_batches < 1:
            raise ParameterError(
                "max_inflight_batches must be >= 1, got "
                f"{self.max_inflight_batches}"
            )


class DynamicBatcher:
    """The request queue plus the launch/ordering/backpressure policy."""

    def __init__(self, policy: BatchPolicy | None = None):
        self.policy = policy or BatchPolicy()
        self._queue: list["Request"] = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        """Current queue depth."""
        return len(self._queue)

    def offer(self, request: "Request") -> bool:
        """Enqueue an arrival; ``False`` means rejected (queue full)."""
        bound = self.policy.max_queue_depth
        if bound is not None and len(self._queue) >= bound:
            return False
        self._queue.append(request)
        return True

    def queued_estimate_seconds(self) -> float:
        """Summed service estimates of every queued request.

        The cluster router's shortest-expected-job and key-affinity
        policies use this (plus the inflight estimate the cluster
        tracks) as the instance's expected backlog.
        """
        return sum(r.service_estimate for r in self._queue)

    def queued_count_for(self, tenant: str) -> int:
        """How many queued requests belong to ``tenant``.

        Per-tenant fair admission (cluster ``max_tenant_share``) caps
        this count against the queue depth.
        """
        return sum(1 for r in self._queue if r.tenant == tenant)

    def oldest_arrival(self) -> float | None:
        """Arrival time of the longest-queued request, if any."""
        if not self._queue:
            return None
        return min(r.arrival_seconds for r in self._queue)

    def next_deadline(self) -> float | None:
        """When the queue-delay timer next forces a batch out."""
        if self.policy.max_queue_delay is None:
            return None
        oldest = self.oldest_arrival()
        if oldest is None:
            return None
        return oldest + self.policy.max_queue_delay

    def should_launch(
        self, now: float, inflight_batches: int, arrivals_pending: bool
    ) -> bool:
        """Whether a batch should launch at simulated time ``now``."""
        if not self._queue:
            return False
        if inflight_batches >= self.policy.max_inflight_batches:
            return False
        if len(self._queue) >= self.policy.max_batch_size:
            return True
        deadline = self.next_deadline()
        if deadline is not None and deadline <= now:
            return True
        if inflight_batches == 0:
            return True  # work conservation: never idle with work queued
        return not arrivals_pending  # tail drain

    def drain(self) -> list["Request"]:
        """Remove and return *every* queued request, in arrival order.

        The fault layer calls this when the instance crashes: queued
        requests are lost with the instance and re-enter the cluster's
        retry/abandon machinery.
        """
        lost = sorted(
            self._queue,
            key=lambda r: (r.arrival_seconds, r.request_id),
        )
        self._queue = []
        return lost

    def expired(self, now: float) -> list["Request"]:
        """Remove and return queued requests whose deadline has passed.

        A request still queued at ``deadline_seconds <= now`` will
        never be served in time — the client has abandoned it, so it
        leaves the queue (freeing backpressure capacity) instead of
        wasting a batch slot.
        """
        out = [
            r for r in self._queue
            if r.deadline_seconds is not None
            and r.deadline_seconds <= now
        ]
        if out:
            gone = {r.request_id for r in out}
            self._queue = [
                r for r in self._queue if r.request_id not in gone
            ]
            out.sort(
                key=lambda r: (r.arrival_seconds, r.request_id)
            )
        return out

    def next_expiry(self) -> float | None:
        """Earliest queued-request deadline, if any request has one."""
        deadlines = [
            r.deadline_seconds for r in self._queue
            if r.deadline_seconds is not None
        ]
        return min(deadlines) if deadlines else None

    def take_batch(self, now: float) -> list["Request"]:
        """Remove and return the next batch, in admission order."""
        if self.policy.order == "sjf":
            ordered = sorted(
                self._queue,
                key=lambda r: (r.service_estimate, r.arrival_seconds,
                               r.request_id),
            )
        else:
            ordered = sorted(
                self._queue,
                key=lambda r: (r.arrival_seconds, r.request_id),
            )
        batch = ordered[: self.policy.max_batch_size]
        taken = {r.request_id for r in batch}
        self._queue = [
            r for r in self._queue if r.request_id not in taken
        ]
        return batch
