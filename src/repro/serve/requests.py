"""Per-request FHE job types for the serving simulator.

A *request* is one tenant's unit of work: a short serial chain of FHE
basic operations (ops within one request depend on each other — it is
one ciphertext's pipeline). Concurrency in the served system comes
only from *cross-request* overlap, which is exactly the operator-reuse
effect the paper pitches: one stream's HAdd on the MA array while
another's keyswitch holds NTT/MM.

Two light mixes cover the two contention regimes (see
``examples/batch_serving.py``), and every paper benchmark is also
accepted as a (heavyweight) request body via its usual aliases.
Programs are compiled once per job type and resubmitted per request —
requests of one type share the compiled task DAG, offset into the warm
engine's index space at admission.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import lru_cache

from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import OperatorProgram, compile_trace
from repro.errors import ParameterError
from repro.sim.config import LIMB_BYTES

#: Ring shape of the light request mixes (matches the batch-serving
#: example: paper-scale degree, mid-depth level).
MIX_DEGREE = 1 << 16
MIX_LEVEL = 30
MIX_AUX = 4

#: Bytes of one tenant's switch-key set at the mix shape: ``chain``
#: gadget pairs, each two polynomials over the extended (chain + aux)
#: basis — the same arithmetic as
#: :func:`repro.ckks.keysize.switch_key_bytes`, inlined so importing
#: the serve layer never builds a parameter set. This is what a
#: key-cache miss charges as an HBM upload (~569 MB at the mix shape:
#: key movement is the fleet-scaling hazard).
KEY_SET_BYTES = (
    (MIX_LEVEL + 1)
    * 2
    * MIX_DEGREE
    * (MIX_LEVEL + 1 + MIX_AUX)
    * LIMB_BYTES
)


def _keyswitch_ops() -> list[FheOp]:
    """One interactive request: add, multiply, rotate, scale."""
    return [
        FheOp.make(FheOpName.HADD, MIX_DEGREE, MIX_LEVEL),
        FheOp.make(FheOpName.CMULT, MIX_DEGREE, MIX_LEVEL,
                   aux_limbs=MIX_AUX),
        FheOp.make(FheOpName.ROTATION, MIX_DEGREE, MIX_LEVEL,
                   aux_limbs=MIX_AUX),
        FheOp.make(FheOpName.PMULT, MIX_DEGREE, MIX_LEVEL),
    ]


def _streaming_ops() -> list[FheOp]:
    """A bandwidth-bound request: element-wise adds and plain muls."""
    ops = []
    for _ in range(4):
        ops.append(FheOp.make(FheOpName.HADD, MIX_DEGREE, MIX_LEVEL))
        ops.append(FheOp.make(FheOpName.PMULT, MIX_DEGREE, MIX_LEVEL))
    return ops


def _rotations_ops() -> list[FheOp]:
    """A rotation burst over one ciphertext (BSGS-style baby steps).

    All four rotations read the same source ciphertext — declared via
    ``reads``/``writes`` tokens — so the ``hoist-rotations`` compiler
    pass can rewrite rotations 2..4 to reuse the first one's digit
    decomposition. Without passes it compiles as four cold rotations.
    """
    return [
        FheOp.make(
            FheOpName.ROTATION, MIX_DEGREE, MIX_LEVEL,
            aux_limbs=MIX_AUX,
            reads=("src",), writes=(f"rot{i}",),
        )
        for i in range(4)
    ]


#: Light request mixes, by name. Paper benchmarks are resolved
#: dynamically (see :func:`request_type`) so this table stays cheap to
#: import.
REQUEST_MIXES = {
    "keyswitch": _keyswitch_ops,
    "streaming": _streaming_ops,
    "rotations": _rotations_ops,
}


@dataclass(frozen=True)
class RequestType:
    """One job type: a name plus its compiled operator program."""

    name: str
    program: OperatorProgram = field(repr=False)

    @property
    def task_count(self) -> int:
        return len(self.program.tasks)


@lru_cache(maxsize=None)
def request_type(name: str, passes: tuple[str, ...] = ()) -> RequestType:
    """Resolve a job-type name to its compiled :class:`RequestType`.

    Accepts the light mix names (``keyswitch``, ``streaming``,
    ``rotations``) and any paper-benchmark spelling that
    :func:`repro.workloads.resolve_benchmark` knows (``resnet20``,
    ``lr``, ...). ``passes`` is a resolved compiler pass-name tuple
    (see :func:`repro.compiler.passes.resolve_passes`); the compiled
    program is cached once per (name, passes) per process, and the
    lowering cache below it dedupes identical ops across job types.
    """
    key = name.strip().lower()
    if key in REQUEST_MIXES:
        ops = REQUEST_MIXES[key]()
        return RequestType(
            name=key, program=compile_trace(ops, passes=passes)
        )
    from repro.workloads import PAPER_BENCHMARKS, resolve_benchmark

    try:
        canonical = resolve_benchmark(name)
    except KeyError:
        raise KeyError(
            f"unknown request workload {name!r}; expected one of "
            f"{sorted(REQUEST_MIXES)} or a paper benchmark alias"
        ) from None
    program = compile_trace(PAPER_BENCHMARKS[canonical](), passes=passes)
    return RequestType(name=canonical, program=program)


@dataclass(frozen=True)
class TenantPopulation:
    """Who sends requests: tenant labels and key-set popularity.

    Each arrived request carries a *tenant* label (fair-admission
    accounting) and a *key-set* id (which rotation/relinearization
    bundle its keyswitches stream). Key-set draws follow a Zipf-like
    popularity curve — weight ``1 / rank^skew`` — because real key
    reuse is skewed: a few hot tenants dominate traffic, which is
    exactly when key-affinity routing pays.

    ``skew=0`` is uniform. The default population is a single tenant
    with a single key set, which reduces the cluster to pure
    load-balancing (the first request per instance uploads, everything
    after hits).
    """

    tenants: int = 1
    key_sets: int = 1
    skew: float = 0.0

    def __post_init__(self):
        if self.tenants < 1:
            raise ParameterError(
                f"need at least one tenant, got {self.tenants}"
            )
        if self.key_sets < 1:
            raise ParameterError(
                f"need at least one key set, got {self.key_sets}"
            )
        if self.skew < 0:
            raise ParameterError(
                f"popularity skew must be >= 0, got {self.skew}"
            )

    def draw(self, count: int, *, seed: int = 0) -> list[tuple[str, int]]:
        """``count`` seeded ``(tenant, key_set)`` draws.

        Tenants are drawn uniformly; key sets follow the skewed
        popularity weights. A private RNG keyed on the seed keeps the
        draw bit-stable and independent of every other RNG stream in
        the served run.
        """
        rng = random.Random(f"repro.serve.population:{seed}")
        weights = [
            1.0 / (rank + 1) ** self.skew for rank in range(self.key_sets)
        ]
        out = []
        for _ in range(count):
            tenant = f"tenant{rng.randrange(self.tenants)}"
            key_set = rng.choices(range(self.key_sets), weights)[0]
            out.append((tenant, key_set))
        return out


def resolve_request_mix(
    spec: str, *, passes=None
) -> tuple[RequestType, ...]:
    """Parse a comma-separated workload spec into job types.

    ``"keyswitch"`` serves one job type; ``"keyswitch,streaming"``
    serves both, chosen per request by the simulator's seeded RNG.
    ``passes`` selects the compiler pass pipeline applied to every job
    type's program (anything ``resolve_passes`` accepts).
    """
    from repro.compiler.passes import resolve_passes

    pipeline = resolve_passes(passes)
    names = [part for part in (p.strip() for p in spec.split(",")) if part]
    if not names:
        raise KeyError(f"empty request workload spec {spec!r}")
    return tuple(request_type(name, pipeline) for name in names)
