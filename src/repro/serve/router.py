"""Request routing and per-instance key caching for the cluster.

The router decides, per arrival, which Poseidon instance a request is
sent to. Its policies are pure functions of deterministic instance
views (queue depth, inflight count, expected backlog seconds, key-cache
contents), so a routed run is bit-reproducible per seed.

Key movement is the scaling hazard the router exists to manage: hybrid
keyswitching streams a tenant's rotation/relinearization key set from
HBM, and a request landing on an instance that does not hold its key
set pays a modeled key-upload transfer (hundreds of megabytes at
paper-scale parameters — on the order of a whole request's service
time). :class:`KeyCache` models each instance's resident key sets as an
LRU, and the ``key-affinity`` policy steers requests toward instances
already holding their keys, which is the difference between linear and
sub-linear fleet scaling (see ``benchmarks/bench_fleet_scaling.py``).

Routing *peeks* at caches but never mutates them; cache state advances
only at admission time (:meth:`KeyCache.admit`), so the router stays a
pure decision function.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ParameterError


class KeyCache:
    """LRU cache of the key-set ids resident in one instance's HBM.

    Capacity counts key *sets* (one tenant's rotation + relinearization
    bundle), not bytes: the serving layer charges a fixed upload size
    per set, so set-count capacity and byte capacity coincide up to a
    constant. ``capacity=0`` disables caching (every request uploads);
    ``capacity=None`` is unbounded (a set uploads once, ever).
    """

    def __init__(self, capacity: int | None):
        if capacity is not None and capacity < 0:
            raise ParameterError(
                f"key cache capacity must be >= 0 or None, got {capacity}"
            )
        self.capacity = capacity
        self._lru: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, key_set: int) -> bool:
        return key_set in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def resident(self) -> tuple[int, ...]:
        """Resident key-set ids, least recently used first."""
        return tuple(self._lru)

    def admit(self, key_set: int) -> bool:
        """Record a request's key use; ``True`` means the set was
        already resident (hit — no upload charged).

        On a miss the set is inserted, evicting the least recently used
        resident when the capacity is exceeded. With ``capacity=0``
        nothing is ever retained and every admit is a miss.
        """
        if key_set in self._lru:
            self._lru.move_to_end(key_set)
            self.hits += 1
            return True
        self.misses += 1
        if self.capacity == 0:
            return False
        self._lru[key_set] = None
        if self.capacity is not None and len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
            self.evictions += 1
        return False


@dataclass
class InstanceView:
    """What the router may observe about one instance.

    Attributes:
        index: stable instance id (also the tie-break order).
        queue_depth: requests waiting in the instance's batcher.
        inflight: requests admitted to the engine, not yet finished.
        backlog_seconds: summed service estimates of queued + inflight
            requests (the shortest-expected-job key).
        key_cache: the instance's resident key sets (peek only).
    """

    index: int
    queue_depth: int
    inflight: int
    backlog_seconds: float
    key_cache: KeyCache


class Router(Protocol):  # pragma: no cover - typing only
    """A dispatch policy: pick an instance index for a request."""

    name: str

    def route(self, views: list[InstanceView], request) -> int: ...


class RoundRobinRouter:
    """Cycle through instances in index order, ignoring state."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def route(self, views: list[InstanceView], request) -> int:
        choice = views[self._next % len(views)].index
        self._next = (self._next + 1) % len(views)
        return choice


class LeastQueueRouter:
    """Send to the instance with the fewest waiting + inflight
    requests; ties break toward the lowest index."""

    name = "least-queue"

    def route(self, views: list[InstanceView], request) -> int:
        return min(
            views, key=lambda v: (v.queue_depth + v.inflight, v.index)
        ).index


class ShortestExpectedJobRouter:
    """Send to the instance with the least expected backlog seconds
    (queued + inflight service estimates); ties break toward the
    lowest index."""

    name = "shortest-job"

    def route(self, views: list[InstanceView], request) -> int:
        return min(
            views, key=lambda v: (v.backlog_seconds, v.index)
        ).index


class KeyAffinityRouter:
    """Prefer instances already holding the request's key set —
    bounded by load.

    Among holders, pick the least-loaded (expected backlog); when no
    instance holds the set, fall back to least backlog overall — the
    upload then lands on the emptiest instance, which also seeds that
    instance as the set's future affinity home.

    Affinity is *bounded*: following the key is only worth one key
    upload. When the best holder's backlog exceeds the fleet-wide
    minimum by more than ``spill_seconds`` (the modeled upload time),
    the request spills to the least-loaded instance instead — which
    then caches the set, so a hot key set replicates across instances
    exactly when its traffic deserves more than one home (the
    consistent-hashing-with-bounded-loads idea, in time units).
    """

    name = "key-affinity"

    def __init__(self, spill_seconds: float = 0.0):
        if spill_seconds < 0:
            raise ParameterError(
                f"spill_seconds must be >= 0, got {spill_seconds}"
            )
        self.spill_seconds = spill_seconds

    def route(self, views: list[InstanceView], request) -> int:
        best = min(
            views, key=lambda v: (v.backlog_seconds, v.index)
        )
        holders = [
            v for v in views if request.key_set in v.key_cache
        ]
        if holders:
            home = min(
                holders, key=lambda v: (v.backlog_seconds, v.index)
            )
            if (
                home.backlog_seconds
                <= best.backlog_seconds + self.spill_seconds
            ):
                return home.index
        return best.index


#: Router policy registry (CLI ``--router`` choices).
ROUTER_POLICIES = {
    "round-robin": RoundRobinRouter,
    "least-queue": LeastQueueRouter,
    "shortest-job": ShortestExpectedJobRouter,
    "key-affinity": KeyAffinityRouter,
}


def resolve_router(name: str, *, spill_seconds: float = 0.0):
    """Instantiate a router policy by registry name.

    ``spill_seconds`` parameterizes the bounded-affinity spill
    threshold of ``key-affinity`` (the cluster passes its modeled
    key-upload time); other policies ignore it.
    """
    try:
        cls = ROUTER_POLICIES[name]
    except KeyError:
        raise ParameterError(
            f"unknown router policy {name!r}; expected one of "
            f"{sorted(ROUTER_POLICIES)}"
        ) from None
    if cls is KeyAffinityRouter:
        return cls(spill_seconds=spill_seconds)
    return cls()
