"""The open-system serving loop over a warm schedule engine.

The simulator is the master clock. It owns three co-evolving pieces:
the arrival stream (pre-generated, deterministic), the
:class:`~repro.serve.batcher.DynamicBatcher` (queue + policy), and one
warm :class:`~repro.sim.engine.ScheduleEngine` carrying every admitted
request's tasks. Each decision instant is the earliest of: the next
arrival, the batcher's queue-delay deadline, and the engine's next
event. The loop advances the engine to that instant, collects request
completions, enqueues (or rejects) arrivals, and launches batches the
policy allows — so admission reacts to completions exactly as a real
scheduler's would, while every choice remains a pure function of the
seed.

Per-request records (arrival, admit, start, finish) come out the other
end; :class:`ServingResult` turns them into latency percentiles,
throughput and a queue-depth time series, publishes a ``serve.*``
metrics namespace when collection is on, and can validate the merged
schedule against every invariant in :mod:`repro.sim.validate`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ParameterError
from repro.obs import metrics
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.estimate import ServiceEstimator
from repro.serve.requests import RequestType, resolve_request_mix
from repro.sim.config import HardwareConfig
from repro.sim.engine import (
    PoseidonSimulator,
    ScheduleEngine,
    SimulationResult,
)


@dataclass(frozen=True)
class Request:
    """One arrived request: a job type at an arrival instant.

    ``tenant`` and ``key_set`` identify who sent the request and which
    rotation/relinearization key bundle its keyswitches stream — the
    cluster layer (:mod:`repro.serve.cluster`) routes and
    admission-controls on them; the single-instance simulator carries
    the defaults untouched.

    ``deadline_seconds`` is the *absolute* instant the client abandons
    the request (original arrival + the resilience policy's relative
    deadline; ``None`` = no deadline) and ``attempt`` counts delivery
    tries — a retry after a crash loss is a new :class:`Request` with
    the same ``request_id`` and deadline but ``attempt + 1``. Fault-free
    runs keep both defaults.
    """

    request_id: int
    job: RequestType
    arrival_seconds: float
    service_estimate: float
    tenant: str = "tenant0"
    key_set: int = 0
    deadline_seconds: float | None = None
    attempt: int = 1


@dataclass
class RequestRecord:
    """Lifecycle of one request through the served system.

    ``admit/start/finish`` stay ``None`` for rejected requests.
    ``start_seconds`` is when the request's first task actually
    occupied a core (a batch admits all members at once, but the
    engine dispatches them as resources free up).

    Cluster runs additionally fill ``instance`` (which Poseidon
    instance served — or, for rejected requests, was routed — the
    request), ``tenant``/``key_set`` identity, ``key_hit`` (whether
    the key set was resident at admission; ``None`` until admitted),
    and ``reject_reason`` (``"queue-full"`` backpressure vs
    ``"tenant-share"`` fair-admission). Single-instance runs keep the
    defaults.

    Faulted cluster runs additionally track resilience state:
    ``deadline_seconds`` (absolute client deadline), ``lost`` (how many
    times a crash destroyed this request in queue or in flight),
    ``retries`` (re-deliveries actually scheduled) and ``outcome`` —
    exactly one of :data:`repro.serve.faults.OUTCOMES` once the run
    ends (the conservation invariant). On a loss, ``admit/batch``
    state is reset; ``latency_seconds`` stays anchored at the
    *original* arrival, so failover and cold key re-uploads show up in
    the client-observed tail.
    """

    request_id: int
    job: str
    arrival_seconds: float
    admit_seconds: float | None = None
    start_seconds: float | None = None
    finish_seconds: float | None = None
    batch_index: int | None = None
    rejected: bool = False
    tenant: str = "tenant0"
    key_set: int = 0
    instance: int = 0
    key_hit: bool | None = None
    reject_reason: str | None = None
    deadline_seconds: float | None = None
    lost: int = 0
    retries: int = 0
    outcome: str | None = None
    _base: int = field(repr=False, default=-1)
    _count: int = field(repr=False, default=0)

    @property
    def latency_seconds(self) -> float | None:
        """Arrival-to-finish time (the number a client experiences)."""
        if self.finish_seconds is None:
            return None
        return self.finish_seconds - self.arrival_seconds

    @property
    def queue_wait_seconds(self) -> float | None:
        """Arrival-to-admission time spent in the batcher's queue."""
        if self.admit_seconds is None:
            return None
        return self.admit_seconds - self.arrival_seconds

    @property
    def slo_met(self) -> bool | None:
        """Did the request complete within its deadline?

        ``None`` for requests that never completed; ``True`` for
        completions without a deadline. A completion past its deadline
        is the "served too late" case — counted completed but an SLO
        violation, excluded from goodput.
        """
        if self.finish_seconds is None:
            return None
        if self.deadline_seconds is None:
            return True
        return self.finish_seconds <= self.deadline_seconds


@dataclass
class _Batch:
    index: int
    admit_seconds: float
    size: int
    remaining: int


class RequestStats:
    """Request accounting shared by single-instance and cluster results.

    Subclasses provide ``records`` (a :class:`RequestRecord` list),
    ``queue_depth_series`` and ``makespan_seconds``; everything here is
    derived from those.
    """

    records: list[RequestRecord]
    queue_depth_series: list[tuple[float, int]]

    @property
    def makespan_seconds(self) -> float:
        raise NotImplementedError

    @property
    def arrived(self) -> int:
        return len(self.records)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.records if r.rejected)

    @property
    def admitted(self) -> int:
        return self.arrived - self.rejected

    @property
    def completed(self) -> int:
        return sum(
            1 for r in self.records if r.finish_seconds is not None
        )

    @property
    def max_queue_depth(self) -> int:
        return max(
            (depth for _, depth in self.queue_depth_series), default=0
        )

    @property
    def throughput_rps(self) -> float:
        """Completed requests per simulated second."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.completed / self.makespan_seconds

    def latencies(self) -> list[float]:
        """Sorted completed-request latencies."""
        return sorted(
            r.latency_seconds
            for r in self.records
            if r.latency_seconds is not None
        )

    def latency_percentile(self, q: float) -> float:
        """Exact nearest-rank latency quantile over completed requests."""
        if not 0.0 <= q <= 1.0:
            raise ParameterError(f"quantile must be in [0, 1], got {q}")
        ordered = self.latencies()
        if not ordered:
            return 0.0
        idx = min(len(ordered) - 1, max(0, int(q * len(ordered))))
        return ordered[idx]


class ServingResult(RequestStats):
    """Aggregate outcome of one served run."""

    def __init__(
        self,
        *,
        records: list[RequestRecord],
        sim: SimulationResult,
        program,
        queue_depth_series: list[tuple[float, int]],
        batches: int,
        config: HardwareConfig,
        policy: BatchPolicy,
    ):
        self.records = records
        self.sim = sim
        self.program = program
        self.queue_depth_series = queue_depth_series
        self.batches = batches
        self.config = config
        self.policy = policy

    # -- request accounting -------------------------------------------
    @property
    def makespan_seconds(self) -> float:
        return self.sim.total_seconds

    def summary(self) -> dict:
        """Flat, JSON-ready headline numbers (deterministic)."""
        ordered = self.latencies()
        mean = sum(ordered) / len(ordered) if ordered else 0.0
        return {
            "requests_arrived": self.arrived,
            "requests_admitted": self.admitted,
            "requests_rejected": self.rejected,
            "requests_completed": self.completed,
            "batches": self.batches,
            "throughput_rps": self.throughput_rps,
            "latency_mean_seconds": mean,
            "latency_p50_seconds": self.latency_percentile(0.50),
            "latency_p95_seconds": self.latency_percentile(0.95),
            "latency_p99_seconds": self.latency_percentile(0.99),
            "max_queue_depth": self.max_queue_depth,
            "makespan_seconds": self.makespan_seconds,
        }

    def validate(self) -> None:
        """Check the served schedule against every engine invariant."""
        from repro.sim.validate import validate_schedule

        validate_schedule(
            self.sim, program=self.program, config=self.config
        )


class ServingSimulator:
    """Open-system serving simulation on the modelled accelerator."""

    def __init__(
        self,
        config: HardwareConfig | None = None,
        policy: BatchPolicy | None = None,
    ):
        self.config = config or HardwareConfig()
        self.policy = policy or BatchPolicy()
        self._estimator = ServiceEstimator()

    # ------------------------------------------------------------------
    def _service_estimate(
        self, engine: ScheduleEngine, job: RequestType
    ) -> float:
        """Serial-execution estimate (SJF key), cached per program."""
        return self._estimator.estimate(engine, job)

    def run(
        self,
        workloads: str | tuple[RequestType, ...],
        arrivals,
        *,
        seed: int = 0,
        passes=None,
    ) -> ServingResult:
        """Serve one arrival stream to completion.

        Args:
            workloads: a request-mix spec (``"keyswitch"``,
                ``"keyswitch,streaming"``, a paper-benchmark alias) or
                pre-resolved :class:`RequestType` tuple. With several
                job types, each arrival draws its type from a seeded
                RNG.
            arrivals: an arrival process
                (:class:`~repro.serve.arrivals.PoissonArrivals`,
                :class:`~repro.serve.arrivals.TraceArrivals`, or any
                object with a ``times()`` method).
            seed: drives the job-type draw; arrival times carry their
                own seed.
            passes: compiler pass pipeline applied to each job type's
                program when ``workloads`` is a spec string (anything
                :func:`repro.compiler.passes.resolve_passes` accepts).
        """
        if isinstance(workloads, str):
            jobs = resolve_request_mix(workloads, passes=passes)
        else:
            jobs = tuple(workloads)
        if not jobs:
            raise ParameterError("need at least one request job type")
        times = arrivals.times()
        engine = ScheduleEngine(self.config)
        job_rng = random.Random(f"repro.serve.jobs:{seed}")

        requests: list[Request] = []
        records: list[RequestRecord] = []
        for rid, t in enumerate(times):
            job = jobs[0] if len(jobs) == 1 else job_rng.choice(jobs)
            requests.append(
                Request(
                    request_id=rid,
                    job=job,
                    arrival_seconds=t,
                    service_estimate=self._service_estimate(engine, job),
                )
            )
            records.append(
                RequestRecord(
                    request_id=rid, job=job.name, arrival_seconds=t
                )
            )

        batcher = DynamicBatcher(self.policy)
        depth_series: list[tuple[float, int]] = [(0.0, 0)]
        by_submission: dict[int, tuple[RequestRecord, _Batch]] = {}
        batches: list[_Batch] = []
        inflight = 0
        completion_ptr = 0
        ai = 0
        now = 0.0
        n = len(requests)

        while ai < n or batcher.depth or inflight:
            # Launch whatever the policy allows at the current instant.
            while batcher.should_launch(now, inflight, ai < n):
                members = batcher.take_batch(now)
                batch = _Batch(
                    index=len(batches),
                    admit_seconds=now,
                    size=len(members),
                    remaining=len(members),
                )
                batches.append(batch)
                inflight += 1
                for req in members:
                    sub = engine.submit(
                        req.job.program.tasks,
                        release=now,
                        label=f"req{req.request_id}:{req.job.name}",
                    )
                    rec = records[req.request_id]
                    rec.admit_seconds = now
                    rec.batch_index = batch.index
                    rec._base = sub.base
                    rec._count = sub.count
                    by_submission[sub.index] = (rec, batch)
                depth_series.append((now, batcher.depth))

            # Earliest decision instant: arrival, deadline, or engine.
            candidates = []
            if ai < n:
                candidates.append(requests[ai].arrival_seconds)
            if (
                batcher.depth
                and inflight < self.policy.max_inflight_batches
            ):
                deadline = batcher.next_deadline()
                if deadline is not None:
                    candidates.append(deadline)
            next_event = engine.next_event_time()
            if next_event is not None:
                candidates.append(next_event)
            if not candidates:  # pragma: no cover - loop invariant
                break
            horizon = min(candidates)
            engine.advance_until(horizon)

            # Request completions release batch slots.
            while completion_ptr < len(engine.completions):
                sub = engine.completions[completion_ptr]
                completion_ptr += 1
                rec, batch = by_submission[sub.index]
                rec.finish_seconds = sub.finish_seconds
                batch.remaining -= 1
                if batch.remaining == 0:
                    inflight -= 1

            # Arrivals at (or before) the horizon enter the queue.
            while ai < n and requests[ai].arrival_seconds <= horizon:
                req = requests[ai]
                ai += 1
                if batcher.offer(req):
                    depth_series.append(
                        (req.arrival_seconds, batcher.depth)
                    )
                else:
                    records[req.request_id].rejected = True
            now = max(now, horizon)

        engine.drain()
        sim = engine.result()

        # Per-request start: first core dispatch among the request's
        # tasks (admission puts a batch in the engine all at once, but
        # dispatch waits for free instances).
        for rec in records:
            if rec._base >= 0 and rec._count:
                rec.start_seconds = min(
                    r.start
                    for r in sim.task_records[
                        rec._base:rec._base + rec._count
                    ]
                )

        source_ops = []
        for sub in engine.submissions:
            rec, _ = by_submission[sub.index]
            job = next(
                j for j in jobs
                if j.name == rec.job
            )
            source_ops.extend(job.program.source_ops)
        result = ServingResult(
            records=records,
            sim=sim,
            program=engine.as_program(source_ops),
            queue_depth_series=depth_series,
            batches=len(batches),
            config=self.config,
            policy=self.policy,
        )

        reg = metrics.active()
        if reg is not None:
            self._record_metrics(reg, result)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _record_metrics(reg, result: ServingResult) -> None:
        """Publish the served run into the active metrics registry.

        The engine's ``sim.*`` spans are published too, so one
        collection context sees both the hardware-level and the
        serving-level view of the same run.
        """
        sim = result.sim
        PoseidonSimulator._record_metrics(
            reg,
            sim.task_records,
            sim.total_seconds,
            sim.hbm_busy_seconds,
            sim.core_busy_seconds,
            sim.core_stall_seconds,
        )
        reg.counter("serve.requests.arrived").inc(result.arrived)
        reg.counter("serve.requests.admitted").inc(result.admitted)
        reg.counter("serve.requests.rejected").inc(result.rejected)
        reg.counter("serve.requests.completed").inc(result.completed)
        reg.counter("serve.batches").inc(result.batches)
        reg.gauge("serve.throughput_rps").set(result.throughput_rps)
        reg.gauge("serve.queue_depth.max").set(result.max_queue_depth)
        reg.gauge("serve.makespan_seconds").set(result.makespan_seconds)
        reg.gauge("serve.latency.p50_seconds").set(
            result.latency_percentile(0.50)
        )
        reg.gauge("serve.latency.p95_seconds").set(
            result.latency_percentile(0.95)
        )
        reg.gauge("serve.latency.p99_seconds").set(
            result.latency_percentile(0.99)
        )
        latency_h = reg.histogram("serve.request.latency_seconds")
        wait_h = reg.histogram("serve.request.queue_wait_seconds")
        for rec in result.records:
            if rec.latency_seconds is not None:
                latency_h.observe(rec.latency_seconds)
            if rec.queue_wait_seconds is not None:
                wait_h.observe(rec.queue_wait_seconds)
        depth_h = reg.histogram("serve.queue.depth")
        for _, depth in result.queue_depth_series:
            depth_h.observe(float(depth))
