"""Deterministic arrival processes for the open-system simulator.

Both processes produce a finite, sorted tuple of arrival timestamps in
*simulated* seconds. Determinism is a hard requirement (the CLI's
metrics JSON must be bit-identical across runs with the same seed), so
the Poisson process draws from a private :class:`random.Random`
instance — never the global RNG — and trace replay normalizes its
input once, up front.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ParameterError


@dataclass(frozen=True)
class PoissonArrivals:
    """A homogeneous Poisson process: i.i.d. exponential gaps.

    Attributes:
        rate: expected arrivals per simulated second (lambda).
        count: number of requests to generate.
        seed: RNG seed; equal seeds give bit-identical timestamps.
    """

    rate: float
    count: int
    seed: int = 0

    def __post_init__(self):
        if self.rate <= 0:
            raise ParameterError(
                f"arrival rate must be positive, got {self.rate}"
            )
        if self.count < 1:
            raise ParameterError(
                f"need at least one arrival, got {self.count}"
            )

    def times(self) -> tuple[float, ...]:
        """The sorted arrival timestamps, starting after t=0."""
        rng = random.Random(self.seed)
        t = 0.0
        out = []
        for _ in range(self.count):
            t += rng.expovariate(self.rate)
            out.append(t)
        return tuple(out)


@dataclass(frozen=True)
class TraceArrivals:
    """Replay of an explicit arrival-timestamp trace.

    Timestamps are sorted on construction (an unordered trace is
    accepted, as real request logs often are) and must be
    non-negative and finite.
    """

    timestamps: tuple[float, ...]

    def __init__(self, timestamps):
        ordered = tuple(sorted(float(t) for t in timestamps))
        if not ordered:
            raise ParameterError("arrival trace is empty")
        if ordered[0] < 0:
            raise ParameterError(
                f"arrival trace has a negative timestamp: {ordered[0]}"
            )
        if ordered[-1] == float("inf"):
            raise ParameterError("arrival trace has an infinite timestamp")
        object.__setattr__(self, "timestamps", ordered)

    def times(self) -> tuple[float, ...]:
        return self.timestamps
