"""Open-system serving simulation on top of the warm schedule engine.

Everything under :mod:`repro.sim` answers the closed-system question
"how long does *this one program* take?". A served accelerator instead
faces an *open* system: requests arrive over time, queue, get batched,
and leave — and the numbers that matter are latency percentiles under
load, sustained throughput, and queue depth, not a single makespan.

The subsystem has four parts:

- :mod:`repro.serve.arrivals` — deterministic-seeded arrival processes
  (Poisson and trace replay);
- :mod:`repro.serve.requests` — per-request FHE job types (light
  operator mixes plus the paper benchmarks), compiled once and
  submitted per request;
- :mod:`repro.serve.batcher` — the dynamic batching / admission-control
  policy (max batch size, max queue delay, FIFO vs shortest-job-first,
  queue-depth backpressure);
- :mod:`repro.serve.simulator` — the open-system loop itself: arrivals
  feed the batcher, admitted batches are submitted onto a warm
  :class:`repro.sim.engine.ScheduleEngine`, and per-request records
  yield p50/p95/p99 latency, throughput and a queue-depth time series.

Results export through the existing :mod:`repro.obs` pipeline: a
``serve.*`` metrics namespace and a serving track (request spans +
queue-depth counter) in the Chrome trace. The ``serve`` CLI subcommand
and ``benchmarks/bench_serving_sweep.py`` build on this.
"""

from repro.serve.arrivals import PoissonArrivals, TraceArrivals
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.requests import (
    REQUEST_MIXES,
    RequestType,
    request_type,
    resolve_request_mix,
)
from repro.serve.simulator import (
    RequestRecord,
    ServingResult,
    ServingSimulator,
)

__all__ = [
    "BatchPolicy",
    "DynamicBatcher",
    "PoissonArrivals",
    "REQUEST_MIXES",
    "RequestRecord",
    "RequestType",
    "ServingResult",
    "ServingSimulator",
    "TraceArrivals",
    "request_type",
    "resolve_request_mix",
]
