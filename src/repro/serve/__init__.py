"""Open-system serving simulation on top of the warm schedule engine.

Everything under :mod:`repro.sim` answers the closed-system question
"how long does *this one program* take?". A served accelerator instead
faces an *open* system: requests arrive over time, queue, get batched,
and leave — and the numbers that matter are latency percentiles under
load, sustained throughput, and queue depth, not a single makespan.

The subsystem's parts:

- :mod:`repro.serve.arrivals` — deterministic-seeded arrival processes
  (Poisson and trace replay);
- :mod:`repro.serve.requests` — per-request FHE job types (light
  operator mixes plus the paper benchmarks), compiled once and
  submitted per request;
- :mod:`repro.serve.batcher` — the dynamic batching / admission-control
  policy (max batch size, max queue delay, FIFO vs shortest-job-first,
  queue-depth backpressure);
- :mod:`repro.serve.simulator` — the open-system loop itself: arrivals
  feed the batcher, admitted batches are submitted onto a warm
  :class:`repro.sim.engine.ScheduleEngine`, and per-request records
  yield p50/p95/p99 latency, throughput and a queue-depth time series;
- :mod:`repro.serve.router` — fleet dispatch policies (round-robin,
  least-queue, shortest-expected-job, load-bounded key-affinity) and
  the per-instance LRU :class:`KeyCache` of resident
  rotation/relinearization key sets;
- :mod:`repro.serve.cluster` — the routed *fleet*: N warm engines on
  one master clock, modeled key-set uploads on cache misses,
  per-tenant fair admission, and optional autoscaling against the
  queue-depth knee;
- :mod:`repro.serve.faults` — seeded, deterministic fault injection
  and recovery: instance crashes (with cold-cache restarts),
  straggler and HBM-degradation windows, client-side deadlines and
  retry policies, and the request-conservation invariant the chaos
  gate (``benchmarks/bench_fault_recovery.py``) enforces in CI.

Results export through the existing :mod:`repro.obs` pipeline: a
``serve.*`` (or ``cluster.*``) metrics namespace and request-level
Chrome-trace tracks. The ``serve`` CLI subcommand (with
``--instances``) and the ``benchmarks/bench_serving_sweep.py`` /
``bench_fleet_scaling.py`` sweeps build on this.
"""

from repro.serve.arrivals import PoissonArrivals, TraceArrivals
from repro.serve.batcher import BatchPolicy, DynamicBatcher
from repro.serve.cluster import (
    AutoscalerPolicy,
    ClusterPolicy,
    ClusterResult,
    ClusterSimulator,
    InstanceReport,
)
from repro.serve.estimate import ServiceEstimator
from repro.serve.faults import (
    FaultPlan,
    HBMDegradation,
    InstanceCrash,
    OUTCOMES,
    ResiliencePolicy,
    RetryPolicy,
    Straggler,
    poisson_crashes,
)
from repro.serve.requests import (
    KEY_SET_BYTES,
    REQUEST_MIXES,
    RequestType,
    TenantPopulation,
    request_type,
    resolve_request_mix,
)
from repro.serve.router import (
    KeyCache,
    ROUTER_POLICIES,
    resolve_router,
)
from repro.serve.simulator import (
    RequestRecord,
    ServingResult,
    ServingSimulator,
)

__all__ = [
    "AutoscalerPolicy",
    "BatchPolicy",
    "ClusterPolicy",
    "ClusterResult",
    "ClusterSimulator",
    "DynamicBatcher",
    "FaultPlan",
    "HBMDegradation",
    "InstanceCrash",
    "InstanceReport",
    "KEY_SET_BYTES",
    "KeyCache",
    "OUTCOMES",
    "PoissonArrivals",
    "REQUEST_MIXES",
    "ROUTER_POLICIES",
    "RequestRecord",
    "RequestType",
    "ResiliencePolicy",
    "RetryPolicy",
    "ServiceEstimator",
    "ServingResult",
    "ServingSimulator",
    "Straggler",
    "TenantPopulation",
    "TraceArrivals",
    "poisson_crashes",
    "request_type",
    "resolve_request_mix",
]
