"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli table4
    python -m repro.cli fig10 --radix 2 3 4 5 6
    python -m repro.cli table6 --lanes 256
    python -m repro.cli fig11 --workload LR
    python -m repro.cli trace --benchmark resnet20 -o trace.json
    python -m repro.cli metrics --benchmark lr -o metrics.json

Each command prints the same rows the corresponding bench target
asserts on, so results can be inspected without running pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro import kernels
from repro.analysis import (
    fig7_operator_analysis,
    fig8_benchmark_op_breakdown,
    fig9_operator_breakdown,
    fig10_k_sweep,
    fig11_lane_scaling,
    fig12_energy_breakdown,
    table1_operator_usage,
    table2_ntt_fusion,
    table4_basic_ops,
    table6_full_system,
    table7_bandwidth,
    table8_hfauto_resources,
    table9_hfauto_ablation,
    table10_edp,
    table11_core_resources,
    table12_fpga_comparison,
)
from repro.analysis.report import render_shares, render_table
from repro.sim.config import HardwareConfig


def _config_from_args(args) -> HardwareConfig:
    config = HardwareConfig(use_hfauto=not args.naive_auto)
    if args.lanes != 512:
        config = config.with_lanes(args.lanes)
    return config


def _print_table(data: dict, title: str) -> None:
    print(render_table(data["columns"], data["rows"], title=title))


def cmd_table1(args) -> None:
    _print_table(table1_operator_usage(), "Table I — operator usage")


def cmd_table2(args) -> None:
    _print_table(table2_ntt_fusion(), "Table II — NTT-fusion counts")


def cmd_table4(args) -> None:
    _print_table(
        table4_basic_ops(_config_from_args(args)),
        "Table IV — basic-operation throughput (ops/s)",
    )


def cmd_table6(args) -> None:
    _print_table(
        table6_full_system(_config_from_args(args)),
        "Table VI — full-system benchmark times (ms)",
    )


def cmd_table7(args) -> None:
    data = table7_bandwidth(_config_from_args(args))
    print(render_table(
        ["name", "utilization_pct", "paper_pct"], data["operations"],
        title="Table VII — bandwidth utilization per operation",
    ))
    print()
    print(render_table(
        ["name", "utilization_pct", "paper_pct"], data["benchmarks"],
        title="per benchmark:",
    ))


def cmd_table8(args) -> None:
    _print_table(table8_hfauto_resources(), "Table VIII — Auto vs HFAuto")


def cmd_table9(args) -> None:
    _print_table(table9_hfauto_ablation(), "Table IX — HFAuto ablation (ms)")


def cmd_table10(args) -> None:
    _print_table(
        table10_edp(_config_from_args(args)),
        "Table X — energy-delay product (J*s)",
    )


def cmd_table11(args) -> None:
    _print_table(
        table11_core_resources(_config_from_args(args)),
        "Table XI — per-core resources",
    )


def cmd_table12(args) -> None:
    _print_table(
        table12_fpga_comparison(_config_from_args(args)),
        "Table XII — FPGA prototype comparison",
    )


def cmd_fig7(args) -> None:
    fig = fig7_operator_analysis(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 7 — operator share per basic operation"
    ))


def cmd_fig8(args) -> None:
    fig = fig8_benchmark_op_breakdown(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 8 — operation share per benchmark"
    ))
    for name, ms in fig["total_ms"].items():
        print(f"  total {name}: {ms:.1f} ms")


def cmd_fig9(args) -> None:
    fig = fig9_operator_breakdown(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 9 — operator share per benchmark"
    ))


def cmd_fig10(args) -> None:
    fig = fig10_k_sweep(k_values=tuple(args.radix))
    print(render_table(
        ["k", "lut", "ff", "dsp", "bram", "ntt_us"], fig["rows"],
        title="Fig. 10 — NTT-fusion radix sweep",
    ))
    print(f"optimal k: {fig['best_k']}")


def cmd_fig11(args) -> None:
    fig = fig11_lane_scaling(benchmark=args.workload)
    print(render_table(
        ["lanes", "seconds", "edp", "bandwidth_utilization"], fig["rows"],
        title=f"Fig. 11 — lane scaling ({args.workload})",
    ))


def cmd_summary(args) -> None:
    from repro.analysis.summary import render_markdown

    print(render_markdown())


def cmd_design(args) -> None:
    from repro.compiler.program import compile_trace
    from repro.sim.designer import DesignExplorer
    from repro.workloads import PAPER_BENCHMARKS

    program = compile_trace(PAPER_BENCHMARKS[args.workload]())
    explorer = DesignExplorer(program)
    points = explorer.sweep()
    frontier = explorer.pareto(points)
    rows = [
        {
            "lanes": p.lanes,
            "k": p.radix_log2,
            "ms": p.seconds * 1e3,
            "energy_J": p.energy_joules,
            "lut": p.resources.lut,
            "dsp": p.resources.dsp,
            "fits": p.fits,
            "pareto": p in frontier,
        }
        for p in points
    ]
    print(render_table(
        ["lanes", "k", "ms", "energy_J", "lut", "dsp", "fits", "pareto"],
        rows,
        title=f"Design-space exploration — {args.workload} (U280 budget)",
    ))
    best = explorer.best(objective="seconds")
    print(f"best (time): {best.label}")


def _simulate_benchmark(args):
    """Shared setup for the observability commands.

    Returns ``(name, result, registry)`` — the canonical benchmark
    name, the simulation result, and the metrics registry that was
    active while it ran.
    """
    from repro.compiler.program import compile_trace
    from repro.obs import collecting
    from repro.sim.engine import PoseidonSimulator
    from repro.workloads import PAPER_BENCHMARKS, resolve_benchmark

    try:
        name = resolve_benchmark(args.benchmark)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    program = compile_trace(PAPER_BENCHMARKS[name]())
    simulator = PoseidonSimulator(_config_from_args(args))
    with collecting() as registry:
        result = simulator.run(program)
    if getattr(args, "validate", False):
        from repro.sim.validate import validate_schedule

        validate_schedule(
            result, program=program, config=simulator.config
        )
        print(f"schedule invariants OK ({name}, {len(program.tasks)} tasks)")
    return name, result, registry


def cmd_trace(args) -> None:
    """Export one benchmark run as Chrome-trace/Perfetto JSON."""
    from repro.obs import write_chrome_trace
    from repro.sim.timeline import Timeline

    name, result, _ = _simulate_benchmark(args)
    Timeline(result).verify_no_overlap()
    out = args.output or "trace.json"
    doc = write_chrome_trace(result, out, label=name)
    print(
        f"wrote {out}: {len(doc['traceEvents'])} events, "
        f"{result.total_seconds * 1e3:.2f} ms simulated ({name}); "
        "open at https://ui.perfetto.dev"
    )


def cmd_metrics(args) -> None:
    """Export one benchmark run's metrics snapshot as flat JSON."""
    from repro.obs import write_metrics_json

    name, result, registry = _simulate_benchmark(args)
    out = args.output or "metrics.json"
    doc = write_metrics_json(
        registry.snapshot(),
        out,
        meta={
            "benchmark": name,
            "lanes": args.lanes,
            "simulated_seconds": result.total_seconds,
            "bandwidth_utilization": result.bandwidth_utilization,
        },
    )
    print(f"wrote {out}: {len(doc['metrics'])} metrics ({name})")


def cmd_fig12(args) -> None:
    fig = fig12_energy_breakdown(_config_from_args(args))
    print("Fig. 12 — energy consumption and breakdown")
    for row in fig["rows"]:
        print(f"\n{row['benchmark']}: {row['total_joules']:.2f} J")
        for key, share in sorted(
            row["shares"].items(), key=lambda kv: -kv[1]
        ):
            print(f"    {key:14s} {100 * share:5.1f}%")


COMMANDS = {
    "table1": cmd_table1,
    "table2": cmd_table2,
    "table4": cmd_table4,
    "table6": cmd_table6,
    "table7": cmd_table7,
    "table8": cmd_table8,
    "table9": cmd_table9,
    "table10": cmd_table10,
    "table11": cmd_table11,
    "table12": cmd_table12,
    "fig7": cmd_fig7,
    "fig8": cmd_fig8,
    "fig9": cmd_fig9,
    "fig10": cmd_fig10,
    "fig11": cmd_fig11,
    "fig12": cmd_fig12,
    "summary": cmd_summary,
    "design": cmd_design,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Poseidon (HPCA 2023) tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted(COMMANDS) + ["list"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--lanes", type=int, default=512,
        help="vector lanes (default 512)",
    )
    parser.add_argument(
        "--naive-auto", action="store_true",
        help="use the naive Auto core instead of HFAuto",
    )
    parser.add_argument(
        "--radix", type=int, nargs="+", default=[2, 3, 4, 5, 6],
        help="fusion radices for fig10",
    )
    parser.add_argument(
        "--workload", default="ResNet-20",
        choices=["LR", "LSTM", "ResNet-20", "Packed Bootstrapping"],
        help="workload for fig11",
    )
    parser.add_argument(
        "--benchmark", default="resnet20",
        help="benchmark for trace/metrics (accepts aliases: resnet20, "
             "lr, lstm, bootstrapping)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check schedule invariants (no overlap per core instance, "
             "HBM channel budget, dependency order, time conservation) "
             "on the simulated run before exporting trace/metrics",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="output path for trace/metrics JSON "
             "(default trace.json / metrics.json)",
    )
    parser.add_argument(
        "--kernel-backend", default=None,
        choices=kernels.available_backends(),
        help="functional-plane kernel backend (default: "
             f"${kernels.BACKEND_ENV_VAR} or '{kernels.DEFAULT_BACKEND}')",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel_backend is not None:
        kernels.set_backend(args.kernel_backend)
    if args.command == "list":
        print("available targets:")
        for name in sorted(COMMANDS):
            print(f"  {name}")
        return 0
    COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
