"""Command-line interface: regenerate any paper table or figure, and
drive the open-system serving simulator.

Usage::

    python -m repro.cli list
    python -m repro.cli table4
    python -m repro.cli fig10 --radix 2 3 4 5 6
    python -m repro.cli table6 --lanes 256
    python -m repro.cli fig11 --workload LR
    python -m repro.cli trace --benchmark resnet20 -o trace.json
    python -m repro.cli metrics --benchmark lr -o metrics.json
    python -m repro.cli serve --workload keyswitch --arrival-rate 300 \
        --requests 64 --seed 0 --validate

Each command is an argparse *subparser* carrying only the flags it
understands, so out-of-scope flags (``table9 --validate``,
``trace --radix 4``) error out instead of being silently ignored.
``--kernel-backend`` is accepted by every command and is applied as a
scoped override around dispatch — it never leaks into the process
after :func:`main` returns.

Each table/figure command prints the same rows the corresponding bench
target asserts on, so results can be inspected without running pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro import kernels
from repro.analysis import (
    fig7_operator_analysis,
    fig8_benchmark_op_breakdown,
    fig9_operator_breakdown,
    fig10_k_sweep,
    fig11_lane_scaling,
    fig12_energy_breakdown,
    table1_operator_usage,
    table2_ntt_fusion,
    table4_basic_ops,
    table6_full_system,
    table7_bandwidth,
    table8_hfauto_resources,
    table9_hfauto_ablation,
    table10_edp,
    table11_core_resources,
    table12_fpga_comparison,
)
from repro.analysis.report import render_shares, render_table
from repro.serve.router import ROUTER_POLICIES
from repro.sim.config import HardwareConfig
from repro.sim.ntt_cores import DEFAULT_NTT_CORE, available_ntt_cores

#: Canonical workload spellings for fig11/design.
PAPER_WORKLOADS = ("LR", "LSTM", "ResNet-20", "Packed Bootstrapping")


def _config_from_args(args) -> HardwareConfig:
    config = HardwareConfig(use_hfauto=not args.naive_auto)
    if args.lanes != 512:
        config = config.with_lanes(args.lanes)
    ntt_core = getattr(args, "ntt_core", DEFAULT_NTT_CORE)
    if ntt_core != DEFAULT_NTT_CORE:
        config = config.with_ntt_core(ntt_core)
    return config


def _print_table(data: dict, title: str) -> None:
    print(render_table(data["columns"], data["rows"], title=title))


def cmd_table1(args) -> None:
    _print_table(table1_operator_usage(), "Table I — operator usage")


def cmd_table2(args) -> None:
    _print_table(table2_ntt_fusion(), "Table II — NTT-fusion counts")


def cmd_table4(args) -> None:
    _print_table(
        table4_basic_ops(_config_from_args(args)),
        "Table IV — basic-operation throughput (ops/s)",
    )


def cmd_table6(args) -> None:
    _print_table(
        table6_full_system(_config_from_args(args)),
        "Table VI — full-system benchmark times (ms)",
    )


def cmd_table7(args) -> None:
    data = table7_bandwidth(_config_from_args(args))
    print(render_table(
        ["name", "utilization_pct", "paper_pct"], data["operations"],
        title="Table VII — bandwidth utilization per operation",
    ))
    print()
    print(render_table(
        ["name", "utilization_pct", "paper_pct"], data["benchmarks"],
        title="per benchmark:",
    ))


def cmd_table8(args) -> None:
    _print_table(table8_hfauto_resources(), "Table VIII — Auto vs HFAuto")


def cmd_table9(args) -> None:
    _print_table(table9_hfauto_ablation(), "Table IX — HFAuto ablation (ms)")


def cmd_table10(args) -> None:
    _print_table(
        table10_edp(_config_from_args(args)),
        "Table X — energy-delay product (J*s)",
    )


def cmd_table11(args) -> None:
    _print_table(
        table11_core_resources(_config_from_args(args)),
        "Table XI — per-core resources",
    )


def cmd_table12(args) -> None:
    _print_table(
        table12_fpga_comparison(_config_from_args(args)),
        "Table XII — FPGA prototype comparison",
    )


def cmd_fig7(args) -> None:
    fig = fig7_operator_analysis(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 7 — operator share per basic operation"
    ))


def cmd_fig8(args) -> None:
    fig = fig8_benchmark_op_breakdown(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 8 — operation share per benchmark"
    ))
    for name, ms in fig["total_ms"].items():
        print(f"  total {name}: {ms:.1f} ms")


def cmd_fig9(args) -> None:
    fig = fig9_operator_breakdown(_config_from_args(args))
    print(render_shares(
        fig["series"], title="Fig. 9 — operator share per benchmark"
    ))


def cmd_fig10(args) -> None:
    fig = fig10_k_sweep(k_values=tuple(args.radix))
    print(render_table(
        ["k", "lut", "ff", "dsp", "bram", "ntt_us"], fig["rows"],
        title="Fig. 10 — NTT-fusion radix sweep",
    ))
    print(f"optimal k: {fig['best_k']}")


def cmd_fig11(args) -> None:
    fig = fig11_lane_scaling(benchmark=args.workload)
    print(render_table(
        ["lanes", "seconds", "edp", "bandwidth_utilization"], fig["rows"],
        title=f"Fig. 11 — lane scaling ({args.workload})",
    ))


def cmd_summary(args) -> None:
    from repro.analysis.summary import render_markdown

    print(render_markdown())


def cmd_design(args) -> None:
    from repro.compiler.program import compile_trace
    from repro.sim.designer import DesignExplorer
    from repro.workloads import PAPER_BENCHMARKS

    program = compile_trace(PAPER_BENCHMARKS[args.workload]())
    base = HardwareConfig()
    if args.ntt_core != DEFAULT_NTT_CORE:
        base = base.with_ntt_core(args.ntt_core)
    explorer = DesignExplorer(program, base_config=base)
    points = explorer.sweep()
    frontier = explorer.pareto(points)
    rows = [
        {
            "lanes": p.lanes,
            "k": p.radix_log2,
            "ms": p.seconds * 1e3,
            "energy_J": p.energy_joules,
            "lut": p.resources.lut,
            "dsp": p.resources.dsp,
            "fits": p.fits,
            "pareto": p in frontier,
        }
        for p in points
    ]
    print(render_table(
        ["lanes", "k", "ms", "energy_J", "lut", "dsp", "fits", "pareto"],
        rows,
        title=f"Design-space exploration — {args.workload} "
              f"[{args.ntt_core}] (U280 budget)",
    ))
    best = explorer.best(objective="seconds")
    print(f"best (time): {best.label}")


def _simulate_benchmark(args):
    """Shared setup for the observability commands.

    Returns ``(name, result, registry)`` — the canonical benchmark
    name, the simulation result, and the metrics registry that was
    active while it ran.
    """
    from repro.compiler.program import compile_trace
    from repro.errors import WorkloadError
    from repro.obs import collecting
    from repro.sim.engine import PoseidonSimulator
    from repro.workloads import PAPER_BENCHMARKS, resolve_benchmark

    try:
        name = resolve_benchmark(args.benchmark)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}") from None
    simulator = PoseidonSimulator(_config_from_args(args))
    # Compile inside the collection scope so the compiler.* counters
    # (per-pass stats, lowering-cache hits/misses) land in the
    # snapshot alongside the sim.* ones.
    with collecting() as registry:
        try:
            program = compile_trace(
                PAPER_BENCHMARKS[name](), passes=args.passes
            )
        except WorkloadError as exc:
            raise SystemExit(f"error: {exc}") from None
        result = simulator.run(program)
    if getattr(args, "validate", False):
        from repro.sim.validate import validate_schedule

        validate_schedule(
            result, program=program, config=simulator.config
        )
        print(f"schedule invariants OK ({name}, {len(program.tasks)} tasks)")
    return name, result, registry


def cmd_trace(args) -> None:
    """Export one benchmark run as Chrome-trace/Perfetto JSON."""
    from repro.obs import write_chrome_trace
    from repro.sim.timeline import Timeline

    name, result, _ = _simulate_benchmark(args)
    Timeline(result).verify_no_overlap()
    out = args.output or "trace.json"
    doc = write_chrome_trace(result, out, label=name)
    print(
        f"wrote {out}: {len(doc['traceEvents'])} events, "
        f"{result.total_seconds * 1e3:.2f} ms simulated ({name}); "
        "open at https://ui.perfetto.dev"
    )


def cmd_metrics(args) -> None:
    """Export one benchmark run's metrics snapshot as flat JSON."""
    from repro.obs import write_metrics_json

    name, result, registry = _simulate_benchmark(args)
    out = args.output or "metrics.json"
    doc = write_metrics_json(
        registry.snapshot(),
        out,
        meta={
            "benchmark": name,
            "lanes": args.lanes,
            "simulated_seconds": result.total_seconds,
            "bandwidth_utilization": result.bandwidth_utilization,
        },
    )
    print(f"wrote {out}: {len(doc['metrics'])} metrics ({name})")


def cmd_serve(args) -> None:
    """Run the open-system serving simulator and report load metrics."""
    import json

    from repro.errors import ParameterError, WorkloadError
    from repro.obs import (
        collecting,
        write_cluster_trace,
        write_metrics_json,
        write_serving_trace,
    )
    from repro.serve import (
        AutoscalerPolicy,
        BatchPolicy,
        ClusterPolicy,
        ClusterSimulator,
        FaultPlan,
        HBMDegradation,
        InstanceCrash,
        PoissonArrivals,
        ResiliencePolicy,
        RetryPolicy,
        ServingSimulator,
        Straggler,
        TenantPopulation,
        TraceArrivals,
    )

    def _split(spec: str, flag: str, want: tuple[int, ...]) -> list[str]:
        parts = spec.split(":")
        if len(parts) not in want:
            raise SystemExit(
                f"error: {flag} expects "
                f"{' or '.join(str(w) for w in want)} colon-separated "
                f"fields, got {spec!r}"
            )
        return parts

    faulted = bool(args.crash or args.straggler or args.hbm_derate)
    resilient = (
        args.deadline is not None
        or args.retry_max is not None
        or args.detect_delay > 0
    )
    fleet = (
        args.instances > 1
        or args.autoscale_max is not None
        or faulted
        or resilient
    )
    try:
        events = []
        for spec in args.crash or ():
            parts = _split(spec, "--crash", (2, 3))
            events.append(InstanceCrash(
                instance=int(parts[0]),
                at_seconds=float(parts[1]),
                restart_after=(
                    float(parts[2]) if len(parts) == 3 else None
                ),
            ))
        for spec in args.straggler or ():
            parts = _split(spec, "--straggler", (4,))
            events.append(Straggler(
                instance=int(parts[0]),
                start_seconds=float(parts[1]),
                duration_seconds=float(parts[2]),
                slowdown=float(parts[3]),
            ))
        for spec in args.hbm_derate or ():
            parts = _split(spec, "--hbm-derate", (4,))
            events.append(HBMDegradation(
                instance=int(parts[0]),
                start_seconds=float(parts[1]),
                duration_seconds=float(parts[2]),
                factor=float(parts[3]),
            ))
        plan = FaultPlan(tuple(events)) if events else None
        resilience = None
        if resilient:
            retry = None
            if args.retry_max is not None:
                retry = RetryPolicy(
                    max_attempts=args.retry_max,
                    backoff_seconds=args.retry_backoff,
                    jitter=args.retry_jitter,
                )
            resilience = ResiliencePolicy(
                deadline_seconds=args.deadline,
                retry=retry,
                detection_seconds=args.detect_delay,
            )
        policy = BatchPolicy(
            max_batch_size=args.max_batch,
            max_queue_delay=args.max_queue_delay,
            order=args.policy,
            max_queue_depth=args.max_queue_depth,
            max_inflight_batches=args.max_inflight,
        )
        if fleet:
            autoscaler = None
            if args.autoscale_max is not None:
                autoscaler = AutoscalerPolicy(
                    max_instances=args.autoscale_max
                )
            cluster_policy = ClusterPolicy(
                instances=args.instances,
                router=args.router,
                key_cache_capacity=args.key_cache,
                key_upload_bytes=args.key_bytes,
                max_tenant_share=args.max_tenant_share,
                autoscaler=autoscaler,
            )
        population = TenantPopulation(
            tenants=args.tenants,
            key_sets=args.key_sets,
            skew=args.key_skew,
        )
    except ParameterError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.arrival_trace is not None:
        with open(args.arrival_trace, encoding="utf-8") as fh:
            stamps = json.load(fh)
        arrivals = TraceArrivals(stamps)
        arrival_desc = f"trace({len(stamps)} arrivals)"
    else:
        arrivals = PoissonArrivals(
            rate=args.arrival_rate, count=args.requests, seed=args.seed
        )
        arrival_desc = (
            f"Poisson rate={args.arrival_rate}/s n={args.requests} "
            f"seed={args.seed}"
        )
    config = _config_from_args(args)
    with collecting() as registry:
        try:
            if fleet:
                result = ClusterSimulator(
                    config, cluster_policy, policy
                ).run(
                    args.workload, arrivals,
                    seed=args.seed, population=population,
                    passes=args.passes,
                    faults=plan, resilience=resilience,
                )
            else:
                result = ServingSimulator(config, policy).run(
                    args.workload, arrivals, seed=args.seed,
                    passes=args.passes,
                )
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}") from None
        except WorkloadError as exc:
            raise SystemExit(f"error: {exc}") from None
    if args.validate:
        result.validate()
        if fleet:
            print(
                "schedule invariants OK per instance "
                f"({len({r.index for r in result.instances})} instances, "
                f"{result.admitted} requests)"
            )
        else:
            print(
                f"schedule invariants OK ({result.admitted} requests, "
                f"{len(result.program.tasks)} tasks)"
            )

    s = result.summary()
    print(f"--- serving: {args.workload} | {arrival_desc} ---")
    print(
        f"policy: batch<={policy.max_batch_size} "
        f"delay={policy.max_queue_delay} order={policy.order} "
        f"depth_bound={policy.max_queue_depth} "
        f"inflight<={policy.max_inflight_batches}"
    )
    if fleet:
        print(
            f"fleet: {s['instances']} instances router={s['router']} "
            f"key_cache={cluster_policy.key_cache_capacity} "
            f"tenants={population.tenants} "
            f"key_sets={population.key_sets} skew={population.skew}"
        )
        print(
            f"keys: {s['key_hits']} hits / {s['key_misses']} misses "
            f"(rate {s['key_hit_rate']:.2f}), "
            f"{s['key_upload_bytes'] / 1e9:.2f} GB uploaded, "
            f"{s['scale_events']} scale events"
        )
        if plan is not None or resilience is not None:
            print(
                f"faults: {s['crashes']} crashes, {s['restarts']} "
                f"restarts, {s['lost_events']} lost submissions, "
                f"{s['retries']} retries"
            )
            print(
                f"outcomes: {s['requests_completed']} completed, "
                f"{s['requests_rejected']} rejected, "
                f"{s['requests_abandoned']} abandoned, "
                f"{s['requests_exhausted']} exhausted; "
                f"goodput {s['goodput_rps']:.2f} req/s, "
                f"SLO violations {s['slo_violation_rate']:.3f}"
            )
    print(
        f"requests: {s['requests_arrived']} arrived, "
        f"{s['requests_admitted']} admitted, "
        f"{s['requests_rejected']} rejected, "
        f"{s['requests_completed']} completed "
        f"in {s['batches']} batches"
    )
    print(
        f"throughput: {s['throughput_rps']:.2f} req/s over "
        f"{s['makespan_seconds'] * 1e3:.2f} ms simulated"
    )
    print(
        "latency: "
        f"p50 {s['latency_p50_seconds'] * 1e3:.3f} ms, "
        f"p95 {s['latency_p95_seconds'] * 1e3:.3f} ms, "
        f"p99 {s['latency_p99_seconds'] * 1e3:.3f} ms "
        f"(mean {s['latency_mean_seconds'] * 1e3:.3f} ms)"
    )
    print(f"max queue depth: {s['max_queue_depth']}")

    if args.output is not None:
        doc = write_metrics_json(
            registry.snapshot(),
            args.output,
            meta={
                "workload": args.workload,
                "arrivals": arrival_desc,
                "seed": args.seed,
                "lanes": args.lanes,
                "passes": args.passes or "none",
                "policy": {
                    "max_batch_size": policy.max_batch_size,
                    "max_queue_delay": policy.max_queue_delay,
                    "order": policy.order,
                    "max_queue_depth": policy.max_queue_depth,
                    "max_inflight_batches": policy.max_inflight_batches,
                },
                **s,
            },
        )
        print(f"wrote {args.output}: {len(doc['metrics'])} metrics")
    if args.trace_output is not None:
        if fleet:
            doc = write_cluster_trace(
                result, args.trace_output, label=args.workload
            )
        else:
            doc = write_serving_trace(
                result, args.trace_output, label=args.workload
            )
        print(
            f"wrote {args.trace_output}: {len(doc['traceEvents'])} "
            "events; open at https://ui.perfetto.dev"
        )


def cmd_fig12(args) -> None:
    fig = fig12_energy_breakdown(_config_from_args(args))
    print("Fig. 12 — energy consumption and breakdown")
    for row in fig["rows"]:
        print(f"\n{row['benchmark']}: {row['total_joules']:.2f} J")
        for key, share in sorted(
            row["shares"].items(), key=lambda kv: -kv[1]
        ):
            print(f"    {key:14s} {100 * share:5.1f}%")


def cmd_list(args) -> None:
    print("available targets:")
    for name in sorted(COMMANDS):
        print(f"  {name}")


#: Command name -> (handler, which option groups it takes).
#: Groups: "hw" = --lanes/--naive-auto; "obs" = --benchmark/--validate/-o;
#: everything takes --kernel-backend.
COMMANDS = {
    "table1": (cmd_table1, ()),
    "table2": (cmd_table2, ()),
    "table4": (cmd_table4, ("hw",)),
    "table6": (cmd_table6, ("hw",)),
    "table7": (cmd_table7, ("hw",)),
    "table8": (cmd_table8, ()),
    "table9": (cmd_table9, ()),
    "table10": (cmd_table10, ("hw",)),
    "table11": (cmd_table11, ("hw",)),
    "table12": (cmd_table12, ("hw",)),
    "fig7": (cmd_fig7, ("hw",)),
    "fig8": (cmd_fig8, ("hw",)),
    "fig9": (cmd_fig9, ("hw",)),
    "fig10": (cmd_fig10, ("radix",)),
    "fig11": (cmd_fig11, ("workload",)),
    "fig12": (cmd_fig12, ("hw",)),
    "summary": (cmd_summary, ()),
    "design": (cmd_design, ("workload", "nttcore")),
    "trace": (cmd_trace, ("hw", "obs")),
    "metrics": (cmd_metrics, ("hw", "obs")),
    "serve": (cmd_serve, ("hw", "serve")),
    "list": (cmd_list, ()),
}


def _add_hw_options(sub) -> None:
    sub.add_argument(
        "--lanes", type=int, default=512,
        help="vector lanes (default 512)",
    )
    sub.add_argument(
        "--naive-auto", action="store_true",
        help="use the naive Auto core instead of HFAuto",
    )
    sub.add_argument(
        "--ntt-core", default=DEFAULT_NTT_CORE,
        choices=available_ntt_cores(),
        help="NTT core microarchitecture variant "
             f"(default '{DEFAULT_NTT_CORE}'; see docs/CORES.md)",
    )


def _add_obs_options(sub) -> None:
    sub.add_argument(
        "--benchmark", default="resnet20",
        help="benchmark to simulate (accepts aliases: resnet20, "
             "lr, lstm, bootstrapping)",
    )
    sub.add_argument(
        "--validate", action="store_true",
        help="check schedule invariants (no overlap per core instance, "
             "HBM channel budget, dependency order, time conservation) "
             "on the simulated run before exporting",
    )
    sub.add_argument(
        "--passes", default=None,
        help="compiler pass pipeline for the benchmark program: 'none' "
             "(default, legacy barriers), 'default' (full pipeline), "
             "or a comma-separated pass list (see docs/COMPILER.md)",
    )
    sub.add_argument(
        "-o", "--output", default=None,
        help="output path for trace/metrics JSON "
             "(default trace.json / metrics.json)",
    )


def _add_serve_options(sub) -> None:
    sub.add_argument(
        "--workload", default="keyswitch",
        help="request job mix: keyswitch, streaming, a comma-separated "
             "combination, or any paper-benchmark alias (resnet20, lr, "
             "lstm, bootstrapping)",
    )
    sub.add_argument(
        "--arrival-rate", type=float, default=100.0,
        help="Poisson arrival rate in requests per simulated second "
             "(default 100)",
    )
    sub.add_argument(
        "--requests", type=int, default=16,
        help="number of requests to generate (default 16; raise it for "
             "tighter percentiles on the light mixes)",
    )
    sub.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for arrivals and job-type choice; equal seeds "
             "give bit-identical metrics (default 0)",
    )
    sub.add_argument(
        "--arrival-trace", default=None,
        help="replay arrivals from a JSON file holding a list of "
             "timestamps in seconds (overrides --arrival-rate/--requests)",
    )
    sub.add_argument(
        "--max-batch", type=int, default=8,
        help="dynamic batcher: max requests admitted per batch "
             "(default 8)",
    )
    sub.add_argument(
        "--max-queue-delay", type=float, default=None,
        help="force a partial batch out once the oldest queued request "
             "has waited this many simulated seconds (default: no timer)",
    )
    sub.add_argument(
        "--policy", choices=("fifo", "sjf"), default="fifo",
        help="queue order: fifo (arrival) or sjf (shortest job first)",
    )
    sub.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="admission control: reject arrivals beyond this queue "
             "depth (default: unbounded)",
    )
    sub.add_argument(
        "--max-inflight", type=int, default=1,
        help="batches allowed in flight concurrently (default 1)",
    )
    sub.add_argument(
        "--instances", type=int, default=1,
        help="accelerator instances behind the router; >1 switches to "
             "the fleet simulator (default 1: single warm engine)",
    )
    sub.add_argument(
        "--router", default="key-affinity",
        choices=sorted(ROUTER_POLICIES),
        help="fleet dispatch policy (default key-affinity)",
    )
    sub.add_argument(
        "--key-cache", type=int, default=4, metavar="SETS",
        help="rotation/relin key sets resident per instance (LRU); "
             "0 disables caching, every request then uploads "
             "(default 4)",
    )
    sub.add_argument(
        "--key-bytes", type=int, default=None,
        help="modeled key-set upload size in bytes (default: the "
             "mix-shape switch-key size, ~569 MB)",
    )
    sub.add_argument(
        "--tenants", type=int, default=1,
        help="tenant population size for request labeling (default 1)",
    )
    sub.add_argument(
        "--key-sets", type=int, default=1,
        help="distinct rotation/relin key sets across the population "
             "(default 1)",
    )
    sub.add_argument(
        "--key-skew", type=float, default=0.0,
        help="Zipf-like popularity skew of tenant/key-set draws; 0 is "
             "uniform (default 0)",
    )
    sub.add_argument(
        "--max-tenant-share", type=float, default=None,
        help="fair admission: max fraction of an instance's queue one "
             "tenant may hold (default: no cap)",
    )
    sub.add_argument(
        "--autoscale-max", type=int, default=None,
        help="enable autoscaling up to this many instances against "
             "the queue-depth knee (default: fixed fleet)",
    )
    sub.add_argument(
        "--passes", default=None,
        help="compiler pass pipeline for the request programs: 'none' "
             "(default), 'default' (full pipeline), or a "
             "comma-separated pass list (see docs/COMPILER.md)",
    )
    sub.add_argument(
        "--crash", action="append", default=None, metavar="I:AT[:REST]",
        help="inject an instance crash: instance index, crash time in "
             "simulated seconds, and an optional restart delay "
             "(e.g. 0:0.02:0.01); repeatable, forces fleet mode",
    )
    sub.add_argument(
        "--straggler", action="append", default=None,
        metavar="I:START:DUR:SLOW",
        help="inject a straggler window: instance, start, duration, "
             "compute slowdown factor >= 1 (e.g. 1:0.01:0.05:2.0); "
             "repeatable, forces fleet mode",
    )
    sub.add_argument(
        "--hbm-derate", action="append", default=None,
        metavar="I:START:DUR:FACTOR",
        help="inject an HBM-degradation window: instance, start, "
             "duration, bandwidth factor in (0,1] "
             "(e.g. 0:0.0:0.03:0.5); repeatable, forces fleet mode",
    )
    sub.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline in simulated seconds from arrival; "
             "queued requests past it are abandoned, completions past "
             "it count as SLO violations (forces fleet mode)",
    )
    sub.add_argument(
        "--retry-max", type=int, default=None,
        help="client retry budget: total attempts per request after "
             "losses to crashes (default: no retries)",
    )
    sub.add_argument(
        "--retry-backoff", type=float, default=0.0005,
        help="base retry backoff in simulated seconds, doubled per "
             "attempt (default 0.0005)",
    )
    sub.add_argument(
        "--retry-jitter", type=float, default=0.0,
        help="seeded-deterministic jitter fraction added to each retry "
             "delay, in [0,1] (default 0)",
    )
    sub.add_argument(
        "--detect-delay", type=float, default=0.0,
        help="failure-detection delay: the router keeps dispatching to "
             "a crashed instance's last-known view for this many "
             "seconds (default 0: instant detection)",
    )
    sub.add_argument(
        "--validate", action="store_true",
        help="check the merged served schedule against every engine "
             "invariant before reporting (per instance in fleet mode)",
    )
    sub.add_argument(
        "-o", "--output", default=None,
        help="write the serving metrics snapshot as JSON "
             "(bit-identical across runs with the same seed)",
    )
    sub.add_argument(
        "--trace", dest="trace_output", default=None,
        help="write a Chrome trace with the serving track "
             "(request spans + queue depth) to this path",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Regenerate Poseidon (HPCA 2023) tables and figures, "
                    "or serve an open-system request stream.",
    )
    subparsers = parser.add_subparsers(
        dest="command", required=True, metavar="command",
        help="which table/figure to regenerate (see 'list'), or 'serve'",
    )
    for name, (handler, groups) in sorted(COMMANDS.items()):
        sub = subparsers.add_parser(
            name, help=(handler.__doc__ or "").split("\n")[0] or None
        )
        sub.set_defaults(func=handler)
        sub.add_argument(
            "--kernel-backend", default=None,
            choices=kernels.available_backends(),
            help="functional-plane kernel backend for this invocation "
                 f"(default: ${kernels.BACKEND_ENV_VAR} or "
                 f"'{kernels.DEFAULT_BACKEND}'); restored afterwards",
        )
        if "hw" in groups:
            _add_hw_options(sub)
        if "obs" in groups:
            _add_obs_options(sub)
        if "serve" in groups:
            _add_serve_options(sub)
        if "radix" in groups:
            sub.add_argument(
                "--radix", type=int, nargs="+", default=[2, 3, 4, 5, 6],
                help="fusion radices to sweep",
            )
        if "workload" in groups:
            sub.add_argument(
                "--workload", default="ResNet-20",
                choices=PAPER_WORKLOADS,
                help="paper workload",
            )
        if "nttcore" in groups:
            sub.add_argument(
                "--ntt-core", default=DEFAULT_NTT_CORE,
                choices=available_ntt_cores(),
                help="NTT core microarchitecture to sweep with "
                     f"(default '{DEFAULT_NTT_CORE}'; see docs/CORES.md)",
            )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # Scoped override: the chosen backend applies to this dispatch only
    # and the previous process-wide selection is restored afterwards
    # (in-process callers — tests, notebooks — see no leaked state).
    with kernels.use_backend(args.kernel_backend):
        args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
