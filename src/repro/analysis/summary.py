"""Programmatic reproduction summary — the abstract's headline claims.

The paper's abstract highlights three results:

1. up to 370x speedup over CPU for the basic operations of FHE;
2. up to 1300x / 52x speedup over CPU and the FPGA solution for the
   key operators (NTT in particular);
3. up to 10.6x / 8.7x speedup over GPU and the ASIC solution for the
   FHE benchmarks.

This module recomputes each headline from the live models and renders
a markdown report, so the reproduction status is generated rather than
hand-maintained (the committed EXPERIMENTS.md snapshots one run).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import (
    PAPER_POSEIDON_MS,
    table4_basic_ops,
    table6_full_system,
)
from repro.baselines.gpu import GPU_BENCHMARK_MS
from repro.baselines.heax import HEAX_BASIC_OPS


@dataclass(frozen=True)
class HeadlineClaim:
    """One abstract headline: the paper's factor vs the measured one."""

    name: str
    paper_factor: float
    measured_factor: float

    @property
    def ratio(self) -> float:
        """measured / paper — 1.0 is a perfect reproduction."""
        return self.measured_factor / self.paper_factor

    def within(self, tolerance: float) -> bool:
        """Is the measured factor within ``tolerance``x of the paper's?"""
        return (
            self.paper_factor / tolerance
            <= self.measured_factor
            <= self.paper_factor * tolerance
        )


def headline_claims() -> list[HeadlineClaim]:
    """Recompute the abstract's three headline speedups."""
    t4 = table4_basic_ops()
    rows = {r["operation"]: r for r in t4["rows"]}

    # (1) Best basic-operation speedup over CPU, excluding the NTT
    # "key operator" which headline (2) covers.
    basic = max(
        rows[name]["speedup_vs_cpu"]
        for name in ("PMult", "CMult", "Keyswitch", "Rotation", "Rescale")
    )

    # (2) Key operator (NTT) vs CPU and vs the HEAX FPGA.
    ntt = rows["NTT"]
    ntt_vs_cpu = ntt["speedup_vs_cpu"]
    ntt_vs_fpga = ntt["poseidon_ops"] / HEAX_BASIC_OPS["NTT"]

    # (3) Benchmarks vs GPU and vs the slowest-reported ASIC entry.
    # All Table VI LR entries are in the same per-iteration units
    # (775 / 72.98 = 10.6 and 639 / 72.98 = 8.7, the abstract's own
    # arithmetic), so the rows compare directly.
    t6 = table6_full_system()
    bench = {r["benchmark"]: r for r in t6["rows"]}
    lr = bench["LR"]
    vs_gpu = GPU_BENCHMARK_MS["LR"] / lr["poseidon_ms"]
    asic_factors = []
    for row in bench.values():
        for asic in ("F1+_ms", "CraterLake_ms"):
            reported = row.get(asic)
            if reported:
                asic_factors.append(reported / row["poseidon_ms"])
    vs_asic = max(asic_factors)

    return [
        HeadlineClaim("basic ops vs CPU (up to)", 718.0, basic),
        HeadlineClaim("NTT vs CPU", 1348.0, ntt_vs_cpu),
        HeadlineClaim("NTT vs FPGA (HEAX)", 52.0, ntt_vs_fpga),
        HeadlineClaim("benchmark vs GPU", 10.6, vs_gpu),
        HeadlineClaim("benchmark vs ASIC (best case)", 8.7, vs_asic),
    ]


def render_markdown() -> str:
    """Render the full headline report as markdown."""
    lines = [
        "# Reproduction summary — abstract headline claims",
        "",
        "| claim | paper | measured | measured/paper |",
        "|---|---|---|---|",
    ]
    for claim in headline_claims():
        lines.append(
            f"| {claim.name} | {claim.paper_factor:g}x "
            f"| {claim.measured_factor:.1f}x | {claim.ratio:.2f} |"
        )
    lines += [
        "",
        "Benchmarks (Poseidon simulated vs paper-reported):",
        "",
        "| benchmark | ours (ms) | paper (ms) |",
        "|---|---|---|",
    ]
    t6 = table6_full_system()
    for row in t6["rows"]:
        lines.append(
            f"| {row['benchmark']} | {row['poseidon_ms']:.1f} "
            f"| {PAPER_POSEIDON_MS[row['benchmark']]:g} |"
        )
    return "\n".join(lines)
