"""Regeneration of the paper's figures as data series.

Each function returns the series that, plotted, reproduce the figure:
shares per category (Figs. 7-9, 12) or sweep curves (Figs. 10-11).
"""

from __future__ import annotations

from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import compile_trace
from repro.sim.config import HardwareConfig
from repro.sim.energy import EnergyModel
from repro.sim.engine import PoseidonSimulator
from repro.sim.resources import ResourceModel
from repro.sim.stats import (
    benchmark_op_shares,
    benchmark_operator_shares,
    operator_core_shares,
)
from repro.sim.tasks import OperatorKind, OperatorTask
from repro.workloads import PAPER_BENCHMARKS

#: Fig. 7's parameter context (the paper caption's N/L setting).
FIG7_DEGREE = 1 << 16
FIG7_LEVEL = 44
FIG7_AUX = 4

#: Paper Fig. 9 headline: MM and NTT dominate operator time.
PAPER_FIG9_DOMINANT = ("MM", "NTT")


# ----------------------------------------------------------------------
# Fig. 7 — operator-core composition of each basic operation
# ----------------------------------------------------------------------
def fig7_operator_analysis(config: HardwareConfig | None = None) -> dict:
    """Per basic operation, the time share spent in each core array."""
    sim = PoseidonSimulator(config)
    shares: dict[str, dict[str, float]] = {}
    for name in (
        FheOpName.HADD,
        FheOpName.PMULT,
        FheOpName.CMULT,
        FheOpName.RESCALE,
        FheOpName.KEYSWITCH,
        FheOpName.ROTATION,
    ):
        op = FheOp.make(name, FIG7_DEGREE, FIG7_LEVEL, aux_limbs=FIG7_AUX)
        result = sim.run_ops([op])
        shares.update(operator_core_shares(result))
    return {
        "series": shares,
        "parameters": {"degree": FIG7_DEGREE, "level": FIG7_LEVEL},
    }


# ----------------------------------------------------------------------
# Fig. 8 — basic-operation time share per benchmark
# ----------------------------------------------------------------------
def fig8_benchmark_op_breakdown(
    config: HardwareConfig | None = None,
) -> dict:
    """Per benchmark, the share of time in each basic operation."""
    sim = PoseidonSimulator(config)
    series = {}
    totals = {}
    for bench, builder in PAPER_BENCHMARKS.items():
        result = sim.run(compile_trace(builder()))
        series[bench] = benchmark_op_shares(result)
        totals[bench] = result.total_seconds * 1e3
    return {"series": series, "total_ms": totals}


# ----------------------------------------------------------------------
# Fig. 9 — key-operator time share per benchmark
# ----------------------------------------------------------------------
def fig9_operator_breakdown(config: HardwareConfig | None = None) -> dict:
    """Per benchmark, the share of time in each operator core array."""
    sim = PoseidonSimulator(config)
    series = {}
    for bench, builder in PAPER_BENCHMARKS.items():
        result = sim.run(compile_trace(builder()))
        series[bench] = benchmark_operator_shares(result)
    return {"series": series, "paper_dominant": PAPER_FIG9_DOMINANT}


# ----------------------------------------------------------------------
# Fig. 10 — NTT-fusion parameter sweep
# ----------------------------------------------------------------------
def fig10_k_sweep(
    *,
    degree: int = 1 << 16,
    limbs: int = 44,
    k_values=(2, 3, 4, 5, 6),
) -> dict:
    """Resources and NTT execution time vs fusion radix k.

    The paper's headline: every metric inflects at k = 3.
    """
    rows = []
    for k in k_values:
        config = HardwareConfig().with_radix(k)
        resources = ResourceModel(config).ntt_core()
        sim = PoseidonSimulator(config)
        task = OperatorTask(
            kind=OperatorKind.NTT,
            elements=limbs * degree,
            degree=degree,
            limbs=limbs,
            op_label="NTT",
        )
        seconds = sim.cores.task_seconds(task)
        rows.append(
            {
                "k": k,
                "lut": resources.lut,
                "ff": resources.ff,
                "dsp": resources.dsp,
                "bram": resources.bram,
                "ntt_us": seconds * 1e6,
            }
        )
    best = min(rows, key=lambda r: r["ntt_us"])
    return {"rows": rows, "best_k": best["k"]}


# ----------------------------------------------------------------------
# Fig. 11 — lane-count sensitivity
# ----------------------------------------------------------------------
def fig11_lane_scaling(
    *,
    benchmark: str = "ResNet-20",
    lanes=(64, 128, 256, 512),
) -> dict:
    """Execution time and EDP of a benchmark vs vector-lane count."""
    trace = PAPER_BENCHMARKS[benchmark]()
    program = compile_trace(trace)
    rows = []
    for lane_count in lanes:
        config = HardwareConfig().with_lanes(lane_count)
        sim = PoseidonSimulator(config)
        result = sim.run(program)
        energy = EnergyModel(config)
        rows.append(
            {
                "lanes": lane_count,
                "seconds": result.total_seconds,
                "edp": energy.edp(result, program),
                "bandwidth_utilization": result.bandwidth_utilization,
            }
        )
    return {"rows": rows, "benchmark": benchmark}


# ----------------------------------------------------------------------
# Fig. 12 — energy consumption and breakdown
# ----------------------------------------------------------------------
def fig12_energy_breakdown(config: HardwareConfig | None = None) -> dict:
    """Per benchmark: total energy and memory/core attribution."""
    cfg = config or HardwareConfig()
    sim = PoseidonSimulator(cfg)
    energy_model = EnergyModel(cfg)
    rows = []
    for bench, builder in PAPER_BENCHMARKS.items():
        program = compile_trace(builder())
        result = sim.run(program)
        breakdown = energy_model.breakdown(result, program)
        rows.append(
            {
                "benchmark": bench,
                "total_joules": breakdown.total,
                "shares": breakdown.shares(),
            }
        )
    return {"rows": rows}
