"""Pretty-printing of table/figure data for the bench harness.

Keeps formatting in one place so every ``benchmarks/bench_*.py`` target
prints uniform, paper-style rows.
"""

from __future__ import annotations

from typing import Iterable


def format_value(value) -> str:
    """Human formatting: floats get 3 significant-ish digits."""
    if value is None:
        return "/"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def render_table(columns: Iterable[str], rows: Iterable[dict],
                 *, title: str = "") -> str:
    """Render rows as an aligned text table."""
    columns = list(columns)
    body = [[format_value(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in body)) if body else len(col)
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def render_shares(series: dict[str, dict[str, float]],
                  *, title: str = "") -> str:
    """Render {group: {category: share}} as percentage rows."""
    categories = sorted({c for shares in series.values() for c in shares})
    rows = []
    for group, shares in series.items():
        row = {"group": group}
        for cat in categories:
            row[cat] = f"{100 * shares.get(cat, 0.0):.1f}%"
        rows.append(row)
    return render_table(["group", *categories], rows, title=title)
