"""Regeneration of the paper's tables as data structures.

Every function returns ``{"columns": [...], "rows": [...]}`` (plus
extra context keys) ready for pretty-printing by the bench harness.
Paper-reported reference values ride along under ``paper`` keys so
EXPERIMENTS.md can record measured-vs-paper per cell.
"""

from __future__ import annotations

from repro.baselines.asics import ASIC_BENCHMARK_MS, all_asics
from repro.baselines.cpu import CpuModel, PAPER_CPU_OPS_PER_S
from repro.baselines.gpu import GPU_BASIC_OPS, GPU_BENCHMARK_MS, gpu_edp
from repro.baselines.heax import HEAX_BASIC_OPS, HEAX_RESOURCES, KIM_RESOURCES
from repro.compiler.decompose import operator_usage
from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import compile_trace
from repro.ntt.fusion import PAPER_TABLE_II, FusionCostModel
from repro.sim.config import HardwareConfig
from repro.sim.energy import EnergyModel
from repro.sim.engine import PoseidonSimulator
from repro.sim.resources import (
    PAPER_AUTO,
    PAPER_HFAUTO,
    ResourceModel,
)
from repro.workloads import PAPER_BENCHMARKS

#: Canonical paper-scale operation parameters (Table IV context).
TABLE4_DEGREE = 1 << 16
TABLE4_LEVEL = 44
TABLE4_AUX = 4

#: The six basic operations Table IV reports.
TABLE4_OPS = ("PMult", "CMult", "NTT", "Keyswitch", "Rotation", "Rescale")

#: Paper Table VI / IX: Poseidon's own benchmark results (ms). LR is
#: reported per training iteration (Table IX shows the 10x total).
PAPER_POSEIDON_MS = {
    "LR": 72.98,
    "LSTM": 1846.89,
    "ResNet-20": 2661.23,
    "Packed Bootstrapping": 127.45,
}

#: Paper Table IX: the naive-Auto ablation row (ms).
PAPER_POSEIDON_AUTO_MS = {
    "LR": 729.8,
    "LSTM": 14150.2,
    "ResNet-20": 10543.1,
    "Packed Bootstrapping": 1127.2,
}

#: Paper Table VII: lowest bandwidth utilization per basic op (the
#: N=2^16 column) and per-benchmark averages (%).
PAPER_BANDWIDTH_OP = {
    "HAdd": 97.79,
    "PMult": 97.65,
    "CMult": 44.72,
    "Keyswitch": 36.8,
    "Rotation": 65.0,
    "Rescale": 26.16,
    "Bootstrapping": 46.39,
}
PAPER_BANDWIDTH_BENCH = {
    "LR": 42.78,
    "LSTM": 51.99,
    "ResNet-20": 48.08,
    "Packed Bootstrapping": 59.07,
}


def _benchmark_result(name: str, config: HardwareConfig | None = None):
    """Simulate one paper benchmark; returns (trace, program, result)."""
    trace = PAPER_BENCHMARKS[name]()
    program = compile_trace(trace)
    sim = PoseidonSimulator(config)
    return trace, program, sim.run(program)


def poseidon_benchmark_ms(
    name: str, config: HardwareConfig | None = None
) -> float:
    """Simulated Poseidon time for one benchmark, in the paper's units
    (LR is per-iteration)."""
    _, _, result = _benchmark_result(name, config)
    ms = result.total_seconds * 1e3
    if name == "LR":
        ms /= 10.0
    return ms


# ----------------------------------------------------------------------
# Table I — operator usage per basic operation
# ----------------------------------------------------------------------
def table1_operator_usage(
    *, degree: int = 1 << 14, level: int = 10
) -> dict:
    """Which operator cores each basic operation exercises."""
    names = (
        FheOpName.HADD,
        FheOpName.PMULT,
        FheOpName.CMULT,
        FheOpName.RESCALE,
        FheOpName.KEYSWITCH,
        FheOpName.ROTATION,
    )
    rows = []
    for name in names:
        op = FheOp.make(name, degree, level, aux_limbs=TABLE4_AUX)
        usage = operator_usage(op)
        rows.append({"operation": name.value, **usage})
    return {
        "columns": ["operation", "MA", "MM", "NTT/INTT", "Automorphism",
                    "SBT"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table II — NTT-fusion operation counts
# ----------------------------------------------------------------------
def table2_ntt_fusion() -> dict:
    """Twiddle/mult/add counts per fused radix-2^k block, k = 2..6."""
    rows = []
    for k in range(2, 7):
        model = FusionCostModel(k)
        costs = model.costs()
        paper = PAPER_TABLE_II[k]
        rows.append(
            {
                "k": k,
                "W_unfused": costs.twiddles_unfused,
                "W_fused": costs.twiddles_fused,
                "mult_unfused": costs.mult_unfused,
                "mult_fused": costs.mult_fused,
                "modred_unfused": costs.modred_unfused,
                "modred_fused": costs.modred_fused,
                "paper": {
                    "W_unfused": paper[0],
                    "W_fused": paper[1],
                    "mult_unfused": paper[2],
                    "mult_fused": paper[3],
                },
            }
        )
    return {
        "columns": ["k", "W_unfused", "W_fused", "mult_unfused",
                    "mult_fused", "modred_unfused", "modred_fused"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table IV — basic-operation throughput comparison
# ----------------------------------------------------------------------
def table4_basic_ops(config: HardwareConfig | None = None) -> dict:
    """CPU / GPU / HEAX / Poseidon ops-per-second for the basic ops."""
    sim = PoseidonSimulator(config)
    cpu = CpuModel()
    rows = []
    for op_name in TABLE4_OPS:
        if op_name == "NTT":
            cpu_ops = 1.0 / cpu.ntt_op_seconds(TABLE4_DEGREE, TABLE4_LEVEL)
            # Standalone NTT of one polynomial (as the CPU model does).
            from repro.sim.tasks import OperatorKind, OperatorTask

            task = OperatorTask(
                kind=OperatorKind.NTT,
                elements=TABLE4_LEVEL * TABLE4_DEGREE,
                degree=TABLE4_DEGREE,
                limbs=TABLE4_LEVEL,
                hbm_read_bytes=TABLE4_DEGREE * TABLE4_LEVEL * 4,
                hbm_write_bytes=TABLE4_DEGREE * TABLE4_LEVEL * 4,
                op_label="NTT",
            )
            seconds = sim.cores.task_seconds(task)
            mem = sim.memory.task_timing(task).hbm_seconds
            poseidon_ops = 1.0 / max(seconds, mem)
        else:
            op = FheOp.make(
                FheOpName.from_label(op_name),
                TABLE4_DEGREE,
                TABLE4_LEVEL,
                aux_limbs=TABLE4_AUX,
            )
            cpu_ops = cpu.operations_per_second(op)
            poseidon_ops = sim.operations_per_second(op)
        rows.append(
            {
                "operation": op_name,
                "cpu_ops": cpu_ops,
                "gpu_ops": GPU_BASIC_OPS.get(op_name),
                "heax_ops": HEAX_BASIC_OPS.get(op_name),
                "poseidon_ops": poseidon_ops,
                "speedup_vs_cpu": poseidon_ops / cpu_ops,
                "paper": {
                    "cpu_ops": PAPER_CPU_OPS_PER_S.get(op_name),
                    "speedup_vs_cpu": {
                        "PMult": 349, "CMult": 718, "NTT": 1348,
                        "Keyswitch": 780, "Rotation": 774, "Rescale": 572,
                    }.get(op_name),
                },
            }
        )
    return {
        "columns": ["operation", "cpu_ops", "gpu_ops", "heax_ops",
                    "poseidon_ops", "speedup_vs_cpu"],
        "rows": rows,
        "parameters": {
            "degree": TABLE4_DEGREE,
            "level": TABLE4_LEVEL,
            "aux_limbs": TABLE4_AUX,
        },
    }


# ----------------------------------------------------------------------
# Table VI — full-system benchmark comparison
# ----------------------------------------------------------------------
def table6_full_system(config: HardwareConfig | None = None) -> dict:
    """Poseidon simulated vs published accelerator benchmark times."""
    rows = []
    for bench in PAPER_BENCHMARKS:
        poseidon_ms = poseidon_benchmark_ms(bench, config)
        row = {
            "benchmark": bench,
            "poseidon_ms": poseidon_ms,
            "paper_poseidon_ms": PAPER_POSEIDON_MS[bench],
        }
        for asic, values in ASIC_BENCHMARK_MS.items():
            row[asic + "_ms"] = values.get(bench)
        row["gpu_ms"] = GPU_BENCHMARK_MS.get(bench)
        rows.append(row)
    return {
        "columns": ["benchmark", "poseidon_ms", "paper_poseidon_ms",
                    "F1+_ms", "CraterLake_ms", "BTS_ms", "ARK_ms",
                    "gpu_ms"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table VII — bandwidth utilization
# ----------------------------------------------------------------------
def table7_bandwidth(config: HardwareConfig | None = None) -> dict:
    """HBM bandwidth utilization per basic op and per benchmark."""
    sim = PoseidonSimulator(config)
    op_rows = []
    for op_name, paper_pct in PAPER_BANDWIDTH_OP.items():
        if op_name == "Bootstrapping":
            trace = PAPER_BENCHMARKS["Packed Bootstrapping"]()
            result = sim.run(compile_trace(trace))
        else:
            op = FheOp.make(
                FheOpName.from_label(op_name),
                TABLE4_DEGREE,
                TABLE4_LEVEL,
                aux_limbs=TABLE4_AUX,
                kind="ct-ct",
            )
            result = sim.run_ops([op])
        op_rows.append(
            {
                "name": op_name,
                "utilization_pct": 100 * result.bandwidth_utilization,
                "paper_pct": paper_pct,
            }
        )
    bench_rows = []
    for bench, paper_pct in PAPER_BANDWIDTH_BENCH.items():
        _, _, result = _benchmark_result(bench, config)
        bench_rows.append(
            {
                "name": bench,
                "utilization_pct": 100 * result.bandwidth_utilization,
                "paper_pct": paper_pct,
            }
        )
    return {"operations": op_rows, "benchmarks": bench_rows}


# ----------------------------------------------------------------------
# Table VIII — Auto vs HFAuto core resources
# ----------------------------------------------------------------------
def table8_hfauto_resources(degree: int = 1 << 16) -> dict:
    """Naive Auto vs HFAuto: resources and per-pass latency."""
    hf = ResourceModel(HardwareConfig(use_hfauto=True))
    naive = ResourceModel(HardwareConfig(use_hfauto=False))
    rows = [
        {
            "design": "Auto",
            **{k: getattr(naive.automorphism_core(), k)
               for k in ("lut", "ff", "dsp", "bram")},
            "latency_cycles": naive.automorphism_latency_cycles(degree),
            "paper": PAPER_AUTO,
        },
        {
            "design": "HFAuto",
            **{k: getattr(hf.automorphism_core(), k)
               for k in ("lut", "ff", "dsp", "bram")},
            "latency_cycles": hf.automorphism_latency_cycles(degree),
            "paper": PAPER_HFAUTO,
        },
    ]
    return {
        "columns": ["design", "ff", "dsp", "lut", "bram", "latency_cycles"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table IX — HFAuto full-benchmark ablation
# ----------------------------------------------------------------------
def table9_hfauto_ablation() -> dict:
    """Benchmark times with HFAuto vs the naive Auto core."""
    rows = []
    for bench in PAPER_BENCHMARKS:
        with_hf = poseidon_benchmark_ms(
            bench, HardwareConfig(use_hfauto=True)
        )
        without = poseidon_benchmark_ms(
            bench, HardwareConfig(use_hfauto=False)
        )
        rows.append(
            {
                "benchmark": bench,
                "poseidon_hfauto_ms": with_hf,
                "poseidon_auto_ms": without,
                "slowdown": without / with_hf,
                "paper": {
                    "poseidon_hfauto_ms": PAPER_POSEIDON_MS[bench],
                    "poseidon_auto_ms": PAPER_POSEIDON_AUTO_MS[bench],
                },
            }
        )
    return {
        "columns": ["benchmark", "poseidon_hfauto_ms", "poseidon_auto_ms",
                    "slowdown"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table X — energy-delay product comparison
# ----------------------------------------------------------------------
def table10_edp(config: HardwareConfig | None = None) -> dict:
    """EDP of Poseidon (simulated) vs GPU and ASICs (published)."""
    cfg = config or HardwareConfig()
    energy_model = EnergyModel(cfg)
    rows = []
    for bench in PAPER_BENCHMARKS:
        trace, program, result = _benchmark_result(bench, cfg)
        edp = energy_model.edp(result, program)
        row = {"benchmark": bench, "poseidon_edp": edp}
        for asic in all_asics():
            row[asic.name + "_edp"] = asic.edp(bench)
        row["gpu_edp"] = gpu_edp(bench)
        rows.append(row)
    return {
        "columns": ["benchmark", "poseidon_edp", "F1+_edp",
                    "CraterLake_edp", "BTS_edp", "ARK_edp", "gpu_edp"],
        "rows": rows,
    }


# ----------------------------------------------------------------------
# Table XI — per-core FPGA resources
# ----------------------------------------------------------------------
def table11_core_resources(config: HardwareConfig | None = None) -> dict:
    """Resource consumption per operator core array."""
    model = ResourceModel(config or HardwareConfig())
    rows = []
    for core, vec in model.per_core_table().items():
        rows.append(
            {"core": core, "lut": vec.lut, "ff": vec.ff, "dsp": vec.dsp,
             "bram": vec.bram}
        )
    total = model.total()
    rows.append(
        {"core": "Total (+scratchpad)", "lut": total.lut, "ff": total.ff,
         "dsp": total.dsp, "bram": total.bram}
    )
    return {"columns": ["core", "lut", "ff", "dsp", "bram"], "rows": rows}


# ----------------------------------------------------------------------
# Table XII — comparison with other FPGA prototypes
# ----------------------------------------------------------------------
def table12_fpga_comparison(config: HardwareConfig | None = None) -> dict:
    """Poseidon's totals vs the published HEAX / Kim et al. numbers.

    The 8.6 MB scratchpad maps to the U280's URAM banks, not its
    BRAM36 blocks, so the BRAM column counts the operator cores only
    (twiddle tables, HFAuto buffers) — the apples-to-apples number
    against the rivals' reported BRAM.
    """
    model = ResourceModel(config or HardwareConfig())
    total = model.total(include_scratchpad=False)
    rows = [
        {"design": "Kim et al. [25][26]", **KIM_RESOURCES},
        {"design": "HEAX [32]", **HEAX_RESOURCES},
        {
            "design": "Poseidon (model)",
            "lut": total.lut,
            "ff": total.ff,
            "dsp": total.dsp,
            "bram": total.bram,
        },
    ]
    return {"columns": ["design", "lut", "ff", "dsp", "bram"], "rows": rows}
