"""Analysis layer: regenerate every paper table and figure as data.

Each function returns plain dict/list structures (rows/series) so the
benchmark harness can print them and tests can assert their shape
against the paper's qualitative claims.
"""

from repro.analysis.tables import (
    table1_operator_usage,
    table2_ntt_fusion,
    table4_basic_ops,
    table6_full_system,
    table7_bandwidth,
    table8_hfauto_resources,
    table9_hfauto_ablation,
    table10_edp,
    table11_core_resources,
    table12_fpga_comparison,
)
from repro.analysis.figures import (
    fig7_operator_analysis,
    fig8_benchmark_op_breakdown,
    fig9_operator_breakdown,
    fig10_k_sweep,
    fig11_lane_scaling,
    fig12_energy_breakdown,
)

__all__ = [
    "fig10_k_sweep",
    "fig11_lane_scaling",
    "fig12_energy_breakdown",
    "fig7_operator_analysis",
    "fig8_benchmark_op_breakdown",
    "fig9_operator_breakdown",
    "table10_edp",
    "table11_core_resources",
    "table12_fpga_comparison",
    "table1_operator_usage",
    "table2_ntt_fusion",
    "table4_basic_ops",
    "table6_full_system",
    "table7_bandwidth",
    "table8_hfauto_resources",
    "table9_hfauto_ablation",
]
