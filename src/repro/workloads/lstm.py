"""LSTM inference — paper benchmark 2 (Table V).

The paper's LSTM iterates ``y_{t+1} = sigma(W_0 y_t + W_1 x_t)`` with
128x128 weight matrices and a cubic-polynomial activation, requiring 50
bootstrapping operations over one inference. Each time step is:

- two dense 128x128 matrix-vector products (diagonal method, BSGS),
- an element-wise add,
- the cubic activation (2 CMult levels).

The functional variant runs a scaled-down recurrence on real
ciphertexts and checks it against the plaintext recurrence.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.trace import TraceRecorder
from repro.workloads.common import PAPER_DEGREE, WorkloadBuilder


def lstm_step(builder: WorkloadBuilder, *, hidden: int = 128) -> None:
    """Emit one recurrent step: two matvecs + add + cubic activation."""
    builder.linear_transform(hidden)   # W0 @ y_t
    builder.linear_transform(hidden)   # W1 @ x_t
    builder.hadd(1)
    builder.cmult(2)                   # cubic sigma: x*(c1 + c3*x^2)
    builder.hadd(2, kind="ct-pt")


def lstm_trace(
    *,
    degree: int = PAPER_DEGREE,
    steps: int = 50,
    hidden: int = 128,
    top_level: int = 24,
) -> TraceRecorder:
    """The paper's LSTM benchmark: 50 steps with frequent bootstraps.

    Each step consumes 4 levels (2 matvecs + 2 activation CMults). The
    paper refreshes once per step (50 bootstraps per inference), which
    only pays off on a *shallow* chain where every operation carries
    few limbs — hence the default ``top_level=24``; the chain-depth
    sweep in the benches shows the optimum.
    """
    builder = WorkloadBuilder(
        degree=degree, start_level=top_level, top_level=top_level
    )
    per_step = 4
    for t in range(steps):
        if builder.levels.level < per_step + 2:
            # Sparse bootstrap: only the 128-wide state is packed, so a
            # shallower EvalMod suffices (narrower message range).
            builder.bootstrap(slots=hidden, c2s_stages=2, s2c_stages=2,
                              stage_diagonals=16, taylor_degree=5,
                              double_angles=4)
        lstm_step(builder, hidden=hidden)
    return builder.build()


# ----------------------------------------------------------------------
# Functional variant (toy scale)
# ----------------------------------------------------------------------
def cubic_activation(x: np.ndarray) -> np.ndarray:
    """Plaintext reference of the cubic sigma approximation."""
    return 0.5 + 0.25 * x - 0.02 * x**3


def lstm_functional(
    evaluator,
    encoder,
    encryptor,
    decryptor,
    w0: np.ndarray,
    w1: np.ndarray,
    x_inputs: list[np.ndarray],
    y0: np.ndarray,
    *,
    steps: int | None = None,
) -> np.ndarray:
    """Run the recurrence on real ciphertexts (linearized activation).

    The toy variant uses the degree-1 part of the activation so short
    modulus chains suffice; the matrix products exercise the full
    rotation/keyswitch machinery that dominates the benchmark.
    Returns the decrypted final state.
    """
    from repro.ckks.linear import LinearTransform

    steps = len(x_inputs) if steps is None else steps
    n = w0.shape[0]
    lt0 = LinearTransform(evaluator, encoder, w0)
    lt1 = LinearTransform(evaluator, encoder, w1)

    reps = encoder.slots // n
    y_ct = encryptor.encrypt(encoder.encode(np.tile(y0, reps)))
    for t in range(steps):
        wy = lt0.apply(y_ct)
        wx_input = encryptor.encrypt(encoder.encode(np.tile(x_inputs[t], reps)))
        wx = lt1.apply(evaluator.drop_to_level(wx_input, y_ct.level))
        pre = evaluator.add(wy, wx)
        # Linearized activation: 0.5 + 0.25 * pre.
        scaled = evaluator.rescale(
            evaluator.multiply_plain(
                pre,
                encoder.encode_scalar(
                    0.25,
                    context=evaluator.params.context_at_level(pre.level),
                ),
            )
        )
        half = encoder.encode_scalar(
            0.5,
            scale=scaled.scale,
            context=evaluator.params.context_at_level(scaled.level),
        )
        y_ct = evaluator.add_plain(scaled, half)
    return encoder.decode(decryptor.decrypt(y_ct)).real[:n]


def lstm_plaintext_reference(
    w0: np.ndarray,
    w1: np.ndarray,
    x_inputs: list[np.ndarray],
    y0: np.ndarray,
) -> np.ndarray:
    """The matching plaintext recurrence (linearized activation)."""
    y = y0.astype(np.float64)
    for x in x_inputs:
        y = 0.5 + 0.25 * (w0 @ y + w1 @ x)
    return y
