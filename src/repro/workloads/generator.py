"""Synthetic workload generation for stress tests and ablations.

Generates random but depth-consistent operation streams with a
configurable mix, so simulator features (scheduling, bandwidth
accounting, energy) can be exercised across the whole op space and the
lane/radix sweeps have workloads of controlled intensity.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.ops import FheOpName
from repro.compiler.trace import TraceRecorder
from repro.errors import WorkloadError
from repro.workloads.common import PAPER_AUX_LIMBS, WorkloadBuilder

#: Default op mix (probabilities) for random traces.
DEFAULT_MIX = {
    FheOpName.HADD: 0.30,
    FheOpName.PMULT: 0.25,
    FheOpName.CMULT: 0.15,
    FheOpName.ROTATION: 0.20,
    FheOpName.KEYSWITCH: 0.05,
    FheOpName.RESCALE: 0.05,
}


def synthetic_trace(
    *,
    degree: int = 1 << 14,
    op_count: int = 100,
    start_level: int = 20,
    top_level: int | None = None,
    mix: dict[FheOpName, float] | None = None,
    aux_limbs: int = PAPER_AUX_LIMBS,
    seed: int | None = 0,
) -> TraceRecorder:
    """Random depth-consistent op stream.

    CMult draws also emit their rescale; when the chain bottoms out the
    builder bootstraps, so arbitrarily long streams stay valid.

    Args:
        degree: ring degree for all ops.
        op_count: number of mix draws (actual ops may be higher since
            CMult brings a Rescale and bootstraps expand).
        start_level/top_level: chain occupancy bounds.
        mix: probability per op name (normalized internally).
        aux_limbs: special primes assumed for keyswitching.
        seed: RNG seed (None for entropy).
    """
    mix = dict(DEFAULT_MIX if mix is None else mix)
    total = sum(mix.values())
    if total <= 0:
        raise WorkloadError("op mix must have positive total probability")
    names = list(mix)
    probs = np.array([mix[n] / total for n in names])
    rng = np.random.default_rng(seed)

    top = start_level if top_level is None else top_level
    builder = WorkloadBuilder(
        degree=degree,
        start_level=start_level,
        top_level=top,
        aux_limbs=aux_limbs,
    )
    # Keep enough headroom that CMult+Rescale never underflows.
    min_level = 2
    for _ in range(op_count):
        if builder.levels.level <= min_level:
            if top > start_level or top >= 8:
                builder.bootstrap(
                    c2s_stages=1, s2c_stages=1,
                    taylor_degree=3, double_angles=2,
                )
            else:
                builder.levels.refresh()
        name = names[int(rng.choice(len(names), p=probs))]
        if name is FheOpName.HADD:
            builder.hadd(1)
        elif name is FheOpName.PMULT:
            builder.pmult(1)
        elif name is FheOpName.CMULT:
            builder.cmult(1)
        elif name is FheOpName.ROTATION:
            builder.rotation(1)
        elif name is FheOpName.KEYSWITCH:
            builder.keyswitch(1)
        elif name is FheOpName.RESCALE:
            if builder.levels.level > min_level:
                builder.rescale()
        else:
            raise WorkloadError(f"unsupported op in mix: {name}")
    return builder.build()
