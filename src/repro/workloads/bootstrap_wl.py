"""Fully packed bootstrapping — paper benchmark 4 (Table V).

"The high noise-level ciphertext with the multiplication depth L = 3
will be refreshed to the low noise-level ciphertext" — i.e. the
workload is exactly one packed bootstrap of an almost-exhausted
ciphertext, the most operator-dense single operation in FHE.
"""

from __future__ import annotations

from repro.compiler.trace import TraceRecorder
from repro.workloads.common import PAPER_DEGREE, WorkloadBuilder


def packed_bootstrapping_trace(
    *,
    degree: int = PAPER_DEGREE,
    start_level: int = 3,
    top_level: int = 60,
    c2s_stages: int = 3,
    s2c_stages: int = 3,
    taylor_degree: int = 7,
    double_angles: int = 6,
) -> TraceRecorder:
    """One fully packed bootstrap (paper: L = 3 refreshed toward 57).

    The chain-top default of 60 matches the paper's CraterLake-derived
    modulus-chain length; the pipeline consumes
    :meth:`WorkloadBuilder.bootstrap_depth` levels from the top.
    """
    builder = WorkloadBuilder(
        degree=degree, start_level=start_level, top_level=top_level
    )
    builder.bootstrap(
        c2s_stages=c2s_stages,
        s2c_stages=s2c_stages,
        taylor_degree=taylor_degree,
        double_angles=double_angles,
    )
    return builder.build()


def exit_level(
    *,
    top_level: int = 60,
    c2s_stages: int = 3,
    s2c_stages: int = 3,
    taylor_degree: int = 7,
    double_angles: int = 6,
) -> int:
    """Level a refreshed ciphertext exits with (paper: 57 from 60).

    Our pipeline consumes more levels than the paper's highly optimized
    [30] implementation; the bench prints both so EXPERIMENTS.md can
    record the deviation.
    """
    depth = WorkloadBuilder.bootstrap_depth(
        c2s_stages=c2s_stages,
        s2c_stages=s2c_stages,
        taylor_degree=taylor_degree,
        double_angles=double_angles,
    )
    return top_level - depth
