"""ResNet-20 encrypted inference — paper benchmark 3 (Table V).

The paper runs one image through a ResNet-20 implemented with FHE
(following the packed-convolution literature). Structurally, each of
the 19 convolution layers plus the final dense layer becomes:

- a packed convolution: a set of rotations (one per kernel offset
  times input-channel block) with PMult-by-weights and HAdd
  accumulation;
- a polynomial ReLU approximation (2 CMult levels for a low-degree
  square-based surrogate);
- residual HAdds on the skip connections;
- periodic bootstrapping (the multiplicative depth per block exceeds
  practical chains).

The per-layer rotation/multiply counts follow the standard SISO
(single-input single-output channel) packing: a 3x3 kernel over c_in
channel blocks costs ~9 rotations and ``9 * c_blocks`` PMults.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.trace import TraceRecorder
from repro.workloads.common import PAPER_DEGREE, WorkloadBuilder

#: ResNet-20 layer plan: (layers, channel_blocks) per stage.
RESNET20_STAGES = (
    (7, 1),   # 16-channel stage: 1 input conv + 6 convs in 3 blocks
    (6, 2),   # 32-channel stage
    (6, 4),   # 64-channel stage
)


def conv_layer(builder: WorkloadBuilder, *, channel_blocks: int) -> None:
    """One packed 3x3 convolution + ReLU surrogate.

    The 9 kernel-offset rotations act on the same input ciphertext and
    are hoisted; accumulating across channel blocks and re-packing the
    output (stride/channel reshuffles) need full rotations of distinct
    intermediates.
    """
    import math as _math

    # Each output-channel block accumulates convolutions of every
    # input-channel block: 9 hoisted kernel-offset rotations per input
    # block, PMult with the weights, fused accumulation.
    for _ in range(channel_blocks):
        builder.rotation(9, hoisted=True)
        builder.pmult(9 * channel_blocks, resident=True)
        builder.hadd(9 * channel_blocks - 1, kind="fused")
    # Channel-block accumulation (log-tree) + output repacking.
    repack = int(_math.log2(max(2, channel_blocks))) + 4
    builder.rotation(repack)
    builder.hadd(repack)
    builder.rescale()
    # Polynomial ReLU surrogate (x^2-based, depth 2).
    builder.cmult(2)
    builder.hadd(1, kind="ct-pt")


def resnet20_trace(
    *,
    degree: int = PAPER_DEGREE,
    top_level: int = 44,
    bootstrap_every: int = 2,
) -> TraceRecorder:
    """One ResNet-20 inference, bootstrapping every few layers."""
    builder = WorkloadBuilder(
        degree=degree, start_level=top_level, top_level=top_level
    )
    per_layer = 3  # conv rescale + 2 activation levels
    layer_index = 0
    for layers, blocks in RESNET20_STAGES:
        for _ in range(layers):
            if builder.levels.level < per_layer:
                builder.bootstrap()
            conv_layer(builder, channel_blocks=blocks)
            layer_index += 1
            if layer_index % bootstrap_every == 0:
                builder.bootstrap()
    # Global average pool (rotate-accumulate) + dense classifier head.
    if builder.levels.level < 2:
        builder.bootstrap()
    builder.rotate_accumulate(64)
    builder.linear_transform(64)
    return builder.build()


# ----------------------------------------------------------------------
# Functional variant (toy scale): one conv block on real ciphertexts
# ----------------------------------------------------------------------
def packed_convolution_functional(
    evaluator,
    encoder,
    encryptor,
    decryptor,
    image: np.ndarray,
    kernel: np.ndarray,
) -> np.ndarray:
    """One encrypted 3x3 'same' convolution over a packed 2-D image.

    The image rows are flattened into slots; each kernel offset is a
    slot rotation followed by PMult with the broadcast weight and HAdd
    accumulation — the exact structure of the trace's conv_layer.
    Returns the decrypted feature map (valid region only).
    """
    h, w = image.shape
    if kernel.shape != (3, 3):
        raise ValueError(f"expected a 3x3 kernel, got {kernel.shape}")
    slots = encoder.slots
    if h * w > slots:
        raise ValueError(f"image {h}x{w} exceeds {slots} slots")

    flat = np.zeros(slots)
    flat[: h * w] = image.reshape(-1)
    ct = encryptor.encrypt(encoder.encode(flat))

    acc = None
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            shift = di * w + dj
            rotated = evaluator.rotate(ct, shift % slots) if shift else ct
            weight = kernel[di + 1, dj + 1]
            term = evaluator.multiply_plain(
                rotated,
                encoder.encode_scalar(
                    float(weight),
                    context=evaluator.params.context_at_level(rotated.level),
                ),
            )
            acc = term if acc is None else evaluator.add(acc, term)
    result_ct = evaluator.rescale(acc)
    decoded = encoder.decode(decryptor.decrypt(result_ct)).real[: h * w]
    return decoded.reshape(h, w)


def relu_surrogate_functional(
    evaluator,
    encoder,
    encryptor,
    decryptor,
    values: np.ndarray,
) -> np.ndarray:
    """The polynomial ReLU surrogate, evaluated on a real ciphertext.

    FHE ResNets replace ReLU with a low-degree polynomial; the depth-2
    form used by the trace's conv_layer is ``r(x) = c0 + c1*x + c2*x^2``
    with coefficients fit to max(0, x) on [-1, 1]. Returns the
    decrypted activations.
    """
    from repro.ckks.polyeval import evaluate_horner

    values = np.asarray(values, dtype=np.float64)
    slots = encoder.slots
    padded = np.zeros(slots)
    padded[: values.shape[0]] = values
    ct = encryptor.encrypt(encoder.encode(padded))
    out = evaluate_horner(
        evaluator, encoder, ct, RELU_SURROGATE_COEFFS
    )
    decoded = encoder.decode(decryptor.decrypt(out)).real
    return decoded[: values.shape[0]]


#: Least-squares fit of max(0, x) on [-1, 1] by a quadratic.
RELU_SURROGATE_COEFFS = (0.1184, 0.5, 0.3758)


def relu_surrogate_reference(values: np.ndarray) -> np.ndarray:
    """Plaintext evaluation of the same surrogate polynomial."""
    c0, c1, c2 = RELU_SURROGATE_COEFFS
    values = np.asarray(values, dtype=np.float64)
    return c0 + c1 * values + c2 * values**2


def convolution_reference(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Plaintext reference with the same rotate-based edge semantics.

    The packed rotation wraps rows around, so the valid comparison
    region excludes the one-pixel border; tests compare interiors.
    """
    h, w = image.shape
    out = np.zeros_like(image, dtype=np.float64)
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            shifted = np.roll(image.reshape(-1), -(di * w + dj)).reshape(h, w)
            out += kernel[di + 1, dj + 1] * shifted
    return out
