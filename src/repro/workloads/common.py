"""Shared building blocks for workload trace construction.

Workloads are described in terms of FHE macro-steps (matrix-vector
product, polynomial activation, bootstrap) that expand into the basic
operations of paper §II-A. The expansions mirror the functional
implementations in :mod:`repro.ckks` — BSGS linear transforms match
:class:`~repro.ckks.linear.LinearTransform`, the bootstrap pipeline
matches :class:`~repro.ckks.bootstrap.Bootstrapper`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.ops import FheOpName
from repro.compiler.trace import TraceRecorder
from repro.errors import WorkloadError

#: Paper-scale defaults: degree and keyswitch width.
PAPER_DEGREE = 1 << 16
PAPER_AUX_LIMBS = 4


@dataclass
class LevelTracker:
    """Tracks the remaining modulus-chain level through a workload.

    Emitting a Rescale decrements the level; a bootstrap raises it back
    to the top of the chain and then consumes its own pipeline depth.
    Raises when a workload would run off the bottom of the chain, which
    is how trace construction validates depth budgets (Table V).
    """

    level: int
    top_level: int

    def consume(self, levels: int = 1) -> None:
        if self.level - levels < 0:
            raise WorkloadError(
                f"modulus chain exhausted (level {self.level}, need "
                f"{levels}); schedule a bootstrap earlier"
            )
        self.level -= levels

    def refresh(self) -> None:
        self.level = self.top_level


class WorkloadBuilder:
    """Emits macro-steps into a :class:`TraceRecorder`.

    Args:
        degree: ring degree of all operands.
        start_level: chain level at workload start.
        top_level: the full chain's top level (bootstrap target).
        aux_limbs: special-prime count for keyswitching.
    """

    def __init__(
        self,
        *,
        degree: int = PAPER_DEGREE,
        start_level: int = 38,
        top_level: int | None = None,
        aux_limbs: int = PAPER_AUX_LIMBS,
    ):
        self.degree = degree
        self.trace = TraceRecorder(default_aux_limbs=aux_limbs)
        self._hoist_seq = 0
        top = start_level if top_level is None else top_level
        if top < start_level:
            raise WorkloadError(
                f"top level {top} below start level {start_level}"
            )
        self.levels = LevelTracker(level=start_level, top_level=top)

    # ------------------------------------------------------------------
    # Basic emissions
    # ------------------------------------------------------------------
    def _emit(self, name: FheOpName, count: int = 1, **meta) -> None:
        self.trace.emit(
            name, self.degree, self.levels.level, count=count, **meta
        )

    def hadd(self, count: int = 1, *, kind: str = "ct-ct") -> None:
        """Homomorphic additions at the current level."""
        self._emit(FheOpName.HADD, count, kind=kind)

    def pmult(
        self, count: int = 1, *, rescale: bool = False,
        resident: bool = False,
    ) -> None:
        """Plaintext multiplications; optionally one shared rescale.

        ``resident=True`` marks scratchpad-resident inputs (diagonal
        inner loops), charging only the plaintext stream from HBM.
        """
        if resident:
            self._emit(FheOpName.PMULT, count, resident=True)
        else:
            self._emit(FheOpName.PMULT, count)
        if rescale:
            self.rescale()

    def cmult(self, count: int = 1, *, rescale: bool = True) -> None:
        """Ciphertext multiplications, each followed by a rescale."""
        for _ in range(count):
            self._emit(FheOpName.CMULT, 1)
            if rescale:
                self.rescale()

    def rescale(self) -> None:
        """One rescale; consumes a level."""
        self._emit(FheOpName.RESCALE, 1)
        self.levels.consume()

    def rotation(self, count: int = 1, *, hoisted: bool = False) -> None:
        """Slot rotations (automorphism + keyswitch).

        ``hoisted=True`` models rotations of one common ciphertext
        (BSGS baby steps): the first pays the full keyswitch, the rest
        share its digit decomposition (HoistedRotation ops).
        """
        if count <= 0:
            return
        if hoisted and count > 1:
            # Annotate the group's dataflow: every hoisted rotation
            # reads the cold rotation's digit decomposition and writes
            # its own output, so the relax-barriers compiler pass can
            # overlap the k-1 hoisted rotations instead of draining
            # the pipeline between them. Lowerings ignore these keys;
            # without the pass the trace compiles byte-identically.
            self._hoist_seq += 1
            tag = f"hoist{self._hoist_seq}"
            self._emit(
                FheOpName.ROTATION, 1,
                reads=(f"{tag}:src",),
                writes=(f"{tag}:digits", f"{tag}:rot0"),
            )
            for i in range(1, count):
                self._emit(
                    FheOpName.HOISTED_ROTATION, 1,
                    reads=(f"{tag}:digits",),
                    writes=(f"{tag}:rot{i}",),
                )
        else:
            self._emit(FheOpName.ROTATION, count)

    def keyswitch(self, count: int = 1) -> None:
        """Bare keyswitches (relinearization-style)."""
        self._emit(FheOpName.KEYSWITCH, count)

    # ------------------------------------------------------------------
    # Macro-steps
    # ------------------------------------------------------------------
    def rotate_accumulate(self, width: int) -> None:
        """log2(width) rotate+add steps (slot-wise reduction)."""
        steps = max(1, int(math.ceil(math.log2(max(2, width)))))
        for _ in range(steps):
            self.rotation(1)
            self.hadd(1)

    def linear_transform(
        self, dimension: int, *, diagonals: int | None = None
    ) -> None:
        """BSGS matrix-vector product (one level).

        Defaults to a dense matrix (``diagonals = dimension``); sparse
        transforms (FFT stages) pass fewer diagonals. Baby-step
        rotations are hoisted (they all rotate the same input); the
        per-diagonal PMults read only their plaintext diagonal from
        HBM and the accumulating HAdds stay scratchpad-resident —
        the dataflow planning §VI credits the 8.6 MB scratchpad for.
        """
        diags = dimension if diagonals is None else diagonals
        if diags < 1:
            raise WorkloadError("linear transform needs >= 1 diagonal")
        # Double-hoisting (BTS/ARK style): baby steps share the input's
        # digit decomposition and giant steps share a deferred ModDown,
        # so only one rotation in the whole transform pays full price.
        baby = max(1, int(round(math.sqrt(2 * diags))))
        giants = max(1, -(-diags // baby))
        self.rotation(max(1, baby + giants - 1), hoisted=True)
        self.pmult(diags, resident=True)
        self.hadd(max(0, diags - 1), kind="fused")
        self.hadd(max(0, giants - 1))
        self.rescale()

    def polynomial_activation(self, multiply_depth: int) -> None:
        """Odd-polynomial activation via ``multiply_depth`` CMults."""
        self.cmult(multiply_depth)
        self.hadd(multiply_depth, kind="ct-pt")

    def _eval_mod(self, taylor_degree: int, double_angles: int) -> None:
        """One EvalMod pass: Horner ladder + double-angle squarings."""
        self.pmult(1, rescale=True)          # Taylor argument scaling
        self.cmult(taylor_degree - 1)        # Horner ladder
        self.hadd(taylor_degree, kind="ct-pt")
        self.cmult(double_angles)            # double-angle squarings
        self.rotation(1)                     # conjugation
        self.hadd(1)
        self.pmult(1, rescale=True)          # 1/(2*pi) scaling

    def bootstrap(
        self,
        *,
        c2s_stages: int = 3,
        s2c_stages: int = 3,
        taylor_degree: int = 7,
        double_angles: int = 6,
        stage_diagonals: int = 32,
        slots: int | None = None,
    ) -> None:
        """Packed bootstrapping (paper [30]) as basic operations.

        ModRaise is a reinterpretation (free); CoeffToSlot/SlotToCoeff
        are FFT-style stacks of sparse linear transforms; EvalMod runs
        twice (real and imaginary coefficient halves) *in parallel
        level-wise*: a Horner ladder of CMults plus double-angle
        squarings, ending with a conjugation and a constant multiply.

        ``slots`` enables sparse bootstrapping: workloads packing only
        n << N/2 values (LSTM's 128-wide state, HELR's feature width)
        refresh with n-dimensional C2S/S2C transforms, which is how
        per-step bootstrapping stays affordable.
        """
        self.levels.refresh()
        slots = self.degree // 2 if slots is None else slots
        diags = min(stage_diagonals, slots)
        for _ in range(c2s_stages):
            self.linear_transform(slots, diagonals=diags)
        # The two EvalMod halves consume the same levels side by side.
        before = self.levels.level
        self._eval_mod(taylor_degree, double_angles)
        after = self.levels.level
        self.levels.level = before
        self._eval_mod(taylor_degree, double_angles)
        self.levels.level = min(after, self.levels.level)
        for _ in range(s2c_stages):
            self.linear_transform(slots, diagonals=diags)

    @staticmethod
    def bootstrap_depth(
        *,
        c2s_stages: int = 3,
        s2c_stages: int = 3,
        taylor_degree: int = 7,
        double_angles: int = 6,
    ) -> int:
        """Levels one bootstrap consumes below the chain top."""
        eval_mod = 1 + (taylor_degree - 1) + double_angles + 1
        return c2s_stages + eval_mod + s2c_stages

    # ------------------------------------------------------------------
    def build(self) -> TraceRecorder:
        """Return the accumulated trace."""
        return self.trace
