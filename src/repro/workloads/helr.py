"""HELR logistic regression — paper benchmark 1 (Table V).

The paper runs the HELR algorithm at multiplicative depth L = 38 and
reports the average of 10 training iterations supported by two
bootstrapping operations. One iteration of encrypted minibatch
gradient descent comprises:

1. the inner products ``X_i . w`` — a rotate-accumulate reduction over
   the packed feature dimension plus a PMult with the batch data;
2. the sigmoid approximated by a degree-3 polynomial (2 CMult levels);
3. the gradient aggregation and weight update (PMult by the learning
   rate, HAdds, one more rotate-accumulate across the batch).

The functional variant (:func:`helr_functional`) really trains a tiny
model on encrypted data with :mod:`repro.ckks`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compiler.trace import TraceRecorder
from repro.workloads.common import PAPER_DEGREE, WorkloadBuilder


def helr_iteration(builder: WorkloadBuilder, *, features: int = 256) -> None:
    """Emit one HELR training iteration."""
    # Inner products X.w: elementwise PMult then log-width reduction.
    builder.pmult(1, rescale=True)
    builder.rotate_accumulate(features)
    # Degree-3 sigmoid: x * (c1 + c3 x^2) -> two CMult levels.
    builder.cmult(2)
    builder.hadd(2, kind="ct-pt")
    # Gradient: multiply the sigmoid output back with X and reduce
    # across the batch, then update the weights.
    builder.pmult(1, rescale=True)
    builder.rotate_accumulate(features)
    builder.pmult(1, rescale=True)  # learning-rate scaling
    builder.hadd(1)                 # weight update


def helr_trace(
    *,
    degree: int = PAPER_DEGREE,
    iterations: int = 10,
    bootstraps: int = 2,
    start_level: int = 38,
    top_level: int = 44,
    features: int = 256,
) -> TraceRecorder:
    """The paper's LR benchmark: 10 iterations, 2 bootstraps, L = 38."""
    builder = WorkloadBuilder(
        degree=degree, start_level=start_level, top_level=top_level
    )
    per_iter = 7  # levels one iteration consumes (see helr_iteration)
    boots_left = bootstraps
    for _ in range(iterations):
        if builder.levels.level < per_iter and boots_left > 0:
            # Sparse bootstrap over the packed feature width.
            builder.bootstrap(slots=features, c2s_stages=2, s2c_stages=2,
                              stage_diagonals=16)
            boots_left -= 1
        helr_iteration(builder, features=features)
    while boots_left > 0:
        builder.bootstrap(slots=features, c2s_stages=2, s2c_stages=2,
                          stage_diagonals=16)
        boots_left -= 1
    return builder.build()


# ----------------------------------------------------------------------
# Functional variant (toy scale)
# ----------------------------------------------------------------------
def sigmoid_poly(x: np.ndarray) -> np.ndarray:
    """The degree-3 sigmoid approximation HELR uses (plaintext ref)."""
    return 0.5 + 0.15 * x - 0.0015 * x**3


def helr_functional(
    evaluator,
    encoder,
    encryptor,
    decryptor,
    data: np.ndarray,
    labels: np.ndarray,
    *,
    iterations: int = 2,
    learning_rate: float = 0.1,
) -> np.ndarray:
    """Train a tiny encrypted logistic-regression model.

    Data layout: one ciphertext per sample, features packed in slots
    and replicated; the weight vector is a ciphertext updated in place.
    Returns the decrypted weight vector after training.

    This is intentionally small-scale — it demonstrates the real
    encrypted pipeline; the simulator handles paper-scale sizing.
    """
    samples, features = data.shape
    slots = encoder.slots
    if features > slots:
        raise ValueError(f"features {features} exceed slots {slots}")

    def pad(vec):
        out = np.zeros(slots)
        out[:features] = vec
        return out

    weights_ct = encryptor.encrypt(encoder.encode(pad(np.zeros(features))))
    data_pts = [encoder.encode(pad(row)) for row in data]

    width = 1 << max(1, int(math.ceil(math.log2(max(2, features)))))
    for _ in range(iterations):
        grad_ct = None
        for i in range(samples):
            # margin_i = <x_i, w>, replicated into all slots via
            # rotate-accumulate over the (padded) feature width.
            prod = evaluator.rescale(
                evaluator.multiply_plain(weights_ct, data_pts[i])
            )
            margin = evaluator.rotate_sum(prod, width)
            # sigmoid'(margin)-driven residual, linearized: the HELR
            # update uses c1 * y_i - poly(margin); keep degree 1 here
            # to fit toy chains, matching HELR's first-order variant.
            residual = evaluator.multiply_scalar(
                margin, -learning_rate * 0.15
            )
            residual = evaluator.rescale(residual)
            # gradient contribution: residual * x_i + lr * y_i * x_i
            contrib = evaluator.rescale(
                evaluator.multiply_plain(residual, data_pts[i])
            )
            lr_term = encoder.encode(
                pad(learning_rate * 0.5 * labels[i] * data[i]),
                scale=contrib.scale,
                context=evaluator.params.context_at_level(contrib.level),
            )
            contrib = evaluator.add_plain(contrib, lr_term)
            grad_ct = contrib if grad_ct is None else evaluator.add(
                grad_ct, contrib
            )
        weights_ct = evaluator.add(
            evaluator.drop_to_level(weights_ct, grad_ct.level), grad_ct
        )
    decoded = encoder.decode(decryptor.decrypt(weights_ct)).real
    return decoded[:features]
