"""Private statistics over encrypted records.

The paper's introduction motivates FHE with third-party processing of
sensitive records (financial, medical). This workload is that scenario
distilled: a server computes aggregate statistics — mean, variance,
weighted scores — over ciphertext-packed records without decrypting.

Operation mix: PMult (weights/masks), CMult (squares for variance),
rotate-accumulate reductions — a HAdd/PMult/Rotation-heavy profile
that complements the NN benchmarks' CMult-heavy ones, useful for
exercising the bandwidth-bound end of Table VII.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compiler.trace import TraceRecorder
from repro.workloads.common import PAPER_DEGREE, WorkloadBuilder


def statistics_trace(
    *,
    degree: int = PAPER_DEGREE,
    record_batches: int = 16,
    start_level: int = 6,
    top_level: int = 8,
) -> TraceRecorder:
    """Trace: per batch, masked mean + variance of packed records."""
    builder = WorkloadBuilder(
        degree=degree, start_level=start_level, top_level=top_level
    )
    width = degree // 2
    for _ in range(record_batches):
        if builder.levels.level < 3:
            builder.levels.refresh()  # fresh batches arrive at top level
        # Mask invalid slots, square for the second moment, reduce.
        builder.pmult(1, rescale=True)        # mask
        builder.cmult(1)                      # x^2 (for variance)
        builder.rotate_accumulate(width)      # sum x and sum x^2
        builder.hadd(2)                       # accumulate across batches
    return builder.build()


# ----------------------------------------------------------------------
# Functional variant
# ----------------------------------------------------------------------
def encrypted_mean_variance(
    evaluator,
    encoder,
    encryptor,
    decryptor,
    values: np.ndarray,
) -> tuple[float, float]:
    """Mean and variance of an encrypted vector, computed blind.

    The count is public (the client knows how many records it sent);
    sums are computed homomorphically via rotate-accumulate, so the
    server never sees an individual value.
    """
    values = np.asarray(values, dtype=np.float64)
    count = values.shape[0]
    slots = encoder.slots
    if count > slots:
        raise ValueError(f"{count} records exceed {slots} slots")
    width = 1 << max(1, int(math.ceil(math.log2(max(2, count)))))

    padded = np.zeros(slots)
    padded[:count] = values
    ct = encryptor.encrypt(encoder.encode(padded))

    # sum(x): rotate-accumulate; slot 0 then holds the full sum.
    sum_ct = evaluator.rotate_sum(ct, width)
    # sum(x^2): square first (consumes a level), then reduce.
    sq_ct = evaluator.rotate_sum(
        evaluator.rescale(evaluator.square(ct)), width
    )

    total = encoder.decode(decryptor.decrypt(sum_ct)).real[0]
    total_sq = encoder.decode(decryptor.decrypt(sq_ct)).real[0]
    mean = total / count
    variance = total_sq / count - mean**2
    return float(mean), float(variance)
