"""The paper's four evaluation benchmarks as operation traces.

Each workload module builds the FHE basic-operation stream (Table V)
that drives the cycle-level simulator, and — where feasible at toy
parameters — a functional variant that really encrypts/evaluates via
:mod:`repro.ckks` (used by the examples and integration tests).

- :mod:`repro.workloads.helr` — logistic regression (HELR), L = 38,
  10 iterations, 2 bootstraps.
- :mod:`repro.workloads.lstm` — LSTM inference, 128x128 recurrent
  matrix, 50 bootstraps.
- :mod:`repro.workloads.resnet20` — ResNet-20 image inference.
- :mod:`repro.workloads.bootstrap_wl` — fully packed bootstrapping,
  refreshing L = 3 to L = 57.
- :mod:`repro.workloads.generator` — synthetic op-mix generator for
  stress tests and ablations.
"""

from repro.workloads.bootstrap_wl import packed_bootstrapping_trace
from repro.workloads.generator import synthetic_trace
from repro.workloads.helr import helr_trace
from repro.workloads.lstm import lstm_trace
from repro.workloads.resnet20 import resnet20_trace
from repro.workloads.statistics import statistics_trace

#: Name -> trace builder for all four paper benchmarks (Table V/VI).
PAPER_BENCHMARKS = {
    "LR": helr_trace,
    "LSTM": lstm_trace,
    "ResNet-20": resnet20_trace,
    "Packed Bootstrapping": packed_bootstrapping_trace,
}

#: Lowercased CLI-friendly spellings -> canonical benchmark names.
BENCHMARK_ALIASES = {
    "lr": "LR",
    "helr": "LR",
    "lstm": "LSTM",
    "resnet": "ResNet-20",
    "resnet20": "ResNet-20",
    "resnet-20": "ResNet-20",
    "bootstrap": "Packed Bootstrapping",
    "bootstrapping": "Packed Bootstrapping",
    "packed-bootstrapping": "Packed Bootstrapping",
    "packed bootstrapping": "Packed Bootstrapping",
}


def resolve_benchmark(name: str) -> str:
    """Canonical benchmark name for a CLI spelling (case-insensitive).

    Raises:
        KeyError: with the accepted spellings, when nothing matches.
    """
    if name in PAPER_BENCHMARKS:
        return name
    canonical = BENCHMARK_ALIASES.get(name.strip().lower())
    if canonical is None:
        raise KeyError(
            f"unknown benchmark {name!r}; expected one of "
            f"{sorted(PAPER_BENCHMARKS)} or aliases "
            f"{sorted(BENCHMARK_ALIASES)}"
        )
    return canonical


__all__ = [
    "BENCHMARK_ALIASES",
    "PAPER_BENCHMARKS",
    "resolve_benchmark",
    "helr_trace",
    "lstm_trace",
    "packed_bootstrapping_trace",
    "resnet20_trace",
    "statistics_trace",
    "synthetic_trace",
]
