"""The paper's four evaluation benchmarks as operation traces.

Each workload module builds the FHE basic-operation stream (Table V)
that drives the cycle-level simulator, and — where feasible at toy
parameters — a functional variant that really encrypts/evaluates via
:mod:`repro.ckks` (used by the examples and integration tests).

- :mod:`repro.workloads.helr` — logistic regression (HELR), L = 38,
  10 iterations, 2 bootstraps.
- :mod:`repro.workloads.lstm` — LSTM inference, 128x128 recurrent
  matrix, 50 bootstraps.
- :mod:`repro.workloads.resnet20` — ResNet-20 image inference.
- :mod:`repro.workloads.bootstrap_wl` — fully packed bootstrapping,
  refreshing L = 3 to L = 57.
- :mod:`repro.workloads.generator` — synthetic op-mix generator for
  stress tests and ablations.
"""

from repro.workloads.bootstrap_wl import packed_bootstrapping_trace
from repro.workloads.generator import synthetic_trace
from repro.workloads.helr import helr_trace
from repro.workloads.lstm import lstm_trace
from repro.workloads.resnet20 import resnet20_trace
from repro.workloads.statistics import statistics_trace

#: Name -> trace builder for all four paper benchmarks (Table V/VI).
PAPER_BENCHMARKS = {
    "LR": helr_trace,
    "LSTM": lstm_trace,
    "ResNet-20": resnet20_trace,
    "Packed Bootstrapping": packed_bootstrapping_trace,
}

__all__ = [
    "PAPER_BENCHMARKS",
    "helr_trace",
    "lstm_trace",
    "packed_bootstrapping_trace",
    "resnet20_trace",
    "statistics_trace",
    "synthetic_trace",
]
