"""Automorphism substrate: Galois index mapping and the HFAuto algorithm.

Rotation of CKKS slot vectors is implemented by ring automorphisms
``x -> x^g``. On coefficient vectors this is a signed permutation of
length N (paper Eq. 4); HFAuto (Section III-B) reorganizes it into
sub-vector row/column mappings so hardware can move C = 512 elements
per cycle.
"""

from repro.automorphism.galois import (
    galois_element_for_rotation,
    rotation_for_galois_element,
)
from repro.automorphism.hfauto import (
    HFAutoPlan,
    hfauto_apply,
    hfauto_cycles_per_limb,
    hfauto_stage_costs,
)
from repro.automorphism.mapping import (
    apply_automorphism_poly,
    automorphism_indices,
    automorphism_signs,
    apply_automorphism_row,
)

__all__ = [
    "HFAutoPlan",
    "apply_automorphism_poly",
    "apply_automorphism_row",
    "automorphism_indices",
    "automorphism_signs",
    "galois_element_for_rotation",
    "hfauto_apply",
    "hfauto_cycles_per_limb",
    "hfauto_stage_costs",
    "rotation_for_galois_element",
]
