"""Automorphism substrate: Galois index mapping and the HFAuto algorithm.

Rotation of CKKS slot vectors is implemented by ring automorphisms
``x -> x^g``. On coefficient vectors this is a signed permutation of
length N (paper Eq. 4); HFAuto (Section III-B) reorganizes it into
sub-vector row/column mappings so hardware can move C = 512 elements
per cycle.
"""

from repro.automorphism.galois import (
    galois_element_for_rotation,
    rotation_for_galois_element,
)
from repro.automorphism.hfauto import HFAutoPlan, hfauto_apply
from repro.automorphism.mapping import (
    apply_automorphism_poly,
    automorphism_indices,
    automorphism_signs,
    apply_automorphism_row,
)

__all__ = [
    "HFAutoPlan",
    "apply_automorphism_poly",
    "apply_automorphism_row",
    "automorphism_indices",
    "automorphism_signs",
    "galois_element_for_rotation",
    "hfauto_apply",
    "rotation_for_galois_element",
]
