"""HFAuto: the hardware-friendly automorphism (paper Section III-B / IV-B.4).

The naive automorphism scatters single elements across the whole
length-N vector — one index map per cycle in hardware. HFAuto views the
vector as an ``R x C`` matrix (R = N/C segments of C = 512 elements)
and, using the paper's lemma

    floor((a mod (C*R)) / C) = floor(a / C) mod R,

decomposes the destination of source element ``(i, j)``:

    dest_row = (i*k + floor(j*k / C)) mod R
    dest_col = (j*k) mod C

which factors the permutation into four C-wide stages:

1. **Row mapping** — row ``i`` moves to row ``i*k mod R``.
2. **Column-indexed row shift** — column ``j`` cyclically shifts its
   rows by ``floor(j*k / C) mod R`` (the FIFO rotation).
3. **Dimension switch** — transpose-style BRAM re-layout so columns
   become addressable rows.
4. **Column mapping** — column ``j`` moves to column ``j*k mod C``.

Every stage touches ``C`` elements per cycle instead of one, which is
the entire speedup of Tables VIII/IX.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import AutomorphismError
from repro.automorphism.mapping import automorphism_signs
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.bitops import is_power_of_two

#: Poseidon's sub-vector length (the vector-lane width).
DEFAULT_SUBVECTOR = 512


@dataclass(frozen=True)
class StageCost:
    """Cycle cost of one HFAuto stage (C elements moved per cycle)."""

    name: str
    cycles: int
    elements_per_cycle: int


def hfauto_stage_costs(n: int, subvector: int) -> list[StageCost]:
    """Per-stage cycle counts of one HFAuto pass on an R x C matrix.

    The single source of truth for HFAuto's cycle cost, shared by
    :meth:`HFAutoPlan.stage_costs` and the simulator's cycle/latency
    models (:mod:`repro.sim.cores`, :mod:`repro.sim.resources`) so the
    three can never drift apart. Stages 1-3 move R rows of C elements
    at C elements per cycle (R cycles each); stage 4 maps the C
    columns exposed by the dimension switch (C cycles) — ``3R + C``
    per limb in total.
    """
    r = n // subvector
    return [
        StageCost("row_map", r, subvector),
        StageCost("fifo_shift", r, subvector),
        StageCost("dimension_switch", r, subvector),
        StageCost("column_map", subvector, r),
    ]


def hfauto_cycles_per_limb(n: int, subvector: int) -> int:
    """Total HFAuto pipeline cycles for one limb (sum of the stages)."""
    return sum(stage.cycles for stage in hfauto_stage_costs(n, subvector))


class HFAutoPlan:
    """Precomputed stage permutations for ``sigma_k`` on degree ``n``.

    The plan is reusable across limbs and ciphertexts (it depends only
    on ``(n, k, C)``), mirroring the hardware where the address
    selection circuit is configured once per rotation step.

    Args:
        n: ring degree (power of two, divisible by C).
        k: odd Galois element.
        subvector: C, the sub-vector length (default 512).
    """

    def __init__(self, n: int, k: int, subvector: int = DEFAULT_SUBVECTOR):
        if not is_power_of_two(n):
            raise AutomorphismError(f"degree must be a power of two, got {n}")
        if not is_power_of_two(subvector):
            raise AutomorphismError(
                f"subvector length must be a power of two, got {subvector}"
            )
        if n % subvector != 0:
            raise AutomorphismError(
                f"degree {n} is not divisible by subvector length {subvector}"
            )
        k %= 2 * n
        if k % 2 == 0:
            raise AutomorphismError(f"Galois element must be odd, got {k}")
        self.n = n
        self.k = k
        self.c = subvector
        self.r = n // subvector

        j = np.arange(self.c, dtype=np.int64)
        i = np.arange(self.r, dtype=np.int64)
        # Stage 1: destination row of each source row.
        self.row_dest = (i * k) % self.r
        # Stage 2: per-column extra row shift floor(j*k / C) mod R.
        self.col_row_shift = ((j * k) // self.c) % self.r
        # Stage 4: destination column of each source column.
        self.col_dest = (j * k) % self.c
        # Signs are a property of the source index (Eq. 4).
        self.signs = automorphism_signs(n, k).reshape(self.r, self.c)

    # ------------------------------------------------------------------
    # Stage-by-stage application (software mirror of the pipeline)
    # ------------------------------------------------------------------
    def stage1_row_map(self, matrix: np.ndarray) -> np.ndarray:
        """Row ``i`` -> row ``i*k mod R`` (BRAM -> FIFO, C data/cycle)."""
        out = np.empty_like(matrix)
        out[self.row_dest] = matrix
        return out

    def stage2_fifo_shift(self, matrix: np.ndarray) -> np.ndarray:
        """Cyclic row shift of each column by ``floor(j*k/C) mod R``.

        Implemented as a gather: output row r of column j comes from
        row ``(r - shift_j) mod R`` — one FIFO rotation per column.
        """
        r_idx = np.arange(self.r, dtype=np.int64)[:, None]
        src_rows = (r_idx - self.col_row_shift[None, :]) % self.r
        cols = np.arange(self.c, dtype=np.int64)[None, :]
        return matrix[src_rows, cols]

    def stage3_dimension_switch(self, matrix: np.ndarray) -> np.ndarray:
        """Expose columns as rows (the BRAM two-dimensional access trick).

        Functionally a transpose; the hardware achieves it with the
        diagonal storage layout rather than moving data.
        """
        return matrix.T.copy()

    def stage4_column_map(self, transposed: np.ndarray) -> np.ndarray:
        """Column ``j`` -> column ``j*k mod C`` then restore layout."""
        out = np.empty_like(transposed)
        out[self.col_dest] = transposed
        return out.T.copy()

    def apply_matrix(self, matrix: np.ndarray, q: int) -> np.ndarray:
        """Run all four stages (with Eq. 4 signs) on an R x C matrix."""
        if matrix.shape != (self.r, self.c):
            raise AutomorphismError(
                f"expected shape ({self.r}, {self.c}), got {matrix.shape}"
            )
        matrix = np.asarray(matrix, dtype=np.uint64)
        negated = np.where(matrix == 0, np.uint64(0), np.uint64(q) - matrix)
        signed = np.where(self.signs > 0, matrix, negated)
        m1 = self.stage1_row_map(signed)
        m2 = self.stage2_fifo_shift(m1)
        m3 = self.stage3_dimension_switch(m2)
        return self.stage4_column_map(m3)

    def apply_row(self, row: np.ndarray, q: int) -> np.ndarray:
        """Apply HFAuto to one flat residue vector of length n."""
        row = np.asarray(row, dtype=np.uint64)
        if row.shape != (self.n,):
            raise AutomorphismError(
                f"expected shape ({self.n},), got {row.shape}"
            )
        return self.apply_matrix(row.reshape(self.r, self.c), q).reshape(self.n)

    # ------------------------------------------------------------------
    # Cycle model (consumed by repro.sim)
    # ------------------------------------------------------------------
    def stage_costs(self) -> list[StageCost]:
        """Per-stage cycle counts at C elements per cycle."""
        return hfauto_stage_costs(self.n, self.c)

    def total_cycles(self) -> int:
        """Pipeline cycles for one limb (sum of stages)."""
        return sum(s.cycles for s in self.stage_costs())

    def naive_cycles(self) -> int:
        """Cycles the baseline one-element-per-cycle Auto core needs."""
        return self.n

    def __repr__(self) -> str:
        return f"HFAutoPlan(n={self.n}, k={self.k}, C={self.c}, R={self.r})"


@lru_cache(maxsize=1024)
def get_plan(n: int, k: int, subvector: int = DEFAULT_SUBVECTOR) -> HFAutoPlan:
    """Cached HFAuto plan per (n, k, C)."""
    return HFAutoPlan(n, k, subvector)


def hfauto_apply(
    poly: RnsPolynomial,
    k: int,
    *,
    subvector: int = DEFAULT_SUBVECTOR,
) -> RnsPolynomial:
    """Apply ``sigma_k`` to a coefficient-domain polynomial via HFAuto.

    Bit-identical to :func:`repro.automorphism.mapping.
    apply_automorphism_poly` (the tests assert it), but organized as
    the four-stage sub-vector pipeline.
    """
    if poly.domain is not Domain.COEFFICIENT:
        raise AutomorphismError(
            "automorphism operates on the coefficient domain; INTT first"
        )
    c = min(subvector, poly.degree)
    plan = get_plan(poly.degree, k, c)
    rows = [
        plan.apply_row(poly.data[i], q)
        for i, q in enumerate(poly.context.moduli)
    ]
    return RnsPolynomial(np.stack(rows), poly.context, poly.domain)
