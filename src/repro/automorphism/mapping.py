"""Direct (naive) automorphism index mapping — paper Eq. 4.

The automorphism ``sigma_k : a(x) -> a(x^k)`` on the negacyclic ring
``Z_q[x]/(x^N + 1)`` sends coefficient ``i`` to position ``i*k mod N``
with a sign flip when ``i*k mod 2N`` lands in the upper half (because
``x^N = -1``). This module is the element-by-element implementation:
the baseline "Auto" design the paper's Tables VIII/IX ablate against,
and the correctness oracle for HFAuto.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AutomorphismError
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.bitops import is_power_of_two


def _check_galois(n: int, k: int) -> int:
    if not is_power_of_two(n):
        raise AutomorphismError(f"degree must be a power of two, got {n}")
    k %= 2 * n
    if k % 2 == 0:
        raise AutomorphismError(
            f"Galois element must be odd (a unit mod 2N), got {k}"
        )
    return k


def automorphism_indices(n: int, k: int) -> np.ndarray:
    """Destination index ``i*k mod N`` for each source coefficient ``i``."""
    k = _check_galois(n, k)
    i = np.arange(n, dtype=np.int64)
    return (i * k) % n


def automorphism_signs(n: int, k: int) -> np.ndarray:
    """Sign (+1/-1) per source coefficient from Eq. 4.

    ``sgn = -1`` when ``i*k mod 2N >= N`` (the term wraps past x^N and
    picks up the ``x^N = -1`` factor), else ``+1``.
    """
    k = _check_galois(n, k)
    i = np.arange(n, dtype=np.int64)
    wrapped = (i * k) % (2 * n)
    return np.where(wrapped >= n, -1, 1).astype(np.int64)


def apply_automorphism_row(row: np.ndarray, q: int, k: int) -> np.ndarray:
    """Apply ``sigma_k`` to one residue row (coefficient domain).

    This is the naive scatter: for each source index ``i``, write
    ``±row[i]`` to ``i*k mod N``. One index map per element — exactly
    what the baseline Auto core does one element per cycle.
    """
    row = np.asarray(row, dtype=np.uint64)
    n = row.shape[0]
    dest = automorphism_indices(n, k)
    signs = automorphism_signs(n, k)
    out = np.zeros_like(row)
    negated = np.where(row == 0, np.uint64(0), np.uint64(q) - row)
    values = np.where(signs > 0, row, negated)
    out[dest] = values
    return out


def apply_automorphism_poly(poly: RnsPolynomial, k: int) -> RnsPolynomial:
    """Apply ``sigma_k`` to every limb of a coefficient-domain polynomial."""
    if poly.domain is not Domain.COEFFICIENT:
        raise AutomorphismError(
            "automorphism operates on the coefficient domain; INTT first"
        )
    rows = [
        apply_automorphism_row(poly.data[i], q, k)
        for i, q in enumerate(poly.context.moduli)
    ]
    return RnsPolynomial(np.stack(rows), poly.context, poly.domain)


def compose_galois(n: int, k1: int, k2: int) -> int:
    """Galois element of ``sigma_{k1} ∘ sigma_{k2}`` (= k1*k2 mod 2N)."""
    _check_galois(n, k1)
    _check_galois(n, k2)
    return (k1 * k2) % (2 * n)


def eval_permutation(n: int, k: int) -> np.ndarray:
    """Source indices of ``sigma_k`` in the *evaluation* domain.

    The natural-order negacyclic NTT evaluates at ``psi^(2t+1)``, so
    ``sigma_k(a)`` at point ``t`` equals ``a`` at the point ``t'`` with
    ``2t'+1 = (2t+1)*k mod 2N``: ``NTT(sigma_k(a))[t] = NTT(a)[t']``
    — a gather by this index array. Unlike the coefficient-domain map
    (Eq. 4), this is a pure permutation — no sign flips — which is why
    hoisted keyswitching rotates NTT-resident digits for free.
    """
    k = _check_galois(n, k)
    t = np.arange(n, dtype=np.int64)
    odd = ((2 * t + 1) * k) % (2 * n)
    return (odd - 1) // 2


def apply_automorphism_eval_row(row: np.ndarray, k: int) -> np.ndarray:
    """Apply ``sigma_k`` to one NTT-domain (point-value) residue row."""
    row = np.asarray(row)
    return row[eval_permutation(row.shape[0], k)]


def apply_automorphism_eval(poly: RnsPolynomial, k: int) -> RnsPolynomial:
    """Apply ``sigma_k`` to an NTT-domain polynomial (all limbs)."""
    if poly.domain is not Domain.NTT:
        raise AutomorphismError(
            "evaluation-domain automorphism needs an NTT-domain input"
        )
    src = eval_permutation(poly.degree, k)
    return RnsPolynomial(poly.data[:, src], poly.context, Domain.NTT)
