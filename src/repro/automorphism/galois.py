"""Galois elements for CKKS slot rotations.

CKKS packs ``N/2`` complex slots into a degree-``N`` polynomial. A left
rotation by ``r`` slots corresponds to the automorphism with Galois
element ``g = 5^r mod 2N`` (5 generates the subgroup of ``Z_{2N}^*``
that permutes slots cyclically); conjugation corresponds to ``g = 2N-1``.
"""

from __future__ import annotations

from repro.errors import AutomorphismError
from repro.utils.bitops import is_power_of_two

#: Generator of the slot-rotation subgroup of Z_{2N}^*.
ROTATION_GENERATOR = 5


def galois_element_for_rotation(n: int, steps: int) -> int:
    """Galois element for a rotation by ``steps`` slots (left if > 0).

    Args:
        n: ring degree (power of two); there are n/2 slots.
        steps: rotation amount, taken modulo ``n/2``.
    """
    if not is_power_of_two(n) or n < 4:
        raise AutomorphismError(f"degree must be a power of two >= 4, got {n}")
    slots = n // 2
    steps %= slots
    return pow(ROTATION_GENERATOR, steps, 2 * n)


def conjugation_element(n: int) -> int:
    """Galois element of complex conjugation on the slots (= 2N - 1)."""
    if not is_power_of_two(n) or n < 4:
        raise AutomorphismError(f"degree must be a power of two >= 4, got {n}")
    return 2 * n - 1


def rotation_for_galois_element(n: int, galois: int) -> int | None:
    """Invert :func:`galois_element_for_rotation`.

    Returns the rotation step count ``r`` with ``5^r ≡ galois (mod 2N)``,
    or ``None`` if ``galois`` is not in the rotation subgroup (e.g. the
    conjugation element).
    """
    if not is_power_of_two(n) or n < 4:
        raise AutomorphismError(f"degree must be a power of two >= 4, got {n}")
    galois %= 2 * n
    acc = 1
    for r in range(n // 2):
        if acc == galois:
            return r
        acc = acc * ROTATION_GENERATOR % (2 * n)
    return None


def hoisted_rotation_elements(n: int, steps_list) -> list[int]:
    """Galois elements for a batch of rotations (hoisting-style reuse).

    Deduplicates while preserving order, mirroring how evaluators reuse
    one ModUp across several rotations of the same ciphertext.
    """
    seen: set[int] = set()
    out: list[int] = []
    for steps in steps_list:
        g = galois_element_for_rotation(n, steps)
        if g not in seen:
            seen.add(g)
            out.append(g)
    return out
