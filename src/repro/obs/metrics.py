"""A lightweight metrics registry with a zero-overhead disabled mode.

Three instrument kinds cover everything the reproduction records:

- :class:`Counter` — monotonically increasing totals (NTT butterflies,
  Barrett reductions, HBM bytes, scratchpad hits/misses);
- :class:`Gauge` — last-written values (makespan, bandwidth
  utilization of the most recent run);
- :class:`Histogram` — distributions (per-task queue wait, busy time,
  HBM channels engaged), tracked as count/sum/min/max plus a bounded
  sample reservoir for quantiles.

Collection is opt-in. The module-level :func:`active` returns the
installed registry or ``None``; every instrumented call site does::

    reg = metrics.active()
    if reg is not None:
        reg.counter("ntt.butterflies").inc(n)

so the disabled path is one function call and one ``is None`` test —
no allocation, no dict lookup, no string formatting. Tests and the CLI
enable collection with :func:`collecting` (a context manager) or
:func:`enable`/:func:`disable`.
"""

from __future__ import annotations

from contextlib import contextmanager

#: Maximum raw observations a histogram retains for quantile queries.
#: Beyond this the reservoir decimates (keeps every other sample), so
#: memory stays bounded on million-task runs while quantiles remain
#: representative.
HISTOGRAM_RESERVOIR = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming distribution summary with bounded memory."""

    __slots__ = ("name", "count", "total", "min", "max",
                 "_samples", "_stride", "_skip")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1   # keep every _stride-th observation
        self._skip = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._samples.append(value)
            if len(self._samples) >= HISTOGRAM_RESERVOIR:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate q-quantile from the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def summary(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named instruments, created on first touch.

    A name identifies one instrument; asking for an existing name with
    a different kind is an error (it means two call sites disagree
    about what the metric is).
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}, not {cls.__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def reset(self) -> None:
        self._instruments.clear()

    def snapshot(self) -> dict:
        """Flat JSON-ready view: ``{name: value-or-summary}``.

        Counters and gauges export their value directly; histograms
        export their :meth:`Histogram.summary` dict.
        """
        out: dict = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            if isinstance(inst, Histogram):
                out[name] = inst.summary()
            else:
                out[name] = inst.value
        return out


# ----------------------------------------------------------------------
# Process-wide collection switch
# ----------------------------------------------------------------------
# Collection contexts form a stack, not a single slot. The serving
# layer runs many logical requests in one process, and collectors can
# be opened from fixtures/generators whose exits do not nest cleanly;
# the previous single-slot save/restore corrupted state under such
# interleaved exits (an early exit disabled a still-open collector,
# and a late exit resurrected a closed registry, silently contaminating
# every later run). Each collector now removes exactly *itself* from
# the stack on exit, wherever it sits, so out-of-order exits leave the
# remaining collectors intact and nothing stays installed afterwards.
_stack: list[MetricsRegistry] = []


def active() -> MetricsRegistry | None:
    """The innermost installed registry, or ``None`` when collection
    is off. Instrumented sites record only here: nested collectors are
    isolated from their enclosing ones (no double counting)."""
    return _stack[-1] if _stack else None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Install a registry (a fresh one by default) process-wide.

    Replaces any open collection contexts; prefer :func:`collecting`
    for scoped use.
    """
    reg = registry if registry is not None else MetricsRegistry()
    _stack[:] = [reg]
    return reg


def disable() -> None:
    """Turn collection off; instrumented sites return to the no-op path."""
    _stack.clear()


@contextmanager
def collecting(registry: MetricsRegistry | None = None):
    """Enable collection for a ``with`` block, restoring the prior state.

    Contexts nest (the innermost registry collects, isolated from the
    outer ones) and survive out-of-order exits: each exit removes its
    own registry only, never another collector's.

    >>> with collecting() as reg:
    ...     simulator.run(program)
    >>> reg.snapshot()["sim.tasks"]
    """
    reg = registry if registry is not None else MetricsRegistry()
    _stack.append(reg)
    try:
        yield reg
    finally:
        for i in range(len(_stack) - 1, -1, -1):
            if _stack[i] is reg:
                del _stack[i]
                break
