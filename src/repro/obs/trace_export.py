"""Export simulated runs as Chrome-trace JSON and metrics snapshots.

The Chrome trace format (also read by Perfetto, ``ui.perfetto.dev``) is
a JSON object with a ``traceEvents`` list. We emit:

- one *thread* per operator core array *instance* (MA, MM, NTT,
  Automorphism; replicated instances get their own ``MA#1``-style
  tracks) and one for the HBM channels, named via ``M`` metadata
  events;
- one complete (``ph: "X"``) event per task span — ``ts``/``dur`` in
  microseconds of *simulated* time — carrying the task's compute time,
  HBM time, bytes moved, waits, stall and instance in ``args``;
- a nested ``cat: "stall"`` slice over the tail of any span whose core
  instance sat waiting on the task's residual HBM stream, so stall
  shows up visually inside the occupancy span;
- an ``hbm_bytes`` counter (``ph: "C"``) track accumulating off-chip
  traffic over the run.

Only simulated time appears in the trace, so exports are deterministic:
the same program on the same config produces byte-identical JSON.

This module deliberately imports nothing from :mod:`repro.sim` at
module scope (the sim layer imports :mod:`repro.obs.metrics`); the
functions duck-type over :class:`~repro.sim.engine.SimulationResult`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid an import cycle with the sim layer
    from repro.sim.engine import SimulationResult

#: Stable thread ids per track, in paper core order; HBM and the
#: serving-layer request track after the cores.
TRACK_IDS = {"MA": 1, "MM": 2, "NTT": 3, "Automorphism": 4, "HBM": 9,
             "Requests": 10}

_SECONDS_TO_US = 1e6


def _track_id(core: str, instance: int = 0) -> int:
    # Unknown cores (future core types) get ids past the fixed block;
    # replicated instances get their own track past the instance-0 ones.
    base = TRACK_IDS.get(core, 100 + sum(map(ord, core)) % 100)
    return base + 16 * instance


def _track_name(core: str, instance: int = 0) -> str:
    return core if instance == 0 else f"{core}#{instance}"


def chrome_trace_events(
    result: "SimulationResult",
    *,
    pid: int = 0,
    process_name: str = "poseidon-sim",
) -> list[dict]:
    """The ``traceEvents`` list for one simulated run.

    ``pid``/``process_name`` place the run in its own Chrome-trace
    process — the fleet exporter gives every accelerator instance one
    process so its core/HBM tracks group visually.
    """
    events: list[dict] = [
        {
            "ph": "M", "pid": pid, "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    tracks = sorted(
        {(r.core, r.instance) for r in result.task_records}
        | {("HBM", 0)},
        key=lambda pair: _track_id(*pair),
    )
    for core, instance in tracks:
        events.append({
            "ph": "M", "pid": pid, "tid": _track_id(core, instance),
            "name": "thread_name",
            "args": {"name": _track_name(core, instance)},
        })

    hbm_cumulative = 0
    for record in result.task_records:
        tid = _track_id(record.core, record.instance)
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": record.start * _SECONDS_TO_US,
            "dur": (record.end - record.start) * _SECONDS_TO_US,
            "name": record.op_label,
            "cat": record.core,
            "args": {
                "compute_seconds": record.compute_seconds,
                "hbm_seconds": record.hbm_seconds,
                "hbm_bytes": record.hbm_bytes,
                "queue_wait_seconds": record.queue_wait_seconds,
                "core_wait_seconds": record.core_wait_seconds,
                "hbm_wait_seconds": record.hbm_wait_seconds,
                "stall_seconds": record.stall_seconds,
                "instance": record.instance,
                "hbm_channels_used": record.hbm_channels_used,
            },
        })
        if record.stall_seconds > 0:
            # Nested sub-slice marking the held-but-stalled tail.
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": tid,
                "ts": (record.end - record.stall_seconds) * _SECONDS_TO_US,
                "dur": record.stall_seconds * _SECONDS_TO_US,
                "name": f"{record.op_label} stall",
                "cat": "stall",
                "args": {"stall_seconds": record.stall_seconds},
            })
        if record.hbm_seconds > 0:
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": TRACK_IDS["HBM"],
                "ts": record.hbm_start * _SECONDS_TO_US,
                "dur": (record.hbm_end - record.hbm_start) * _SECONDS_TO_US,
                "name": f"{record.op_label} stream",
                "cat": "HBM",
                "args": {
                    "bytes": record.hbm_bytes,
                    "channels": record.hbm_channels_used,
                },
            })
        if record.hbm_bytes:
            hbm_cumulative += record.hbm_bytes
            events.append({
                "ph": "C",
                "pid": pid,
                "ts": record.hbm_end * _SECONDS_TO_US,
                "name": "hbm_bytes",
                "args": {"cumulative": hbm_cumulative},
            })
    return events


def chrome_trace(result: "SimulationResult", *, label: str = "") -> dict:
    """Full Chrome-trace document for one simulated run."""
    return {
        "traceEvents": chrome_trace_events(result),
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "generator": "repro.obs.trace_export",
            "simulated_seconds": result.total_seconds,
            "hbm_bytes": result.hbm_bytes,
            "bandwidth_utilization": result.bandwidth_utilization,
        },
    }


def write_chrome_trace(
    result: "SimulationResult", path, *, label: str = ""
) -> dict:
    """Write the Chrome-trace JSON to ``path``; returns the document."""
    doc = chrome_trace(result, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def serving_trace_events(serving) -> list[dict]:
    """The serving track of a served run (see :mod:`repro.serve`).

    Emits async (``ph: "b"``/``"e"``) spans — one per admitted request,
    admission to finish, so overlapping requests stack visually — plus
    a ``queue_depth`` counter track and an instant marker per rejected
    arrival. Duck-types over :class:`repro.serve.ServingResult` (this
    module must not import the serve layer at module scope).
    """
    tid = TRACK_IDS["Requests"]
    events: list[dict] = [
        {
            "ph": "M", "pid": 0, "tid": tid,
            "name": "thread_name",
            "args": {"name": "Requests"},
        }
    ]
    for rec in serving.records:
        if rec.rejected:
            events.append({
                "ph": "i", "pid": 0, "tid": tid, "s": "t",
                "ts": rec.arrival_seconds * _SECONDS_TO_US,
                "name": f"req{rec.request_id} rejected",
                "cat": "request",
            })
            continue
        if rec.admit_seconds is None or rec.finish_seconds is None:
            continue
        name = f"req{rec.request_id}:{rec.job}"
        common = {
            "pid": 0, "tid": tid, "cat": "request",
            "id": rec.request_id, "name": name,
        }
        events.append({
            "ph": "b",
            "ts": rec.admit_seconds * _SECONDS_TO_US,
            "args": {
                "arrival_seconds": rec.arrival_seconds,
                "queue_wait_seconds": rec.queue_wait_seconds,
                "batch_index": rec.batch_index,
            },
            **common,
        })
        events.append({
            "ph": "e",
            "ts": rec.finish_seconds * _SECONDS_TO_US,
            "args": {"latency_seconds": rec.latency_seconds},
            **common,
        })
    for t, depth in serving.queue_depth_series:
        events.append({
            "ph": "C", "pid": 0,
            "ts": t * _SECONDS_TO_US,
            "name": "queue_depth",
            "args": {"depth": depth},
        })
    return events


def serving_chrome_trace(serving, *, label: str = "") -> dict:
    """Chrome-trace document for a served run: core/HBM tracks from the
    underlying engine schedule plus the serving track."""
    doc = chrome_trace(serving.sim, label=label)
    doc["traceEvents"].extend(serving_trace_events(serving))
    doc["otherData"]["serving"] = serving.summary()
    return doc


def write_serving_trace(serving, path, *, label: str = "") -> dict:
    """Write a served run's Chrome-trace JSON; returns the document."""
    doc = serving_chrome_trace(serving, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


#: Chrome-trace pid of the fleet-level router/meta process (instances
#: use their own index as pid, so this just needs to be out of range).
CLUSTER_PID = 1000

#: Pid offset per engine epoch for crash-restarted instance lifetimes
#: (epoch 1 of instance 2 renders at pid 2 + _EPOCH_PID_STRIDE).
_EPOCH_PID_STRIDE = 10_000


def cluster_trace_events(cluster) -> list[dict]:
    """Trace events for a routed fleet run (see
    :mod:`repro.serve.cluster`).

    Every accelerator instance becomes its own Chrome-trace *process*
    (``poseidon-i<N>``) holding its core/HBM tracks plus a per-instance
    request track: async spans for admitted requests (``key_hit`` and
    routing in ``args``) and instant markers for arrivals the router
    sent there but admission rejected. A separate ``poseidon-router``
    process carries the fleet-wide queue-depth counter, a marker per
    autoscale event, and — for faulted runs — ``crash``/``restart``
    instant markers (also mirrored onto the affected instance's
    process). Duck-types over :class:`repro.serve.ClusterResult`.

    A crashed-and-restarted instance yields one report per engine
    epoch; epoch > 0 lifetimes get their own trace process
    (``poseidon-i<N>.e<epoch>``) at a shifted pid so their core/HBM
    tracks do not collide with the original lifetime's.
    """
    events: list[dict] = []
    for report in cluster.instances:
        epoch = getattr(report, "epoch", 0)
        pid = report.index + epoch * _EPOCH_PID_STRIDE
        name = f"poseidon-i{report.index}"
        if epoch:
            name = f"{name}.e{epoch}"
        events.extend(chrome_trace_events(
            report.sim,
            pid=pid,
            process_name=name,
        ))
        events.append({
            "ph": "M", "pid": pid, "tid": TRACK_IDS["Requests"],
            "name": "thread_name",
            "args": {"name": "Requests"},
        })
    for rec in cluster.records:
        tid = TRACK_IDS["Requests"]
        if rec.rejected:
            events.append({
                "ph": "i", "pid": rec.instance, "tid": tid, "s": "t",
                "ts": rec.arrival_seconds * _SECONDS_TO_US,
                "name": (
                    f"req{rec.request_id} rejected"
                    f" ({rec.reject_reason})"
                ),
                "cat": "request",
                "args": {
                    "tenant": rec.tenant,
                    "key_set": rec.key_set,
                    "reject_reason": rec.reject_reason,
                },
            })
            continue
        if rec.admit_seconds is None or rec.finish_seconds is None:
            continue
        name = f"req{rec.request_id}:{rec.job}"
        common = {
            "pid": rec.instance, "tid": tid, "cat": "request",
            "id": rec.request_id, "name": name,
        }
        events.append({
            "ph": "b",
            "ts": rec.admit_seconds * _SECONDS_TO_US,
            "args": {
                "arrival_seconds": rec.arrival_seconds,
                "queue_wait_seconds": rec.queue_wait_seconds,
                "batch_index": rec.batch_index,
                "tenant": rec.tenant,
                "key_set": rec.key_set,
                "key_hit": rec.key_hit,
            },
            **common,
        })
        events.append({
            "ph": "e",
            "ts": rec.finish_seconds * _SECONDS_TO_US,
            "args": {"latency_seconds": rec.latency_seconds},
            **common,
        })
    events.append({
        "ph": "M", "pid": CLUSTER_PID, "tid": 0,
        "name": "process_name",
        "args": {"name": "poseidon-router"},
    })
    for t, depth in cluster.queue_depth_series:
        events.append({
            "ph": "C", "pid": CLUSTER_PID,
            "ts": t * _SECONDS_TO_US,
            "name": "cluster_queue_depth",
            "args": {"depth": depth},
        })
    for t, count in cluster.scale_events:
        events.append({
            "ph": "i", "pid": CLUSTER_PID, "tid": 0, "s": "p",
            "ts": t * _SECONDS_TO_US,
            "name": f"scale-out to {count} instances",
            "cat": "autoscale",
        })
    for t, kind, index in getattr(cluster, "fault_events", ()):
        marker = {
            "ph": "i", "tid": 0, "s": "p",
            "ts": t * _SECONDS_TO_US,
            "name": f"{kind} i{index}",
            "cat": "fault",
            "args": {"instance": index, "kind": kind},
        }
        events.append({**marker, "pid": CLUSTER_PID})
        events.append({**marker, "pid": index})
    return events


def cluster_chrome_trace(cluster, *, label: str = "") -> dict:
    """Chrome-trace document for a routed fleet run."""
    return {
        "traceEvents": cluster_trace_events(cluster),
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "generator": "repro.obs.trace_export",
            "cluster": cluster.summary(),
        },
    }


def write_cluster_trace(cluster, path, *, label: str = "") -> dict:
    """Write a fleet run's Chrome-trace JSON; returns the document."""
    doc = cluster_chrome_trace(cluster, label=label)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def write_metrics_json(snapshot: dict, path, *, meta: dict | None = None) -> dict:
    """Write a flat metrics snapshot (plus optional metadata) as JSON."""
    doc = {"schema": 1, "meta": meta or {}, "metrics": snapshot}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return doc
