"""Observability: metrics, trace export, and regression comparison.

The subsystem has three parts, none of which cost anything when unused:

- :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms). Disabled by default; instrumented
  call sites throughout the simulator, CKKS evaluator, NTT and Barrett
  kernels check :func:`active` (a single attribute read) and skip all
  recording when no registry is installed.
- :mod:`repro.obs.trace_export` — converts a simulated run's per-task
  spans into Chrome-trace/Perfetto JSON (one track per operator core
  plus an HBM track) and the flat metrics snapshot into JSON.
- :mod:`repro.obs.regression` — the baseline schema and comparator
  behind ``benchmarks/regress.py``: fails a run whose simulated time
  regresses more than a threshold against a checked-in baseline.

Nothing here imports the simulator at module scope, so the sim/ckks/ntt
layers can import ``repro.obs.metrics`` without cycles.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active,
    collecting,
    disable,
    enable,
)
from repro.obs.regression import (
    Regression,
    compare_baselines,
    load_baseline,
    make_baseline,
    save_baseline,
)
from repro.obs.trace_export import (
    chrome_trace,
    chrome_trace_events,
    cluster_chrome_trace,
    cluster_trace_events,
    serving_chrome_trace,
    serving_trace_events,
    write_chrome_trace,
    write_cluster_trace,
    write_metrics_json,
    write_serving_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Regression",
    "active",
    "chrome_trace",
    "chrome_trace_events",
    "cluster_chrome_trace",
    "cluster_trace_events",
    "collecting",
    "compare_baselines",
    "disable",
    "enable",
    "load_baseline",
    "make_baseline",
    "save_baseline",
    "serving_chrome_trace",
    "serving_trace_events",
    "write_chrome_trace",
    "write_cluster_trace",
    "write_metrics_json",
    "write_serving_trace",
]
