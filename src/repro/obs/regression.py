"""Baseline schema and comparator for the perf-regression harness.

``benchmarks/regress.py`` runs a fixed suite of simulated workloads and
records *simulated seconds* per workload (deterministic — pure float
arithmetic over a fixed task stream, so identical on every machine)
plus wall-clock seconds (informational only; machine-dependent).

The comparator judges simulated seconds alone: a workload regresses
when its current simulated time exceeds the baseline by more than the
threshold (default 10%). Missing workloads also fail — a suite that
silently drops a benchmark must not pass CI. New workloads (present
now, absent from the baseline) are reported but do not fail, so adding
coverage never blocks on a baseline refresh.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Baseline file schema version.
SCHEMA_VERSION = 1

#: Default allowed simulated-time growth before a workload fails.
DEFAULT_THRESHOLD = 0.10


@dataclass(frozen=True)
class Regression:
    """One comparator finding."""

    workload: str
    kind: str              # "slower" | "missing"
    baseline_seconds: float | None
    current_seconds: float | None
    ratio: float | None    # current / baseline where defined

    def describe(self) -> str:
        if self.kind == "missing":
            return (
                f"{self.workload}: present in baseline "
                f"({self.baseline_seconds:.6g}s) but absent from this run"
            )
        return (
            f"{self.workload}: {self.current_seconds:.6g}s vs baseline "
            f"{self.baseline_seconds:.6g}s ({100 * (self.ratio - 1):+.1f}%)"
        )


def make_baseline(
    workloads: dict[str, dict], *, created: str = "", label: str = ""
) -> dict:
    """Assemble a baseline document.

    Args:
        workloads: ``{name: {"simulated_seconds": float,
            "wall_seconds": float, ...}}`` — extra keys are preserved.
        created: ISO date string stamped by the runner.
        label: free-form description (git rev, suite name).
    """
    for name, entry in workloads.items():
        if "simulated_seconds" not in entry:
            raise ValueError(
                f"workload {name!r} entry lacks simulated_seconds"
            )
    return {
        "schema": SCHEMA_VERSION,
        "created": created,
        "label": label,
        "workloads": workloads,
    }


def compare_baselines(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Regression]:
    """All regressions of ``current`` against ``baseline``.

    Returns an empty list when every baseline workload is present and
    within ``(1 + threshold) *`` its baseline simulated time.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    for doc, who in ((baseline, "baseline"), (current, "current")):
        if doc.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{who} document has schema {doc.get('schema')!r}, "
                f"expected {SCHEMA_VERSION}"
            )
    base_wl = baseline["workloads"]
    cur_wl = current["workloads"]
    findings: list[Regression] = []
    for name in sorted(base_wl):
        base_s = float(base_wl[name]["simulated_seconds"])
        if name not in cur_wl:
            findings.append(Regression(
                workload=name, kind="missing",
                baseline_seconds=base_s, current_seconds=None, ratio=None,
            ))
            continue
        cur_s = float(cur_wl[name]["simulated_seconds"])
        if base_s <= 0:
            continue  # degenerate baseline entry; nothing to compare
        ratio = cur_s / base_s
        if ratio > 1.0 + threshold:
            findings.append(Regression(
                workload=name, kind="slower",
                baseline_seconds=base_s, current_seconds=cur_s,
                ratio=ratio,
            ))
    return findings


def new_workloads(baseline: dict, current: dict) -> list[str]:
    """Workloads present in this run but absent from the baseline."""
    return sorted(
        set(current["workloads"]) - set(baseline["workloads"])
    )


def load_baseline(path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def save_baseline(doc: dict, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
