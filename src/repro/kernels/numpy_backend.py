"""The ``numpy`` kernel backend: fully vectorized uint64 hot paths.

Strategy
--------
Narrow moduli (<= 31 bits) run a Shoup-multiplication butterfly engine
with lazy reduction:

* Every twiddle ``w`` carries a precomputed companion
  ``w' = floor(w * 2^32 / q)`` so a modular product is three multiplies,
  one shift and one subtract — ``prod = w*x - ((w'*x) >> 32) * q < 3q``
  — with no ``%`` anywhere on the hot path.
* Butterfly operands stay *lazily* reduced below ``C = 4q`` (all moduli
  <= 30 bits) or ``C = 2q`` (a 31-bit modulus present). Conditional
  subtraction is the branch-free pair ``minimum(x, x - C)``: uint64
  wraparound makes ``x - C`` huge exactly when ``x < C``. One final
  normalisation pass brings values below ``q``.
* Early stages operate on ``(L, m, 2t)`` views with per-stage
  pre-expanded contiguous twiddle rows; once butterfly runs drop below
  ``_TAIL_T`` the matrix is transposed once so every remaining stage
  keeps unit-stride inner loops (lane-major layout), then transposed
  back before the output permutation.

Wide moduli (32..62 bits) take an eagerly-reduced path built on a
vectorized 64x64 -> 128-bit multiply (32-bit limb split) and a
full-width Barrett reduction (``mu = floor(2^2k / q)`` with per-modulus
shift columns) so intermediates never overflow ``uint64``.

Fused radix-2^k requests (``radix_log2 >= 2``) execute on the same
vectorized engine: stage fusion is an execution strategy, not a
different transform, and this engine already performs one full-width
pass per stage with no per-group temporaries, so outputs are
bit-identical to the reference backend's fused path by construction.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kernels.base import KernelBackend, check_matrix
from repro.ntt.tables import get_twiddle_table
from repro.utils.bitops import ilog2, reverse_bits_array

_U32 = np.uint64(32)
_MASK32 = np.uint64(0xFFFFFFFF)

#: Butterfly runs shorter than this switch to the transposed layout.
_TAIL_T = 32

#: Widest modulus the Shoup/lazy narrow engine stays exact for.
_NARROW_BITS = 31


def _is_narrow(moduli: tuple[int, ...]) -> bool:
    return max(moduli).bit_length() <= _NARROW_BITS


@lru_cache(maxsize=64)
def _bitrev(n: int) -> np.ndarray:
    return reverse_bits_array(np.arange(n, dtype=np.int64), ilog2(n))


def _lane_view(src: np.ndarray, m: int, lanes: int) -> np.ndarray:
    """Stage twiddles rearranged lane-major for the transposed layout.

    Natural block ``g = b * msub + s`` (lane ``b``, sub-block ``s``)
    uses twiddle ``src[m + g]``; the returned ``(L, msub, 1, lanes)``
    array places it at ``[s, 0, b]`` so it broadcasts over the run.
    """
    levels = src.shape[0]
    msub = m // lanes
    sl = src[:, m:2 * m].reshape(levels, lanes, msub)
    return np.ascontiguousarray(
        sl.transpose(0, 2, 1)
    ).reshape(levels, msub, 1, lanes)


class _NarrowPlan:
    """Per-(moduli, n) stage plan + twiddles for the narrow engine."""

    def __init__(self, moduli: tuple[int, ...], n: int):
        tbls = [get_twiddle_table(q, n) for q in moduli]
        qc = np.array(moduli, dtype=np.uint64)[:, None]
        self.q_col = qc
        self.lazy4 = max(moduli).bit_length() <= 30
        self.C_col = qc * np.uint64(4 if self.lazy4 else 2)
        self.C2_col = qc * np.uint64(2)
        self.bitrev = _bitrev(n)
        psi = np.stack([t.psi_powers_bitrev for t in tbls])
        ipsi = np.stack([t.ipsi_powers_bitrev for t in tbls])
        psi_sh = (psi << _U32) // qc  # w < 2^31, so the shift fits
        ipsi_sh = (ipsi << _U32) // qc
        inv_n = np.array(
            [t.inv_n for t in tbls], dtype=np.uint64
        )[:, None]
        self.inv_n_col = inv_n
        self.inv_n_sh = (inv_n << _U32) // qc

        # Lane count for the transposed tail: the smallest block count
        # whose stage has runs shorter than _TAIL_T. The forward and
        # inverse stage sets mirror, so they share it.
        lanes = 0
        m = 1
        while m < n:
            t = n // (2 * m)
            if t < _TAIL_T and m >= _TAIL_T:
                lanes = m
                break
            m <<= 1
        self.lanes = lanes

        # Forward (CT) stages, m = 1 .. n/2: runs shrink.
        self.fwd: list[tuple[str, int, int, np.ndarray, np.ndarray]] = []
        m = 1
        while m < n:
            t = n // (2 * m)
            if lanes and m >= lanes:
                self.fwd.append((
                    "lane", m, t,
                    _lane_view(psi, m, lanes),
                    _lane_view(psi_sh, m, lanes),
                ))
            else:
                self.fwd.append((
                    "full", m, t,
                    np.repeat(psi[:, m:2 * m], t, axis=1),
                    np.repeat(psi_sh[:, m:2 * m], t, axis=1),
                ))
            m <<= 1

        # Inverse (GS) stages, h = n/2 .. 1: runs grow.
        self.inv: list[tuple[str, int, int, np.ndarray, np.ndarray]] = []
        h = n >> 1
        while h >= 1:
            t = n // (2 * h)
            if lanes and h >= lanes:
                self.inv.append((
                    "lane", h, t,
                    _lane_view(ipsi, h, lanes),
                    _lane_view(ipsi_sh, h, lanes),
                ))
            else:
                self.inv.append((
                    "full", h, t,
                    np.repeat(ipsi[:, h:2 * h], t, axis=1),
                    np.repeat(ipsi_sh[:, h:2 * h], t, axis=1),
                ))
            h >>= 1


@lru_cache(maxsize=32)
def _narrow_plan(moduli: tuple[int, ...], n: int) -> _NarrowPlan:
    return _NarrowPlan(moduli, n)


def _stage_fwd(lo, hi, w, ws, q, bound, u1, u2, u3, lazy4):
    """One CT butterfly stage, operands kept below ``bound``.

    ``(lo, hi) <- (lo + w*hi, lo - w*hi)`` with the Shoup product
    (``prod < 3q``) folded into the lazy-reduction discipline.
    """
    np.multiply(hi, ws, out=u1)
    np.right_shift(u1, _U32, out=u1)
    np.multiply(u1, q, out=u1)
    np.multiply(hi, w, out=u2)
    np.subtract(u2, u1, out=u2)  # prod < 3q
    if not lazy4:
        np.subtract(u2, bound, out=u3)
        np.minimum(u2, u3, out=u2)  # prod < 2q = bound
    np.subtract(bound, u2, out=u1)
    np.add(lo, u1, out=u1)  # lo + (bound - prod)
    np.subtract(u1, bound, out=u3)
    np.minimum(u1, u3, out=hi)
    np.add(lo, u2, out=u2)  # lo + prod
    np.subtract(u2, bound, out=u3)
    np.minimum(u2, u3, out=lo)


def _stage_inv(lo, hi, w, ws, q, bound, u1, u2, u3, lazy4):
    """One GS butterfly stage: ``(lo, hi) <- (lo + hi, w*(lo - hi))``."""
    np.add(lo, hi, out=u1)  # sum < 2*bound
    np.add(lo, bound, out=u2)
    np.subtract(u2, hi, out=u2)  # diff < 2*bound
    np.subtract(u2, bound, out=u3)
    np.minimum(u2, u3, out=u2)  # diff < bound <= 2^32
    np.multiply(u2, ws, out=u3)
    np.right_shift(u3, _U32, out=u3)
    np.multiply(u3, q, out=u3)
    np.multiply(u2, w, out=u2)
    if lazy4:
        np.subtract(u2, u3, out=hi)  # prod < 3q < bound
    else:
        np.subtract(u2, u3, out=u2)
        np.subtract(u2, bound, out=u3)
        np.minimum(u2, u3, out=hi)  # prod < 2q = bound
    np.subtract(u1, bound, out=u3)
    np.minimum(u1, u3, out=lo)


def _run_fwd(a: np.ndarray, plan: _NarrowPlan) -> np.ndarray:
    levels, n = a.shape
    half = n >> 1
    b1 = np.empty((levels, half), dtype=np.uint64)
    b2 = np.empty_like(b1)
    b3 = np.empty_like(b1)
    q3 = plan.q_col[:, :, None]
    c3 = plan.C_col[:, :, None]
    q4 = q3[:, :, :, None]
    c4 = c3[:, :, :, None]
    lanes = plan.lanes
    transposed = False
    for kind, m, t, w, ws in plan.fwd:
        if kind == "lane" and not transposed:
            blk = n // lanes
            a = np.ascontiguousarray(
                a.reshape(levels, lanes, blk).transpose(0, 2, 1)
            )
            transposed = True
        if kind == "full":
            a3 = a.reshape(levels, m, 2 * t)
            shape = (levels, m, t)
            _stage_fwd(
                a3[:, :, :t], a3[:, :, t:],
                w.reshape(shape), ws.reshape(shape), q3, c3,
                b1.reshape(shape), b2.reshape(shape), b3.reshape(shape),
                plan.lazy4,
            )
        else:
            msub = m // lanes
            a4 = a.reshape(levels, msub, 2 * t, lanes)
            shape = (levels, msub, t, lanes)
            _stage_fwd(
                a4[:, :, :t, :], a4[:, :, t:, :], w, ws, q4, c4,
                b1.reshape(shape), b2.reshape(shape), b3.reshape(shape),
                plan.lazy4,
            )
    if transposed:
        blk = n // lanes
        a = np.ascontiguousarray(
            a.reshape(levels, blk, lanes).transpose(0, 2, 1)
        ).reshape(levels, n)
    scratch = np.empty_like(a)
    if plan.lazy4:
        np.subtract(a, plan.C2_col, out=scratch)
        np.minimum(a, scratch, out=a)
    np.subtract(a, plan.q_col, out=scratch)
    np.minimum(a, scratch, out=a)
    return a[:, plan.bitrev]


def _run_inv(src: np.ndarray, plan: _NarrowPlan) -> np.ndarray:
    a = src[:, plan.bitrev]
    levels, n = a.shape
    half = n >> 1
    b1 = np.empty((levels, half), dtype=np.uint64)
    b2 = np.empty_like(b1)
    b3 = np.empty_like(b1)
    q3 = plan.q_col[:, :, None]
    c3 = plan.C_col[:, :, None]
    q4 = q3[:, :, :, None]
    c4 = c3[:, :, :, None]
    lanes = plan.lanes
    transposed = False
    if plan.inv and plan.inv[0][0] == "lane":
        blk = n // lanes
        a = np.ascontiguousarray(
            a.reshape(levels, lanes, blk).transpose(0, 2, 1)
        )
        transposed = True
    for kind, h, t, w, ws in plan.inv:
        if transposed and kind == "full":
            blk = n // lanes
            a = np.ascontiguousarray(
                a.reshape(levels, blk, lanes).transpose(0, 2, 1)
            ).reshape(levels, n)
            transposed = False
        if kind == "full":
            a3 = a.reshape(levels, h, 2 * t)
            shape = (levels, h, t)
            _stage_inv(
                a3[:, :, :t], a3[:, :, t:],
                w.reshape(shape), ws.reshape(shape), q3, c3,
                b1.reshape(shape), b2.reshape(shape), b3.reshape(shape),
                plan.lazy4,
            )
        else:
            msub = h // lanes
            a4 = a.reshape(levels, msub, 2 * t, lanes)
            shape = (levels, msub, t, lanes)
            _stage_inv(
                a4[:, :, :t, :], a4[:, :, t:, :], w, ws, q4, c4,
                b1.reshape(shape), b2.reshape(shape), b3.reshape(shape),
                plan.lazy4,
            )
    # Scale by n^-1 (Shoup), then normalize the lazy values below q.
    u1 = np.empty_like(a)
    u2 = np.empty_like(a)
    np.multiply(a, plan.inv_n_sh, out=u1)
    np.right_shift(u1, _U32, out=u1)
    np.multiply(u1, plan.q_col, out=u1)
    np.multiply(a, plan.inv_n_col, out=u2)
    np.subtract(u2, u1, out=a)  # < 3q
    np.subtract(a, plan.C2_col, out=u1)
    np.minimum(a, u1, out=a)
    np.subtract(a, plan.q_col, out=u1)
    np.minimum(a, u1, out=a)
    return a


# ----------------------------------------------------------------------
# Wide path: 32..62-bit moduli via 128-bit products + full Barrett.

def _mul128(a, b):
    """Full 128-bit product of uint64 arrays as a ``(hi, lo)`` pair."""
    ah = a >> _U32
    al = a & _MASK32
    bh = b >> _U32
    bl = b & _MASK32
    ll = al * bl
    lh = al * bh
    hl = ah * bl
    mid = (ll >> _U32) + (lh & _MASK32) + (hl & _MASK32)  # < 3 * 2^32
    lo = (mid << _U32) | (ll & _MASK32)
    hi = ah * bh + (lh >> _U32) + (hl >> _U32) + (mid >> _U32)
    return hi, lo


@lru_cache(maxsize=256)
def _wide_columns(moduli: tuple[int, ...]):
    """Barrett constants as ``(L, 1)`` columns for 128-bit reduction.

    ``mu = floor(2^2k / q) < 2^(k+1) <= 2^63`` for ``k <= 62``; the
    shift pairs ``(k-1, 65-k)`` and ``(k+1, 63-k)`` stay in ``[1, 63]``
    so no shift count ever reaches the undefined 64.
    """
    def col(values):
        return np.array(values, dtype=np.uint64)[:, None]

    bits = [int(q).bit_length() for q in moduli]
    return (
        col(moduli),
        col([(1 << (2 * k)) // int(q) for k, q in zip(bits, moduli)]),
        col([k - 1 for k in bits]),
        col([65 - k for k in bits]),
        col([k + 1 for k in bits]),
        col([63 - k for k in bits]),
    )


def _barrett_wide(hi, lo, cols):
    """Reduce ``hi * 2^64 + lo < q^2`` below ``q`` (q up to 2^62)."""
    q, mu, sh1, sh1c, sh2, sh2c = cols
    q1 = (hi << sh1c) | (lo >> sh1)  # floor(x / 2^(k-1)) < 2^(k+1)
    h2, l2 = _mul128(q1, mu)
    q3 = (h2 << sh2c) | (l2 >> sh2)  # floor(q1 * mu / 2^(k+1))
    r = lo - q3 * q  # wrapping 64-bit; the true remainder is < 3q
    r = np.minimum(r, r - q)
    return np.minimum(r, r - q)


def _mulmod_wide(a, b, cols):
    hi, lo = _mul128(a, b)
    return _barrett_wide(hi, lo, cols)


class _WidePlan:
    """Eager-reduction NTT tables for 32..62-bit moduli."""

    def __init__(self, moduli: tuple[int, ...], n: int):
        tbls = [get_twiddle_table(q, n) for q in moduli]
        self.q_col = np.array(moduli, dtype=np.uint64)[:, None]
        self.bitrev = _bitrev(n)
        self.psi = np.stack([t.psi_powers_bitrev for t in tbls])
        self.ipsi = np.stack([t.ipsi_powers_bitrev for t in tbls])
        self.inv_n_col = np.array(
            [t.inv_n for t in tbls], dtype=np.uint64
        )[:, None]
        self.cols = _wide_columns(moduli)
        self.cols3 = tuple(c[:, :, None] for c in self.cols)


@lru_cache(maxsize=32)
def _wide_plan(moduli: tuple[int, ...], n: int) -> _WidePlan:
    return _WidePlan(moduli, n)


def _run_fwd_wide(a: np.ndarray, plan: _WidePlan) -> np.ndarray:
    levels, n = a.shape
    q3 = plan.q_col[:, :, None]
    t, m = n, 1
    while m < n:
        t >>= 1
        a3 = a.reshape(levels, m, 2 * t)
        lo = a3[:, :, :t]
        hi = a3[:, :, t:]
        w = plan.psi[:, m:2 * m][:, :, None]
        prod = _mulmod_wide(hi, w, plan.cols3)  # < q
        s = lo + prod  # < 2q < 2^63
        s = np.minimum(s, s - q3)
        d = lo + (q3 - prod)
        d = np.minimum(d, d - q3)
        a3[:, :, :t] = s
        a3[:, :, t:] = d
        m <<= 1
    return a[:, plan.bitrev]


def _run_inv_wide(src: np.ndarray, plan: _WidePlan) -> np.ndarray:
    a = src[:, plan.bitrev]
    levels, n = a.shape
    q3 = plan.q_col[:, :, None]
    t, m = 1, n
    while m > 1:
        h = m >> 1
        a3 = a.reshape(levels, h, 2 * t)
        lo = a3[:, :, :t]
        hi = a3[:, :, t:]
        w = plan.ipsi[:, h:2 * h][:, :, None]
        s = lo + hi
        s = np.minimum(s, s - q3)
        d = lo + (q3 - hi)
        d = np.minimum(d, d - q3)
        prod = _mulmod_wide(d, w, plan.cols3)
        a3[:, :, :t] = s
        a3[:, :, t:] = prod
        t <<= 1
        m = h
    return _mulmod_wide(a, plan.inv_n_col, plan.cols)


# ----------------------------------------------------------------------
# Elementwise helpers shared by the public backend methods.

@lru_cache(maxsize=256)
def _narrow_columns(moduli: tuple[int, ...]):
    """Classic single-word Barrett columns for moduli <= 31 bits."""
    q = np.array(moduli, dtype=np.uint64)[:, None]
    bits = [int(m).bit_length() for m in moduli]
    mu = np.array(
        [(1 << (2 * k)) // int(m) for k, m in zip(bits, moduli)],
        dtype=np.uint64,
    )[:, None]
    klo = np.array([k - 1 for k in bits], dtype=np.uint64)[:, None]
    khi = np.array([k + 1 for k in bits], dtype=np.uint64)[:, None]
    return q, mu, klo, khi


def _barrett_narrow(x, cols):
    """Reduce ``x < q^2`` below ``q`` for moduli <= 31 bits."""
    q, mu, klo, khi = cols
    q1 = x >> klo
    q3 = (q1 * mu) >> khi  # q1, mu < 2^(k+1); product < 2^64 for k <= 31
    r = x - q3 * q  # < 3q
    r = np.minimum(r, r - q)
    return np.minimum(r, r - q)


def _mulmod_rows(a, b, moduli):
    """``a * b mod q`` row-wise; operands must already be below q."""
    if _is_narrow(moduli):
        return _barrett_narrow(a * b, _narrow_columns(moduli))
    return _mulmod_wide(a, b, _wide_columns(moduli))


class NumpyBackend(KernelBackend):
    """Vectorized uint64 kernels — Shoup/lazy narrow, Barrett wide."""

    name = "numpy"
    max_modulus_bits = 62

    @staticmethod
    def _key(moduli) -> tuple[int, ...]:
        return tuple(int(q) for q in moduli)

    # ------------------------------------------------------------------
    def ntt(self, data, moduli, *, radix_log2: int = 1):
        del radix_log2  # fusion-agnostic engine; see module docstring
        data = self._check(data, moduli)
        self._count("ntt", data.size)
        key = self._key(moduli)
        n = data.shape[1]
        if _is_narrow(key):
            return _run_fwd(data.copy(), _narrow_plan(key, n))
        return _run_fwd_wide(data.copy(), _wide_plan(key, n))

    def intt(self, data, moduli, *, radix_log2: int = 1):
        del radix_log2  # fusion-agnostic engine; see module docstring
        data = self._check(data, moduli)
        self._count("intt", data.size)
        key = self._key(moduli)
        n = data.shape[1]
        if _is_narrow(key):
            return _run_inv(data, _narrow_plan(key, n))
        return _run_inv_wide(data, _wide_plan(key, n))

    # ------------------------------------------------------------------
    def mod_add(self, a, b, moduli):
        a = self._check(a, moduli)
        b = check_matrix(b, moduli)
        self._count("elementwise", a.size)
        q = self._q_col(moduli)
        s = a + b  # both < q <= 2^62, so the sum fits
        return np.minimum(s, s - q)

    def mod_sub(self, a, b, moduli):
        a = self._check(a, moduli)
        b = check_matrix(b, moduli)
        self._count("elementwise", a.size)
        q = self._q_col(moduli)
        d = a + (q - b)
        return np.minimum(d, d - q)

    def mod_neg(self, a, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        q = self._q_col(moduli)
        d = q - a  # equals q when a == 0; the csub folds it to 0
        return np.minimum(d, d - q)

    def mod_mul(self, a, b, moduli):
        a = self._check(a, moduli)
        b = check_matrix(b, moduli)
        self._count("elementwise", a.size)
        return _mulmod_rows(a, b, self._key(moduli))

    def mod_scalar_mul(self, a, scalars, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        key = self._key(moduli)
        s_col = np.array(
            [int(s) % q for s, q in zip(scalars, key)], dtype=np.uint64
        )[:, None]
        return _mulmod_rows(a, s_col, key)

    # ------------------------------------------------------------------
    def barrett_reduce(self, x, moduli):
        x = np.asarray(x, dtype=np.uint64)
        self.check_moduli(moduli)
        self._count("barrett", x.size)
        key = self._key(moduli)
        if _is_narrow(key):
            return _barrett_narrow(x, _narrow_columns(key))
        zero = np.zeros_like(x)
        return _barrett_wide(zero, x, _wide_columns(key))

    def lift(self, row, moduli):
        row = np.asarray(row, dtype=np.uint64)
        self.check_moduli(moduli)
        self._count("lift", row.size * len(moduli))
        return row[None, :] % self._q_col(moduli)

    def basis_convert(self, y, table, target_moduli):
        y = np.asarray(y, dtype=np.uint64)
        table = np.asarray(table, dtype=np.uint64)
        self.check_moduli(target_moduli)
        src_limbs, n = y.shape
        self._count("basis_convert", n * len(target_moduli))
        key = self._key(target_moduli)
        p_col = self._q_col(target_moduli)
        acc = np.zeros((len(key), n), dtype=np.uint64)
        for j in range(src_limbs):
            resid = y[j][None, :] % p_col
            term = _mulmod_rows(resid, table[j][:, None], key)
            acc += term  # < 2p < 2^63
            np.minimum(acc, acc - p_col, out=acc)
        return acc

    # ------------------------------------------------------------------
    def _q_col(self, moduli) -> np.ndarray:
        return np.array(self._key(moduli), dtype=np.uint64)[:, None]
