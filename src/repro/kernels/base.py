"""Kernel backend interface and shared per-basis twiddle caches.

A *kernel backend* owns the arithmetic hot paths of the functional
plane: negacyclic NTT/INTT over whole ``(L, N)`` residue matrices and
the element-wise modular operators (the software MA/MM/SBT cores).
Everything above this layer — :class:`~repro.rns.poly.RnsPolynomial`,
the basis-conversion cascade, keyswitching, the evaluator — calls
through :func:`repro.kernels.get_backend` and never touches a limb
loop directly, so swapping the execution strategy is a one-line (or
one-env-var) decision.

Three implementations ship:

- ``reference`` (:mod:`repro.kernels.reference`) — the original
  scalar/per-limb code paths, one numpy call per limb row.
- ``batched`` (:mod:`repro.kernels.batched`) — vectorized across all
  ``L`` limbs at once with per-limb modulus broadcasting, mirroring
  how Poseidon's 512-lane pipeline consumes contiguous limb rows.
- ``numpy`` (:mod:`repro.kernels.numpy_backend`) — fully vectorized
  uint64 butterflies (Shoup multiplication, lazy reduction, branch-free
  conditional subtracts) with a 128-bit Barrett path for wide moduli.

Backends are required to be **bit-identical**: every operator computes
an exact modular result (residues reduced into ``[0, q_i)``), so the
output of any op is uniquely defined and the differential suite in
``tests/kernels`` can assert equality element by element.
"""

from __future__ import annotations

import abc
from functools import lru_cache

import numpy as np

from repro.errors import KernelError
from repro.ntt.tables import get_twiddle_table
from repro.obs import metrics
from repro.utils.bitops import bit_reverse_permutation


class BatchedTwiddleTable:
    """Per-basis twiddle matrices: all limb tables stacked into (L, N).

    The per-``(q, n)`` :class:`~repro.ntt.tables.TwiddleTable` objects
    are shared with the reference kernels (same underlying cache), so
    both backends literally read the same root-of-unity values.
    """

    def __init__(self, moduli: tuple[int, ...], n: int):
        tables = [get_twiddle_table(q, n) for q in moduli]
        self.moduli = moduli
        self.n = n
        #: (L, 1) and (L, 1, 1) modulus columns for broadcasting.
        self.q_col = np.array(moduli, dtype=np.uint64)[:, None]
        self.q_cube = self.q_col[:, :, None]
        self.psi_powers = np.stack([t.psi_powers for t in tables])
        self.ipsi_powers = np.stack([t.ipsi_powers for t in tables])
        self.psi_powers_bitrev = np.stack(
            [t.psi_powers_bitrev for t in tables]
        )
        self.ipsi_powers_bitrev = np.stack(
            [t.ipsi_powers_bitrev for t in tables]
        )
        self.omega_powers = np.stack([t.omega_powers for t in tables])
        # omega has order n, so omega^{-e} = omega^{n-e}: the inverse
        # power table is a pure re-indexing of the forward one.
        inv_idx = (self.n - np.arange(self.n)) % self.n
        self.inv_omega_powers = self.omega_powers[:, inv_idx]
        self.inv_n_col = np.array(
            [t.inv_n for t in tables], dtype=np.uint64
        )[:, None]
        self.bitrev = bit_reverse_permutation(n)


@lru_cache(maxsize=256)
def get_batched_tables(moduli: tuple[int, ...], n: int) -> BatchedTwiddleTable:
    """Process-wide cache of stacked twiddle tables per (basis, degree)."""
    return BatchedTwiddleTable(moduli, n)


def check_matrix(data: np.ndarray, moduli) -> np.ndarray:
    """Validate an (L, N) residue matrix against its basis; return it."""
    data = np.asarray(data, dtype=np.uint64)
    if data.ndim != 2:
        raise KernelError(f"expected an (L, N) matrix, got shape {data.shape}")
    if data.shape[0] != len(moduli):
        raise KernelError(
            f"matrix has {data.shape[0]} rows but basis has "
            f"{len(moduli)} moduli"
        )
    return data


@lru_cache(maxsize=4096)
def _validate_moduli(name: str, max_bits: int, moduli: tuple[int, ...]) -> None:
    """Reject moduli wider than a backend's exact-arithmetic range.

    Successful validations are cached per (backend, basis); failures
    re-raise on every call (``lru_cache`` does not cache exceptions).
    """
    for q in moduli:
        bits = int(q).bit_length()
        if bits > max_bits:
            raise KernelError(
                f"{name} kernel backend supports moduli up to {max_bits} "
                f"bits; got {q} ({bits} bits)"
            )


class KernelBackend(abc.ABC):
    """Abstract kernel backend over (L, N) uint64 residue matrices.

    All inputs are assumed reduced (row ``i`` in ``[0, moduli[i])``)
    and all outputs are returned reduced — the invariant that makes
    backend outputs unique and therefore bit-comparable.
    """

    #: Registry/display name ("reference", "batched", "numpy").
    name: str = "abstract"

    #: Widest modulus (in bits) this backend's arithmetic stays exact
    #: for. Calls with wider moduli raise :class:`KernelError` up front
    #: instead of silently overflowing uint64 intermediates.
    max_modulus_bits: int = 31

    # ------------------------------------------------------------------
    # Capability / input validation
    # ------------------------------------------------------------------
    def check_moduli(self, moduli) -> None:
        """Raise :class:`KernelError` if a modulus exceeds the backend cap."""
        _validate_moduli(
            self.name,
            self.max_modulus_bits,
            tuple(int(q) for q in moduli),
        )

    def _check(self, data: np.ndarray, moduli) -> np.ndarray:
        """Combined matrix-shape + modulus-width validation."""
        self.check_moduli(moduli)
        return check_matrix(data, moduli)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _count(self, op: str, elements: int) -> None:
        """Per-backend op/element counters (kernels.<name>.<op>...)."""
        reg = metrics.active()
        if reg is not None:
            reg.counter(f"kernels.{self.name}.{op}.calls").inc()
            reg.counter(f"kernels.{self.name}.{op}.elements").inc(elements)

    # ------------------------------------------------------------------
    # NTT / INTT over all limbs
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ntt(self, data: np.ndarray, moduli, *, radix_log2: int = 1) -> np.ndarray:
        """Forward negacyclic NTT of every limb row (natural order)."""

    @abc.abstractmethod
    def intt(self, data: np.ndarray, moduli, *, radix_log2: int = 1) -> np.ndarray:
        """Inverse negacyclic NTT of every limb row (natural order)."""

    # ------------------------------------------------------------------
    # Element-wise modular operators (MA / MM)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mod_add(self, a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
        """Row-wise ``(a + b) mod q_i``."""

    @abc.abstractmethod
    def mod_sub(self, a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
        """Row-wise ``(a - b) mod q_i``."""

    @abc.abstractmethod
    def mod_neg(self, a: np.ndarray, moduli) -> np.ndarray:
        """Row-wise ``(-a) mod q_i``."""

    @abc.abstractmethod
    def mod_mul(self, a: np.ndarray, b: np.ndarray, moduli) -> np.ndarray:
        """Row-wise ``(a * b) mod q_i`` — the MM operator."""

    @abc.abstractmethod
    def mod_scalar_mul(self, a: np.ndarray, scalars, moduli) -> np.ndarray:
        """Multiply row ``i`` by the Python-int ``scalars[i]`` mod q_i."""

    # ------------------------------------------------------------------
    # Reduction and basis plumbing (SBT / RNSconv building blocks)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def barrett_reduce(self, x: np.ndarray, moduli) -> np.ndarray:
        """Barrett-reduce row ``i`` (products ``< q_i^2``) mod ``q_i``."""

    @abc.abstractmethod
    def lift(self, row: np.ndarray, moduli) -> np.ndarray:
        """Exact lift of one digit row into every modulus: (N,) -> (L, N)."""

    @abc.abstractmethod
    def basis_convert(
        self,
        y: np.ndarray,
        table: np.ndarray,
        target_moduli,
    ) -> np.ndarray:
        """The RNSconv MM+MA cascade (paper Fig. 4, Eq. 1).

        Args:
            y: (l, N) source rows, already multiplied by
               ``q_hat_j^{-1} mod q_j``.
            table: (l, k) matrix with ``table[j, i] = (Q/q_j) mod p_i``.
            target_moduli: the k target primes.

        Returns:
            (k, N) matrix ``out[i] = sum_j (y_j mod p_i) * table[j, i]
            mod p_i``.
        """

    def __repr__(self) -> str:
        return f"<KernelBackend {self.name!r}>"
