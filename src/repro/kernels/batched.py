"""The ``batched`` kernel backend: all L limbs advance together.

Poseidon streams contiguous limb rows through a 512-lane pipeline; the
software analogue is to run every kernel over the whole ``(L, N)``
residue matrix in single numpy expressions with the per-limb modulus
broadcast as an ``(L, 1)`` column. The NTT stage loop becomes
*stage-parallel*: one reshape exposes every butterfly group of a stage
across every limb at once, so a full radix-2 transform of L limbs is
``log2(N)`` numpy calls instead of ``L * (N-1)`` Python-level slice
operations.

The fused radix-2^k path mirrors :class:`repro.ntt.fusion.FusedNtt`:
dense ``B x B`` combines with one reduction per output (deferred
full-width accumulation when ``B * q^2 < 2^64``, reduce-per-product
otherwise), vectorized across limbs *and* across all blocks of a
phase.

Every operator computes the exact reduced result, so outputs are
bit-identical to the ``reference`` backend by construction; the
differential suite in ``tests/kernels`` enforces it.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import KernelBackend, get_batched_tables


@lru_cache(maxsize=256)
def _barrett_columns(moduli: tuple[int, ...]):
    """Stacked Barrett constants: (q, u, k-1, k+1) as (L, 1) columns."""
    ks = [int(q).bit_length() for q in moduli]
    q = np.array(moduli, dtype=np.uint64)[:, None]
    u = np.array(
        [(1 << (2 * k)) // int(m) for k, m in zip(ks, moduli)],
        dtype=np.uint64,
    )[:, None]
    lo = np.array([k - 1 for k in ks], dtype=np.uint64)[:, None]
    hi = np.array([k + 1 for k in ks], dtype=np.uint64)[:, None]
    return q, u, lo, hi


@lru_cache(maxsize=1024)
def _scalar_column(scalars: tuple[int, ...], moduli: tuple[int, ...]):
    return np.array(
        [int(s) % int(q) for s, q in zip(scalars, moduli)], dtype=np.uint64
    )[:, None]


class BatchedBackend(KernelBackend):
    """Limb-parallel kernels over whole (L, N) matrices."""

    name = "batched"

    # ------------------------------------------------------------------
    # NTT / INTT
    # ------------------------------------------------------------------
    def ntt(self, data, moduli, *, radix_log2: int = 1):
        data = self._check(data, moduli)
        self._count("ntt", data.size)
        tbl = get_batched_tables(tuple(moduli), data.shape[1])
        if radix_log2 >= 2:
            return self._fused_forward(data, tbl, radix_log2)
        return self._radix2_forward(data, tbl)

    def intt(self, data, moduli, *, radix_log2: int = 1):
        data = self._check(data, moduli)
        self._count("intt", data.size)
        tbl = get_batched_tables(tuple(moduli), data.shape[1])
        if radix_log2 >= 2:
            return self._fused_inverse(data, tbl, radix_log2)
        return self._radix2_inverse(data, tbl)

    # -- stage-parallel radix-2 ----------------------------------------
    @staticmethod
    def _radix2_forward(data, tbl):
        """Cooley-Tukey DIT, every (limb, group) butterfly of a stage
        in one broadcast expression: reshape to (L, m, 2t) so axis 1
        is the group index and the twiddle column broadcasts over it.
        """
        a = data.copy()
        levels, n = a.shape
        q = tbl.q_cube
        t, m = n, 1
        while m < n:
            t >>= 1
            a3 = a.reshape(levels, m, 2 * t)
            w = tbl.psi_powers_bitrev[:, m:2 * m][:, :, None]
            lo = a3[:, :, :t]
            hi = (a3[:, :, t:] * w) % q
            new_lo = (lo + hi) % q
            new_hi = (lo + q - hi) % q
            a3[:, :, :t] = new_lo
            a3[:, :, t:] = new_hi
            m <<= 1
        return a[:, tbl.bitrev]

    @staticmethod
    def _radix2_inverse(data, tbl):
        """Gentleman-Sande DIF partner, stage-parallel like the forward."""
        a = data[:, tbl.bitrev]
        levels, n = a.shape
        q = tbl.q_cube
        t, m = 1, n
        while m > 1:
            h = m >> 1
            a3 = a.reshape(levels, h, 2 * t)
            w = tbl.ipsi_powers_bitrev[:, h:2 * h][:, :, None]
            lo = a3[:, :, :t]
            hi = a3[:, :, t:]
            new_lo = (lo + hi) % q
            new_hi = ((lo + q - hi) * w) % q
            a3[:, :, :t] = new_lo
            a3[:, :, t:] = new_hi
            t <<= 1
            m = h
        return (a * tbl.inv_n_col) % tbl.q_col

    # -- fused radix-2^k ------------------------------------------------
    def _fused_forward(self, data, tbl, radix_log2):
        q = tbl.q_col
        twisted = (data * tbl.psi_powers) % q
        wide_safe = (1 << radix_log2) * max(tbl.moduli) ** 2 < (1 << 64)
        out = self._cyclic_batch(
            twisted[:, None, :], tbl.omega_powers, tbl.q_cube,
            1, 1 << radix_log2, tbl.n, wide_safe,
        )
        return out[:, 0, :]

    def _fused_inverse(self, data, tbl, radix_log2):
        data = np.asarray(data, dtype=np.uint64)
        wide_safe = (1 << radix_log2) * max(tbl.moduli) ** 2 < (1 << 64)
        cyc = self._cyclic_batch(
            data[:, None, :], tbl.inv_omega_powers, tbl.q_cube,
            1, 1 << radix_log2, tbl.n, wide_safe,
        )[:, 0, :]
        q = tbl.q_col
        scaled = (cyc * tbl.inv_n_col) % q
        return (scaled * tbl.ipsi_powers) % q

    def _cyclic_batch(
        self, x, power_table, q_cube, stride, block, n, wide_safe
    ):
        """Recursive mixed-radix cyclic NTT over (L, S, M) batches.

        ``x`` holds S independent length-M sequences per limb; the root
        at this level is ``top_root^stride`` and its powers are read
        straight out of ``power_table`` (exponents taken mod n). The
        DIT split stacks all ``b`` subsequences into the batch axis so
        one recursive call transforms every block of the phase.
        """
        levels, batch, m_total = x.shape
        if m_total == 1:
            return x
        b = min(block, m_total)
        m = m_total // b
        sub_in = (
            x.reshape(levels, batch, m, b)
            .transpose(0, 1, 3, 2)
            .reshape(levels, batch * b, m)
        )
        sub = self._cyclic_batch(
            sub_in, power_table, q_cube, stride * b, block, n, wide_safe
        ).reshape(levels, batch, b, m)

        # Dense combine: out[t] = sum_j2 root^(j2*t) * sub[j2][t mod m]
        # — each output accumulates b products and reduces once (the
        # fused TAM), b reductions per block.
        t = np.arange(m_total, dtype=np.int64)
        exp = (np.arange(b, dtype=np.int64)[:, None] * t[None, :] * stride) % n
        coef = power_table[:, exp]              # (L, b, M)
        gather = sub[:, :, :, t % m]            # (L, S, b, M)
        if wide_safe:
            acc = (gather * coef[:, None, :, :]).sum(axis=2, dtype=np.uint64)
            return acc % q_cube
        acc = np.zeros((levels, batch, m_total), dtype=np.uint64)
        for j2 in range(b):
            term = (gather[:, :, j2, :] * coef[:, None, j2, :]) % q_cube
            acc = acc + term
            acc = np.where(acc >= q_cube, acc - q_cube, acc)
        return acc

    # ------------------------------------------------------------------
    # Element-wise modular operators
    # ------------------------------------------------------------------
    def mod_add(self, a, b, moduli):
        a = self._check(a, moduli)
        b = self._check(b, moduli)
        self._count("elementwise", a.size)
        qc = _barrett_columns(tuple(moduli))[0]
        s = a + b
        return np.where(s >= qc, s - qc, s)

    def mod_sub(self, a, b, moduli):
        a = self._check(a, moduli)
        b = self._check(b, moduli)
        self._count("elementwise", a.size)
        qc = _barrett_columns(tuple(moduli))[0]
        s = a + qc - b
        return np.where(s >= qc, s - qc, s)

    def mod_neg(self, a, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        qc = _barrett_columns(tuple(moduli))[0]
        return np.where(a == 0, np.uint64(0), qc - a)

    def mod_mul(self, a, b, moduli):
        a = self._check(a, moduli)
        b = self._check(b, moduli)
        self._count("elementwise", a.size)
        qc = _barrett_columns(tuple(moduli))[0]
        return (a * b) % qc

    def mod_scalar_mul(self, a, scalars, moduli):
        a = self._check(a, moduli)
        if len(scalars) != len(moduli):
            raise KernelError(
                f"need {len(moduli)} scalars, got {len(scalars)}"
            )
        self._count("elementwise", a.size)
        qc = _barrett_columns(tuple(moduli))[0]
        col = _scalar_column(
            tuple(int(s) for s in scalars), tuple(moduli)
        )
        return (a * col) % qc

    # ------------------------------------------------------------------
    # Reduction and basis plumbing
    # ------------------------------------------------------------------
    def barrett_reduce(self, x, moduli):
        """All limbs through the SBT datapath at once.

        Same multiply-and-shift as :class:`repro.rns.barrett.
        BarrettReducer.reduce`, with the per-limb ``k``/``u`` constants
        broadcast as columns (the shift counts differ between 30-bit
        chain and 31-bit aux primes, so they are arrays too).
        """
        x = self._check(x, moduli)
        self._count("barrett", x.size)
        q, u, lo, hi = _barrett_columns(tuple(moduli))
        q1 = x >> lo
        q3 = (q1 * u) >> hi
        r = x - q3 * q
        r = np.where(r >= q, r - q, r)
        r = np.where(r >= q, r - q, r)
        return r

    def lift(self, row, moduli):
        row = np.asarray(row, dtype=np.uint64)
        self.check_moduli(moduli)
        self._count("lift", row.size * len(moduli))
        qc = _barrett_columns(tuple(moduli))[0]
        return row[None, :] % qc

    def basis_convert(self, y, table, target_moduli):
        """RNSconv cascade vectorized across the whole target basis.

        Keeps the per-source-limb accumulation loop (l iterations) but
        each iteration handles every target prime and coefficient at
        once — l broadcast operations instead of l * k row operations.
        """
        y = np.asarray(y, dtype=np.uint64)
        table = np.asarray(table, dtype=np.uint64)
        self.check_moduli(target_moduli)
        src_limbs, n = y.shape
        self._count("basis_convert", n * len(target_moduli))
        pc = _barrett_columns(tuple(target_moduli))[0]
        acc = np.zeros((len(target_moduli), n), dtype=np.uint64)
        for j in range(src_limbs):
            term = (y[j][None, :] % pc * table[j][:, None]) % pc
            acc = acc + term
            acc = np.where(acc >= pc, acc - pc, acc)
        return acc
