"""The ``reference`` kernel backend: one numpy call per limb row.

This is the original execution strategy of the functional plane — a
Python-level loop over limbs, each limb handled by the scalar kernels
in :mod:`repro.ntt.radix2` / :mod:`repro.ntt.fusion` and the
per-modulus operators in :mod:`repro.rns.modular`. It stays the
correctness oracle the ``batched`` backend is differentially tested
against.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.kernels.base import KernelBackend
from repro.ntt.fusion import FusedNtt
from repro.ntt.radix2 import intt_radix2, ntt_radix2
from repro.ntt.tables import get_twiddle_table
from repro.rns.barrett import GLOBAL_SBT_BANK
from repro.rns.modular import (
    mod_add,
    mod_mul,
    mod_neg,
    mod_scalar_mul,
    mod_sub,
)


@lru_cache(maxsize=512)
def _fused(q: int, n: int, radix_log2: int) -> FusedNtt:
    return FusedNtt(q, n, radix_log2)


class ReferenceBackend(KernelBackend):
    """Scalar/per-limb kernels — unchanged semantics, limb-at-a-time."""

    name = "reference"

    # ------------------------------------------------------------------
    def ntt(self, data, moduli, *, radix_log2: int = 1):
        data = self._check(data, moduli)
        n = data.shape[1]
        self._count("ntt", data.size)
        if radix_log2 >= 2:
            rows = [
                _fused(q, n, radix_log2).forward(data[i])
                for i, q in enumerate(moduli)
            ]
        else:
            rows = [
                ntt_radix2(data[i], get_twiddle_table(q, n))
                for i, q in enumerate(moduli)
            ]
        return np.stack(rows)

    def intt(self, data, moduli, *, radix_log2: int = 1):
        data = self._check(data, moduli)
        n = data.shape[1]
        self._count("intt", data.size)
        if radix_log2 >= 2:
            rows = [
                _fused(q, n, radix_log2).inverse(data[i])
                for i, q in enumerate(moduli)
            ]
        else:
            rows = [
                intt_radix2(data[i], get_twiddle_table(q, n))
                for i, q in enumerate(moduli)
            ]
        return np.stack(rows)

    # ------------------------------------------------------------------
    def mod_add(self, a, b, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        return np.stack(
            [mod_add(a[i], b[i], q) for i, q in enumerate(moduli)]
        )

    def mod_sub(self, a, b, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        return np.stack(
            [mod_sub(a[i], b[i], q) for i, q in enumerate(moduli)]
        )

    def mod_neg(self, a, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        return np.stack([mod_neg(a[i], q) for i, q in enumerate(moduli)])

    def mod_mul(self, a, b, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        return np.stack(
            [mod_mul(a[i], b[i], q) for i, q in enumerate(moduli)]
        )

    def mod_scalar_mul(self, a, scalars, moduli):
        a = self._check(a, moduli)
        self._count("elementwise", a.size)
        return np.stack(
            [
                mod_scalar_mul(a[i], int(s), q)
                for i, (q, s) in enumerate(zip(moduli, scalars))
            ]
        )

    # ------------------------------------------------------------------
    def barrett_reduce(self, x, moduli):
        x = np.asarray(x, dtype=np.uint64)
        self.check_moduli(moduli)
        self._count("barrett", x.size)
        return np.stack(
            [
                GLOBAL_SBT_BANK.get(q).reduce(x[i])
                for i, q in enumerate(moduli)
            ]
        )

    def lift(self, row, moduli):
        row = np.asarray(row, dtype=np.uint64)
        self.check_moduli(moduli)
        self._count("lift", row.size * len(moduli))
        return np.stack([row % np.uint64(q) for q in moduli])

    def basis_convert(self, y, table, target_moduli):
        y = np.asarray(y, dtype=np.uint64)
        table = np.asarray(table, dtype=np.uint64)
        self.check_moduli(target_moduli)
        src_limbs, n = y.shape
        self._count("basis_convert", n * len(target_moduli))
        out = np.zeros((len(target_moduli), n), dtype=np.uint64)
        for i, p in enumerate(target_moduli):
            acc = np.zeros(n, dtype=np.uint64)
            p64 = np.uint64(p)
            for j in range(src_limbs):
                term = mod_mul(y[j] % p64, table[j, i], p)
                acc = (acc + term) % p64
            out[i] = acc
        return out
