"""Pluggable kernel backends for the NTT/RNS hot paths.

The functional plane routes every arithmetic hot path — whole-matrix
NTT/INTT, element-wise modular ops, Barrett reduction, digit lifting
and the RNSconv cascade — through a *kernel backend*:

- ``reference`` — the original per-limb code paths (the oracle).
- ``batched``   — vectorized across all L limbs at once, the software
  analogue of Poseidon's limb-parallel lane pipeline.
- ``numpy``     — fully vectorized uint64 butterflies (Shoup
  multiplication + lazy reduction, 128-bit Barrett for wide moduli);
  the fastest backend, with no Python-level per-element loops.

Selection, in precedence order:

1. explicit code: ``set_backend("numpy")`` or
   ``with use_backend("numpy"): ...``;
2. the ``REPRO_KERNEL_BACKEND`` environment variable, read once at
   first use (``reset_selection()`` forgets the cached choice);
3. the default, ``reference``.

All backends are bit-identical on every operator (enforced by
``tests/kernels/test_differential.py``, the exhaustive big-int oracle
suite in ``tests/kernels/test_exhaustive.py`` and the golden vectors
under ``tests/golden``), so any call site can run on any of them.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.errors import KernelError
from repro.kernels.base import (
    BatchedTwiddleTable,
    KernelBackend,
    get_batched_tables,
)
from repro.kernels.batched import BatchedBackend
from repro.kernels.numpy_backend import NumpyBackend
from repro.kernels.reference import ReferenceBackend

#: Environment variable consulted on first use (see module docstring).
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Name used when neither code nor the environment chose a backend.
DEFAULT_BACKEND = "reference"

_REGISTRY: dict[str, KernelBackend] = {
    ReferenceBackend.name: ReferenceBackend(),
    BatchedBackend.name: BatchedBackend(),
    NumpyBackend.name: NumpyBackend(),
}

_active: KernelBackend | None = None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve(backend: str | KernelBackend | None) -> KernelBackend:
    """Map a name / instance / None (= currently active) to a backend."""
    if backend is None:
        return get_backend()
    if isinstance(backend, KernelBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except KeyError:
        raise KernelError(
            f"unknown kernel backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None


def get_backend() -> KernelBackend:
    """The active backend (env var consulted on first call)."""
    global _active
    if _active is None:
        name = os.environ.get(BACKEND_ENV_VAR, DEFAULT_BACKEND)
        if name not in _REGISTRY:
            raise KernelError(
                f"{BACKEND_ENV_VAR}={name!r} names no kernel backend; "
                f"available: {', '.join(available_backends())}"
            )
        _active = _REGISTRY[name]
    return _active


def set_backend(backend: str | KernelBackend) -> KernelBackend:
    """Install ``backend`` as the process-wide active backend."""
    global _active
    _active = resolve(backend)
    return _active


def reset_selection() -> None:
    """Forget the process-wide backend choice.

    The next :func:`get_backend` call re-reads ``REPRO_KERNEL_BACKEND``
    (or falls back to the default). Tests use this to exercise the
    environment-variable path without leaking state between cases.
    """
    global _active
    _active = None


@contextmanager
def use_backend(backend: str | KernelBackend | None):
    """Scoped backend override; ``None`` keeps the current selection."""
    global _active
    if backend is None:
        yield get_backend()
        return
    previous = get_backend()
    _active = resolve(backend)
    try:
        yield _active
    finally:
        _active = previous


__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "BatchedBackend",
    "BatchedTwiddleTable",
    "KernelBackend",
    "NumpyBackend",
    "ReferenceBackend",
    "available_backends",
    "get_batched_tables",
    "get_backend",
    "reset_selection",
    "resolve",
    "set_backend",
    "use_backend",
]
