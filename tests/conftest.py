"""Shared fixtures: small parameter sets that keep the suite fast.

The functional CKKS objects are expensive to construct (prime search,
key generation), so they are session-scoped; tests must not mutate
them. Every fixture uses fixed seeds for reproducibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckks import (
    CkksDecryptor,
    CkksEncoder,
    CkksEncryptor,
    CkksEvaluator,
    CkksParameters,
    KeyChain,
)

#: Default toy scale: big enough to exercise sub-vector HFAuto paths,
#: small enough for sub-second operations.
TEST_DEGREE = 256
TEST_LEVELS = 4


@pytest.fixture(scope="session")
def params() -> CkksParameters:
    return CkksParameters.default(degree=TEST_DEGREE, levels=TEST_LEVELS)


@pytest.fixture(scope="session")
def keys(params) -> KeyChain:
    return KeyChain.generate(params, seed=42)


@pytest.fixture(scope="session")
def encoder(params) -> CkksEncoder:
    return CkksEncoder(params)


@pytest.fixture(scope="session")
def encryptor(params, keys) -> CkksEncryptor:
    return CkksEncryptor(params, keys, seed=7)


@pytest.fixture(scope="session")
def decryptor(params, keys) -> CkksDecryptor:
    return CkksDecryptor(params, keys)


@pytest.fixture(scope="session")
def evaluator(params, keys) -> CkksEvaluator:
    return CkksEvaluator(params, keys)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def slot_vectors(params):
    """Two fixed random slot vectors in [-1, 1]."""
    gen = np.random.default_rng(99)
    x = gen.uniform(-1, 1, params.slot_count)
    y = gen.uniform(-1, 1, params.slot_count)
    return x, y


def decrypt_real(encoder, decryptor, ct) -> np.ndarray:
    """Helper: decrypt and decode to real slot values."""
    return encoder.decode(decryptor.decrypt(ct)).real
