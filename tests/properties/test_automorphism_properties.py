"""Galois automorphism properties: composition, identity, NTT transport.

The key algebraic fact (paper Eq. 4 and the HFAuto discussion):
``sigma_k : a(x) -> a(x^k)`` for odd ``k`` forms a group isomorphic to
``(Z/2N)^*``, with ``sigma_i ∘ sigma_j == sigma_{i*j mod 2N}``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import kernels
from repro.automorphism.mapping import (
    apply_automorphism_eval,
    apply_automorphism_poly,
    compose_galois,
)
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial

from ._support import BACKENDS, random_matrix, rns_shapes


@st.composite
def poly_and_galois(draw):
    """A coefficient-domain polynomial plus two odd Galois elements."""
    moduli, degree = draw(rns_shapes(max_limbs=3))
    ctx = RnsContext(moduli)
    seed = draw(st.integers(0, 2**32 - 1))
    poly = RnsPolynomial(
        random_matrix(moduli, degree, seed), ctx, Domain.COEFFICIENT
    )
    k1 = 2 * draw(st.integers(0, degree - 1)) + 1
    k2 = 2 * draw(st.integers(0, degree - 1)) + 1
    return poly, k1, k2


@given(drawn=poly_and_galois())
def test_composition_law_coefficient_domain(drawn):
    """sigma_{k1} ∘ sigma_{k2} == sigma_{k1*k2 mod 2N} (Eq. 4)."""
    poly, k1, k2 = drawn
    n = poly.degree
    composed = apply_automorphism_poly(apply_automorphism_poly(poly, k2), k1)
    direct = apply_automorphism_poly(poly, compose_galois(n, k1, k2))
    np.testing.assert_array_equal(composed.data, direct.data)


@given(drawn=poly_and_galois())
def test_identity_element(drawn):
    poly, _, _ = drawn
    np.testing.assert_array_equal(
        apply_automorphism_poly(poly, 1).data, poly.data
    )


@given(drawn=poly_and_galois())
def test_inverse_element(drawn):
    """sigma_k composed with sigma_{k^-1 mod 2N} is the identity."""
    poly, k1, _ = drawn
    n = poly.degree
    k_inv = pow(k1, -1, 2 * n)
    roundtrip = apply_automorphism_poly(
        apply_automorphism_poly(poly, k1), k_inv
    )
    np.testing.assert_array_equal(roundtrip.data, poly.data)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=poly_and_galois())
def test_eval_domain_transport(backend_name, drawn):
    """NTT(sigma_k(a)) == eval-domain permutation of NTT(a).

    This is the property hoisted keyswitching relies on: rotating an
    NTT-resident digit is a pure gather, no sign flips.
    """
    poly, k1, _ = drawn
    with kernels.use_backend(backend_name):
        via_coeff = ntt_negacyclic(apply_automorphism_poly(poly, k1))
        via_eval = apply_automorphism_eval(ntt_negacyclic(poly), k1)
        np.testing.assert_array_equal(via_coeff.data, via_eval.data)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=poly_and_galois())
def test_eval_domain_composition(backend_name, drawn):
    """The composition law also holds for the NTT-domain permutation."""
    poly, k1, k2 = drawn
    n = poly.degree
    with kernels.use_backend(backend_name):
        fwd = ntt_negacyclic(poly)
        composed = apply_automorphism_eval(
            apply_automorphism_eval(fwd, k2), k1
        )
        direct = apply_automorphism_eval(fwd, compose_galois(n, k1, k2))
        np.testing.assert_array_equal(composed.data, direct.data)
        # And back in the coefficient domain the results still agree.
        np.testing.assert_array_equal(
            intt_negacyclic(composed).data,
            apply_automorphism_poly(poly, compose_galois(n, k1, k2)).data,
        )
