"""Property-based NTT/INTT invariants, checked on every kernel backend.

The three load-bearing properties:

1. ``INTT(NTT(a)) == a`` — the transforms are mutually inverse.
2. ``INTT(NTT(a) ⊙ NTT(b)) == a * b mod (x^n + 1)`` against a big-int
   O(n^2) oracle — the transform actually diagonalizes the negacyclic
   ring, not just *some* invertible map.
3. Fused radix-2^k output is bit-identical to radix-2 for k in {1,2,3}
   — fusion changes the reduction schedule, never the value.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import kernels
from repro.errors import KernelError

from ._support import (
    BACKENDS,
    backends_supporting,
    negacyclic_convolution,
    residue_matrices,
    wide_residue_matrices,
)

FUSION_RADICES = (1, 2, 3)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("radix_log2", FUSION_RADICES)
@given(drawn=residue_matrices())
def test_ntt_intt_roundtrip(backend_name, radix_log2, drawn):
    data, moduli = drawn
    backend = kernels.resolve(backend_name)
    fwd = backend.ntt(data, moduli, radix_log2=radix_log2)
    back = backend.intt(fwd, moduli, radix_log2=radix_log2)
    np.testing.assert_array_equal(back, data)
    assert back.dtype == np.uint64


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=residue_matrices(max_limbs=2), seed=st.integers(0, 2**32 - 1))
def test_pointwise_product_is_negacyclic_convolution(
    backend_name, drawn, seed
):
    a, moduli = drawn
    rng = np.random.default_rng(seed)
    b = np.stack(
        [rng.integers(0, q, a.shape[1], dtype=np.uint64) for q in moduli]
    )
    backend = kernels.resolve(backend_name)
    prod_ntt = backend.mod_mul(
        backend.ntt(a, moduli), backend.ntt(b, moduli), moduli
    )
    got = backend.intt(prod_ntt, moduli)
    for i, q in enumerate(moduli):
        expected = negacyclic_convolution(a[i], b[i], q)
        np.testing.assert_array_equal(got[i], np.array(expected, np.uint64))


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("radix_log2", (2, 3))
@given(drawn=residue_matrices())
def test_fused_radix_matches_radix2(backend_name, radix_log2, drawn):
    data, moduli = drawn
    backend = kernels.resolve(backend_name)
    np.testing.assert_array_equal(
        backend.ntt(data, moduli, radix_log2=radix_log2),
        backend.ntt(data, moduli, radix_log2=1),
    )
    np.testing.assert_array_equal(
        backend.intt(data, moduli, radix_log2=radix_log2),
        backend.intt(data, moduli, radix_log2=1),
    )


@pytest.mark.parametrize("radix_log2", FUSION_RADICES)
@given(drawn=residue_matrices())
def test_backends_bit_identical_on_transforms(radix_log2, drawn):
    """Every registered backend matches the reference oracle exactly."""
    data, moduli = drawn
    ref = kernels.resolve("reference")
    want_fwd = ref.ntt(data, moduli, radix_log2=radix_log2)
    want_inv = ref.intt(data, moduli, radix_log2=radix_log2)
    for name in BACKENDS:
        if name == "reference":
            continue
        other = kernels.resolve(name)
        np.testing.assert_array_equal(
            want_fwd, other.ntt(data, moduli, radix_log2=radix_log2)
        )
        np.testing.assert_array_equal(
            want_inv, other.intt(data, moduli, radix_log2=radix_log2)
        )


@given(drawn=wide_residue_matrices(), seed=st.integers(0, 2**32 - 1))
def test_overflow_edge_roundtrip_and_convolution(drawn, seed):
    """Moduli near 2^62: products span 124 bits, where any single-word
    uint64 Barrett shortcut silently corrupts. Capable backends must
    still invert exactly and diagonalize the negacyclic ring."""
    a, moduli = drawn
    names = backends_supporting(moduli)
    assert "numpy" in names  # the wide path must actually be exercised
    rng = np.random.default_rng(seed)
    b = np.stack(
        [rng.integers(0, q, a.shape[1], dtype=np.uint64) for q in moduli]
    )
    for name in names:
        backend = kernels.resolve(name)
        fwd = backend.ntt(a, moduli)
        np.testing.assert_array_equal(backend.intt(fwd, moduli), a)
        got = backend.intt(
            backend.mod_mul(fwd, backend.ntt(b, moduli), moduli), moduli
        )
        for i, q in enumerate(moduli):
            expected = negacyclic_convolution(a[i], b[i], q)
            np.testing.assert_array_equal(
                got[i], np.array(expected, np.uint64)
            )


@given(drawn=wide_residue_matrices())
def test_overflow_edge_rejected_by_narrow_backends(drawn):
    """Backends without a wide path must refuse, not corrupt."""
    data, moduli = drawn
    capable = set(backends_supporting(moduli))
    for name in BACKENDS:
        if name in capable:
            continue
        with pytest.raises(KernelError):
            kernels.resolve(name).ntt(data, moduli)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=residue_matrices(), seed=st.integers(0, 2**32 - 1))
def test_ntt_is_linear(backend_name, drawn, seed):
    """NTT(a + b) == NTT(a) + NTT(b) — transforms are ring-additive."""
    a, moduli = drawn
    rng = np.random.default_rng(seed)
    b = np.stack(
        [rng.integers(0, q, a.shape[1], dtype=np.uint64) for q in moduli]
    )
    backend = kernels.resolve(backend_name)
    lhs = backend.ntt(backend.mod_add(a, b, moduli), moduli)
    rhs = backend.mod_add(
        backend.ntt(a, moduli), backend.ntt(b, moduli), moduli
    )
    np.testing.assert_array_equal(lhs, rhs)
