"""Property-based NTT/INTT invariants, checked on every kernel backend.

The three load-bearing properties:

1. ``INTT(NTT(a)) == a`` — the transforms are mutually inverse.
2. ``INTT(NTT(a) ⊙ NTT(b)) == a * b mod (x^n + 1)`` against a big-int
   O(n^2) oracle — the transform actually diagonalizes the negacyclic
   ring, not just *some* invertible map.
3. Fused radix-2^k output is bit-identical to radix-2 for k in {1,2,3}
   — fusion changes the reduction schedule, never the value.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import kernels

from ._support import BACKENDS, negacyclic_convolution, residue_matrices

FUSION_RADICES = (1, 2, 3)


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("radix_log2", FUSION_RADICES)
@given(drawn=residue_matrices())
def test_ntt_intt_roundtrip(backend_name, radix_log2, drawn):
    data, moduli = drawn
    backend = kernels.resolve(backend_name)
    fwd = backend.ntt(data, moduli, radix_log2=radix_log2)
    back = backend.intt(fwd, moduli, radix_log2=radix_log2)
    np.testing.assert_array_equal(back, data)
    assert back.dtype == np.uint64


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=residue_matrices(max_limbs=2), seed=st.integers(0, 2**32 - 1))
def test_pointwise_product_is_negacyclic_convolution(
    backend_name, drawn, seed
):
    a, moduli = drawn
    rng = np.random.default_rng(seed)
    b = np.stack(
        [rng.integers(0, q, a.shape[1], dtype=np.uint64) for q in moduli]
    )
    backend = kernels.resolve(backend_name)
    prod_ntt = backend.mod_mul(
        backend.ntt(a, moduli), backend.ntt(b, moduli), moduli
    )
    got = backend.intt(prod_ntt, moduli)
    for i, q in enumerate(moduli):
        expected = negacyclic_convolution(a[i], b[i], q)
        np.testing.assert_array_equal(got[i], np.array(expected, np.uint64))


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize("radix_log2", (2, 3))
@given(drawn=residue_matrices())
def test_fused_radix_matches_radix2(backend_name, radix_log2, drawn):
    data, moduli = drawn
    backend = kernels.resolve(backend_name)
    np.testing.assert_array_equal(
        backend.ntt(data, moduli, radix_log2=radix_log2),
        backend.ntt(data, moduli, radix_log2=1),
    )
    np.testing.assert_array_equal(
        backend.intt(data, moduli, radix_log2=radix_log2),
        backend.intt(data, moduli, radix_log2=1),
    )


@pytest.mark.parametrize("radix_log2", FUSION_RADICES)
@given(drawn=residue_matrices())
def test_backends_bit_identical_on_transforms(radix_log2, drawn):
    data, moduli = drawn
    ref = kernels.resolve("reference")
    bat = kernels.resolve("batched")
    np.testing.assert_array_equal(
        ref.ntt(data, moduli, radix_log2=radix_log2),
        bat.ntt(data, moduli, radix_log2=radix_log2),
    )
    np.testing.assert_array_equal(
        ref.intt(data, moduli, radix_log2=radix_log2),
        bat.intt(data, moduli, radix_log2=radix_log2),
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(drawn=residue_matrices(), seed=st.integers(0, 2**32 - 1))
def test_ntt_is_linear(backend_name, drawn, seed):
    """NTT(a + b) == NTT(a) + NTT(b) — transforms are ring-additive."""
    a, moduli = drawn
    rng = np.random.default_rng(seed)
    b = np.stack(
        [rng.integers(0, q, a.shape[1], dtype=np.uint64) for q in moduli]
    )
    backend = kernels.resolve(backend_name)
    lhs = backend.ntt(backend.mod_add(a, b, moduli), moduli)
    rhs = backend.mod_add(
        backend.ntt(a, moduli), backend.ntt(b, moduli), moduli
    )
    np.testing.assert_array_equal(lhs, rhs)
