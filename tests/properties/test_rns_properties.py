"""RNS ring axioms on :class:`RnsPolynomial`, per kernel backend.

``R_Q = Z_Q[x]/(x^n + 1)`` split over an RNS basis is still a
commutative ring; these tests check the axioms through the public
polynomial API (so the whole backend dispatch path is exercised, not
the kernels in isolation).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import kernels
from repro.ntt.negacyclic import poly_multiply
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial

from ._support import BACKENDS, random_matrix, rns_shapes


@st.composite
def poly_triples(draw):
    """Three random coefficient-domain polynomials over one basis."""
    moduli, degree = draw(rns_shapes(max_limbs=3))
    ctx = RnsContext(moduli)
    seeds = [draw(st.integers(0, 2**32 - 1)) for _ in range(3)]
    polys = [
        RnsPolynomial(
            random_matrix(moduli, degree, seed), ctx, Domain.COEFFICIENT
        )
        for seed in seeds
    ]
    return polys


def assert_poly_equal(a: RnsPolynomial, b: RnsPolynomial) -> None:
    np.testing.assert_array_equal(a.data, b.data)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(polys=poly_triples())
def test_additive_group_axioms(backend_name, polys):
    a, b, c = polys
    with kernels.use_backend(backend_name):
        assert_poly_equal(a + b, b + a)
        assert_poly_equal((a + b) + c, a + (b + c))
        zero = a - a
        assert not zero.data.any()
        assert_poly_equal(a + (-a), zero)
        assert_poly_equal(a - b, a + (-b))


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(polys=poly_triples())
def test_multiplicative_ring_axioms(backend_name, polys):
    a, b, c = polys
    with kernels.use_backend(backend_name):
        assert_poly_equal(poly_multiply(a, b), poly_multiply(b, a))
        assert_poly_equal(
            poly_multiply(poly_multiply(a, b), c),
            poly_multiply(a, poly_multiply(b, c)),
        )


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(polys=poly_triples())
def test_distributivity(backend_name, polys):
    a, b, c = polys
    with kernels.use_backend(backend_name):
        assert_poly_equal(
            poly_multiply(a, b + c),
            poly_multiply(a, b) + poly_multiply(a, c),
        )


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(polys=poly_triples(), s=st.integers(0, 2**31 - 1))
def test_scalar_mul_consistency(backend_name, polys, s):
    """scalar_mul agrees with repeated addition semantics mod Q."""
    a, _, _ = polys
    with kernels.use_backend(backend_name):
        scaled = a.scalar_mul(s)
        for i, q in enumerate(a.context.moduli):
            expected = (a.data[i].astype(object) * s) % q
            np.testing.assert_array_equal(
                scaled.data[i], expected.astype(np.uint64)
            )
        # Distributes over addition: (a + a) * s == a*s + a*s.
        assert_poly_equal((a + a).scalar_mul(s), scaled + scaled)


@pytest.mark.parametrize("backend_name", BACKENDS)
@given(polys=poly_triples())
def test_hadamard_matches_ntt_domain_product(backend_name, polys):
    """Coefficient product == INTT(hadamard of NTT images)."""
    from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic

    a, b, _ = polys
    with kernels.use_backend(backend_name):
        direct = poly_multiply(a, b)
        via_hadamard = intt_negacyclic(
            ntt_negacyclic(a).hadamard(ntt_negacyclic(b))
        )
        assert_poly_equal(direct, via_hadamard)
