"""Property-based scheduler invariants on random task DAGs.

Two input families:

- fully synthetic :class:`OperatorTask` DAGs with arbitrary dependency
  edges, random cores, random HBM traffic — the harshest structural
  input for the schedule validator;
- compiler-generated programs from random FHE op traces (chained,
  ``op_parallel=False``) — the realistic input for the makespan
  comparison against the legacy in-order engine.

The "out-of-order never slower" property is asserted only for chained
programs: greedy list scheduling is subject to Graham anomalies on
arbitrary parallel DAGs (an early-dispatched long independent task can
delay a critical one that becomes ready slightly later), so the
guarantee targets the dependent-ciphertext-chain regime the in-order
engine modelled — and the one the paper's Table VI latencies measure.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import OperatorProgram, compile_trace
from repro.sim.config import CORE_ARRAYS, HardwareConfig
from repro.sim.engine import PoseidonSimulator, in_order_makespan
from repro.sim.tasks import OperatorKind, OperatorTask
from repro.sim.validate import validate_schedule

_KINDS = (
    OperatorKind.MA,
    OperatorKind.MM,
    OperatorKind.NTT,
    OperatorKind.INTT,
    OperatorKind.AUTO,
    OperatorKind.SBT,
)

#: Small-but-real transfer sizes: zero, sub-channel, a few channels,
#: and full-stripe (engages all 32 pseudo-channels).
_HBM_SIZES = (0, 0, 4 << 10, 64 << 10, 512 << 10, 4 << 20)


@st.composite
def task_dags(draw, max_tasks: int = 24):
    """Random topologically-ordered DAGs of operator tasks."""
    n = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    for i in range(n):
        kind = draw(st.sampled_from(_KINDS))
        degree = draw(st.sampled_from((1 << 12, 1 << 13)))
        limbs = draw(st.integers(min_value=1, max_value=8))
        deps = ()
        if i:
            deps = tuple(
                sorted(
                    draw(
                        st.sets(
                            st.integers(min_value=0, max_value=i - 1),
                            max_size=3,
                        )
                    )
                )
            )
        tasks.append(
            OperatorTask(
                kind=kind,
                elements=limbs * degree,
                degree=degree,
                limbs=limbs,
                hbm_read_bytes=draw(st.sampled_from(_HBM_SIZES)),
                hbm_write_bytes=draw(st.sampled_from(_HBM_SIZES)),
                spad_bytes=draw(st.sampled_from((0, 64 << 10))),
                depends_on=deps,
                op_label=f"task{i}",
            )
        )
    return OperatorProgram(
        tasks=tuple(tasks),
        op_boundaries=((0, n),),
        source_ops=(),
    )


@st.composite
def op_traces(draw, max_ops: int = 8):
    """Random FHE basic-operation traces at small (fast) scales."""
    names = st.sampled_from((
        FheOpName.HADD,
        FheOpName.PMULT,
        FheOpName.CMULT,
        FheOpName.ROTATION,
        FheOpName.RESCALE,
        FheOpName.KEYSWITCH,
    ))
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        name = draw(names)
        degree = 1 << draw(st.integers(min_value=12, max_value=14))
        limbs = draw(st.integers(min_value=2, max_value=16))
        kwargs = {}
        if name in (FheOpName.CMULT, FheOpName.ROTATION, FheOpName.KEYSWITCH):
            kwargs["aux_limbs"] = draw(st.integers(min_value=1, max_value=4))
        ops.append(FheOp.make(name, degree, limbs, **kwargs))
    return ops


class TestValidatorOnRandomDags:
    @given(program=task_dags())
    def test_schedule_invariants_hold(self, program):
        simulator = PoseidonSimulator()
        result = simulator.run(program)
        validate_schedule(
            result, program=program, config=simulator.config
        )

    @given(
        program=task_dags(),
        ntt_instances=st.integers(min_value=1, max_value=3),
        ma_instances=st.integers(min_value=1, max_value=2),
    )
    def test_invariants_hold_with_replicated_cores(
        self, program, ntt_instances, ma_instances
    ):
        config = HardwareConfig().with_core_instances(
            NTT=ntt_instances, MA=ma_instances
        )
        simulator = PoseidonSimulator(config)
        result = simulator.run(program)
        validate_schedule(result, program=program, config=config)

    @given(program=task_dags())
    def test_zero_hbm_tasks_never_occupy_the_channel(self, program):
        result = PoseidonSimulator().run(program)
        for record in result.task_records:
            if record.hbm_bytes == 0:
                assert record.hbm_channels_used == 0
                assert record.hbm_seconds == 0.0
                assert record.hbm_start == record.hbm_end == 0.0
        streamed = sum(
            r.hbm_end - r.hbm_start
            for r in result.task_records
            if r.hbm_bytes
        )
        # The HBM-occupancy union can only come from traffic-moving
        # tasks; with no traffic at all the channel is never busy.
        assert result.hbm_busy_seconds <= streamed + 1e-15


class TestOutOfOrderNeverSlower:
    @given(ops=op_traces())
    def test_chained_makespan_at_most_in_order(self, ops):
        program = compile_trace(ops, op_parallel=False)
        ooo = PoseidonSimulator().run(program).total_seconds
        in_order = in_order_makespan(program)
        assert ooo <= in_order * (1 + 1e-9)

    @given(ops=op_traces(max_ops=4))
    def test_replicated_cores_never_slower_than_single(self, ops):
        program = compile_trace(ops, op_parallel=True)
        single = PoseidonSimulator().run(program).total_seconds
        doubled = PoseidonSimulator(
            HardwareConfig().with_core_instances(
                **{core: 2 for core in CORE_ARRAYS}
            )
        ).run(program).total_seconds
        # Not a theorem for greedy schedulers (Graham), but it holds on
        # compiler-shaped programs and guards the instance plumbing:
        # doubling every array must not lose to the single-instance
        # schedule by more than float noise.
        assert doubled <= single * (1 + 1e-9)
