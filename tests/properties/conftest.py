"""Hypothesis profiles for the property suite.

Two profiles are registered:

``ci``
    Deterministic (derandomized) with a fixed example budget and no
    deadline — what the dedicated CI property job runs via
    ``--hypothesis-profile=ci`` so failures reproduce exactly.
``dev``
    The local default: smaller example budget for fast iteration,
    random seeds so repeated local runs explore new inputs.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "dev",
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
