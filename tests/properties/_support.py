"""Shared strategies and oracles for the property suite.

Inputs are kept intentionally small (degree <= 64, <= 4 limbs) so each
hypothesis example runs in microseconds; the kernels are shape-generic,
so any bug at paper scale that is not purely a size-threshold bug also
exists at these sizes. The 31-bit pool matters: products of 31-bit
residues are large enough to force the batched fused kernel off its
deferred-reduction fast path.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro import kernels
from repro.utils.primes import find_ntt_primes

#: Largest ring degree the suite exercises. Any power-of-two degree
#: n <= MAX_DEGREE works with these pools, since 2*MAX_DEGREE | q - 1
#: implies 2n | q - 1.
MAX_DEGREE = 64
DEGREES = (16, 32, 64)

PRIME_POOL_30 = tuple(find_ntt_primes(30, 4, MAX_DEGREE))
PRIME_POOL_31 = tuple(find_ntt_primes(31, 2, MAX_DEGREE))

#: Overflow-edge pool: primes just below 2^62, the widest moduli any
#: backend supports. Naive uint64 Barrett (single-word mu, 2k-bit
#: intermediates) breaks here — products reach 124 bits — so these
#: exercise the 128-bit split-reduction path exclusively.
PRIME_POOL_62 = tuple(find_ntt_primes(62, 2, MAX_DEGREE))

#: Every registered backend; property tests parametrize over this so a
#: newly-registered backend is covered without editing each test.
BACKENDS = kernels.available_backends()


def backends_supporting(moduli) -> tuple[str, ...]:
    """Backend names whose exact-arithmetic range covers ``moduli``."""
    widest = max(int(q).bit_length() for q in moduli)
    return tuple(
        name
        for name in BACKENDS
        if kernels.resolve(name).max_modulus_bits >= widest
    )


@st.composite
def rns_shapes(draw, max_limbs: int = 4):
    """Draw ``(moduli, degree)`` mixing 30- and 31-bit primes."""
    degree = draw(st.sampled_from(DEGREES))
    limbs = draw(st.integers(min_value=1, max_value=max_limbs))
    include_wide = draw(st.booleans())
    pool = (PRIME_POOL_31 + PRIME_POOL_30) if include_wide else PRIME_POOL_30
    return pool[:limbs], degree


@st.composite
def residue_matrices(draw, max_limbs: int = 4):
    """Draw ``(data, moduli)`` with ``data`` a reduced (L, N) matrix."""
    moduli, degree = draw(rns_shapes(max_limbs=max_limbs))
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    data = np.stack(
        [rng.integers(0, q, degree, dtype=np.uint64) for q in moduli]
    )
    return data, moduli


@st.composite
def wide_residue_matrices(draw, max_limbs: int = 2):
    """Draw ``(data, moduli)`` over the 62-bit overflow-edge pool."""
    degree = draw(st.sampled_from(DEGREES[:2]))  # keep big-int oracles fast
    limbs = draw(st.integers(min_value=1, max_value=max_limbs))
    moduli = PRIME_POOL_62[:limbs]
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    rng = np.random.default_rng(seed)
    data = np.stack(
        [rng.integers(0, q, degree, dtype=np.uint64) for q in moduli]
    )
    return data, moduli


def random_matrix(moduli, degree: int, seed: int) -> np.ndarray:
    """Fixed-seed reduced (L, N) matrix for the given basis."""
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.integers(0, q, degree, dtype=np.uint64) for q in moduli]
    )


def negacyclic_convolution(a, b, q: int) -> list[int]:
    """O(n^2) big-int negacyclic product — the NTT-free oracle.

    Computes ``a * b mod (x^n + 1, q)`` with Python integers only, so
    it shares no code (and no bugs) with the kernels under test.
    """
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i])
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] = (out[k - n] - term) % q
            else:
                out[k] = (out[k] + term) % q
    return out
