"""Unit tests for the iterative radix-2 NTT/INTT kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NTTError
from repro.ntt.radix2 import (
    intt_poly,
    intt_radix2,
    ntt_poly,
    ntt_radix2,
    ntt_radix2_cyclic,
)
from repro.ntt.reference import intt_reference, ntt_reference
from repro.ntt.tables import get_twiddle_table
from repro.utils.primes import find_ntt_primes

N = 64
Q = find_ntt_primes(30, 1, N)[0]
TABLE = get_twiddle_table(Q, N)


def random_vec(seed=0, n=N, q=Q):
    return np.random.default_rng(seed).integers(0, q, n, dtype=np.uint64)


class TestRoundtrip:
    def test_forward_inverse_identity(self):
        x = random_vec(1)
        assert np.array_equal(intt_radix2(ntt_radix2(x, TABLE), TABLE), x)

    def test_inverse_forward_identity(self):
        x = random_vec(2)
        assert np.array_equal(ntt_radix2(intt_radix2(x, TABLE), TABLE), x)

    @given(st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_roundtrip_property(self, seed):
        x = random_vec(seed)
        assert np.array_equal(intt_radix2(ntt_radix2(x, TABLE), TABLE), x)

    @pytest.mark.parametrize("n", [8, 16, 128, 512])
    def test_roundtrip_other_sizes(self, n):
        q = find_ntt_primes(28, 1, n)[0]
        table = get_twiddle_table(q, n)
        x = random_vec(3, n, q)
        assert np.array_equal(intt_radix2(ntt_radix2(x, table), table), x)


class TestAgainstReference:
    def test_forward_matches_twisted_reference(self):
        """Negacyclic NTT = cyclic NTT of the psi-twisted input."""
        x = random_vec(4)
        twisted = (x * TABLE.psi_powers) % np.uint64(Q)
        expected = ntt_reference(twisted, TABLE.omega, Q)
        assert np.array_equal(ntt_radix2(x, TABLE), expected)

    def test_inverse_matches_reference(self):
        x = random_vec(5)
        f = ntt_radix2(x, TABLE)
        cyc = intt_reference(f, TABLE.omega, Q)
        untwisted = (cyc * TABLE.ipsi_powers) % np.uint64(Q)
        assert np.array_equal(intt_radix2(f, TABLE), untwisted)


class TestLinearity:
    def test_additive(self):
        a, b = random_vec(6), random_vec(7)
        fa = ntt_radix2(a, TABLE).astype(object)
        fb = ntt_radix2(b, TABLE).astype(object)
        fsum = ntt_radix2((a + b) % np.uint64(Q), TABLE).astype(object)
        assert ((fa + fb) % Q).tolist() == fsum.tolist()

    def test_zero_fixed_point(self):
        z = np.zeros(N, dtype=np.uint64)
        assert not np.any(ntt_radix2(z, TABLE))
        assert not np.any(intt_radix2(z, TABLE))

    def test_constant_transform(self):
        """NTT of a constant polynomial is constant across outputs?

        No — negacyclic evaluation of constant c gives c at every
        root; verify that directly.
        """
        c = 12345
        x = np.zeros(N, dtype=np.uint64)
        x[0] = c
        f = ntt_radix2(x, TABLE)
        assert np.all(f == c)


class TestConvolution:
    def test_negacyclic_product_via_hadamard(self):
        a, b = random_vec(8), random_vec(9)
        fa, fb = ntt_radix2(a, TABLE), ntt_radix2(b, TABLE)
        prod = intt_radix2((fa * fb) % np.uint64(Q), TABLE)
        # Schoolbook negacyclic reference.
        ref = [0] * N
        for i in range(N):
            for j in range(N):
                v = int(a[i]) * int(b[j])
                if i + j >= N:
                    ref[i + j - N] = (ref[i + j - N] - v) % Q
                else:
                    ref[i + j] = (ref[i + j] + v) % Q
        assert prod.astype(object).tolist() == ref

    def test_multiply_by_x_shifts_with_sign(self):
        """x * a(x) rotates coefficients with a negacyclic sign flip."""
        a = random_vec(10)
        x_poly = np.zeros(N, dtype=np.uint64)
        x_poly[1] = 1
        fa = ntt_radix2(a, TABLE)
        fx = ntt_radix2(x_poly, TABLE)
        prod = intt_radix2((fa * fx) % np.uint64(Q), TABLE)
        assert prod[0] == (Q - a[N - 1]) % Q
        assert np.array_equal(prod[1:], a[: N - 1])


class TestValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(NTTError):
            ntt_radix2(np.zeros(32, dtype=np.uint64), TABLE)

    def test_cyclic_wrong_root_rejected(self):
        with pytest.raises(NTTError):
            ntt_radix2_cyclic(random_vec(11), Q, 2)


class TestPolyHelpers:
    def test_poly_roundtrip(self):
        primes = find_ntt_primes(30, 3, N)
        rng = np.random.default_rng(12)
        data = np.stack(
            [rng.integers(0, q, N, dtype=np.uint64) for q in primes]
        )
        f = ntt_poly(data, primes, N)
        back = intt_poly(f, primes, N)
        assert np.array_equal(back, data)
