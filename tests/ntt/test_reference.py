"""Direct tests of the O(n^2) reference NTT (the correctness oracle)."""

import numpy as np
import pytest

from repro.errors import NTTError
from repro.ntt.reference import intt_reference, ntt_reference
from repro.utils.primes import find_ntt_primes, find_primitive_root

N = 16
Q = find_ntt_primes(20, 1, N)[0]
OMEGA = find_primitive_root(Q, N)


class TestForward:
    def test_dc_component(self):
        """NTT of all-ones hits n at index 0 and 0 elsewhere."""
        x = np.ones(N, dtype=np.uint64)
        f = ntt_reference(x, OMEGA, Q)
        assert f[0] == N
        assert not np.any(f[1:])

    def test_delta_transform(self):
        """NTT of a delta at position 1 gives the omega powers."""
        x = np.zeros(N, dtype=np.uint64)
        x[1] = 1
        f = ntt_reference(x, OMEGA, Q)
        expected = [pow(OMEGA, k, Q) for k in range(N)]
        assert f.astype(object).tolist() == expected

    def test_rejects_non_power_length(self):
        with pytest.raises(NTTError):
            ntt_reference(np.zeros(12, dtype=np.uint64), OMEGA, Q)

    def test_rejects_bad_root(self):
        with pytest.raises(NTTError):
            ntt_reference(np.zeros(N, dtype=np.uint64), 2, Q)


class TestInverse:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, Q, N, dtype=np.uint64)
        f = ntt_reference(x, OMEGA, Q)
        assert np.array_equal(intt_reference(f, OMEGA, Q), x)

    def test_cyclic_convolution(self):
        """Hadamard in the reference transform = cyclic convolution."""
        rng = np.random.default_rng(1)
        a = rng.integers(0, Q, N, dtype=np.uint64)
        b = rng.integers(0, Q, N, dtype=np.uint64)
        fa = ntt_reference(a, OMEGA, Q)
        fb = ntt_reference(b, OMEGA, Q)
        prod = intt_reference((fa * fb) % np.uint64(Q), OMEGA, Q)
        ref = [0] * N
        for i in range(N):
            for j in range(N):
                ref[(i + j) % N] = (
                    ref[(i + j) % N] + int(a[i]) * int(b[j])
                ) % Q
        assert prod.astype(object).tolist() == ref
