"""Unit tests for the negacyclic transform façade and tables."""

import numpy as np
import pytest

from repro.errors import NTTError
from repro.ntt.negacyclic import (
    NegacyclicTransformer,
    get_transformer,
    intt_negacyclic,
    ntt_negacyclic,
    poly_multiply,
)
from repro.ntt.tables import TwiddleTable, get_twiddle_table
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64
PRIMES = find_ntt_primes(30, 3, N)
Q = PRIMES[0]


class TestTwiddleTable:
    def test_psi_is_2n_root(self):
        t = get_twiddle_table(Q, N)
        assert pow(t.psi, 2 * N, Q) == 1
        assert pow(t.psi, N, Q) == Q - 1  # psi^N = -1 (negacyclic)

    def test_omega_is_n_root(self):
        t = get_twiddle_table(Q, N)
        assert pow(t.omega, N, Q) == 1
        assert pow(t.omega, N // 2, Q) != 1

    def test_inverses(self):
        t = get_twiddle_table(Q, N)
        assert t.psi * t.inv_psi % Q == 1
        assert t.omega * t.inv_omega % Q == 1
        assert N * t.inv_n % Q == 1

    def test_cache_identity(self):
        assert get_twiddle_table(Q, N) is get_twiddle_table(Q, N)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(NTTError):
            TwiddleTable(7, 64)

    def test_rejects_non_power_degree(self):
        with pytest.raises(NTTError):
            TwiddleTable(Q, 63)


class TestTransformer:
    def test_roundtrip_radix2(self):
        tr = NegacyclicTransformer(Q, N)
        x = np.random.default_rng(0).integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(tr.inverse(tr.forward(x)), x)

    def test_fused_variant_identical(self):
        t1 = NegacyclicTransformer(Q, N, radix_log2=1)
        t3 = NegacyclicTransformer(Q, N, radix_log2=3)
        x = np.random.default_rng(1).integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(t1.forward(x), t3.forward(x))
        assert np.array_equal(t1.inverse(x), t3.inverse(x))

    def test_negacyclic_multiply_sign(self):
        """(x^(n-1))^2 = x^(2n-2) = -x^(n-2) in the negacyclic ring."""
        tr = get_transformer(Q, N)
        a = np.zeros(N, dtype=np.uint64)
        a[N - 1] = 1
        prod = tr.negacyclic_multiply(a, a)
        expected = np.zeros(N, dtype=np.uint64)
        expected[N - 2] = Q - 1
        assert np.array_equal(prod, expected)


class TestRnsTransforms:
    @pytest.fixture()
    def ctx(self):
        return RnsContext(PRIMES)

    def test_roundtrip(self, ctx):
        poly = RnsPolynomial.from_integers(list(range(N)), ctx)
        f = ntt_negacyclic(poly)
        assert f.domain is Domain.NTT
        back = intt_negacyclic(f)
        assert back == poly

    def test_double_forward_rejected(self, ctx):
        poly = RnsPolynomial.zeros(N, ctx)
        f = ntt_negacyclic(poly)
        with pytest.raises(NTTError):
            ntt_negacyclic(f)

    def test_double_inverse_rejected(self, ctx):
        poly = RnsPolynomial.zeros(N, ctx)
        with pytest.raises(NTTError):
            intt_negacyclic(poly)

    def test_poly_multiply_matches_integer_convolution(self, ctx):
        a_vals = [1, 2] + [0] * (N - 2)
        b_vals = [3, 4] + [0] * (N - 2)
        a = RnsPolynomial.from_integers(a_vals, ctx)
        b = RnsPolynomial.from_integers(b_vals, ctx)
        prod = poly_multiply(a, b).to_integers()
        # (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
        assert prod[:3] == [3, 10, 8]
        assert all(v == 0 for v in prod[3:])

    def test_poly_multiply_wraps_negacyclically(self, ctx):
        a_vals = [0] * (N - 1) + [2]   # 2 x^(n-1)
        b_vals = [0, 3] + [0] * (N - 2)  # 3 x
        a = RnsPolynomial.from_integers(a_vals, ctx)
        b = RnsPolynomial.from_integers(b_vals, ctx)
        prod = poly_multiply(a, b).to_integers()
        assert prod[0] == -6  # 6 x^n = -6
        assert all(v == 0 for v in prod[1:])
