"""Property tests: R_Q = Z_Q[x]/(x^n + 1) really is a ring.

The negacyclic product built from NTT/hadamard/INTT must satisfy the
ring axioms on random elements — commutativity, associativity,
distributivity, and the identity/annihilator laws. These are the
algebraic facts every higher layer (keyswitching, bootstrapping)
silently relies on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ntt.negacyclic import poly_multiply
from repro.rns.context import RnsContext
from repro.rns.poly import RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64
PRIMES = find_ntt_primes(30, 2, N)
CTX = RnsContext(PRIMES)


def rand_poly(seed: int) -> RnsPolynomial:
    rng = np.random.default_rng(seed)
    data = np.stack(
        [rng.integers(0, q, N, dtype=np.uint64) for q in CTX.moduli]
    )
    from repro.rns.poly import Domain

    return RnsPolynomial(data, CTX, Domain.COEFFICIENT)


ONE = RnsPolynomial.constant(1, N, CTX)
ZERO = RnsPolynomial.zeros(N, CTX)


class TestMultiplicativeStructure:
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_commutative(self, s1, s2):
        a, b = rand_poly(s1), rand_poly(s2)
        assert poly_multiply(a, b) == poly_multiply(b, a)

    @given(st.integers(0, 2**31), st.integers(0, 2**31),
           st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_associative(self, s1, s2, s3):
        a, b, c = rand_poly(s1), rand_poly(s2), rand_poly(s3)
        left = poly_multiply(poly_multiply(a, b), c)
        right = poly_multiply(a, poly_multiply(b, c))
        assert left == right

    @given(st.integers(0, 2**31), st.integers(0, 2**31),
           st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_distributive(self, s1, s2, s3):
        a, b, c = rand_poly(s1), rand_poly(s2), rand_poly(s3)
        left = poly_multiply(a, b + c)
        right = poly_multiply(a, b) + poly_multiply(a, c)
        assert left == right

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_identity(self, seed):
        a = rand_poly(seed)
        assert poly_multiply(a, ONE) == a

    @given(st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_annihilator(self, seed):
        a = rand_poly(seed)
        assert poly_multiply(a, ZERO) == ZERO


class TestNegacyclicStructure:
    def test_x_to_the_n_is_minus_one(self):
        """x^(n/2) * x^(n/2) = x^n = -1 in the negacyclic ring."""
        half = [0] * N
        half[N // 2] = 1
        x_half = RnsPolynomial.from_integers(half, CTX)
        product = poly_multiply(x_half, x_half)
        assert product.to_integers() == [-1] + [0] * (N - 1)

    @given(st.integers(1, N - 1))
    @settings(max_examples=20, deadline=None)
    def test_monomial_products(self, k):
        """x^k * x^(n-k) = x^n = -1 for every split."""
        mk = [0] * N
        mk[k] = 1
        mnk = [0] * N
        mnk[N - k] = 1
        product = poly_multiply(
            RnsPolynomial.from_integers(mk, CTX),
            RnsPolynomial.from_integers(mnk, CTX),
        )
        assert product.to_integers() == [-1] + [0] * (N - 1)
