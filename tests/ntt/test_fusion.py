"""Unit tests for NTT-fusion: the fused kernel and its cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NTTError
from repro.ntt.fusion import (
    PAPER_TABLE_II,
    FusedNtt,
    FusionCostModel,
    access_offsets,
    bram_bank_of,
)
from repro.ntt.radix2 import intt_radix2, ntt_radix2
from repro.ntt.tables import get_twiddle_table
from repro.utils.primes import find_ntt_primes

N = 64
Q = find_ntt_primes(30, 1, N)[0]
TABLE = get_twiddle_table(Q, N)


def random_vec(seed=0, n=N, q=Q):
    return np.random.default_rng(seed).integers(0, q, n, dtype=np.uint64)


class TestFusedMatchesRadix2:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_forward_equal(self, k):
        x = random_vec(k)
        fused = FusedNtt(Q, N, k)
        assert np.array_equal(fused.forward(x), ntt_radix2(x, TABLE))

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_inverse_equal(self, k):
        x = random_vec(10 + k)
        fused = FusedNtt(Q, N, k)
        f = ntt_radix2(x, TABLE)
        assert np.array_equal(fused.inverse(f), intt_radix2(f, TABLE))

    @pytest.mark.parametrize("k", [2, 3])
    def test_roundtrip(self, k):
        x = random_vec(20 + k)
        fused = FusedNtt(Q, N, k)
        assert np.array_equal(fused.inverse(fused.forward(x)), x)

    def test_non_dividing_radix(self):
        """log2(n) not divisible by k still works (remainder block)."""
        n = 128  # log2 = 7, k = 3 leaves a radix-2 tail
        q = find_ntt_primes(28, 1, n)[0]
        fused = FusedNtt(q, n, 3)
        table = get_twiddle_table(q, n)
        x = random_vec(30, n, q)
        assert np.array_equal(fused.forward(x), ntt_radix2(x, table))

    def test_wide_unsafe_path(self):
        """k = 6 exceeds the uint64 budget and uses the object path."""
        q = find_ntt_primes(30, 1, N)[0]
        fused = FusedNtt(q, N, 6)
        assert not fused._wide_safe
        x = random_vec(40)
        assert np.array_equal(fused.forward(x), ntt_radix2(x, TABLE))

    def test_rejects_wrong_shape(self):
        fused = FusedNtt(Q, N, 3)
        with pytest.raises(NTTError):
            fused.forward(np.zeros(32, dtype=np.uint64))

    @given(st.integers(0, 2**31))
    @settings(max_examples=10)
    def test_fused_equiv_property(self, seed):
        x = random_vec(seed)
        assert np.array_equal(
            FusedNtt(Q, N, 3).forward(x), ntt_radix2(x, TABLE)
        )


class TestCostModel:
    def test_paper_rows_attached(self):
        for k in range(2, 7):
            assert FusionCostModel(k).paper_row == PAPER_TABLE_II[k]
        assert FusionCostModel(7).paper_row is None

    def test_unfused_counts_match_paper(self):
        """W and Mult/Add unfused columns match Table II exactly."""
        for k, (w_unf, _, mult_unf, _) in PAPER_TABLE_II.items():
            costs = FusionCostModel(k).costs()
            assert costs.twiddles_unfused == w_unf
            assert costs.mult_unfused == mult_unf

    def test_k3_reduction_claim(self):
        """Paper §IV-B.3: k=3 turns 24 modular reductions into 8."""
        costs = FusionCostModel(3).costs()
        assert costs.modred_unfused == 24
        assert costs.modred_fused == 8

    def test_fused_reductions_always_fewer(self):
        for k in range(2, 7):
            costs = FusionCostModel(k).costs()
            assert costs.modred_fused < costs.modred_unfused

    def test_fused_mults_always_more(self):
        """The tradeoff: fusion buys reductions with extra multiplies."""
        for k in range(2, 7):
            costs = FusionCostModel(k).costs()
            assert costs.mult_fused > costs.mult_unfused

    def test_phases(self):
        model = FusionCostModel(3)
        assert model.phases(4096) == 4   # paper Table III: 12 -> 4
        assert model.phases(1 << 16) == 6
        assert FusionCostModel(1).phases(4096) == 12

    def test_total_reductions(self):
        model = FusionCostModel(3)
        # 4096-point: unfused = n*log2(n), fused = n per full phase.
        assert model.total_modular_reductions_unfused(4096) == 4096 * 12
        assert model.total_modular_reductions(4096) == 4096 * 4

    def test_rejects_bad_radix(self):
        with pytest.raises(NTTError):
            FusionCostModel(0)


class TestAccessPattern:
    def test_table3_offsets(self):
        """Table III / Fig. 5: iteration strides 1, 8, 64 for k=3."""
        assert access_offsets(4096, 3, 1).tolist() == list(range(8))
        assert access_offsets(4096, 3, 2).tolist() == [
            0, 8, 16, 24, 32, 40, 48, 56
        ]
        assert access_offsets(4096, 3, 3).tolist() == [
            64 * i for i in range(8)
        ]

    def test_iteration_bounds(self):
        with pytest.raises(NTTError):
            access_offsets(4096, 3, 0)
        with pytest.raises(NTTError):
            access_offsets(4096, 3, 5)  # 8^4 * 8 > 4096

    def test_bank_conflict_free(self):
        """Any butterfly's operands land in 2^k distinct BRAM banks."""
        n, k = 4096, 3
        block = 1 << k
        for iteration in (1, 2, 3, 4):
            stride = 1 << (k * (iteration - 1))
            # Check several butterflies across the array.
            for start in range(0, n, max(1, n // 16)):
                base = (start // (stride * block)) * stride * block + (
                    start % stride
                )
                indices = [base + j * stride for j in range(block)]
                if max(indices) >= n:
                    continue
                banks = {bram_bank_of(i, iteration, k) for i in indices}
                assert len(banks) == block
