"""Unit tests for the four paper benchmark traces (Table V)."""

import pytest

from repro.compiler.program import compile_trace
from repro.sim.engine import PoseidonSimulator
from repro.workloads import (
    PAPER_BENCHMARKS,
    helr_trace,
    lstm_trace,
    packed_bootstrapping_trace,
    resnet20_trace,
)
from repro.workloads.bootstrap_wl import exit_level


@pytest.fixture(scope="module")
def small_kwargs():
    """Scaled-down traces for fast structural checks."""
    return dict(degree=1 << 12)


class TestHelrTrace:
    def test_structure(self):
        trace = helr_trace(
            degree=1 << 12, iterations=3, bootstraps=0,
            start_level=25, top_level=25,
        )
        hist = trace.op_histogram()
        # 3 iterations x 2 CMults each for the sigmoid (no bootstraps).
        assert hist["CMult"] == 6
        assert hist["Rotation"] > 0
        assert hist["PMult"] > 0

    def test_bootstrap_count_respected(self):
        trace = helr_trace(degree=1 << 12, iterations=10, bootstraps=2)
        # Two sparse bootstraps must appear (each has its EvalMod
        # conjugation rotations and C2S/S2C PMult batches).
        assert len(trace) > 100

    def test_paper_scale_defaults(self):
        trace = helr_trace()
        assert trace.ops[0].degree == 1 << 16


class TestLstmTrace:
    def test_structure(self):
        trace = lstm_trace(degree=1 << 12, steps=3, hidden=64)
        hist = trace.op_histogram()
        # Each step: 2 matvecs (PMult-heavy) + 2 activation CMults.
        assert hist["CMult"] >= 6
        assert hist["PMult"] >= 3 * 2 * 64

    def test_step_scaling(self):
        short = lstm_trace(degree=1 << 12, steps=2, hidden=64)
        long = lstm_trace(degree=1 << 12, steps=6, hidden=64)
        assert len(long) > 2 * len(short)


class TestResnetTrace:
    def test_structure(self):
        trace = resnet20_trace(degree=1 << 12, top_level=30)
        hist = trace.op_histogram()
        assert hist["CMult"] >= 2 * 19  # 19 conv layers x ReLU depth 2
        assert hist["Rotation"] > 50

    def test_levels_never_negative(self):
        # Building raises WorkloadError if the chain underflows.
        trace = resnet20_trace(degree=1 << 12, top_level=30)
        assert all(op.level >= 0 for op in trace.ops)


class TestReluSurrogate:
    def test_matches_reference(self, params, encoder, encryptor,
                               decryptor, evaluator):
        import numpy as np

        from repro.workloads.resnet20 import (
            relu_surrogate_functional,
            relu_surrogate_reference,
        )

        rng = np.random.default_rng(6)
        values = rng.uniform(-1, 1, 16)
        got = relu_surrogate_functional(
            evaluator, encoder, encryptor, decryptor, values
        )
        assert np.max(np.abs(got - relu_surrogate_reference(values))) < 5e-2

    def test_surrogate_approximates_relu(self):
        import numpy as np

        from repro.workloads.resnet20 import relu_surrogate_reference

        xs = np.linspace(-1, 1, 101)
        err = np.abs(relu_surrogate_reference(xs) - np.maximum(0, xs))
        # A quadratic fit of ReLU on [-1,1] carries ~0.12 max error.
        assert float(np.max(err)) < 0.15


class TestBootstrapTrace:
    def test_single_bootstrap(self):
        trace = packed_bootstrapping_trace(degree=1 << 12)
        hist = trace.op_histogram()
        assert hist["CMult"] > 10  # EvalMod ladders
        assert hist["PMult"] > 50  # C2S/S2C diagonals

    def test_exit_level(self):
        assert exit_level(top_level=60) == 60 - 20

    def test_all_levels_within_chain(self):
        trace = packed_bootstrapping_trace(degree=1 << 12)
        assert all(0 <= op.level <= 60 for op in trace.ops)


class TestPaperRegistry:
    def test_four_benchmarks(self):
        assert set(PAPER_BENCHMARKS) == {
            "LR", "LSTM", "ResNet-20", "Packed Bootstrapping"
        }

    @pytest.mark.parametrize("name", list(PAPER_BENCHMARKS))
    def test_traces_compile_and_simulate(self, name):
        """Every paper trace compiles and runs on the simulator.

        Uses scaled-down degree for speed; full-scale runs live in the
        benchmark harness.
        """
        if name == "LSTM":
            trace = lstm_trace(degree=1 << 12, steps=2, hidden=32)
        elif name == "LR":
            trace = helr_trace(degree=1 << 12, iterations=2, bootstraps=1)
        elif name == "ResNet-20":
            trace = resnet20_trace(degree=1 << 12, top_level=30)
        else:
            trace = packed_bootstrapping_trace(degree=1 << 12)
        result = PoseidonSimulator().run(compile_trace(trace))
        assert result.total_seconds > 0
        assert result.hbm_bytes > 0
