"""Unit tests for the workload builder and level tracking."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.common import LevelTracker, WorkloadBuilder


class TestLevelTracker:
    def test_consume(self):
        t = LevelTracker(level=5, top_level=10)
        t.consume(2)
        assert t.level == 3

    def test_underflow_raises(self):
        t = LevelTracker(level=1, top_level=10)
        with pytest.raises(WorkloadError):
            t.consume(2)

    def test_refresh(self):
        t = LevelTracker(level=0, top_level=10)
        t.refresh()
        assert t.level == 10


class TestBuilderEmissions:
    def test_cmult_brings_rescale(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.cmult(2)
        hist = b.build().op_histogram()
        assert hist["CMult"] == 2
        assert hist["Rescale"] == 2
        assert b.levels.level == 3

    def test_hoisted_rotation_split(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.rotation(5, hoisted=True)
        hist = b.build().op_histogram()
        assert hist["Rotation"] == 1
        assert hist["HoistedRotation"] == 4

    def test_rotation_zero_noop(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.rotation(0)
        assert len(b.build()) == 0

    def test_resident_pmult_metadata(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.pmult(1, resident=True)
        assert b.build().ops[0].get_meta("resident") is True

    def test_top_below_start_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadBuilder(degree=1 << 12, start_level=5, top_level=3)


class TestMacroSteps:
    def test_linear_transform_consumes_one_level(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.linear_transform(64)
        assert b.levels.level == 4
        hist = b.build().op_histogram()
        assert hist["PMult"] == 64
        assert hist["Rescale"] == 1

    def test_linear_transform_sparse_fewer_ops(self):
        dense = WorkloadBuilder(degree=1 << 12, start_level=5)
        dense.linear_transform(64)
        sparse = WorkloadBuilder(degree=1 << 12, start_level=5)
        sparse.linear_transform(64, diagonals=8)
        assert len(sparse.build()) < len(dense.build())

    def test_rotate_accumulate_log_steps(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=5)
        b.rotate_accumulate(256)
        hist = b.build().op_histogram()
        assert hist["Rotation"] == 8
        assert hist["HAdd"] == 8

    def test_bootstrap_refreshes_levels(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=2, top_level=30)
        b.bootstrap()
        depth = WorkloadBuilder.bootstrap_depth()
        assert b.levels.level == 30 - depth

    def test_bootstrap_depth_formula(self):
        assert WorkloadBuilder.bootstrap_depth(
            c2s_stages=3, s2c_stages=3, taylor_degree=7, double_angles=6
        ) == 3 + (1 + 6 + 6 + 1) + 3

    def test_bootstrap_underflow_protection(self):
        b = WorkloadBuilder(degree=1 << 12, start_level=2, top_level=10)
        with pytest.raises(WorkloadError):
            b.bootstrap()  # depth 20 > top 10

    def test_sparse_bootstrap_cheaper(self):
        full = WorkloadBuilder(degree=1 << 12, start_level=2, top_level=30)
        full.bootstrap()
        sparse = WorkloadBuilder(degree=1 << 12, start_level=2, top_level=30)
        sparse.bootstrap(slots=64, stage_diagonals=8)
        assert len(sparse.build()) < len(full.build())

    def test_eval_mod_halves_parallel_levels(self):
        """The two EvalMod halves must not double-consume levels."""
        b = WorkloadBuilder(degree=1 << 12, start_level=2, top_level=40)
        b.bootstrap()
        expected = 40 - WorkloadBuilder.bootstrap_depth()
        assert b.levels.level == expected
