"""Tests for the private-statistics workload (trace + functional)."""

import numpy as np
import pytest

from repro.compiler.program import compile_trace
from repro.sim.engine import PoseidonSimulator
from repro.workloads.statistics import (
    encrypted_mean_variance,
    statistics_trace,
)


class TestTrace:
    def test_structure(self):
        trace = statistics_trace(degree=1 << 12, record_batches=4)
        hist = trace.op_histogram()
        assert hist["CMult"] == 4      # one square per batch
        assert hist["PMult"] == 4      # one mask per batch
        assert hist["Rotation"] > 8    # rotate-accumulate reductions

    def test_simulates(self):
        trace = statistics_trace(degree=1 << 12, record_batches=4)
        result = PoseidonSimulator().run(compile_trace(trace))
        assert result.total_seconds > 0

    def test_rotation_heavy_profile(self):
        """This workload is rotation/HAdd heavy — the bandwidth-bound
        end of the spectrum relative to the CMult-heavy NN traces."""
        trace = statistics_trace(degree=1 << 12, record_batches=8)
        hist = trace.op_histogram()
        assert hist["Rotation"] + hist["HAdd"] > 3 * hist["CMult"]

    def test_batch_scaling(self):
        small = statistics_trace(degree=1 << 12, record_batches=2)
        large = statistics_trace(degree=1 << 12, record_batches=8)
        assert len(large) > 3 * len(small)


class TestFunctional:
    def test_mean_variance_match_plaintext(self, params, encoder,
                                           encryptor, decryptor, evaluator):
        rng = np.random.default_rng(4)
        records = rng.normal(0.1, 0.3, 32)
        mean, var = encrypted_mean_variance(
            evaluator, encoder, encryptor, decryptor, records
        )
        assert abs(mean - np.mean(records)) < 1e-2
        assert abs(var - np.var(records)) < 1e-2

    def test_constant_records_zero_variance(self, params, encoder,
                                            encryptor, decryptor,
                                            evaluator):
        records = np.full(16, 0.25)
        mean, var = encrypted_mean_variance(
            evaluator, encoder, encryptor, decryptor, records
        )
        assert abs(mean - 0.25) < 1e-2
        assert abs(var) < 1e-2

    def test_too_many_records_rejected(self, params, encoder, encryptor,
                                       decryptor, evaluator):
        with pytest.raises(ValueError):
            encrypted_mean_variance(
                evaluator, encoder, encryptor, decryptor,
                np.zeros(params.slot_count + 1),
            )
