"""Unit tests for the synthetic workload generator."""

import pytest

from repro.compiler.ops import FheOpName
from repro.compiler.program import compile_trace
from repro.errors import WorkloadError
from repro.sim.engine import PoseidonSimulator
from repro.workloads.generator import DEFAULT_MIX, synthetic_trace


class TestSyntheticTrace:
    def test_deterministic_with_seed(self):
        a = synthetic_trace(op_count=50, seed=1)
        b = synthetic_trace(op_count=50, seed=1)
        assert [op.name for op in a.ops] == [op.name for op in b.ops]

    def test_different_seeds_differ(self):
        a = synthetic_trace(op_count=50, seed=1)
        b = synthetic_trace(op_count=50, seed=2)
        assert [op.name for op in a.ops] != [op.name for op in b.ops]

    def test_levels_consistent(self):
        trace = synthetic_trace(op_count=200, seed=3)
        assert all(op.level >= 0 for op in trace.ops)

    def test_custom_mix(self):
        trace = synthetic_trace(
            op_count=30,
            mix={FheOpName.HADD: 1.0},
            seed=4,
        )
        assert set(trace.op_histogram()) == {"HAdd"}

    def test_zero_mix_rejected(self):
        with pytest.raises(WorkloadError):
            synthetic_trace(mix={FheOpName.HADD: 0.0})

    def test_long_stream_survives_chain_exhaustion(self):
        """CMult-heavy stream forces refreshes without underflow."""
        trace = synthetic_trace(
            op_count=100,
            start_level=4,
            top_level=25,
            mix={FheOpName.CMULT: 1.0},
            seed=5,
        )
        # At least the 100 drawn CMults; refresh bootstraps add more.
        assert trace.op_histogram()["CMult"] >= 100

    def test_simulatable(self):
        trace = synthetic_trace(op_count=40, seed=6)
        result = PoseidonSimulator().run(compile_trace(trace))
        assert result.total_seconds > 0

    def test_default_mix_normalized_use(self):
        # All default-mix names are emitted over a long run.
        trace = synthetic_trace(op_count=500, seed=7, start_level=30,
                                top_level=30)
        hist = trace.op_histogram()
        for name in DEFAULT_MIX:
            assert hist.get(name.value, 0) > 0
