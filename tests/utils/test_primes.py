"""Unit tests for NTT-friendly prime generation and primitive roots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PrimeGenerationError
from repro.utils.primes import (
    default_modulus_chain,
    find_ntt_primes,
    find_primitive_root,
    is_prime,
    minimal_primitive_root,
    nth_root_of_unity,
    special_primes,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 9, 15, 91, 561, 7917):
            assert not is_prime(n)

    def test_carmichael_numbers(self):
        # Classic Fermat pseudoprimes must be rejected.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_prime(n)

    def test_large_known_prime(self):
        assert is_prime((1 << 31) - 1)  # Mersenne M31

    def test_large_known_composite(self):
        assert not is_prime((1 << 29) - 1)  # 233 * 1103 * 2089

    @given(st.integers(2, 10000))
    @settings(max_examples=200)
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestPrimitiveRoots:
    def test_minimal_root_of_7(self):
        assert minimal_primitive_root(7) == 3

    def test_minimal_root_rejects_composite(self):
        with pytest.raises(PrimeGenerationError):
            minimal_primitive_root(8)

    def test_root_order(self):
        q = find_ntt_primes(20, 1, 64)[0]
        root = find_primitive_root(q, 128)
        assert pow(root, 128, q) == 1
        assert pow(root, 64, q) != 1

    def test_order_must_divide(self):
        with pytest.raises(PrimeGenerationError):
            find_primitive_root(7, 5)

    def test_nth_root_of_unity(self):
        q = find_ntt_primes(20, 1, 32)[0]
        w = nth_root_of_unity(q, 32)
        assert pow(w, 32, q) == 1
        assert pow(w, 16, q) != 1


class TestFindNttPrimes:
    def test_congruence(self):
        n = 1024
        primes = find_ntt_primes(30, 5, n)
        assert len(primes) == 5
        for p in primes:
            assert is_prime(p)
            assert p % (2 * n) == 1
            assert p.bit_length() == 30

    def test_distinct_and_descending(self):
        primes = find_ntt_primes(25, 8, 256)
        assert len(set(primes)) == 8
        assert primes == sorted(primes, reverse=True)

    def test_ascending(self):
        primes = find_ntt_primes(25, 3, 256, descending=False)
        assert primes == sorted(primes)

    def test_exhaustion_raises(self):
        # 2n is too large relative to the prime range: no candidates.
        with pytest.raises(PrimeGenerationError):
            find_ntt_primes(10, 1, 4096)

    def test_rejects_bad_count(self):
        with pytest.raises(PrimeGenerationError):
            find_ntt_primes(20, 0, 64)

    def test_chain_and_special_disjoint(self):
        chain = default_modulus_chain(128, 4)
        special = special_primes(128, 2)
        assert not (set(chain) & set(special))
