"""Unit tests for bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import NTTError
from repro.utils.bitops import (
    bit_reverse,
    bit_reverse_permutation,
    digit_reverse,
    digit_reverse_permutation,
    ilog2,
    is_power_of_two,
    next_power_of_two,
    reverse_bits_array,
)


class TestIsPowerOfTwo:
    def test_powers(self):
        for e in range(20):
            assert is_power_of_two(1 << e)

    def test_non_powers(self):
        for n in (0, -1, -4, 3, 5, 6, 7, 9, 100, 1023):
            assert not is_power_of_two(n)


class TestIlog2:
    def test_exact(self):
        for e in range(20):
            assert ilog2(1 << e) == e

    def test_rejects_non_power(self):
        with pytest.raises(NTTError):
            ilog2(12)

    def test_rejects_zero(self):
        with pytest.raises(NTTError):
            ilog2(0)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (1023, 1024),
                       (1025, 2048)]
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestBitReverse:
    def test_small(self):
        assert bit_reverse(0b0011, 4) == 0b1100
        assert bit_reverse(0b0001, 4) == 0b1000
        assert bit_reverse(0, 4) == 0

    def test_involution(self):
        for v in range(64):
            assert bit_reverse(bit_reverse(v, 6), 6) == v

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bit_reverse(16, 4)

    @given(st.integers(1, 16), st.data())
    def test_involution_property(self, width, data):
        v = data.draw(st.integers(0, (1 << width) - 1))
        assert bit_reverse(bit_reverse(v, width), width) == v


class TestBitReversePermutation:
    def test_is_permutation(self):
        perm = bit_reverse_permutation(32)
        assert sorted(perm.tolist()) == list(range(32))

    def test_matches_scalar(self):
        n = 64
        perm = bit_reverse_permutation(n)
        for i in range(n):
            assert perm[i] == bit_reverse(i, 6)

    def test_involution(self):
        perm = bit_reverse_permutation(128)
        assert np.array_equal(perm[perm], np.arange(128))


class TestDigitReverse:
    def test_base4(self):
        # 0b0110 in base-4 digits: (01)(10) -> reversed (10)(01).
        assert digit_reverse(0b0110, 2, 2) == 0b1001

    def test_matches_bit_reverse_for_base2(self):
        for v in range(64):
            assert digit_reverse(v, 1, 6) == bit_reverse(v, 6)

    def test_permutation_valid(self):
        perm = digit_reverse_permutation(64, 2)
        assert sorted(perm.tolist()) == list(range(64))

    def test_rejects_mismatched_radix(self):
        with pytest.raises(NTTError):
            digit_reverse_permutation(32, 2)  # 2^5 not a power of 4


class TestReverseBitsArray:
    def test_matches_scalar(self):
        values = np.arange(16, dtype=np.int64)
        out = reverse_bits_array(values, 4)
        expected = np.array([bit_reverse(int(v), 4) for v in values])
        assert np.array_equal(out, expected)
