"""Unit tests for shared validation helpers."""

import numpy as np
import pytest

from repro.errors import ParameterError, RNSError
from repro.utils.checks import (
    as_uint64_coeffs,
    check_in_range,
    check_positive,
    check_power_of_two,
    check_same_length,
)


class TestCheckPowerOfTwo:
    def test_accepts(self):
        assert check_power_of_two("n", 1024) == 1024

    def test_accepts_numpy_int(self):
        assert check_power_of_two("n", np.int64(64)) == 64

    def test_rejects(self):
        with pytest.raises(ParameterError):
            check_power_of_two("n", 12)

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            check_power_of_two("n", 8.0)


class TestCheckPositive:
    def test_accepts(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_positive("x", -1)


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range("v", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("v", 2.0, 1.0, 2.0) == 2.0

    def test_rejects(self):
        with pytest.raises(ParameterError):
            check_in_range("v", 2.5, 1.0, 2.0)


class TestCheckSameLength:
    def test_accepts(self):
        check_same_length("a", [1, 2], "b", [3, 4])

    def test_rejects(self):
        with pytest.raises(RNSError):
            check_same_length("a", [1], "b", [1, 2])


class TestAsUint64Coeffs:
    def test_reduces_mod_q(self):
        out = as_uint64_coeffs([-1, 5, 17], 3, 7)
        assert out.tolist() == [6, 5, 3]
        assert out.dtype == np.uint64

    def test_rejects_wrong_length(self):
        with pytest.raises(RNSError):
            as_uint64_coeffs([1, 2], 3, 7)
