"""Unit tests for the CLI (light targets only; heavy ones are benches)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.lanes == 512
        assert not args.naive_auto

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_radix_list(self):
        args = build_parser().parse_args(["fig10", "--radix", "2", "3"])
        assert args.radix == [2, 3]


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "fig10" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HAdd" in out and "Rotation" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "W_fused" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        out = capsys.readouterr().out
        assert "HFAuto" in out

    def test_table11_with_lanes(self, capsys):
        assert main(["table11", "--lanes", "128"]) == 0
        out = capsys.readouterr().out
        assert "MM" in out

    def test_fig10_custom_radices(self, capsys):
        assert main(["fig10", "--radix", "2", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "optimal k: 3" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Keyswitch" in out


class TestObservability:
    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main([
            "trace", "--benchmark", "bootstrapping", "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["label"] == "Packed Bootstrapping"
        assert "perfetto" in capsys.readouterr().out

    def test_metrics_writes_snapshot(self, tmp_path):
        import json

        out = tmp_path / "metrics.json"
        assert main([
            "metrics", "--benchmark", "bootstrapping", "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["meta"]["benchmark"] == "Packed Bootstrapping"
        assert doc["metrics"]["sim.tasks"] > 0

    def test_benchmark_alias_rejected_when_unknown(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["trace", "--benchmark", "nope"])
