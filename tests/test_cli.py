"""Unit tests for the CLI (light targets only; heavy ones are benches)."""

import json

import pytest

from repro import kernels
from repro.cli import build_parser, main


class TestParser:
    def test_hw_defaults(self):
        args = build_parser().parse_args(["table4"])
        assert args.lanes == 512
        assert not args.naive_auto

    def test_rejects_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_radix_list(self):
        args = build_parser().parse_args(["fig10", "--radix", "2", "3"])
        assert args.radix == [2, 3]

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workload == "keyswitch"
        assert args.arrival_rate == 100.0
        assert args.max_batch == 8
        assert args.policy == "fifo"
        assert args.seed == 0
        assert args.instances == 1
        assert args.router == "key-affinity"
        assert args.key_cache == 4
        assert args.autoscale_max is None

    def test_serve_fleet_flags(self):
        args = build_parser().parse_args([
            "serve", "--instances", "4", "--router", "round-robin",
            "--key-cache", "2", "--key-bytes", "1000000",
            "--tenants", "8", "--key-sets", "16", "--key-skew", "0.8",
            "--max-tenant-share", "0.5", "--autoscale-max", "6",
        ])
        assert args.instances == 4
        assert args.router == "round-robin"
        assert args.key_cache == 2
        assert args.key_bytes == 1000000
        assert (args.tenants, args.key_sets) == (8, 16)
        assert args.key_skew == 0.8
        assert args.max_tenant_share == 0.5
        assert args.autoscale_max == 6

    def test_serve_rejects_unknown_router(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--router", "coin-flip"]
            )


class TestFlagScoping:
    """Regression: the old single flat parser accepted every flag on
    every command, so ``table9 --validate`` or ``fig7 --radix 4`` were
    silently ignored instead of erroring. Each command now only parses
    the flags it acts on."""

    @pytest.mark.parametrize("argv", [
        ["table9", "--validate"],          # obs flag on a table command
        ["table1", "--benchmark", "lr"],   # obs flag on a table command
        ["table1", "-o", "x.json"],        # obs flag on a table command
        ["trace", "--radix", "4"],         # fig10 flag on an obs command
        ["fig7", "--radix", "4"],          # fig10 flag elsewhere
        ["table4", "--workload", "LR"],    # fig11 flag on a table
        ["fig10", "--lanes", "128"],       # hw flag where hw is unused
        ["table1", "--lanes", "128"],      # hw flag on a static table
        ["serve", "--benchmark", "lr"],    # serve takes --workload
        ["list", "--validate"],
    ])
    def test_out_of_scope_flag_errors(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(argv)
        assert exc.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["table4", "--lanes", "256"],
        ["table6", "--naive-auto"],
        ["fig10", "--radix", "2", "3"],
        ["fig11", "--workload", "LR"],
        ["trace", "--benchmark", "lr", "--validate", "-o", "t.json"],
        ["metrics", "--benchmark", "lr", "-o", "m.json", "--lanes", "256"],
        ["serve", "--arrival-rate", "50", "--max-batch", "4"],
        ["table1", "--kernel-backend", "batched"],
    ])
    def test_documented_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert callable(args.func)


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out
        assert "fig10" in out
        assert "serve" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "HAdd" in out and "Rotation" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "W_fused" in out

    def test_table8(self, capsys):
        assert main(["table8"]) == 0
        out = capsys.readouterr().out
        assert "HFAuto" in out

    def test_table11_with_lanes(self, capsys):
        assert main(["table11", "--lanes", "128"]) == 0
        out = capsys.readouterr().out
        assert "MM" in out

    def test_fig10_custom_radices(self, capsys):
        assert main(["fig10", "--radix", "2", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "optimal k: 3" in out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Keyswitch" in out

    def test_serve_fleet(self, capsys, tmp_path):
        metrics = tmp_path / "fleet.json"
        trace = tmp_path / "fleet-trace.json"
        assert main([
            "serve", "--workload", "keyswitch",
            "--arrival-rate", "600", "--requests", "12",
            "--instances", "2", "--router", "key-affinity",
            "--key-cache", "2", "--tenants", "4", "--key-sets", "6",
            "--key-skew", "0.8", "--validate",
            "-o", str(metrics), "--trace", str(trace),
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 instances router=key-affinity" in out
        assert "schedule invariants OK per instance" in out
        doc = json.loads(metrics.read_text())
        assert doc["metrics"]["cluster.instances"] == 2
        tdoc = json.loads(trace.read_text())
        names = {
            e["args"]["name"] for e in tdoc["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert "poseidon-i1" in names


class TestKernelBackendScoping:
    def test_backend_restored_after_dispatch(self, capsys):
        """Regression: main() used to call kernels.set_backend(), a
        process-global mutation that leaked into everything the caller
        ran afterwards (tests, notebooks embedding the CLI). The
        override must be scoped to the dispatched command."""
        before = kernels.get_backend()
        assert main(["table1", "--kernel-backend", "batched"]) == 0
        assert kernels.get_backend() is before
        capsys.readouterr()

    def test_backend_restored_on_command_failure(self, capsys):
        before = kernels.get_backend()
        with pytest.raises(SystemExit):
            main(["trace", "--benchmark", "nope",
                  "--kernel-backend", "batched"])
        assert kernels.get_backend() is before
        capsys.readouterr()

    def test_unknown_backend_rejected_at_parse(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["table1", "--kernel-backend", "nope"]
            )
        capsys.readouterr()


class TestObservability:
    def test_trace_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--benchmark", "bootstrapping", "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["traceEvents"]
        assert doc["otherData"]["label"] == "Packed Bootstrapping"
        assert "perfetto" in capsys.readouterr().out

    def test_metrics_writes_snapshot(self, tmp_path):
        out = tmp_path / "metrics.json"
        assert main([
            "metrics", "--benchmark", "bootstrapping", "-o", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        assert doc["meta"]["benchmark"] == "Packed Bootstrapping"
        assert doc["metrics"]["sim.tasks"] > 0

    def test_benchmark_alias_rejected_when_unknown(self):
        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["trace", "--benchmark", "nope"])


class TestServe:
    def test_serve_reports_and_validates(self, capsys):
        assert main([
            "serve", "--arrival-rate", "200", "--requests", "24",
            "--seed", "0", "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "schedule invariants OK" in out
        assert "throughput:" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "max queue depth:" in out

    def test_serve_metrics_json_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            assert main([
                "serve", "--arrival-rate", "200", "--requests", "24",
                "--seed", "3", "-o", str(path),
            ]) == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        doc = json.loads(paths[0].read_text())
        assert doc["meta"]["requests_completed"] == 24
        assert doc["metrics"]["serve.requests.completed"] == 24

    def test_serve_trace_has_request_track(self, tmp_path, capsys):
        out = tmp_path / "serve_trace.json"
        assert main([
            "serve", "--arrival-rate", "200", "--requests", "8",
            "--trace", str(out),
        ]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        cats = {e.get("cat") for e in doc["traceEvents"]}
        assert "request" in cats
        assert doc["otherData"]["serving"]["requests_completed"] == 8

    def test_serve_unknown_workload_errors(self):
        with pytest.raises(SystemExit, match="unknown request workload"):
            main(["serve", "--workload", "nope"])

    def test_serve_bad_policy_errors(self):
        with pytest.raises(SystemExit, match="max_batch_size"):
            main(["serve", "--max-batch", "0"])

    def test_serve_arrival_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "arrivals.json"
        trace.write_text(json.dumps([0.0, 0.001, 0.002, 0.05]))
        assert main([
            "serve", "--arrival-trace", str(trace), "--validate",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 arrived, 4 admitted" in out
