"""MetricsRegistry semantics: instruments, no-op mode, nesting."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    HISTOGRAM_RESERVOIR,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_keeps_last_value(self):
        g = Gauge("x")
        g.set(3.5)
        g.set(1.25)
        assert g.value == 1.25


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0

    def test_empty_summary(self):
        assert Histogram("x").summary()["count"] == 0

    def test_quantiles_ordered(self):
        h = Histogram("x")
        for v in range(100):
            h.observe(float(v))
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(0.99)
        assert h.quantile(0.5) == pytest.approx(50.0, abs=2)

    def test_quantile_range_checked(self):
        h = Histogram("x")
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_reservoir_stays_bounded_but_exact_aggregates(self):
        h = Histogram("x")
        n = 5 * HISTOGRAM_RESERVOIR
        for v in range(n):
            h.observe(float(v))
        assert h.count == n
        assert h.total == sum(range(n))
        assert h.min == 0.0 and h.max == n - 1
        assert len(h._samples) < HISTOGRAM_RESERVOIR
        # decimated reservoir still tracks the distribution roughly
        assert h.quantile(0.5) == pytest.approx(n / 2, rel=0.1)


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc(2)
        reg.gauge("a.gauge").set(7.0)
        reg.histogram("c.hist").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a.gauge", "b.count", "c.hist"]
        assert snap["b.count"] == 2
        assert snap["a.gauge"] == 7.0
        assert snap["c.hist"]["count"] == 1

    def test_reset_clears(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0


class TestCollectionSwitch:
    def test_disabled_by_default(self):
        assert metrics.active() is None

    def test_collecting_installs_and_restores(self):
        assert metrics.active() is None
        with metrics.collecting() as reg:
            assert metrics.active() is reg
            reg.counter("x").inc()
        assert metrics.active() is None
        assert reg.counter("x").value == 1

    def test_collecting_nests(self):
        with metrics.collecting() as outer:
            with metrics.collecting() as inner:
                assert metrics.active() is inner
            assert metrics.active() is outer
        assert metrics.active() is None

    def test_enable_with_explicit_registry(self):
        mine = MetricsRegistry()
        try:
            assert metrics.enable(mine) is mine
            assert metrics.active() is mine
        finally:
            metrics.disable()
        assert metrics.active() is None

class TestCollectionIsolation:
    """Regression tests for the cross-contamination bug: the old
    single-slot save/restore broke under exits that do not nest
    cleanly (fixtures, generators, interleaved ``with`` blocks) — an
    early exit disabled a still-open collector, and a late exit
    resurrected a closed registry that then silently absorbed every
    later run's metrics."""

    def test_nested_collector_isolated_from_outer(self):
        with metrics.collecting() as outer:
            metrics.active().counter("n").inc()
            with metrics.collecting() as inner:
                metrics.active().counter("n").inc(10)
            metrics.active().counter("n").inc()
        assert outer.counter("n").value == 2
        assert inner.counter("n").value == 10

    def test_sequential_collectors_do_not_share_state(self):
        with metrics.collecting() as first:
            metrics.active().counter("n").inc(3)
        with metrics.collecting() as second:
            metrics.active().counter("n").inc(4)
        assert first.counter("n").value == 3
        assert second.counter("n").value == 4
        assert first is not second

    def test_out_of_order_exit_keeps_open_collector_active(self):
        # Open A then B, close A first (LIFO violation): B must keep
        # collecting, and closing B must turn collection fully off.
        cm_a = metrics.collecting()
        cm_a.__enter__()
        cm_b = metrics.collecting()
        reg_b = cm_b.__enter__()
        cm_a.__exit__(None, None, None)
        assert metrics.active() is reg_b
        metrics.active().counter("n").inc(7)
        cm_b.__exit__(None, None, None)
        assert metrics.active() is None
        assert reg_b.counter("n").value == 7

    def test_out_of_order_exit_does_not_resurrect_closed_registry(self):
        # The late exit of an interleaved collector must not reinstall
        # anything — later runs record nowhere unless newly enabled.
        cm_a = metrics.collecting()
        reg_a = cm_a.__enter__()
        cm_b = metrics.collecting()
        cm_b.__enter__()
        cm_a.__exit__(None, None, None)
        cm_b.__exit__(None, None, None)
        assert metrics.active() is None
        with metrics.collecting() as fresh:
            metrics.active().counter("n").inc()
        assert metrics.active() is None
        assert fresh.counter("n").value == 1
        assert "n" not in reg_a

    def test_enable_replaces_open_collectors(self):
        cm = metrics.collecting()
        cm.__enter__()
        mine = MetricsRegistry()
        try:
            metrics.enable(mine)
            assert metrics.active() is mine
        finally:
            metrics.disable()
        cm.__exit__(None, None, None)  # stale exit: must be harmless
        assert metrics.active() is None

    def test_exception_inside_collector_still_removes_it(self):
        with pytest.raises(RuntimeError):
            with metrics.collecting():
                raise RuntimeError("boom")
        assert metrics.active() is None
