"""Regression comparator: identical passes, injected slowdowns fail."""

import copy

import pytest

from repro.obs.regression import (
    Regression,
    compare_baselines,
    load_baseline,
    make_baseline,
    new_workloads,
    save_baseline,
)


def _doc(**seconds):
    return make_baseline(
        {
            name: {"simulated_seconds": s, "wall_seconds": 0.1}
            for name, s in seconds.items()
        },
        created="2026-08-06",
        label="test",
    )


class TestMakeBaseline:
    def test_requires_simulated_seconds(self):
        with pytest.raises(ValueError, match="simulated_seconds"):
            make_baseline({"w": {"wall_seconds": 1.0}})

    def test_schema_stamp(self):
        assert _doc(a=1.0)["schema"] == 1


class TestComparator:
    def test_identical_baselines_pass(self):
        doc = _doc(**{"table6/LR": 0.5, "table4/PMult": 1e-4})
        assert compare_baselines(doc, copy.deepcopy(doc)) == []

    def test_detects_injected_20pct_slowdown(self):
        base = _doc(**{"table6/LR": 0.5, "table6/LSTM": 1.9})
        cur = _doc(**{"table6/LR": 0.5 * 1.20, "table6/LSTM": 1.9})
        findings = compare_baselines(base, cur, threshold=0.10)
        assert len(findings) == 1
        f = findings[0]
        assert f.workload == "table6/LR"
        assert f.kind == "slower"
        assert f.ratio == pytest.approx(1.20)
        assert "+20.0%" in f.describe()

    def test_within_threshold_passes(self):
        base = _doc(a=1.0)
        cur = _doc(a=1.09)
        assert compare_baselines(base, cur, threshold=0.10) == []

    def test_speedup_never_fails(self):
        assert compare_baselines(_doc(a=1.0), _doc(a=0.2)) == []

    def test_missing_workload_reported(self):
        base = _doc(a=1.0, b=2.0)
        cur = _doc(a=1.0)
        findings = compare_baselines(base, cur)
        assert [f.kind for f in findings] == ["missing"]
        assert findings[0].workload == "b"
        assert "absent" in findings[0].describe()

    def test_new_workload_listed_not_failed(self):
        base = _doc(a=1.0)
        cur = _doc(a=1.0, c=3.0)
        assert compare_baselines(base, cur) == []
        assert new_workloads(base, cur) == ["c"]

    def test_schema_mismatch_rejected(self):
        bad = _doc(a=1.0)
        bad["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            compare_baselines(bad, _doc(a=1.0))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_baselines(_doc(a=1.0), _doc(a=1.0), threshold=-0.1)

    def test_findings_sorted_by_workload(self):
        base = _doc(b=1.0, a=1.0)
        cur = _doc(b=2.0, a=2.0)
        findings = compare_baselines(base, cur)
        assert [f.workload for f in findings] == ["a", "b"]


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        doc = _doc(**{"table6/LR": 0.517})
        path = tmp_path / "baseline.json"
        save_baseline(doc, path)
        assert load_baseline(path) == doc


class TestRegressDriver:
    """End-to-end: the benchmarks/regress.py entry point."""

    @pytest.fixture()
    def regress(self):
        import importlib.util
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parent.parent.parent
            / "benchmarks" / "regress.py"
        )
        spec = importlib.util.spec_from_file_location("regress", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    def test_smoke_suite_names_are_stable(self, regress):
        names = [name for name, _ in regress.build_suite(smoke=True)]
        assert names == [
            "table4/PMult",
            "table4/Keyswitch",
            "table6/LR",
            "table6-passes/LR",
            "table6-passes/Packed Bootstrapping",
            "fig10/k=2",
            "fig10/k=3",
            "serve/keyswitch-r300-b8",
            "serve/saturation-b8",
            "cluster/faultfree",
            "cluster/crash-recovery",
            "microntt/N4096-L8/reference",
            "microntt/N4096-L8/batched",
            "microntt/N4096-L8/numpy",
            "microntt-fused/N4096-L8-k3/batched",
            "microntt-fused/N4096-L8-k3/numpy",
        ]
        full = {name for name, _ in regress.build_suite(smoke=False)}
        assert set(names) <= full

    def test_exit_codes(self, regress, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        out_dir = tmp_path / "out"
        argv = [
            "--smoke",
            "--baseline", str(baseline_path),
            "--out-dir", str(out_dir),
        ]
        # no baseline yet -> exit 2
        assert regress.main(argv) == 2
        # create it -> subsequent identical run passes
        assert regress.main(argv + ["--update-baseline"]) == 0
        assert regress.main(argv) == 0
        # inject a 20% slowdown into the stored baseline's LR entry
        doc = load_baseline(baseline_path)
        doc["workloads"]["table6/LR"]["simulated_seconds"] /= 1.20
        save_baseline(doc, baseline_path)
        assert regress.main(argv) == 1
        err = capsys.readouterr().err
        assert "table6/LR" in err


class TestRegressionDataclass:
    def test_describe_slower(self):
        r = Regression(
            workload="w", kind="slower",
            baseline_seconds=1.0, current_seconds=1.5, ratio=1.5,
        )
        assert "+50.0%" in r.describe()
