"""Instrumentation hooks: the layers report into an active registry.

Also asserts the inverse: with collection disabled, simulated results
are identical and no registry is touched (the zero-overhead contract).
"""

import numpy as np
import pytest

from repro.compiler.program import compile_trace
from repro.ntt.negacyclic import ntt_negacyclic
from repro.obs import collecting
from repro.rns.barrett import BarrettReducer
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.sim.engine import PoseidonSimulator
from repro.utils.primes import find_ntt_primes
from repro.workloads import synthetic_trace


@pytest.fixture(scope="module")
def program():
    return compile_trace(synthetic_trace(op_count=30, seed=3))


class TestSimulatorMetrics:
    def test_run_reports_spans_and_counters(self, program):
        with collecting() as reg:
            result = PoseidonSimulator().run(program)
        snap = reg.snapshot()
        assert snap["sim.tasks"] == len(result.task_records)
        assert snap["sim.makespan_seconds"] == result.total_seconds
        assert snap["sim.hbm.bytes"] == result.hbm_bytes
        assert snap["sim.task.busy_seconds"]["count"] == len(
            result.task_records
        )
        assert snap["sim.task.queue_wait_seconds"]["min"] >= 0.0
        per_core = sum(
            v for k, v in snap.items()
            if k.startswith("sim.core.") and k.endswith(".busy_seconds")
        )
        assert per_core == pytest.approx(
            sum(result.core_busy_seconds.values())
        )

    def test_memory_model_reports_spad_and_channels(self, program):
        with collecting() as reg:
            PoseidonSimulator().run(program)
        snap = reg.snapshot()
        hits = snap.get("sim.spad.hits", 0)
        misses = snap.get("sim.spad.misses", 0)
        assert hits + misses == len(program.tasks)
        assert snap["sim.hbm.transfers"] <= len(program.tasks)
        assert 1 <= snap["sim.hbm.channels_used"]["max"] <= 32

    def test_disabled_mode_changes_nothing(self, program):
        baseline = PoseidonSimulator().run(program)
        with collecting():
            observed = PoseidonSimulator().run(program)
        again = PoseidonSimulator().run(program)
        assert baseline.total_seconds == observed.total_seconds
        assert baseline.total_seconds == again.total_seconds
        assert baseline.task_records == observed.task_records


class TestKernelMetrics:
    def test_ntt_butterflies_counted(self):
        n = 64
        q = find_ntt_primes(30, 1, n)[0]
        ctx = RnsContext((q,))
        poly = RnsPolynomial(
            np.arange(n, dtype=np.uint64).reshape(1, n) % np.uint64(q),
            ctx,
            Domain.COEFFICIENT,
        )
        with collecting() as reg:
            ntt_negacyclic(poly)
        snap = reg.snapshot()
        assert snap["ntt.transforms.forward"] == 1
        # (n/2) * log2(n) TAM butterflies for one length-n transform
        assert snap["ntt.butterflies"] == (n // 2) * 6

    def test_barrett_reductions_counted(self):
        q = find_ntt_primes(30, 1, 64)[0]
        reducer = BarrettReducer(q)
        with collecting() as reg:
            reducer.reduce(np.arange(100, dtype=np.uint64))
            reducer.reduce_scalar(5)
        assert reg.snapshot()["rns.barrett.reductions"] == 101

    def test_keyswitch_and_evaluator_counters(
        self, encryptor, encoder, evaluator, params
    ):
        data = np.linspace(-1, 1, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(data))
        with collecting() as reg:
            evaluator.multiply(ct, ct)
        snap = reg.snapshot()
        assert snap["ckks.keyswitch.calls"] == 1
        assert snap["ckks.keyswitch.digits"] >= 1
        assert snap["ckks.keyswitch.ntt_limb_transforms"] > 0
        assert snap["ckks.op.CMult"] == 1
        assert snap["ntt.butterflies"] > 0
