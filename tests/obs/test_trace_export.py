"""Chrome-trace export: valid JSON, spans match Timeline intervals."""

import json

import pytest

from repro.compiler.program import compile_trace
from repro.obs.trace_export import (
    TRACK_IDS,
    chrome_trace,
    chrome_trace_events,
    write_chrome_trace,
    write_metrics_json,
)
from repro.sim.engine import PoseidonSimulator
from repro.sim.timeline import Timeline
from repro.workloads import synthetic_trace


@pytest.fixture(scope="module")
def result():
    trace = synthetic_trace(op_count=40, seed=7)
    return PoseidonSimulator().run(compile_trace(trace))


def _span_events(events):
    # Task occupancy spans only: HBM stream spans live on their own
    # track and stall slices nest inside the task spans.
    return [
        e for e in events
        if e["ph"] == "X" and e["cat"] not in ("HBM", "stall")
    ]


class TestChromeTraceEvents:
    def test_metadata_names_every_track(self, result):
        events = chrome_trace_events(result)
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used_cores = {r.core for r in result.task_records}
        assert used_cores <= names
        assert "HBM" in names

    def test_one_span_per_task_record(self, result):
        spans = _span_events(chrome_trace_events(result))
        assert len(spans) == len(result.task_records)

    def test_spans_match_timeline_intervals(self, result):
        timeline = Timeline(result)
        events = chrome_trace_events(result)
        for core, intervals in timeline.intervals.items():
            tid = TRACK_IDS[core]
            spans = sorted(
                (e for e in _span_events(events) if e["tid"] == tid),
                key=lambda e: e["ts"],
            )
            assert len(spans) == len(intervals)
            for span, interval in zip(spans, intervals):
                assert span["ts"] == pytest.approx(interval.start * 1e6)
                assert span["ts"] + span["dur"] == pytest.approx(
                    interval.end * 1e6
                )
                assert span["name"] == interval.op_label

    def test_per_core_spans_do_not_overlap(self, result):
        Timeline(result).verify_no_overlap()
        events = _span_events(chrome_trace_events(result))
        by_tid: dict[int, list] = {}
        for e in events:
            by_tid.setdefault(e["tid"], []).append(e)
        for spans in by_tid.values():
            spans.sort(key=lambda e: e["ts"])
            for prev, cur in zip(spans, spans[1:]):
                assert cur["ts"] >= prev["ts"] + prev["dur"] - 1e-6

    def test_queue_wait_includes_hbm_arbitration(self, result):
        """queue_wait = max(core wait, HBM wait): the exported wait
        covers HBM-stream arbitration, not just core contention."""
        spans = _span_events(chrome_trace_events(result))
        assert spans, "expected task spans"
        for span in spans:
            args = span["args"]
            assert args["queue_wait_seconds"] == pytest.approx(
                max(args["core_wait_seconds"], args["hbm_wait_seconds"])
            )
            assert args["queue_wait_seconds"] >= args["hbm_wait_seconds"]

    def test_stall_slices_nest_inside_their_span(self, result):
        events = chrome_trace_events(result)
        stalls = [e for e in events if e["ph"] == "X" and e["cat"] == "stall"]
        spans = {
            (e["tid"], e["name"], e["ts"]): e for e in _span_events(events)
        }
        expected = sum(
            1 for r in result.task_records if r.stall_seconds > 0
        )
        assert len(stalls) == expected
        for stall in stalls:
            parents = [
                s for s in spans.values()
                if s["tid"] == stall["tid"]
                and s["ts"] <= stall["ts"] + 1e-9
                and stall["ts"] + stall["dur"] <= s["ts"] + s["dur"] + 1e-9
            ]
            assert parents, f"stall slice {stall['name']} has no parent span"

    def test_hbm_counter_monotonic_and_totals(self, result):
        events = chrome_trace_events(result)
        counters = [e for e in events if e["ph"] == "C"]
        values = [e["args"]["cumulative"] for e in counters]
        assert values == sorted(values)
        assert values[-1] == result.hbm_bytes


class TestDocuments:
    def test_round_trip_through_json(self, result, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(result, path, label="synthetic")
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["otherData"]["label"] == "synthetic"
        assert loaded["otherData"]["simulated_seconds"] == pytest.approx(
            result.total_seconds
        )

    def test_deterministic_export(self, result):
        assert chrome_trace(result) == chrome_trace(result)

    def test_metrics_json_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        doc = write_metrics_json(
            {"a.count": 3, "b.hist": {"count": 1, "mean": 2.0}},
            path,
            meta={"benchmark": "LR"},
        )
        loaded = json.loads(path.read_text())
        assert loaded == doc
        assert loaded["schema"] == 1
        assert loaded["metrics"]["a.count"] == 3
        assert loaded["meta"]["benchmark"] == "LR"
