#!/usr/bin/env python
"""Regenerate the golden vectors under ``tests/golden``.

Every *expected* value in the emitted JSON files is computed here with
unbounded Python integer arithmetic — no numpy, no kernel code — so the
vectors are an oracle that shares no failure modes with either kernel
backend. The repo is imported only to discover *parameters* (the NTT
primes and the psi each twiddle table selects), which are then frozen
into the JSON alongside the expected values.

Usage::

    python tests/golden/regenerate.py

Rerun only when the vector *definitions* change (new shapes, new ops);
a kernel change must never require regenerating — that is the point.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent
REPO_ROOT = GOLDEN_DIR.parent.parent
_SRC = str(REPO_ROOT / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def lcg_stream(seed: int):
    """Deterministic 64-bit LCG (Knuth MMIX constants), pure Python.

    Used instead of numpy's generators so the input streams are stable
    across numpy versions and reproducible from the JSON alone.
    """
    state = seed & (2**64 - 1)
    while True:
        state = (6364136223846793005 * state + 1442695040888963407) % 2**64
        yield state


def rand_residues(seed: int, n: int, q: int) -> list[int]:
    gen = lcg_stream(seed)
    return [next(gen) % q for _ in range(n)]


def negacyclic_ntt(a: list[int], psi: int, q: int) -> list[int]:
    """out[t] = a(psi^(2t+1)) mod q — the big-int negacyclic DFT."""
    n = len(a)
    return [
        sum(ai * pow(psi, i * (2 * t + 1), q) for i, ai in enumerate(a)) % q
        for t in range(n)
    ]


def make_ntt_vectors() -> dict:
    from repro.ntt.tables import get_twiddle_table

    cases = []
    # The 62-bit case sits at the overflow edge: residue products span
    # 124 bits, so only backends with a 128-bit split-reduction path
    # can run it (narrow backends skip it by capability).
    shapes = [(30, 16), (30, 64), (31, 32), (62, 32)]
    for seed, (q_bits, n) in enumerate(shapes):
        from repro.utils.primes import find_ntt_primes

        q = find_ntt_primes(q_bits, 1, n)[0]
        psi = int(get_twiddle_table(q, n).psi)
        a = rand_residues(1000 + seed, n, q)
        cases.append({
            "q": q,
            "n": n,
            "psi": psi,
            "input": a,
            "expected": negacyclic_ntt(a, psi, q),
        })
    return {"description": "negacyclic NTT: expected[t] = a(psi^(2t+1))",
            "cases": cases}


def make_barrett_vectors() -> dict:
    from repro.utils.primes import find_ntt_primes

    cases = []
    for q_bits in (30, 31, 62):
        q = find_ntt_primes(q_bits, 1, 64)[0]
        # Narrow moduli cover the full post-multiply range [0, q^2); at
        # 62 bits q^2 overflows the uint64 carrier, so the legal domain
        # (and the one the wide reduction path must handle) is [0, 2^64).
        domain = min(q * q, 2**64)
        edge = [0, 1, q - 1, q, q + 1, 2 * q - 1, domain - 1]
        rand = [v % domain for v in rand_residues(2000 + q_bits, 9, domain)]
        inputs = edge + rand
        cases.append({
            "q": q,
            "input": inputs,
            "expected": [x % q for x in inputs],
        })
    return {"description": "Barrett reduction: x in [0, min(q^2, 2^64))"
                           " -> x mod q",
            "cases": cases}


def fast_basis_convert(
    rows: list[list[int]], source: list[int], target: list[int]
) -> list[list[int]]:
    """Eq. 1 RNSconv with big ints: exact per-limb MM/MA cascade."""
    big_q = 1
    for q in source:
        big_q *= q
    q_hat = [big_q // q for q in source]
    q_hat_inv = [pow(h % q, -1, q) for h, q in zip(q_hat, source)]
    n = len(rows[0])
    out = []
    for p in target:
        acc = []
        for t in range(n):
            s = 0
            for j, q in enumerate(source):
                y = rows[j][t] * q_hat_inv[j] % q
                s += y * (q_hat[j] % p)
            acc.append(s % p)
        out.append(acc)
    return out


def make_basis_vectors() -> dict:
    from repro.utils.primes import find_ntt_primes

    n = 16
    base = find_ntt_primes(30, 3, n)
    aux = find_ntt_primes(31, 2, n)
    big_p = aux[0] * aux[1]

    # ModUp: residues over B, extended exactly (per Eq. 3) onto B ∪ C.
    base_rows = [rand_residues(3000 + j, n, q) for j, q in enumerate(base)]
    mod_up_expected = base_rows + fast_basis_convert(base_rows, base, aux)

    # ModDown: residues over B ∪ C, reduced back to B (per Eq. 2):
    # (a_B - conv(a_C -> B)) * P^{-1} mod q_j.
    full_rows = [
        rand_residues(4000 + j, n, q)
        for j, q in enumerate(list(base) + list(aux))
    ]
    correction = fast_basis_convert(full_rows[len(base):], aux, base)
    mod_down_expected = []
    for j, q in enumerate(base):
        inv_p = pow(big_p % q, -1, q)
        mod_down_expected.append([
            (full_rows[j][t] - correction[j][t]) * inv_p % q
            for t in range(n)
        ])

    return {
        "description": "ModUp (Eq. 3) and ModDown (Eq. 2) over B(30-bit"
                       " x3) and C(31-bit x2), degree 16",
        "n": n,
        "base": base,
        "aux": aux,
        "mod_up": {"input": base_rows, "expected": mod_up_expected},
        "mod_down": {"input": full_rows, "expected": mod_down_expected},
    }


def main() -> int:
    vectors = {
        "ntt.json": make_ntt_vectors(),
        "barrett.json": make_barrett_vectors(),
        "basis_convert.json": make_basis_vectors(),
    }
    for filename, doc in vectors.items():
        path = GOLDEN_DIR / filename
        path.write_text(json.dumps(doc, indent=1) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
