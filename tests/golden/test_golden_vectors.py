"""Check every kernel backend against the big-int golden vectors.

The JSON files next to this test were produced by ``regenerate.py``
using only unbounded Python integer arithmetic; if a kernel change
makes these fail, the kernel is wrong — regenerating the vectors to
match is never the fix.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro import kernels
from repro.ntt.tables import get_twiddle_table
from repro.rns.basis_convert import mod_down, mod_up
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial

GOLDEN_DIR = Path(__file__).resolve().parent
BACKENDS = kernels.available_backends()


def _load(name: str) -> dict:
    return json.loads((GOLDEN_DIR / name).read_text())


NTT_DOC = _load("ntt.json")
BARRETT_DOC = _load("barrett.json")
BASIS_DOC = _load("basis_convert.json")


def _require_capability(backend_name: str, *moduli: int):
    """Skip when the backend's exact range does not cover the case.

    The golden set includes overflow-edge (62-bit) vectors that only
    wide-capable backends can execute; narrow backends skip those cases
    rather than be asserted against arithmetic they refuse by design.
    """
    widest = max(int(q).bit_length() for q in moduli)
    cap = kernels.resolve(backend_name).max_modulus_bits
    if widest > cap:
        pytest.skip(f"{backend_name} caps at {cap}-bit moduli, case needs "
                    f"{widest}")


def test_every_golden_case_has_a_capable_backend():
    """No vector may silently degrade into all-skips."""
    caps = [kernels.resolve(n).max_modulus_bits for n in BACKENDS]
    for doc in (NTT_DOC, BARRETT_DOC):
        for case in doc["cases"]:
            assert int(case["q"]).bit_length() <= max(caps)
    # And the overflow edge is actually present in the golden set.
    assert any(
        int(c["q"]).bit_length() > 31 for c in NTT_DOC["cases"]
    )
    assert any(
        int(c["q"]).bit_length() > 31 for c in BARRETT_DOC["cases"]
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize(
    "case", NTT_DOC["cases"],
    ids=[f"q{c['q']}-n{c['n']}" for c in NTT_DOC["cases"]],
)
def test_ntt_matches_golden(backend_name, case):
    q, n = case["q"], case["n"]
    _require_capability(backend_name, q)
    # The vectors froze the psi the twiddle table chose at generation
    # time; if table selection ever changes, regenerate deliberately.
    assert int(get_twiddle_table(q, n).psi) == case["psi"]
    backend = kernels.resolve(backend_name)
    data = np.array([case["input"]], dtype=np.uint64)
    expected = np.array([case["expected"]], dtype=np.uint64)
    for radix_log2 in (1, 2, 3):
        got = backend.ntt(data, (q,), radix_log2=radix_log2)
        np.testing.assert_array_equal(got, expected)
        np.testing.assert_array_equal(
            backend.intt(got, (q,), radix_log2=radix_log2), data
        )


@pytest.mark.parametrize("backend_name", BACKENDS)
@pytest.mark.parametrize(
    "case", BARRETT_DOC["cases"],
    ids=[f"q{c['q']}" for c in BARRETT_DOC["cases"]],
)
def test_barrett_matches_golden(backend_name, case):
    _require_capability(backend_name, case["q"])
    backend = kernels.resolve(backend_name)
    x = np.array([case["input"]], dtype=np.uint64)
    expected = np.array([case["expected"]], dtype=np.uint64)
    np.testing.assert_array_equal(
        backend.barrett_reduce(x, (case["q"],)), expected
    )


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_mod_up_matches_golden(backend_name):
    base = RnsContext(BASIS_DOC["base"])
    aux = RnsContext(BASIS_DOC["aux"])
    poly = RnsPolynomial(
        np.array(BASIS_DOC["mod_up"]["input"], dtype=np.uint64),
        base,
        Domain.COEFFICIENT,
    )
    with kernels.use_backend(backend_name):
        got = mod_up(poly, aux)
    np.testing.assert_array_equal(
        got.data, np.array(BASIS_DOC["mod_up"]["expected"], dtype=np.uint64)
    )
    assert got.context.moduli == base.moduli + aux.moduli


@pytest.mark.parametrize("backend_name", BACKENDS)
def test_mod_down_matches_golden(backend_name):
    base = RnsContext(BASIS_DOC["base"])
    aux = RnsContext(BASIS_DOC["aux"])
    full = base.extend(aux.moduli)
    poly = RnsPolynomial(
        np.array(BASIS_DOC["mod_down"]["input"], dtype=np.uint64),
        full,
        Domain.COEFFICIENT,
    )
    with kernels.use_backend(backend_name):
        got = mod_down(poly, base, aux)
    np.testing.assert_array_equal(
        got.data,
        np.array(BASIS_DOC["mod_down"]["expected"], dtype=np.uint64),
    )
    assert got.context.moduli == base.moduli


def test_regeneration_is_deterministic(tmp_path, monkeypatch):
    """Running the regen script reproduces the checked-in files."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "golden_regenerate", GOLDEN_DIR / "regenerate.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "GOLDEN_DIR", tmp_path)
    module.main()
    for name in ("ntt.json", "barrett.json", "basis_convert.json"):
        assert json.loads((tmp_path / name).read_text()) == _load(name)
