"""Unit tests for RNSconv / ModUp / ModDown / rescale (paper Eq. 1-3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RNSError
from repro.rns.basis_convert import (
    BasisConverter,
    mod_down,
    mod_up,
    rescale,
)
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64
CHAIN = find_ntt_primes(30, 3, N)
AUX = find_ntt_primes(31, 2, N)


@pytest.fixture(scope="module")
def base():
    return RnsContext(CHAIN)


@pytest.fixture(scope="module")
def aux():
    return RnsContext(AUX)


class TestBasisConverter:
    def test_rejects_overlapping_bases(self, base):
        with pytest.raises(RNSError):
            BasisConverter(base, base)

    def test_rejects_wrong_context(self, base, aux):
        conv = BasisConverter(base, aux)
        poly = RnsPolynomial.zeros(N, aux)
        with pytest.raises(RNSError):
            conv.convert(poly)

    def test_rejects_ntt_domain(self, base, aux):
        conv = BasisConverter(base, aux)
        poly = RnsPolynomial.zeros(N, base).with_domain(Domain.NTT)
        with pytest.raises(RNSError):
            conv.convert(poly)

    def test_converted_residues_consistent(self, base, aux):
        """conv(a) ≡ a + e*Q (mod p) for some 0 <= e < l."""
        conv = BasisConverter(base, aux)
        values = [5, -3, 12345, -99999] + [0] * (N - 4)
        poly = RnsPolynomial.from_integers(values, base)
        out = conv.convert(poly)
        big_q = base.modulus_product
        limb_count = base.level_count
        for col, v in enumerate(values[:8]):
            lift = v % big_q
            for i, p in enumerate(aux.moduli):
                candidates = {(lift + e * big_q) % p for e in range(limb_count + 1)}
                assert int(out.data[i][col]) in candidates

    def test_zero_maps_to_zero(self, base, aux):
        conv = BasisConverter(base, aux)
        out = conv.convert(RnsPolynomial.zeros(N, base))
        assert not np.any(out.data)


class TestModUpDown:
    def test_mod_up_extends_basis(self, base, aux):
        poly = RnsPolynomial.from_integers([1] * N, base)
        up = mod_up(poly, aux)
        assert up.context.moduli == base.moduli + aux.moduli
        # Original residues preserved.
        assert np.array_equal(up.data[: base.level_count], poly.data)

    def test_mod_down_divides_by_p(self, base, aux):
        p_product = aux.modulus_product
        values = [7, -11, 1234, -4321] + [1] * (N - 4)
        scaled = RnsPolynomial.from_integers(
            [p_product * v for v in values], base.extend(aux.moduli)
        )
        down = mod_down(scaled, base, aux)
        got = down.to_integers()
        assert all(abs(g - v) <= 1 for g, v in zip(got, values))

    def test_mod_down_rejects_wrong_basis(self, base, aux):
        poly = RnsPolynomial.zeros(N, base)
        with pytest.raises(RNSError):
            mod_down(poly, base, aux)

    def test_mod_up_then_down_congruent_mod_q(self, base, aux):
        """ModDown(P * ModUp(a)-like input) recovers a; the raw
        roundtrip differs from a/P only by the ModUp overshoot e*Q/P,
        which keyswitching cancels by carrying a factor P in the key
        payload. Here we check the exactly-representable case."""
        p_product = aux.modulus_product
        values = [123, -456] + [0] * (N - 2)
        exact = RnsPolynomial.from_integers(
            [p_product * v for v in values], base.extend(aux.moduli)
        )
        got = mod_down(exact, base, aux).to_integers()
        assert got[:2] == values[:2]

    @given(st.integers(-(2**40), 2**40))
    @settings(max_examples=25)
    def test_mod_down_property(self, value):
        base = RnsContext(CHAIN)
        aux = RnsContext(AUX)
        p = aux.modulus_product
        poly = RnsPolynomial.from_integers(
            [p * value] + [0] * (N - 1), base.extend(aux.moduli)
        )
        got = mod_down(poly, base, aux).to_integers()[0]
        assert abs(got - value) <= 1


class TestRescale:
    def test_rescale_rounds_division(self, base):
        values = [123456789012, -987654321098, CHAIN[-1] * 7 + 3]
        poly = RnsPolynomial.from_integers(values + [0] * (N - 3), base)
        out = rescale(poly)
        assert out.context.moduli == base.moduli[:-1]
        got = out.to_integers()[:3]
        for g, v in zip(got, values):
            assert abs(g - v / CHAIN[-1]) <= 1

    def test_rescale_single_limb_rejected(self):
        ctx = RnsContext(CHAIN[:1])
        with pytest.raises(RNSError):
            rescale(RnsPolynomial.zeros(N, ctx))

    def test_rescale_rejects_ntt_domain(self, base):
        poly = RnsPolynomial.zeros(N, base).with_domain(Domain.NTT)
        with pytest.raises(RNSError):
            rescale(poly)

    def test_rescale_exact_multiples(self, base):
        q_last = CHAIN[-1]
        values = [q_last * k for k in range(-5, 5)]
        poly = RnsPolynomial.from_integers(values + [0] * (N - 10), base)
        got = rescale(poly).to_integers()[:10]
        assert got == list(range(-5, 5))
