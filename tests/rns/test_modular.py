"""Unit and property tests for the MA/MM modular arithmetic kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RNSError
from repro.rns.modular import (
    MAX_MODULUS,
    check_modulus,
    mod_add,
    mod_dot,
    mod_inverse,
    mod_mul,
    mod_neg,
    mod_pow,
    mod_scalar_mul,
    mod_sub,
)

Q = 1073741441  # 30-bit NTT prime


def rand_residues(n, q, seed=0):
    return np.random.default_rng(seed).integers(0, q, n, dtype=np.uint64)


class TestCheckModulus:
    def test_accepts_30bit(self):
        assert check_modulus(Q) == Q

    def test_rejects_too_large(self):
        with pytest.raises(RNSError):
            check_modulus(MAX_MODULUS + 1)

    def test_rejects_tiny(self):
        with pytest.raises(RNSError):
            check_modulus(2)


class TestModAdd:
    def test_matches_numpy(self):
        a = rand_residues(1000, Q, 1)
        b = rand_residues(1000, Q, 2)
        expected = (a.astype(object) + b.astype(object)) % Q
        assert mod_add(a, b, Q).astype(object).tolist() == expected.tolist()

    def test_no_overflow_at_max(self):
        a = np.array([Q - 1], dtype=np.uint64)
        assert mod_add(a, a, Q)[0] == Q - 2

    def test_zero_identity(self):
        a = rand_residues(64, Q)
        z = np.zeros(64, dtype=np.uint64)
        assert np.array_equal(mod_add(a, z, Q), a)


class TestModSub:
    def test_matches_reference(self):
        a = rand_residues(500, Q, 3)
        b = rand_residues(500, Q, 4)
        expected = (a.astype(np.int64) - b.astype(np.int64)) % Q
        assert np.array_equal(mod_sub(a, b, Q).astype(np.int64), expected)

    def test_self_is_zero(self):
        a = rand_residues(64, Q)
        assert not np.any(mod_sub(a, a, Q))


class TestModNeg:
    def test_add_neg_is_zero(self):
        a = rand_residues(256, Q, 5)
        assert not np.any(mod_add(a, mod_neg(a, Q), Q))

    def test_neg_zero(self):
        z = np.zeros(4, dtype=np.uint64)
        assert not np.any(mod_neg(z, Q))


class TestModMul:
    def test_matches_bigint(self):
        a = rand_residues(300, Q, 6)
        b = rand_residues(300, Q, 7)
        got = mod_mul(a, b, Q)
        for i in range(300):
            assert int(got[i]) == int(a[i]) * int(b[i]) % Q

    def test_scalar_mul(self):
        a = rand_residues(64, Q, 8)
        got = mod_scalar_mul(a, 123456, Q)
        for i in range(64):
            assert int(got[i]) == int(a[i]) * 123456 % Q

    def test_scalar_reduced_first(self):
        a = np.array([2], dtype=np.uint64)
        assert int(mod_scalar_mul(a, Q + 3, Q)[0]) == 6


class TestModInverse:
    def test_inverse_roundtrip(self):
        for a in (1, 2, 12345, Q - 1):
            inv = mod_inverse(a, Q)
            assert a * inv % Q == 1

    def test_non_invertible(self):
        with pytest.raises(RNSError):
            mod_inverse(6, 12)

    @given(st.integers(1, Q - 1))
    @settings(max_examples=50)
    def test_inverse_property(self, a):
        assert a * mod_inverse(a, Q) % Q == 1


class TestModPowDot:
    def test_pow(self):
        assert mod_pow(3, 20, Q) == pow(3, 20, Q)

    def test_dot_matches_bigint(self):
        a = rand_residues(100, Q, 9)
        b = rand_residues(100, Q, 10)
        expected = sum(int(x) * int(y) for x, y in zip(a, b)) % Q
        assert mod_dot(a, b, Q) == expected


@given(st.data())
@settings(max_examples=30)
def test_field_axioms_sampled(data):
    """Commutativity / associativity / distributivity on random triples."""
    q = 536870909  # 29-bit prime
    ints = st.integers(0, q - 1)
    a = np.array([data.draw(ints)], dtype=np.uint64)
    b = np.array([data.draw(ints)], dtype=np.uint64)
    c = np.array([data.draw(ints)], dtype=np.uint64)
    assert mod_add(a, b, q)[0] == mod_add(b, a, q)[0]
    assert mod_mul(a, b, q)[0] == mod_mul(b, a, q)[0]
    left = mod_mul(a, mod_add(b, c, q), q)[0]
    right = mod_add(mod_mul(a, b, q), mod_mul(a, c, q), q)[0]
    assert left == right
