"""Unit tests for the RNS context and CRT reconstruction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RNSError
from repro.rns.context import RnsContext
from repro.utils.primes import find_ntt_primes

PRIMES = find_ntt_primes(30, 4, 64)


@pytest.fixture(scope="module")
def ctx():
    return RnsContext(PRIMES)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(RNSError):
            RnsContext([])

    def test_rejects_duplicates(self):
        with pytest.raises(RNSError):
            RnsContext([PRIMES[0], PRIMES[0]])

    def test_rejects_oversize_modulus(self):
        with pytest.raises(RNSError):
            RnsContext([1 << 32])

    def test_equality_and_hash(self, ctx):
        other = RnsContext(PRIMES)
        assert ctx == other
        assert hash(ctx) == hash(other)
        assert ctx != RnsContext(PRIMES[:2])


class TestCrtConstants:
    def test_modulus_product(self, ctx):
        expected = 1
        for q in PRIMES:
            expected *= q
        assert ctx.modulus_product == expected

    def test_punctured_products(self, ctx):
        for q, q_hat in zip(ctx.moduli, ctx.punctured_products):
            assert q_hat * q == ctx.modulus_product

    def test_punctured_inverses(self, ctx):
        for q, q_hat, inv in zip(
            ctx.moduli, ctx.punctured_products, ctx.punctured_inverses
        ):
            assert (q_hat % q) * inv % q == 1

    def test_pairwise_inverse(self, ctx):
        inv = ctx.pairwise_inverse(0, 1)
        assert ctx.moduli[0] * inv % ctx.moduli[1] == 1

    def test_pairwise_self_rejected(self, ctx):
        with pytest.raises(RNSError):
            ctx.pairwise_inverse(1, 1)

    def test_last_limb_inverses(self, ctx):
        last = ctx.moduli[-1]
        for j, inv in enumerate(ctx.last_limb_inverses):
            assert last * inv % ctx.moduli[j] == 1


class TestRoundtrip:
    def test_signed_roundtrip(self, ctx):
        values = [0, 1, -1, 123456789, -987654321, 2**60, -(2**60)]
        rns = ctx.to_rns(values)
        assert rns.shape == (4, len(values))
        back = ctx.from_rns(rns)
        assert back == values

    def test_unsigned_roundtrip(self, ctx):
        values = [5, 7]
        back = ctx.from_rns(ctx.to_rns(values), signed=False)
        assert back == values

    def test_shape_validation(self, ctx):
        with pytest.raises(RNSError):
            ctx.from_rns(np.zeros((2, 4), dtype=np.uint64))

    @given(st.lists(st.integers(-(2**80), 2**80), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_roundtrip_property(self, values):
        ctx = RnsContext(PRIMES)
        half = ctx.modulus_product // 2
        values = [v for v in values if -half < v <= half]
        if not values:
            return
        assert ctx.from_rns(ctx.to_rns(values)) == values


class TestBasisManipulation:
    def test_drop_last(self, ctx):
        dropped = ctx.drop_last()
        assert dropped.moduli == ctx.moduli[:-1]

    def test_drop_last_single_rejected(self):
        with pytest.raises(RNSError):
            RnsContext(PRIMES[:1]).drop_last()

    def test_first(self, ctx):
        assert ctx.first(2).moduli == ctx.moduli[:2]
        with pytest.raises(RNSError):
            ctx.first(0)
        with pytest.raises(RNSError):
            ctx.first(5)

    def test_extend(self, ctx):
        extra = find_ntt_primes(31, 1, 64)
        ext = ctx.extend(extra)
        assert ext.moduli == ctx.moduli + tuple(extra)
