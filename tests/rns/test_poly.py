"""Unit tests for RNS polynomials."""

import numpy as np
import pytest

from repro.errors import RNSError
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64
PRIMES = find_ntt_primes(30, 3, N)


@pytest.fixture(scope="module")
def ctx():
    return RnsContext(PRIMES)


def random_poly(ctx, seed=0):
    rng = np.random.default_rng(seed)
    data = np.stack(
        [rng.integers(0, q, N, dtype=np.uint64) for q in ctx.moduli]
    )
    return RnsPolynomial(data, ctx, Domain.COEFFICIENT)


class TestConstruction:
    def test_zeros(self, ctx):
        z = RnsPolynomial.zeros(N, ctx)
        assert z.degree == N
        assert z.level_count == 3
        assert not np.any(z.data)

    def test_constant(self, ctx):
        c = RnsPolynomial.constant(42, N, ctx)
        assert c.to_integers()[0] == 42
        assert all(v == 0 for v in c.to_integers()[1:])

    def test_rejects_wrong_rows(self, ctx):
        with pytest.raises(RNSError):
            RnsPolynomial(np.zeros((2, N), dtype=np.uint64), ctx,
                          Domain.COEFFICIENT)

    def test_rejects_non_power_degree(self, ctx):
        with pytest.raises(RNSError):
            RnsPolynomial(np.zeros((3, 63), dtype=np.uint64), ctx,
                          Domain.COEFFICIENT)

    def test_rejects_1d(self, ctx):
        with pytest.raises(RNSError):
            RnsPolynomial(np.zeros(N, dtype=np.uint64), ctx,
                          Domain.COEFFICIENT)


class TestArithmetic:
    def test_add_matches_integers(self, ctx):
        vals_a = list(range(-10, N - 10))
        vals_b = [3 * v + 1 for v in range(N)]
        a = RnsPolynomial.from_integers(vals_a, ctx)
        b = RnsPolynomial.from_integers(vals_b, ctx)
        got = (a + b).to_integers()
        assert got == [x + y for x, y in zip(vals_a, vals_b)]

    def test_sub_and_neg(self, ctx):
        a = random_poly(ctx, 1)
        b = random_poly(ctx, 2)
        assert (a - b) == (a + (-b))

    def test_scalar_mul(self, ctx):
        vals = list(range(N))
        a = RnsPolynomial.from_integers(vals, ctx)
        got = a.scalar_mul(7).to_integers()
        assert got == [7 * v for v in vals]

    def test_scalar_mul_per_limb(self, ctx):
        a = random_poly(ctx, 3)
        scalars = [2, 3, 5]
        out = a.scalar_mul_per_limb(scalars)
        for i, (q, s) in enumerate(zip(ctx.moduli, scalars)):
            expected = (a.data[i].astype(object) * s) % q
            assert out.data[i].astype(object).tolist() == expected.tolist()

    def test_scalar_per_limb_wrong_count(self, ctx):
        with pytest.raises(RNSError):
            random_poly(ctx).scalar_mul_per_limb([1, 2])

    def test_hadamard_columnwise(self, ctx):
        a = random_poly(ctx, 4)
        b = random_poly(ctx, 5)
        h = a.hadamard(b)
        for i, q in enumerate(ctx.moduli):
            expected = (
                a.data[i].astype(object) * b.data[i].astype(object)
            ) % q
            assert h.data[i].astype(object).tolist() == expected.tolist()

    def test_mismatched_context_rejected(self, ctx):
        other = RnsContext(PRIMES[:2])
        a = random_poly(ctx)
        b = RnsPolynomial.zeros(N, other)
        with pytest.raises(RNSError):
            _ = a + b

    def test_mismatched_domain_rejected(self, ctx):
        a = random_poly(ctx)
        b = random_poly(ctx).with_domain(Domain.NTT)
        with pytest.raises(RNSError):
            _ = a + b

    def test_operands_not_mutated(self, ctx):
        a = random_poly(ctx, 6)
        snapshot = a.data.copy()
        _ = a + a
        _ = -a
        _ = a.scalar_mul(3)
        assert np.array_equal(a.data, snapshot)


class TestLimbOps:
    def test_drop_last_limb(self, ctx):
        a = random_poly(ctx)
        dropped = a.drop_last_limb()
        assert dropped.level_count == 2
        assert np.array_equal(dropped.data, a.data[:2])

    def test_to_integers_requires_coefficient_domain(self, ctx):
        a = random_poly(ctx).with_domain(Domain.NTT)
        with pytest.raises(RNSError):
            a.to_integers()

    def test_copy_independent(self, ctx):
        a = random_poly(ctx)
        c = a.copy()
        c.data[0][0] = 1
        assert a != c or a.data[0][0] == 1
