"""Unit and property tests for Barrett reduction (the SBT operator)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RNSError
from repro.rns.barrett import GLOBAL_SBT_BANK, BarrettReducer, SharedBarrettBank

Q = 1073741441


class TestReduceScalar:
    def test_small_values(self):
        r = BarrettReducer(Q)
        for x in (0, 1, Q - 1, Q, Q + 1, 2 * Q + 5):
            assert r.reduce_scalar(x) == x % Q

    def test_near_q_squared(self):
        r = BarrettReducer(Q)
        x = Q * Q - 1
        assert r.reduce_scalar(x) == x % Q

    def test_rejects_out_of_range(self):
        r = BarrettReducer(Q)
        with pytest.raises(RNSError):
            r.reduce_scalar(Q * Q)
        with pytest.raises(RNSError):
            r.reduce_scalar(-1)

    @given(st.integers(0, Q * Q - 1))
    @settings(max_examples=200)
    def test_matches_mod(self, x):
        assert BarrettReducer(Q).reduce_scalar(x) == x % Q


class TestReduceVectorized:
    def test_products(self):
        r = BarrettReducer(Q)
        rng = np.random.default_rng(0)
        a = rng.integers(0, Q, 1000, dtype=np.uint64)
        b = rng.integers(0, Q, 1000, dtype=np.uint64)
        got = r.mul_mod(a, b)
        for i in range(0, 1000, 37):
            assert int(got[i]) == int(a[i]) * int(b[i]) % Q

    def test_extreme_operands(self):
        r = BarrettReducer(Q)
        a = np.array([Q - 1, Q - 1, 0, 1], dtype=np.uint64)
        b = np.array([Q - 1, 1, Q - 1, 1], dtype=np.uint64)
        got = r.mul_mod(a, b)
        expected = [(Q - 1) * (Q - 1) % Q, Q - 1, 0, 1]
        assert got.astype(object).tolist() == expected

    def test_matches_scalar_path(self):
        r = BarrettReducer(Q)
        rng = np.random.default_rng(1)
        a = rng.integers(0, Q, 64, dtype=np.uint64)
        b = rng.integers(0, Q, 64, dtype=np.uint64)
        vec = r.reduce(a * b)
        for i in range(64):
            assert int(vec[i]) == r.reduce_scalar(int(a[i]) * int(b[i]))


class TestSharedBank:
    def test_reuse(self):
        bank = SharedBarrettBank()
        r1 = bank.get(Q)
        r2 = bank.get(Q)
        assert r1 is r2
        assert len(bank) == 1
        assert Q in bank

    def test_multiple_moduli(self):
        bank = SharedBarrettBank()
        bank.get(Q)
        bank.get(536870909)
        assert len(bank) == 2

    def test_global_bank_shared(self):
        r = GLOBAL_SBT_BANK.get(Q)
        assert GLOBAL_SBT_BANK.get(Q) is r
