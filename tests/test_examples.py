"""Smoke tests over the example scripts.

Each example must import cleanly and expose a ``main``; the fast ones
actually run (they carry their own internal assertions). The slow ones
(bootstrap_demo at ~20s+, the larger demos) are exercised by their
underlying library tests instead.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute end to end in the suite.
RUNNABLE = ["hfauto_walkthrough.py", "private_statistics.py",
            "batch_serving.py", "open_system_serving.py",
            "fleet_serving.py"]


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestInventory:
    def test_at_least_five_examples(self):
        assert len(ALL_EXAMPLES) >= 5

    def test_quickstart_present(self):
        assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_importable_with_main(name):
    module = load_example(name)
    assert callable(getattr(module, "main", None)), (
        f"{name} must define a main()"
    )
    assert module.__doc__, f"{name} must carry a module docstring"


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_has_exactly_one_main_guard(name):
    """Regression: batch_serving.py once carried two copy-pasted
    ``if __name__ == "__main__":`` blocks, so running it as a script
    executed main() twice (doubling runtime and duplicating output).
    Every example must run main() exactly once."""
    source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
    guards = source.count('if __name__ == "__main__":')
    assert guards == 1, (
        f"{name} has {guards} __main__ guards; scripts must call "
        "main() exactly once"
    )


@pytest.mark.parametrize("name", RUNNABLE)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()  # examples assert their own correctness
    out = capsys.readouterr().out
    assert out.strip(), f"{name} should print its findings"
