"""Unit tests for the naive automorphism index mapping (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AutomorphismError
from repro.automorphism.mapping import (
    apply_automorphism_poly,
    apply_automorphism_row,
    automorphism_indices,
    automorphism_signs,
    compose_galois,
)
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 64
PRIMES = find_ntt_primes(30, 2, N)
Q = PRIMES[0]


class TestIndices:
    def test_identity_element(self):
        assert automorphism_indices(N, 1).tolist() == list(range(N))

    def test_is_permutation(self):
        for k in (3, 5, 2 * N - 1):
            dest = automorphism_indices(N, k)
            assert sorted(dest.tolist()) == list(range(N))

    def test_even_galois_rejected(self):
        with pytest.raises(AutomorphismError):
            automorphism_indices(N, 4)

    def test_non_power_degree_rejected(self):
        with pytest.raises(AutomorphismError):
            automorphism_indices(63, 3)

    @given(st.integers(0, N - 1).map(lambda v: 2 * v + 1))
    @settings(max_examples=30)
    def test_permutation_property(self, k):
        dest = automorphism_indices(N, k)
        assert len(set(dest.tolist())) == N


class TestSigns:
    def test_identity_all_positive(self):
        assert np.all(automorphism_signs(N, 1) == 1)

    def test_matches_eq4(self):
        for k in (3, 5, 7):
            signs = automorphism_signs(N, k)
            for i in range(N):
                expected = -1 if (i * k) % (2 * N) >= N else 1
                assert signs[i] == expected

    def test_index_zero_always_positive(self):
        for k in (3, 5, 9, 2 * N - 1):
            assert automorphism_signs(N, k)[0] == 1


class TestApplyRow:
    def test_identity(self):
        row = np.random.default_rng(0).integers(0, Q, N, dtype=np.uint64)
        assert np.array_equal(apply_automorphism_row(row, Q, 1), row)

    def test_matches_polynomial_semantics(self):
        """sigma_k(x^i) = sign * x^(ik mod N) checked via NTT evaluation.

        For a(x) = x, sigma_k(a) = x^k; verify on a basis vector.
        """
        k = 5
        row = np.zeros(N, dtype=np.uint64)
        row[1] = 1  # a(x) = x
        out = apply_automorphism_row(row, Q, k)
        expected = np.zeros(N, dtype=np.uint64)
        idx = k % N
        sign = -1 if k % (2 * N) >= N else 1
        expected[idx] = 1 if sign > 0 else Q - 1
        assert np.array_equal(out, expected)

    def test_composition(self):
        """sigma_{k1} o sigma_{k2} = sigma_{k1*k2 mod 2N}."""
        row = np.random.default_rng(1).integers(0, Q, N, dtype=np.uint64)
        k1, k2 = 3, 5
        chained = apply_automorphism_row(
            apply_automorphism_row(row, Q, k2), Q, k1
        )
        composed = apply_automorphism_row(
            row, Q, compose_galois(N, k1, k2)
        )
        assert np.array_equal(chained, composed)

    def test_order_of_conjugation(self):
        """Applying conjugation (k = 2N-1) twice is the identity."""
        row = np.random.default_rng(2).integers(0, Q, N, dtype=np.uint64)
        once = apply_automorphism_row(row, Q, 2 * N - 1)
        twice = apply_automorphism_row(once, Q, 2 * N - 1)
        assert np.array_equal(twice, row)


class TestApplyPoly:
    def test_all_limbs(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.from_integers(list(range(N)), ctx)
        out = apply_automorphism_poly(poly, 3)
        for i, q in enumerate(ctx.moduli):
            assert np.array_equal(
                out.data[i], apply_automorphism_row(poly.data[i], q, 3)
            )

    def test_rejects_ntt_domain(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.zeros(N, ctx).with_domain(Domain.NTT)
        with pytest.raises(AutomorphismError):
            apply_automorphism_poly(poly, 3)

    def test_preserves_integer_semantics(self):
        """sigma_k on integer coefficients: out[ik mod N] = ±in[i]."""
        ctx = RnsContext(PRIMES)
        values = list(range(1, N + 1))
        poly = RnsPolynomial.from_integers(values, ctx)
        out = apply_automorphism_poly(poly, 3).to_integers()
        for i, v in enumerate(values):
            idx = (i * 3) % N
            sign = -1 if (i * 3) % (2 * N) >= N else 1
            assert out[idx] == sign * v
