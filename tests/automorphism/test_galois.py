"""Unit tests for Galois-element computation for slot rotations."""

import pytest

from repro.errors import AutomorphismError
from repro.automorphism.galois import (
    ROTATION_GENERATOR,
    conjugation_element,
    galois_element_for_rotation,
    hoisted_rotation_elements,
    rotation_for_galois_element,
)

N = 64


class TestGaloisElements:
    def test_rotation_zero_is_identity(self):
        assert galois_element_for_rotation(N, 0) == 1

    def test_rotation_one(self):
        assert galois_element_for_rotation(N, 1) == ROTATION_GENERATOR

    def test_always_odd(self):
        for steps in range(N // 2):
            assert galois_element_for_rotation(N, steps) % 2 == 1

    def test_wraps_modulo_slots(self):
        slots = N // 2
        assert galois_element_for_rotation(N, slots + 3) == (
            galois_element_for_rotation(N, 3)
        )

    def test_negative_steps(self):
        """Rotation by -1 equals rotation by slots - 1."""
        assert galois_element_for_rotation(N, -1) == (
            galois_element_for_rotation(N, N // 2 - 1)
        )

    def test_composition_additive(self):
        g1 = galois_element_for_rotation(N, 3)
        g2 = galois_element_for_rotation(N, 4)
        g12 = galois_element_for_rotation(N, 7)
        assert g1 * g2 % (2 * N) == g12

    def test_rejects_tiny_degree(self):
        with pytest.raises(AutomorphismError):
            galois_element_for_rotation(2, 1)


class TestConjugation:
    def test_element(self):
        assert conjugation_element(N) == 2 * N - 1

    def test_self_inverse(self):
        g = conjugation_element(N)
        assert g * g % (2 * N) == 1

    def test_not_in_rotation_subgroup(self):
        assert rotation_for_galois_element(N, conjugation_element(N)) is None


class TestInversion:
    def test_roundtrip(self):
        for steps in (0, 1, 5, N // 2 - 1):
            g = galois_element_for_rotation(N, steps)
            assert rotation_for_galois_element(N, g) == steps


class TestHoisting:
    def test_deduplicates(self):
        elements = hoisted_rotation_elements(N, [1, 2, 1, 3, 2])
        assert len(elements) == 3
        assert elements[0] == galois_element_for_rotation(N, 1)

    def test_preserves_order(self):
        elements = hoisted_rotation_elements(N, [4, 2, 9])
        expected = [galois_element_for_rotation(N, s) for s in (4, 2, 9)]
        assert elements == expected
