"""Unit and property tests for HFAuto (paper §III-B, Fig. 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AutomorphismError
from repro.automorphism.hfauto import (
    DEFAULT_SUBVECTOR,
    HFAutoPlan,
    get_plan,
    hfauto_apply,
)
from repro.automorphism.mapping import (
    apply_automorphism_poly,
    apply_automorphism_row,
)
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes

N = 256
C = 16  # sub-vector length for tests (512 in hardware)
PRIMES = find_ntt_primes(30, 2, N)
Q = PRIMES[0]


def random_row(seed=0):
    return np.random.default_rng(seed).integers(0, Q, N, dtype=np.uint64)


class TestLemma:
    """The paper's lemma: floor((a mod C*R) / C) = floor(a/C) mod R."""

    @given(st.integers(0, 10**12), st.integers(1, 1000), st.integers(1, 1000))
    @settings(max_examples=200)
    def test_lemma_holds(self, a, c, r):
        assert (a % (c * r)) // c == (a // c) % r


class TestEquivalenceWithNaive:
    @pytest.mark.parametrize("k", [1, 3, 5, 9, 25, 2 * N - 1, 5**7 % (2 * N)])
    def test_matches_naive_row(self, k):
        row = random_row(k)
        plan = HFAutoPlan(N, k, C)
        assert np.array_equal(
            plan.apply_row(row, Q), apply_automorphism_row(row, Q, k)
        )

    @pytest.mark.parametrize("c", [4, 8, 32, 128, 256])
    def test_any_subvector_length(self, c):
        """'swap operation of the sub-vectors in an arbitrary
        granularity' — the abstract's claim."""
        row = random_row(c)
        plan = HFAutoPlan(N, 5, c)
        assert np.array_equal(
            plan.apply_row(row, Q), apply_automorphism_row(row, Q, 5)
        )

    def test_matches_naive_poly(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.from_integers(list(range(N)), ctx)
        got = hfauto_apply(poly, 7, subvector=C)
        expected = apply_automorphism_poly(poly, 7)
        assert got == expected

    @given(st.integers(0, N - 1).map(lambda v: 2 * v + 1),
           st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_equivalence_property(self, k, seed):
        row = random_row(seed)
        plan = get_plan(N, k, C)
        assert np.array_equal(
            plan.apply_row(row, Q), apply_automorphism_row(row, Q, k)
        )


class TestStageStructure:
    def test_stage1_is_row_permutation(self):
        plan = HFAutoPlan(N, 5, C)
        matrix = np.arange(N, dtype=np.uint64).reshape(plan.r, plan.c)
        out = plan.stage1_row_map(matrix)
        # Every row of the input appears intact somewhere in the output.
        in_rows = {tuple(r.tolist()) for r in matrix}
        out_rows = {tuple(r.tolist()) for r in out}
        assert in_rows == out_rows

    def test_stage2_preserves_columns_as_multisets(self):
        plan = HFAutoPlan(N, 5, C)
        rng = np.random.default_rng(3)
        matrix = rng.integers(0, Q, (plan.r, plan.c), dtype=np.uint64)
        out = plan.stage2_fifo_shift(matrix)
        for j in range(plan.c):
            assert sorted(out[:, j].tolist()) == sorted(matrix[:, j].tolist())

    def test_stage3_is_transpose(self):
        plan = HFAutoPlan(N, 5, C)
        matrix = np.arange(N, dtype=np.uint64).reshape(plan.r, plan.c)
        assert np.array_equal(plan.stage3_dimension_switch(matrix), matrix.T)

    def test_stage4_permutes_columns(self):
        plan = HFAutoPlan(N, 5, C)
        rng = np.random.default_rng(4)
        matrix = rng.integers(0, Q, (plan.r, plan.c), dtype=np.uint64)
        out = plan.stage4_column_map(matrix.T.copy())
        in_cols = {tuple(matrix[:, j].tolist()) for j in range(plan.c)}
        out_cols = {tuple(out[:, j].tolist()) for j in range(plan.c)}
        assert in_cols == out_cols


class TestValidation:
    def test_rejects_even_galois(self):
        with pytest.raises(AutomorphismError):
            HFAutoPlan(N, 4, C)

    def test_rejects_non_dividing_subvector(self):
        with pytest.raises(AutomorphismError):
            HFAutoPlan(N, 3, 24)

    def test_rejects_wrong_row_shape(self):
        plan = HFAutoPlan(N, 3, C)
        with pytest.raises(AutomorphismError):
            plan.apply_row(np.zeros(N // 2, dtype=np.uint64), Q)

    def test_rejects_ntt_domain(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.zeros(N, ctx).with_domain(Domain.NTT)
        with pytest.raises(AutomorphismError):
            hfauto_apply(poly, 3)


class TestCycleModel:
    def test_stage_costs_match_paper_structure(self):
        """Table VIII: HFAuto latency ~ 3R + C; naive Auto ~ N."""
        plan = HFAutoPlan(1 << 16, 3, DEFAULT_SUBVECTOR)
        assert plan.naive_cycles() == 1 << 16
        assert plan.total_cycles() == 3 * plan.r + plan.c

    def test_hfauto_always_faster_at_scale(self):
        for logn in (12, 14, 16, 17):
            plan = HFAutoPlan(1 << logn, 3, DEFAULT_SUBVECTOR)
            assert plan.total_cycles() < plan.naive_cycles()

    def test_paper_table8_latency(self):
        """At N = 2^17 (paper's largest), naive = 131072 cycles, HFAuto
        = 3*256 + 512; the paper quotes 512 (its dominant term)."""
        plan = HFAutoPlan(1 << 17, 3, DEFAULT_SUBVECTOR)
        assert plan.naive_cycles() == 131072
        assert plan.total_cycles() == 3 * 256 + 512

    def test_plan_cache(self):
        assert get_plan(N, 3, C) is get_plan(N, 3, C)
