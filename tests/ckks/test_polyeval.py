"""Unit tests for homomorphic polynomial evaluation."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.ckks.polyeval import (
    evaluate_horner,
    evaluate_power_basis,
    polynomial_depth_horner,
    polynomial_depth_power_basis,
)
from tests.conftest import decrypt_real


@pytest.fixture(scope="module")
def small_ct(encoder, encryptor):
    rng = np.random.default_rng(0)
    x = rng.uniform(-0.8, 0.8, encoder.slots)
    return x, encryptor.encrypt(encoder.encode(x))


def poly_ref(x, coeffs):
    acc = np.zeros_like(x, dtype=complex)
    for j, c in enumerate(coeffs):
        acc += c * x**j
    return acc.real


class TestHorner:
    def test_linear(self, evaluator, encoder, decryptor, small_ct):
        x, ct = small_ct
        coeffs = [0.25, -0.5]
        out = decrypt_real(
            encoder, decryptor,
            evaluate_horner(evaluator, encoder, ct, coeffs),
        )
        assert np.max(np.abs(out - poly_ref(x, coeffs))) < 5e-2

    def test_cubic_sigmoid(self, evaluator, encoder, decryptor, small_ct):
        """HELR's sigmoid surrogate: 0.5 + 0.15x - 0.0015x^3."""
        x, ct = small_ct
        coeffs = [0.5, 0.15, 0.0, -0.0015]
        out = decrypt_real(
            encoder, decryptor,
            evaluate_horner(evaluator, encoder, ct, coeffs),
        )
        assert np.max(np.abs(out - poly_ref(x, coeffs))) < 5e-2

    def test_rejects_constant(self, evaluator, encoder, small_ct):
        _, ct = small_ct
        with pytest.raises(EvaluationError):
            evaluate_horner(evaluator, encoder, ct, [1.0])

    def test_depth_accounting(self, params, evaluator, encoder, small_ct):
        _, ct = small_ct
        coeffs = [0.1, 0.2, 0.3]
        out = evaluate_horner(evaluator, encoder, ct, coeffs)
        assert ct.level - out.level == polynomial_depth_horner(2)


class TestPowerBasis:
    def test_matches_horner(self, evaluator, encoder, decryptor, small_ct):
        x, ct = small_ct
        coeffs = [0.3, -0.2, 0.1, 0.05]
        h = decrypt_real(
            encoder, decryptor,
            evaluate_horner(evaluator, encoder, ct, coeffs),
        )
        p = decrypt_real(
            encoder, decryptor,
            evaluate_power_basis(evaluator, encoder, ct, coeffs),
        )
        assert np.max(np.abs(h - p)) < 5e-2

    def test_sparse_polynomial(self, evaluator, encoder, decryptor,
                               small_ct):
        """Odd polynomial (x and x^3 only) — LSTM's activation shape."""
        x, ct = small_ct
        coeffs = [0.0, 0.25, 0.0, -0.02]
        out = decrypt_real(
            encoder, decryptor,
            evaluate_power_basis(evaluator, encoder, ct, coeffs),
        )
        assert np.max(np.abs(out - poly_ref(x, coeffs))) < 5e-2

    def test_shallower_than_horner_for_high_degree(self):
        assert polynomial_depth_power_basis(8) < polynomial_depth_horner(8)

    def test_complex_coefficients(self, evaluator, encoder, decryptor,
                                  small_ct):
        """EvalMod-style complex Taylor coefficients work too."""
        x, ct = small_ct
        coeffs = [0.0, 0.5j, -0.1]
        out_ct = evaluate_power_basis(evaluator, encoder, ct, coeffs)
        decoded = encoder.decode(decryptor.decrypt(out_ct))
        expected = 0.5j * x - 0.1 * x**2
        assert np.max(np.abs(decoded - expected)) < 5e-2
