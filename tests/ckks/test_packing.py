"""Unit tests for slot-packing utilities."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.ckks.packing import (
    extract_slot,
    interleave,
    mask,
    pad_vector,
    packing_cost_ops,
    replicate_slot0,
    tile_vector,
)
from tests.conftest import decrypt_real


class TestPlaintextLayouts:
    def test_pad(self):
        out = pad_vector([1, 2], 8)
        assert out.tolist() == [1, 2, 0, 0, 0, 0, 0, 0]

    def test_pad_overflow(self):
        with pytest.raises(EvaluationError):
            pad_vector([1] * 9, 8)

    def test_tile(self):
        out = tile_vector([1, 2], 8)
        assert out.tolist() == [1, 2, 1, 2, 1, 2, 1, 2]

    def test_tile_non_dividing(self):
        with pytest.raises(EvaluationError):
            tile_vector([1, 2, 3], 8)

    def test_interleave(self):
        out = interleave([[1, 2], [10, 20]], 8)
        assert out[:4].tolist() == [1, 10, 2, 20]
        assert not np.any(out[4:])

    def test_interleave_length_mismatch(self):
        with pytest.raises(EvaluationError):
            interleave([[1, 2], [1]], 8)


@pytest.fixture(scope="module")
def packed(params, encoder, encryptor):
    rng = np.random.default_rng(1)
    x = rng.uniform(0.2, 1.0, params.slot_count)
    return x, encryptor.encrypt(encoder.encode(x))


class TestHomomorphicLayouts:
    def test_mask_keeps_selected(self, evaluator, encoder, decryptor,
                                 packed):
        x, ct = packed
        out = decrypt_real(
            encoder, decryptor, mask(evaluator, encoder, ct, [0, 3])
        )
        assert abs(out[0] - x[0]) < 1e-2
        assert abs(out[3] - x[3]) < 1e-2
        assert np.max(np.abs(out[[1, 2, 4, 5]])) < 1e-2

    def test_mask_rejects_out_of_range(self, params, evaluator, encoder,
                                       packed):
        _, ct = packed
        with pytest.raises(EvaluationError):
            mask(evaluator, encoder, ct, [params.slot_count])

    def test_replicate_slot0(self, evaluator, encoder, decryptor, packed):
        x, ct = packed
        isolated = mask(evaluator, encoder, ct, [0])
        wide = replicate_slot0(evaluator, isolated, 8)
        out = decrypt_real(encoder, decryptor, wide)
        assert np.max(np.abs(out[:8] - x[0])) < 5e-2

    def test_replicate_width_power_of_two(self, evaluator, packed):
        _, ct = packed
        with pytest.raises(EvaluationError):
            replicate_slot0(evaluator, ct, 6)

    def test_extract_slot(self, evaluator, encoder, decryptor, packed):
        x, ct = packed
        out_ct = extract_slot(evaluator, encoder, ct, 5,
                              broadcast_width=4)
        out = decrypt_real(encoder, decryptor, out_ct)
        assert np.max(np.abs(out[:4] - x[5])) < 5e-2


class TestCostCompanion:
    def test_counts(self):
        costs = packing_cost_ops(8)
        assert costs["Rotation"] == 4  # 1 align + log2(8) broadcast
        assert costs["PMult"] == 1
