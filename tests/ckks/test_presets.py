"""Unit tests for the parameter presets."""

from repro.ckks.presets import (
    PAPER_SCALES,
    bootstrap_capable,
    demo,
    toy,
)


class TestFunctionalPresets:
    def test_toy_matches_test_fixtures(self, params):
        assert toy().degree == params.degree
        assert len(toy().chain_moduli) == len(params.chain_moduli)

    def test_demo_larger(self):
        assert demo().degree > toy().degree
        assert demo().max_level > toy().max_level

    def test_bootstrap_capable_consistent(self):
        params, config = bootstrap_capable()
        assert params.max_level >= config.total_depth
        assert params.secret_hamming_weight > 0
        # Scale tracks the prime size (the EvalMod algebra needs it).
        assert abs(params.scale - 2.0**30) < 1.0

    def test_bootstrap_capable_actually_constructs(self):
        from repro.ckks import CkksEncoder, CkksEvaluator, KeyChain
        from repro.ckks.bootstrap import Bootstrapper

        params, config = bootstrap_capable()
        keys = KeyChain.generate(params, seed=0)
        ev = CkksEvaluator(params, keys)
        Bootstrapper(params, ev, CkksEncoder(params), config)


class TestPaperScales:
    def test_four_benchmarks(self):
        assert set(PAPER_SCALES) == {
            "LR", "LSTM", "ResNet-20", "Packed Bootstrapping"
        }

    def test_degrees_match_paper(self):
        for preset in PAPER_SCALES.values():
            assert preset.degree == 1 << 16
            assert preset.aux_limbs == 4

    def test_kwargs_accepted_by_builders(self):
        """The preset kwargs drive the actual trace builders."""
        from repro.workloads import PAPER_BENCHMARKS

        for name, preset in PAPER_SCALES.items():
            builder = PAPER_BENCHMARKS[name]
            kwargs = preset.as_kwargs()
            kwargs["degree"] = 1 << 12  # scaled for test speed
            trace = builder(**kwargs)
            assert len(trace) > 0
