"""Unit tests for key-material size accounting."""

import pytest

from repro.ckks.keysize import (
    ciphertext_bytes,
    fits_in_hbm,
    key_size_report,
    polynomial_bytes,
    switch_key_bytes,
)
from repro.ckks.params import CkksParameters


@pytest.fixture(scope="module")
def params():
    return CkksParameters.default(degree=256, levels=4, aux_count=2)


class TestSizes:
    def test_polynomial_bytes(self, params):
        assert polynomial_bytes(params) == 256 * 4 * 4
        assert polynomial_bytes(params, limbs=1) == 256 * 4

    def test_ciphertext_bytes(self, params):
        assert ciphertext_bytes(params) == 2 * polynomial_bytes(params)
        assert ciphertext_bytes(params, level=0) == 2 * 256 * 4

    def test_switch_key_dominates(self, params):
        """A switch key is ~L*(L+k)/L times a ciphertext — much bigger."""
        assert switch_key_bytes(params) > 4 * ciphertext_bytes(params)

    def test_switch_key_formula(self, params):
        chain, aux = 4, 2
        expected = chain * 2 * 256 * (chain + aux) * 4
        assert switch_key_bytes(params) == expected


class TestReport:
    def test_no_rotations(self, params):
        report = key_size_report(params)
        assert report.galois_key_count == 0
        assert report.galois_key_bytes == 0
        assert report.total_bytes == (
            report.public_key_bytes + report.relin_key_bytes
        )

    def test_rotations_add_conjugation(self, params):
        report = key_size_report(params, rotation_steps=5)
        assert report.galois_key_count == 6  # 5 rotations + conjugation
        assert report.galois_key_bytes == 6 * switch_key_bytes(params)

    def test_matches_real_keychain_structure(self, params):
        """The report sizes the actual key object's element count.

        The functional plane stores residues as 8-byte uint64 for
        numpy arithmetic; the hardware format is 4-byte limbs (the
        paper's 32-bit datapath), which is what the report prices.
        """
        from repro.ckks.keys import KeyChain
        from repro.sim.config import LIMB_BYTES

        keys = KeyChain.generate(params, seed=0)
        elements = sum(
            b.data.size + a.data.size for b, a in keys.relin.pairs
        )
        assert elements * LIMB_BYTES == switch_key_bytes(params)


class TestCapacity:
    def test_toy_params_fit_easily(self, params):
        assert fits_in_hbm(params, rotation_steps=30, ciphertext_count=100)

    def test_paper_scale_rotation_keys_pressure(self):
        """At bootstrapping scale, tens of Galois keys strain 8 GB —
        the phenomenon ARK's key-regeneration targets."""
        big = CkksParameters.default(degree=1 << 14, levels=24,
                                     aux_count=4)
        # Hundreds of rotation keys exceed the budget...
        assert not fits_in_hbm(
            big, rotation_steps=2000, ciphertext_count=10,
        )
        # ...a BSGS-sized working set fits.
        assert fits_in_hbm(big, rotation_steps=48, ciphertext_count=10)
