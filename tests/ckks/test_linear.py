"""Unit tests for homomorphic linear transforms (diagonal method)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.ckks.linear import LinearTransform, matrix_diagonals
from tests.conftest import decrypt_real


class TestMatrixDiagonals:
    def test_dense(self):
        m = np.arange(16, dtype=float).reshape(4, 4)
        diags = matrix_diagonals(m)
        assert set(diags) == {0, 1, 2, 3}
        assert np.allclose(diags[0], np.diag(m))
        assert np.allclose(diags[1], [m[0, 1], m[1, 2], m[2, 3], m[3, 0]])

    def test_sparse_skips_zero_diagonals(self):
        m = np.eye(4)
        diags = matrix_diagonals(m)
        assert set(diags) == {0}

    def test_rejects_non_square(self):
        with pytest.raises(EvaluationError):
            matrix_diagonals(np.zeros((2, 3)))

    def test_reconstruction(self):
        """Diagonals fully determine the matrix."""
        rng = np.random.default_rng(0)
        m = rng.uniform(-1, 1, (8, 8))
        diags = matrix_diagonals(m)
        rebuilt = np.zeros((8, 8))
        rows = np.arange(8)
        for d, diag in diags.items():
            rebuilt[rows, (rows + d) % 8] = diag.real
        assert np.allclose(rebuilt, m)


@pytest.fixture(scope="module")
def packed_ct(params, encoder, encryptor):
    """An 8-vector replicated across all slots."""
    rng = np.random.default_rng(1)
    vec = rng.uniform(-1, 1, 8)
    reps = encoder.slots // 8
    ct = encryptor.encrypt(encoder.encode(np.tile(vec, reps)))
    return vec, ct


class TestLinearTransform:
    def test_identity(self, evaluator, encoder, decryptor, packed_ct):
        vec, ct = packed_ct
        lt = LinearTransform(evaluator, encoder, np.eye(8))
        out = decrypt_real(encoder, decryptor, lt.apply(ct))
        assert np.max(np.abs(out[:8] - vec)) < 1e-2

    def test_dense_direct(self, evaluator, encoder, decryptor, packed_ct):
        vec, ct = packed_ct
        rng = np.random.default_rng(2)
        m = rng.uniform(-1, 1, (8, 8))
        lt = LinearTransform(evaluator, encoder, m, use_bsgs=False)
        out = decrypt_real(encoder, decryptor, lt.apply(ct))
        assert np.max(np.abs(out[:8] - m @ vec)) < 5e-2

    def test_dense_bsgs_matches_direct(self, evaluator, encoder, decryptor,
                                       packed_ct):
        vec, ct = packed_ct
        rng = np.random.default_rng(3)
        m = rng.uniform(-1, 1, (8, 8))
        direct = LinearTransform(evaluator, encoder, m, use_bsgs=False)
        bsgs = LinearTransform(evaluator, encoder, m, use_bsgs=True)
        a = decrypt_real(encoder, decryptor, direct.apply(ct))
        b = decrypt_real(encoder, decryptor, bsgs.apply(ct))
        assert np.max(np.abs(a[:8] - b[:8])) < 1e-2

    def test_permutation_matrix(self, evaluator, encoder, decryptor,
                                packed_ct):
        vec, ct = packed_ct
        perm = np.roll(np.eye(8), -1, axis=1)
        lt = LinearTransform(evaluator, encoder, perm)
        out = decrypt_real(encoder, decryptor, lt.apply(ct))
        assert np.max(np.abs(out[:8] - perm @ vec)) < 1e-2

    def test_consumes_one_level(self, evaluator, encoder, packed_ct):
        _, ct = packed_ct
        lt = LinearTransform(evaluator, encoder, np.eye(8))
        out = lt.apply(ct)
        assert out.level == ct.level - 1

    def test_rotation_count_bsgs_smaller(self, evaluator, encoder):
        rng = np.random.default_rng(4)
        m = rng.uniform(-1, 1, (64, 64))
        direct = LinearTransform(evaluator, encoder, m, use_bsgs=False)
        bsgs = LinearTransform(evaluator, encoder, m, use_bsgs=True)
        assert bsgs.rotation_count() < direct.rotation_count()

    def test_rejects_non_dividing_dimension(self, evaluator, encoder):
        with pytest.raises(EvaluationError):
            LinearTransform(evaluator, encoder, np.eye(7))

    def test_reference_helper(self, evaluator, encoder):
        m = np.eye(8) * 2
        lt = LinearTransform(evaluator, encoder, m)
        vec = np.arange(8, dtype=float)
        ref = lt.reference(vec)
        assert ref.shape[0] == encoder.slots
        assert np.allclose(ref[:8], 2 * vec)
