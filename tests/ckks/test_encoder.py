"""Unit tests for the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParameterError
from repro.ckks.encoder import CkksEncoder
from repro.ckks.params import CkksParameters


@pytest.fixture(scope="module")
def small_params():
    return CkksParameters.default(degree=64, levels=3)


@pytest.fixture(scope="module")
def small_encoder(small_params):
    return CkksEncoder(small_params)


class TestRoundtrip:
    def test_real_vector(self, small_encoder, small_params):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, small_params.slot_count)
        decoded = small_encoder.decode(small_encoder.encode(x))
        assert np.max(np.abs(decoded.real - x)) < 1e-4
        assert np.max(np.abs(decoded.imag)) < 1e-4

    def test_complex_vector(self, small_encoder, small_params):
        rng = np.random.default_rng(1)
        z = rng.uniform(-1, 1, small_params.slot_count) + 1j * rng.uniform(
            -1, 1, small_params.slot_count
        )
        decoded = small_encoder.decode(small_encoder.encode(z))
        assert np.max(np.abs(decoded - z)) < 1e-4

    def test_short_input_zero_padded(self, small_encoder):
        pt = small_encoder.encode([1.0, 2.0])
        decoded = small_encoder.decode(pt)
        assert abs(decoded[0] - 1.0) < 1e-4
        assert abs(decoded[1] - 2.0) < 1e-4
        assert np.max(np.abs(decoded[2:])) < 1e-4

    def test_higher_scale_higher_precision(self, small_params):
        enc = CkksEncoder(small_params)
        x = np.full(small_params.slot_count, 1 / 3)
        low = enc.decode(enc.encode(x, scale=2.0**12))
        high = enc.decode(enc.encode(x, scale=2.0**26))
        assert np.max(np.abs(high.real - x)) < np.max(np.abs(low.real - x))

    @given(st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_roundtrip_property(self, seed):
        params = CkksParameters.default(degree=64, levels=3)
        enc = CkksEncoder(params)
        x = np.random.default_rng(seed).uniform(-1, 1, params.slot_count)
        decoded = enc.decode(enc.encode(x))
        assert np.max(np.abs(decoded.real - x)) < 1e-3


class TestStructure:
    def test_too_many_slots_rejected(self, small_encoder, small_params):
        with pytest.raises(ParameterError):
            small_encoder.encode(np.zeros(small_params.slot_count + 1))

    def test_scalar_broadcast(self, small_encoder, small_params):
        pt = small_encoder.encode_scalar(0.5)
        decoded = small_encoder.decode(pt)
        assert np.max(np.abs(decoded.real - 0.5)) < 1e-4

    def test_level_context_encoding(self, small_encoder, small_params):
        ctx = small_params.context_at_level(1)
        pt = small_encoder.encode([0.25], context=ctx)
        assert pt.poly.level_count == 2

    def test_encode_is_homomorphic_under_add(self, small_encoder, small_params):
        """encode(x) + encode(y) decodes to x + y (linearity)."""
        rng = np.random.default_rng(2)
        x = rng.uniform(-1, 1, small_params.slot_count)
        y = rng.uniform(-1, 1, small_params.slot_count)
        px = small_encoder.encode(x)
        py = small_encoder.encode(y)
        from repro.ckks.ciphertext import Plaintext

        psum = Plaintext(poly=px.poly + py.poly, scale=px.scale)
        decoded = small_encoder.decode(psum)
        assert np.max(np.abs(decoded.real - (x + y))) < 1e-3

    def test_rotation_in_slot_space(self, small_encoder, small_params):
        """Applying sigma_5 to an encoded poly rotates slots by one."""
        from repro.automorphism.mapping import apply_automorphism_poly
        from repro.ckks.ciphertext import Plaintext

        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, small_params.slot_count)
        pt = small_encoder.encode(x)
        rotated = apply_automorphism_poly(pt.poly, 5)
        decoded = small_encoder.decode(
            Plaintext(poly=rotated, scale=pt.scale)
        )
        assert np.max(np.abs(decoded.real - np.roll(x, -1))) < 1e-3

    def test_conjugation_in_slot_space(self, small_encoder, small_params):
        """sigma_{2N-1} conjugates the slots."""
        from repro.automorphism.mapping import apply_automorphism_poly
        from repro.ckks.ciphertext import Plaintext

        rng = np.random.default_rng(4)
        z = rng.uniform(-1, 1, small_params.slot_count) + 1j * rng.uniform(
            -1, 1, small_params.slot_count
        )
        pt = small_encoder.encode(z)
        conj = apply_automorphism_poly(
            pt.poly, 2 * small_params.degree - 1
        )
        decoded = small_encoder.decode(Plaintext(poly=conj, scale=pt.scale))
        assert np.max(np.abs(decoded - np.conj(z))) < 1e-3
