"""Unit tests for the wire format."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.ckks.serialization import (
    ciphertext_from_bytes,
    ciphertext_to_bytes,
    params_from_bytes,
    params_to_bytes,
    plaintext_from_bytes,
    plaintext_to_bytes,
    poly_from_bytes,
    poly_to_bytes,
)
from repro.rns.context import RnsContext
from repro.rns.poly import Domain, RnsPolynomial
from repro.utils.primes import find_ntt_primes
from tests.conftest import decrypt_real

N = 64
PRIMES = find_ntt_primes(30, 3, N)


class TestPolyRoundtrip:
    def test_roundtrip(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.from_integers(list(range(-32, 32)), ctx)
        back = poly_from_bytes(poly_to_bytes(poly))
        assert back == poly

    def test_ntt_domain_preserved(self):
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.zeros(N, ctx, Domain.NTT)
        assert poly_from_bytes(poly_to_bytes(poly)).domain is Domain.NTT

    def test_limb_width_is_32bit(self):
        """Serialized size matches the hardware 4-byte limb layout."""
        ctx = RnsContext(PRIMES)
        poly = RnsPolynomial.zeros(N, ctx)
        blob = poly_to_bytes(poly)
        assert len(blob) < 3 * N * 8  # strictly smaller than uint64 dump
        # Payload alone: L * N * 4 bytes.
        from repro.ckks.serialization import _unpack

        _, payload = _unpack(blob)
        assert len(payload) == 3 * N * 4

    def test_bad_magic_rejected(self):
        with pytest.raises(ParameterError):
            poly_from_bytes(b"NOPE" + b"\x00" * 32)

    def test_kind_mismatch_rejected(self):
        ctx = RnsContext(PRIMES)
        blob = poly_to_bytes(RnsPolynomial.zeros(N, ctx))
        with pytest.raises(ParameterError):
            ciphertext_from_bytes(blob)

    def test_truncated_payload_rejected(self):
        ctx = RnsContext(PRIMES)
        blob = poly_to_bytes(RnsPolynomial.zeros(N, ctx))
        with pytest.raises(Exception):
            poly_from_bytes(blob[:-16])

    def test_version_mismatch_rejected(self):
        ctx = RnsContext(PRIMES)
        blob = bytearray(poly_to_bytes(RnsPolynomial.zeros(N, ctx)))
        blob[4] = 99  # corrupt the version field
        with pytest.raises(ParameterError):
            poly_from_bytes(bytes(blob))


class TestCiphertextRoundtrip:
    def test_decrypts_after_roundtrip(self, params, encoder, encryptor,
                                      decryptor):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        restored = ciphertext_from_bytes(ciphertext_to_bytes(ct))
        assert restored.scale == ct.scale
        assert restored.level == ct.level
        out = decrypt_real(encoder, decryptor, restored)
        assert np.max(np.abs(out - x)) < 1e-3

    def test_three_part_ciphertext(self, params, encoder, encryptor,
                                   evaluator):
        ct = encryptor.encrypt(encoder.encode([0.5]))
        three = evaluator.multiply(ct, ct, relinearize=False)
        restored = ciphertext_from_bytes(ciphertext_to_bytes(three))
        assert restored.size == 3


class TestPlaintextAndParams:
    def test_plaintext_roundtrip(self, params, encoder):
        pt = encoder.encode([0.25, -0.5])
        restored = plaintext_from_bytes(plaintext_to_bytes(pt))
        assert restored.scale == pt.scale
        assert restored.poly == pt.poly

    def test_params_roundtrip(self, params):
        restored = params_from_bytes(params_to_bytes(params))
        assert restored == params
        # Derived contexts reconstruct identically.
        assert restored.context == params.context
