"""Unit tests for the keyswitch primitive itself."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.ckks.keyswitch import apply_switch_key, lift_digit
from repro.ntt.negacyclic import intt_negacyclic, ntt_negacyclic
from repro.rns.poly import Domain, RnsPolynomial


class TestLiftDigit:
    def test_exact_lift(self, params):
        rng = np.random.default_rng(0)
        q0 = params.chain_moduli[0]
        digit = rng.integers(0, q0, params.degree, dtype=np.uint64)
        target = params.key_context
        lifted = lift_digit(digit, target)
        # The lift must represent the same integers in every limb.
        recovered = lifted.to_integers(signed=False)
        assert recovered == [int(v) for v in digit]


class TestApplySwitchKey:
    def test_relin_key_decrypts_to_d_times_s2(self, params, keys):
        """delta0 + delta1*s ≈ d * s^2 for the relinearization key."""
        rng = np.random.default_rng(1)
        ctx = params.context
        d = RnsPolynomial.from_integers(
            [int(v) for v in rng.integers(0, 100, params.degree)], ctx
        )
        delta0, delta1 = apply_switch_key(d, keys.relin, params)

        s_ntt = keys.secret.poly_ntt(ctx)
        got = delta0 + intt_negacyclic(
            ntt_negacyclic(delta1).hadamard(s_ntt)
        )
        # Expected: d * s^2 over the ring.
        s2 = s_ntt.hadamard(s_ntt)
        expected = intt_negacyclic(ntt_negacyclic(d).hadamard(s2))
        diff = (got - expected).to_integers()
        noise = max(abs(v) for v in diff)
        # Keyswitch noise ~ digits * q * e / P + rounding: small.
        assert noise < params.degree * 64

    def test_works_at_lower_level(self, params, keys):
        ctx = params.context_at_level(1)
        d = RnsPolynomial.from_integers([7] * params.degree, ctx)
        delta0, delta1 = apply_switch_key(d, keys.relin, params)
        assert delta0.context == ctx
        assert delta1.context == ctx

    def test_rejects_ntt_domain(self, params, keys):
        d = RnsPolynomial.zeros(params.degree, params.context).with_domain(
            Domain.NTT
        )
        with pytest.raises(EvaluationError):
            apply_switch_key(d, keys.relin, params)

    def test_galois_key_switches_rotated_secret(self, params, keys):
        """For the rotation key: delta0 + delta1*s ≈ d * sigma_k(s)."""
        from repro.automorphism.galois import galois_element_for_rotation
        from repro.ckks.keys import _apply_automorphism_integers

        rng = np.random.default_rng(2)
        galois = galois_element_for_rotation(params.degree, 2)
        key = keys.galois_key(galois)
        ctx = params.context
        d = RnsPolynomial.from_integers(
            [int(v) for v in rng.integers(0, 50, params.degree)], ctx
        )
        delta0, delta1 = apply_switch_key(d, key, params)
        s_ntt = keys.secret.poly_ntt(ctx)
        got = delta0 + intt_negacyclic(
            ntt_negacyclic(delta1).hadamard(s_ntt)
        )
        rot_s = RnsPolynomial.from_integers(
            _apply_automorphism_integers(
                list(keys.secret.coefficients), params.degree, galois
            ),
            ctx,
        )
        expected = intt_negacyclic(
            ntt_negacyclic(d).hadamard(ntt_negacyclic(rot_s))
        )
        diff = (got - expected).to_integers()
        assert max(abs(v) for v in diff) < params.degree * 64
