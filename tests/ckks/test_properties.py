"""Property-based tests of the scheme's homomorphism laws.

Hypothesis drives random slot vectors and operation sequences through
the evaluator; decryption must track the plaintext computation within
CKKS tolerance. Uses small vectors padded into the session fixtures'
parameter set to keep each example fast.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

SLOT_TOL = 5e-2

finite_floats = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
vectors = st.lists(finite_floats, min_size=1, max_size=8)

# The session-scoped fixtures are expensive; suppress the corresponding
# health check rather than regenerate keys per example.
relaxed = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def pad(values, slots):
    out = np.zeros(slots)
    out[: len(values)] = values
    return out


def roundtrip(encoder, decryptor, ct, count):
    return encoder.decode(decryptor.decrypt(ct)).real[:count]


class TestAdditiveHomomorphism:
    @given(vectors, vectors)
    @relaxed
    def test_add(self, params, encoder, encryptor, decryptor, evaluator,
                 xs, ys):
        n = max(len(xs), len(ys))
        x = pad(xs, params.slot_count)
        y = pad(ys, params.slot_count)
        ct = evaluator.add(
            encryptor.encrypt(encoder.encode(x)),
            encryptor.encrypt(encoder.encode(y)),
        )
        got = roundtrip(encoder, decryptor, ct, n)
        assert np.max(np.abs(got - (x + y)[:n])) < SLOT_TOL

    @given(vectors)
    @relaxed
    def test_add_inverse(self, params, encoder, encryptor, decryptor,
                         evaluator, xs):
        """x + (-x) decrypts to ~0."""
        x = pad(xs, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        zero = evaluator.add(ct, evaluator.negate(ct))
        got = roundtrip(encoder, decryptor, zero, len(xs))
        assert np.max(np.abs(got)) < SLOT_TOL

    @given(vectors, vectors)
    @relaxed
    def test_add_commutes(self, params, encoder, encryptor, decryptor,
                          evaluator, xs, ys):
        x = pad(xs, params.slot_count)
        y = pad(ys, params.slot_count)
        a = encryptor.encrypt(encoder.encode(x))
        b = encryptor.encrypt(encoder.encode(y))
        ab = roundtrip(encoder, decryptor, evaluator.add(a, b), 4)
        ba = roundtrip(encoder, decryptor, evaluator.add(b, a), 4)
        assert np.max(np.abs(ab - ba)) < 1e-6


class TestMultiplicativeHomomorphism:
    @given(vectors, vectors)
    @relaxed
    def test_cmult(self, params, encoder, encryptor, decryptor, evaluator,
                   xs, ys):
        n = max(len(xs), len(ys))
        x = pad(xs, params.slot_count)
        y = pad(ys, params.slot_count)
        ct = evaluator.multiply_and_rescale(
            encryptor.encrypt(encoder.encode(x)),
            encryptor.encrypt(encoder.encode(y)),
        )
        got = roundtrip(encoder, decryptor, ct, n)
        assert np.max(np.abs(got - (x * y)[:n])) < SLOT_TOL

    @given(vectors)
    @relaxed
    def test_mult_by_zero(self, params, encoder, encryptor, decryptor,
                          evaluator, xs):
        x = pad(xs, params.slot_count)
        zero = np.zeros(params.slot_count)
        ct = evaluator.multiply_and_rescale(
            encryptor.encrypt(encoder.encode(x)),
            encryptor.encrypt(encoder.encode(zero)),
        )
        got = roundtrip(encoder, decryptor, ct, len(xs))
        assert np.max(np.abs(got)) < SLOT_TOL

    @given(vectors)
    @relaxed
    def test_distributivity(self, params, encoder, encryptor, decryptor,
                            evaluator, xs):
        """x*(x + x) == x*x + x*x within tolerance."""
        x = pad(xs, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        double = evaluator.add(ct, ct)
        left = evaluator.multiply_and_rescale(ct, double)
        sq = evaluator.multiply_and_rescale(ct, ct)
        right = evaluator.add(sq, sq)
        l_vals = roundtrip(encoder, decryptor, left, len(xs))
        r_vals = roundtrip(encoder, decryptor, right, len(xs))
        assert np.max(np.abs(l_vals - r_vals)) < SLOT_TOL


class TestRotationGroup:
    @given(st.integers(1, 31), st.integers(1, 31))
    @relaxed
    def test_rotations_compose(self, params, encoder, encryptor, decryptor,
                               evaluator, s1, s2):
        rng = np.random.default_rng(s1 * 37 + s2)
        x = rng.uniform(-1, 1, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        via_two = evaluator.rotate(evaluator.rotate(ct, s1), s2)
        direct = evaluator.rotate(ct, s1 + s2)
        a = roundtrip(encoder, decryptor, via_two, 8)
        b = roundtrip(encoder, decryptor, direct, 8)
        assert np.max(np.abs(a - b)) < SLOT_TOL

    @given(st.integers(1, 127))
    @relaxed
    def test_full_cycle(self, params, encoder, encryptor, decryptor,
                        evaluator, steps):
        """Rotating by k then slots-k returns the original vector."""
        rng = np.random.default_rng(steps)
        x = rng.uniform(-1, 1, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        back = evaluator.rotate(
            evaluator.rotate(ct, steps), params.slot_count - steps
        )
        got = roundtrip(encoder, decryptor, back, 8)
        assert np.max(np.abs(got - x[:8])) < SLOT_TOL
