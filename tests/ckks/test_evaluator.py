"""Integration tests: every basic homomorphic operation decrypts right.

These are the paper's §II-A operations (Table I rows) executed for
real on the functional plane, checked against plaintext arithmetic.
"""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.ckks.evaluator import CkksEvaluator
from tests.conftest import decrypt_real


@pytest.fixture(scope="module")
def cts(encoder, encryptor, slot_vectors):
    x, y = slot_vectors
    return (
        encryptor.encrypt(encoder.encode(x)),
        encryptor.encrypt(encoder.encode(y)),
    )


class TestHAdd:
    def test_ct_ct(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, y = slot_vectors
        out = decrypt_real(encoder, decryptor, evaluator.add(*cts))
        assert np.max(np.abs(out - (x + y))) < 1e-3

    def test_sub(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, y = slot_vectors
        out = decrypt_real(encoder, decryptor, evaluator.sub(*cts))
        assert np.max(np.abs(out - (x - y))) < 1e-3

    def test_ct_pt(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, y = slot_vectors
        ct = evaluator.add_plain(cts[0], encoder.encode(y))
        out = decrypt_real(encoder, decryptor, ct)
        assert np.max(np.abs(out - (x + y))) < 1e-3

    def test_negate(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, _ = slot_vectors
        out = decrypt_real(encoder, decryptor, evaluator.negate(cts[0]))
        assert np.max(np.abs(out + x)) < 1e-3

    def test_mismatched_scales_rejected(self, evaluator, encoder, encryptor,
                                        cts):
        other = encryptor.encrypt(encoder.encode([1.0], scale=2.0**20))
        with pytest.raises(EvaluationError):
            evaluator.add(cts[0], other)


class TestPMult:
    def test_basic(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, y = slot_vectors
        ct = evaluator.rescale(
            evaluator.multiply_plain(cts[0], encoder.encode(y))
        )
        out = decrypt_real(encoder, decryptor, ct)
        assert np.max(np.abs(out - x * y)) < 1e-2

    def test_scalar(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, _ = slot_vectors
        ct = evaluator.rescale(evaluator.multiply_scalar(cts[0], 0.5))
        out = decrypt_real(encoder, decryptor, ct)
        assert np.max(np.abs(out - 0.5 * x)) < 1e-2

    def test_scale_multiplies(self, evaluator, encoder, cts, params):
        ct = evaluator.multiply_plain(cts[0], encoder.encode([1.0]))
        assert ct.scale == pytest.approx(params.scale**2)


class TestCMult:
    def test_basic(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, y = slot_vectors
        ct = evaluator.multiply_and_rescale(*cts)
        assert ct.size == 2
        out = decrypt_real(encoder, decryptor, ct)
        assert np.max(np.abs(out - x * y)) < 1e-2

    def test_unrelinearized_three_parts(self, evaluator, encoder, decryptor,
                                        cts, slot_vectors):
        x, y = slot_vectors
        ct = evaluator.multiply(*cts, relinearize=False)
        assert ct.size == 3
        # 3-part ciphertexts still decrypt (sum c_i s^i).
        out = decrypt_real(encoder, decryptor, evaluator.rescale(ct))
        assert np.max(np.abs(out - x * y)) < 1e-2

    def test_relinearize_matches_unrelinearized(
        self, evaluator, encoder, decryptor, cts, slot_vectors
    ):
        x, y = slot_vectors
        full = evaluator.multiply_and_rescale(*cts)
        lazy = evaluator.rescale(evaluator.multiply(*cts, relinearize=False))
        a = decrypt_real(encoder, decryptor, full)
        b = decrypt_real(encoder, decryptor, lazy)
        assert np.max(np.abs(a - b)) < 1e-2

    def test_square(self, evaluator, encoder, decryptor, cts, slot_vectors):
        x, _ = slot_vectors
        ct = evaluator.rescale(evaluator.square(cts[0]))
        out = decrypt_real(encoder, decryptor, ct)
        assert np.max(np.abs(out - x * x)) < 1e-2

    def test_depth_two(self, evaluator, encoder, decryptor, cts,
                       slot_vectors):
        x, y = slot_vectors
        xy = evaluator.multiply_and_rescale(*cts)
        aligned = evaluator.drop_to_level(cts[0], xy.level)
        x2y = evaluator.multiply_and_rescale(xy, aligned)
        out = decrypt_real(encoder, decryptor, x2y)
        assert np.max(np.abs(out - x * x * y)) < 5e-2

    def test_requires_two_parts(self, evaluator, cts):
        three = evaluator.multiply(*cts, relinearize=False)
        with pytest.raises(EvaluationError):
            evaluator.multiply(three, cts[0])


class TestRescaleAndLevels:
    def test_rescale_drops_level(self, evaluator, encoder, cts, params):
        ct = evaluator.multiply_plain(cts[0], encoder.encode([1.0]))
        out = evaluator.rescale(ct)
        assert out.level == params.max_level - 1
        assert out.scale == pytest.approx(
            params.scale**2 / params.chain_moduli[params.max_level], rel=1e-9
        )

    def test_rescale_at_bottom_rejected(self, evaluator, cts):
        ct = evaluator.drop_to_level(cts[0], 0)
        with pytest.raises(EvaluationError):
            evaluator.rescale(ct)

    def test_drop_to_level_preserves_message(self, evaluator, encoder,
                                             decryptor, cts, slot_vectors):
        x, _ = slot_vectors
        dropped = evaluator.drop_to_level(cts[0], 1)
        assert dropped.level == 1
        out = decrypt_real(encoder, decryptor, dropped)
        assert np.max(np.abs(out - x)) < 1e-3

    def test_drop_cannot_raise(self, evaluator, cts):
        low = evaluator.drop_to_level(cts[0], 0)
        with pytest.raises(EvaluationError):
            evaluator.drop_to_level(low, 2)

    def test_add_auto_aligns_levels(self, evaluator, encoder, decryptor,
                                    cts, slot_vectors):
        x, y = slot_vectors
        low = evaluator.drop_to_level(cts[1], 1)
        out = decrypt_real(encoder, decryptor, evaluator.add(cts[0], low))
        assert np.max(np.abs(out - (x + y))) < 1e-3


class TestRotation:
    @pytest.mark.parametrize("steps", [1, 3, 17])
    def test_rotate(self, evaluator, encoder, decryptor, cts, slot_vectors,
                    steps):
        x, _ = slot_vectors
        out = decrypt_real(
            encoder, decryptor, evaluator.rotate(cts[0], steps)
        )
        assert np.max(np.abs(out - np.roll(x, -steps))) < 1e-2

    def test_rotate_zero_identity(self, evaluator, cts):
        assert evaluator.rotate(cts[0], 0) is cts[0]

    def test_rotate_full_cycle_identity(self, evaluator, params, cts):
        assert evaluator.rotate(cts[0], params.slot_count) is cts[0]

    def test_conjugate(self, evaluator, encoder, encryptor, decryptor,
                       params):
        rng = np.random.default_rng(8)
        z = rng.uniform(-1, 1, params.slot_count) + 1j * rng.uniform(
            -1, 1, params.slot_count
        )
        ct = encryptor.encrypt(encoder.encode(z))
        out = encoder.decode(decryptor.decrypt(evaluator.conjugate(ct)))
        assert np.max(np.abs(out - np.conj(z))) < 1e-2

    def test_rotate_sum(self, evaluator, encoder, decryptor, cts,
                        slot_vectors):
        x, _ = slot_vectors
        width = 8
        out = decrypt_real(encoder, decryptor,
                           evaluator.rotate_sum(cts[0], width))
        expected = sum(np.roll(x, -s) for s in range(width))
        assert np.max(np.abs(out[:width] - expected[:width])) < 5e-2

    def test_naive_auto_matches_hfauto(self, params, keys, encoder,
                                       decryptor, cts, slot_vectors):
        """The Table IX ablation: same results either way."""
        x, _ = slot_vectors
        naive_eval = CkksEvaluator(params, keys, use_hfauto=False)
        hf_eval = CkksEvaluator(params, keys, use_hfauto=True)
        a = decrypt_real(encoder, decryptor, naive_eval.rotate(cts[0], 5))
        b = decrypt_real(encoder, decryptor, hf_eval.rotate(cts[0], 5))
        assert np.max(np.abs(a - b)) < 1e-6
