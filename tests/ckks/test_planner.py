"""Unit tests for the level/bootstrap planner."""

import pytest

from repro.errors import WorkloadError
from repro.ckks.planner import (
    LevelPlanner,
    Stage,
    uniform_stages,
)


class TestStage:
    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            Stage("x", -1)

    def test_zero_cost_allowed(self):
        assert Stage("free", 0).levels == 0


class TestLevelPlanner:
    def test_no_bootstrap_when_chain_suffices(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=10)
        plan = planner.plan(uniform_stages(3, 4))
        assert plan.bootstrap_count == 0
        assert plan.final_level == 20 - 12

    def test_lazy_insertion(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=10, reserve=1)
        # refreshed level = 10; stages of 4 need 5 with reserve.
        plan = planner.plan(uniform_stages(6, 4))
        # 20 -> after 3 stages level 8 -> too low for 4th: bootstrap.
        assert plan.bootstrap_count >= 1
        first_boot = plan.bootstraps()[0]
        assert first_boot.level_after == 10
        # Every stage ran with at least `reserve` levels to spare.
        for entry in plan.stages():
            assert entry.level_after >= 0

    def test_counts_match_lstm_style(self):
        """Per-step refreshes: shallow chain + 4-level steps."""
        planner = LevelPlanner(top_level=24, bootstrap_depth=14, reserve=1)
        plan = planner.plan(uniform_stages(50, 4))
        # refreshed level 10 -> 2 steps per refresh after warmup.
        assert 20 <= plan.bootstrap_count <= 30

    def test_oversized_stage_rejected(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=15)
        with pytest.raises(WorkloadError):
            planner.plan([Stage("huge", 10)])

    def test_bootstrap_depth_must_fit(self):
        with pytest.raises(WorkloadError):
            LevelPlanner(top_level=10, bootstrap_depth=10)

    def test_start_level_override(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=10)
        plan = planner.plan(uniform_stages(1, 2), start_level=2)
        # 2 levels < 2 + reserve -> immediate bootstrap.
        assert plan.bootstrap_count == 1
        assert plan.entries[0].kind == "bootstrap"

    def test_minimum_bootstraps_shortcut(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=10)
        stages = uniform_stages(10, 3)
        assert planner.minimum_bootstraps(stages) == (
            planner.plan(stages).bootstrap_count
        )

    def test_plan_entry_consistency(self):
        planner = LevelPlanner(top_level=20, bootstrap_depth=12)
        plan = planner.plan(uniform_stages(8, 2))
        prev_after = None
        for entry in plan.entries:
            if prev_after is not None:
                assert entry.level_before == prev_after
            prev_after = entry.level_after


class TestPaperBudgets:
    def test_helr_two_bootstraps(self):
        """LR: L=38 start, 7 levels/iteration, 10 iterations — the
        paper's budget of 2 bootstraps is achievable."""
        planner = LevelPlanner(top_level=38, bootstrap_depth=14, reserve=0)
        plan = planner.plan(
            uniform_stages(10, 7, prefix="iter"), start_level=38
        )
        assert plan.bootstrap_count == 2
