"""Unit tests for key generation, encryption and decryption."""

import numpy as np
import pytest

from repro.ckks.keys import (
    KeyChain,
    sample_gaussian_integers,
    sample_ternary_integers,
)
from tests.conftest import decrypt_real


class TestSampling:
    def test_ternary_range(self):
        rng = np.random.default_rng(0)
        coeffs = sample_ternary_integers(256, rng)
        assert set(coeffs) <= {-1, 0, 1}

    def test_ternary_hamming_weight(self):
        rng = np.random.default_rng(1)
        coeffs = sample_ternary_integers(256, rng, hamming_weight=16)
        assert sum(1 for c in coeffs if c != 0) == 16

    def test_gaussian_magnitude(self):
        rng = np.random.default_rng(2)
        coeffs = sample_gaussian_integers(4096, rng)
        assert max(abs(c) for c in coeffs) < 30  # ~9 sigma
        assert abs(sum(coeffs)) < 4 * 3.2 * 64  # mean near zero


class TestKeyChain:
    def test_public_key_is_rlwe_sample(self, params, keys):
        """b + a*s must decode to the small error e."""
        from repro.ntt.negacyclic import intt_negacyclic

        s = keys.secret.poly_ntt(params.context)
        check = intt_negacyclic(keys.public.b + keys.public.a.hadamard(s))
        error = check.to_integers()
        assert max(abs(v) for v in error) < 30

    def test_galois_key_cached(self, keys):
        k1 = keys.rotation_key(3)
        k2 = keys.rotation_key(3)
        assert k1 is k2

    def test_relin_key_rank(self, params, keys):
        assert keys.relin.rank == len(params.chain_moduli)

    def test_distinct_seeds_differ(self, params):
        a = KeyChain.generate(params, seed=1)
        b = KeyChain.generate(params, seed=2)
        assert a.secret.coefficients != b.secret.coefficients


class TestEncryptDecrypt:
    def test_roundtrip(self, encoder, encryptor, decryptor, slot_vectors):
        x, _ = slot_vectors
        ct = encryptor.encrypt(encoder.encode(x))
        assert ct.size == 2
        assert np.max(np.abs(decrypt_real(encoder, decryptor, ct) - x)) < 1e-3

    def test_symmetric_roundtrip(self, encoder, encryptor, decryptor,
                                 slot_vectors):
        x, _ = slot_vectors
        ct = encryptor.encrypt_symmetric(encoder.encode(x))
        assert np.max(np.abs(decrypt_real(encoder, decryptor, ct) - x)) < 1e-3

    def test_fresh_ciphertexts_differ(self, encoder, encryptor):
        pt = encoder.encode([1.0])
        c1 = encryptor.encrypt(pt)
        c2 = encryptor.encrypt(pt)
        assert not np.array_equal(c1.parts[0].data, c2.parts[0].data)

    def test_level_and_scale(self, params, encoder, encryptor):
        ct = encryptor.encrypt(encoder.encode([0.5]))
        assert ct.level == params.max_level
        assert ct.scale == params.scale

    def test_wrong_context_rejected(self, params, encoder, encryptor):
        from repro.errors import EncryptionError

        pt = encoder.encode([0.5], context=params.context_at_level(0))
        with pytest.raises(EncryptionError):
            encryptor.encrypt(pt)

    def test_complex_message(self, encoder, encryptor, decryptor, params):
        rng = np.random.default_rng(5)
        z = rng.uniform(-1, 1, params.slot_count) * (0.5 + 0.5j)
        ct = encryptor.encrypt(encoder.encode(z))
        decoded = encoder.decode(decryptor.decrypt(ct))
        assert np.max(np.abs(decoded - z)) < 1e-3
