"""Tests for evaluation-domain automorphisms and hoisted rotations."""

import numpy as np
import pytest

from repro.errors import AutomorphismError, EvaluationError
from repro.automorphism.mapping import (
    apply_automorphism_eval,
    apply_automorphism_poly,
    eval_permutation,
)
from repro.ckks.hoisting import HoistedRotator
from repro.ntt.negacyclic import ntt_negacyclic
from repro.rns.context import RnsContext
from repro.rns.poly import RnsPolynomial
from repro.utils.primes import find_ntt_primes
from tests.conftest import decrypt_real

N = 64
PRIMES = find_ntt_primes(30, 2, N)


@pytest.fixture(scope="module")
def sample_poly():
    ctx = RnsContext(PRIMES)
    rng = np.random.default_rng(0)
    return RnsPolynomial.from_integers(
        [int(v) - 50 for v in rng.integers(0, 100, N)], ctx
    )


class TestEvalPermutation:
    def test_is_permutation(self):
        for k in (3, 5, 9, 2 * N - 1):
            perm = eval_permutation(N, k)
            assert sorted(perm.tolist()) == list(range(N))

    def test_identity_element(self):
        assert eval_permutation(N, 1).tolist() == list(range(N))

    def test_rejects_even(self):
        with pytest.raises(AutomorphismError):
            eval_permutation(N, 4)

    @pytest.mark.parametrize("k", [3, 5, 25, 2 * N - 1])
    def test_commutes_with_ntt(self, sample_poly, k):
        """NTT(sigma_k(a)) == eval-permute(NTT(a)) — the hoisting law."""
        direct = ntt_negacyclic(apply_automorphism_poly(sample_poly, k))
        via_eval = apply_automorphism_eval(
            ntt_negacyclic(sample_poly), k
        )
        assert direct == via_eval

    def test_composition(self, sample_poly):
        """Eval-domain maps compose like the Galois group."""
        f = ntt_negacyclic(sample_poly)
        once = apply_automorphism_eval(apply_automorphism_eval(f, 3), 5)
        composed = apply_automorphism_eval(f, 15 % (2 * N))
        assert once == composed

    def test_rejects_coefficient_domain(self, sample_poly):
        with pytest.raises(AutomorphismError):
            apply_automorphism_eval(sample_poly, 3)


class TestHoistedRotator:
    @pytest.fixture(scope="class")
    def ct(self, encoder, encryptor, slot_vectors):
        x, _ = slot_vectors
        return x, encryptor.encrypt(encoder.encode(x))

    def test_matches_plain_rotation(self, params, keys, evaluator, encoder,
                                    decryptor, ct):
        x, ciphertext = ct
        rotator = HoistedRotator(params, keys, ciphertext,
                                 evaluator=evaluator)
        for steps in (1, 5, 31):
            hoisted = decrypt_real(
                encoder, decryptor, rotator.rotate(steps)
            )
            assert np.max(np.abs(hoisted - np.roll(x, -steps))) < 1e-2

    def test_rotate_many(self, params, keys, evaluator, encoder, decryptor,
                         ct):
        x, ciphertext = ct
        rotator = HoistedRotator(params, keys, ciphertext,
                                 evaluator=evaluator)
        outs = rotator.rotate_many([1, 2, 3])
        for steps, out in zip([1, 2, 3], outs):
            decoded = decrypt_real(encoder, decryptor, out)
            assert np.max(np.abs(decoded - np.roll(x, -steps))) < 1e-2

    def test_zero_rotation_identity(self, params, keys, evaluator, ct):
        _, ciphertext = ct
        rotator = HoistedRotator(params, keys, ciphertext,
                                 evaluator=evaluator)
        assert rotator.rotate(0) is ciphertext

    def test_rejects_three_part(self, params, keys, evaluator, ct):
        _, ciphertext = ct
        three = evaluator.multiply(ciphertext, ciphertext,
                                   relinearize=False)
        with pytest.raises(EvaluationError):
            HoistedRotator(params, keys, three)

    def test_works_at_lower_level(self, params, keys, evaluator, encoder,
                                  decryptor, ct):
        x, ciphertext = ct
        low = evaluator.drop_to_level(ciphertext, 1)
        rotator = HoistedRotator(params, keys, low, evaluator=evaluator)
        decoded = decrypt_real(encoder, decryptor, rotator.rotate(4))
        assert np.max(np.abs(decoded - np.roll(x, -4))) < 1e-2


class TestHoistedLinearTransform:
    def test_bsgs_with_hoisting_matches(self, params, evaluator, encoder,
                                        encryptor, decryptor):
        """LinearTransform(use_hoisting=True) equals the plain path."""
        from repro.ckks.linear import LinearTransform

        rng = np.random.default_rng(5)
        vec = rng.uniform(-1, 1, 8)
        reps = encoder.slots // 8
        ct = encryptor.encrypt(encoder.encode(np.tile(vec, reps)))
        m = rng.uniform(-1, 1, (8, 8))
        plain = LinearTransform(evaluator, encoder, m, use_hoisting=False)
        hoisted = LinearTransform(evaluator, encoder, m, use_hoisting=True)
        a = decrypt_real(encoder, decryptor, plain.apply(ct))
        b = decrypt_real(encoder, decryptor, hoisted.apply(ct))
        assert np.max(np.abs(a[:8] - b[:8])) < 1e-2
