"""Unit tests for the security estimator."""

import pytest

from repro.errors import ParameterError
from repro.ckks.params import CkksParameters
from repro.ckks.security import (
    estimate,
    max_chain_length,
    max_modulus_bits,
    total_modulus_bits,
)


class TestStandardTable:
    def test_exact_rows(self):
        assert max_modulus_bits(1 << 13, 128) == 218
        assert max_modulus_bits(1 << 15, 192) == 611

    def test_monotone_in_degree(self):
        prev = 0.0
        for logn in range(10, 18):
            cur = max_modulus_bits(1 << logn, 128)
            assert cur > prev
            prev = cur

    def test_monotone_in_security(self):
        for logn in (12, 14, 16):
            n = 1 << logn
            assert (
                max_modulus_bits(n, 128)
                > max_modulus_bits(n, 192)
                > max_modulus_bits(n, 256)
            )

    def test_interpolation_between_rows(self):
        """Non-power-of-table degrees interpolate sensibly."""
        mid = max_modulus_bits(3 * (1 << 12), 128)  # between 2^13, 2^14
        assert 218 < mid < 438

    def test_extrapolation_beyond_table(self):
        assert max_modulus_bits(1 << 18, 128) > max_modulus_bits(1 << 17, 128)

    def test_tiny_degree_zero_budget(self):
        assert max_modulus_bits(256, 128) == 0.0

    def test_bad_level_rejected(self):
        with pytest.raises(ParameterError):
            max_modulus_bits(1 << 14, 100)


class TestEstimate:
    def test_total_bits(self):
        params = CkksParameters.default(degree=1 << 12, levels=3)
        bits = total_modulus_bits(params)
        # 3 chain primes ~30 bits + 1 aux ~31 bits.
        assert 119 < bits < 122

    def test_secure_configuration(self):
        params = CkksParameters.default(degree=1 << 13, levels=4)
        result = estimate(params)
        # ~151 bits total vs a 218-bit budget at 2^13.
        assert result.is_standard_secure
        assert result.achieved_level >= 128

    def test_insecure_toy_configuration(self):
        """Test-scale parameters are (knowingly) not secure."""
        params = CkksParameters.default(degree=256, levels=4)
        result = estimate(params)
        assert not result.is_standard_secure

    def test_paper_scale_chain(self):
        """N = 2^16 admits the paper's L = 44-60 chain at 128-bit."""
        l_max = max_chain_length(1 << 16, aux_count=4)
        assert l_max >= 54

    def test_chain_length_shrinks_with_security(self):
        assert (
            max_chain_length(1 << 15, security=256)
            < max_chain_length(1 << 15, security=128)
        )
