"""Unit tests for CKKS parameter sets."""

import pytest

from repro.errors import ParameterError
from repro.ckks.params import CkksParameters


class TestDefaultFactory:
    def test_basic(self):
        p = CkksParameters.default(degree=128, levels=3)
        assert p.degree == 128
        assert len(p.chain_moduli) == 3
        assert len(p.aux_moduli) == 1
        assert p.slot_count == 64
        assert p.max_level == 2

    def test_all_primes_ntt_friendly(self):
        p = CkksParameters.default(degree=128, levels=4, aux_count=2)
        for q in p.chain_moduli + p.aux_moduli:
            assert q % (2 * p.degree) == 1

    def test_chain_and_aux_disjoint_bits(self):
        p = CkksParameters.default(degree=128, levels=3)
        assert all(q.bit_length() == 30 for q in p.chain_moduli)
        assert all(q.bit_length() == 31 for q in p.aux_moduli)

    def test_scale(self):
        p = CkksParameters.default(degree=128, levels=3, scale_bits=20)
        assert p.scale == float(1 << 20)


class TestValidation:
    def _base_kwargs(self):
        p = CkksParameters.default(degree=128, levels=3)
        return dict(
            degree=p.degree,
            chain_moduli=p.chain_moduli,
            aux_moduli=p.aux_moduli,
            scale=p.scale,
        )

    def test_rejects_non_power_degree(self):
        kwargs = self._base_kwargs()
        kwargs["degree"] = 100
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs)

    def test_rejects_empty_chain(self):
        kwargs = self._base_kwargs()
        kwargs["chain_moduli"] = ()
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs)

    def test_rejects_missing_aux(self):
        kwargs = self._base_kwargs()
        kwargs["aux_moduli"] = ()
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs)

    def test_rejects_overlapping_bases(self):
        kwargs = self._base_kwargs()
        kwargs["aux_moduli"] = kwargs["chain_moduli"][:1]
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs)

    def test_rejects_tiny_scale(self):
        kwargs = self._base_kwargs()
        kwargs["scale"] = 1.0
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs)

    def test_rejects_bad_hamming_weight(self):
        kwargs = self._base_kwargs()
        with pytest.raises(ParameterError):
            CkksParameters(**kwargs, secret_hamming_weight=129)


class TestContexts:
    @pytest.fixture(scope="class")
    def p(self):
        return CkksParameters.default(degree=128, levels=4, aux_count=2)

    def test_context_chain(self, p):
        assert p.context.moduli == p.chain_moduli
        assert p.aux_context.moduli == p.aux_moduli
        assert p.key_context.moduli == p.chain_moduli + p.aux_moduli

    def test_context_at_level(self, p):
        assert p.context_at_level(0).moduli == p.chain_moduli[:1]
        assert p.context_at_level(3).moduli == p.chain_moduli
        with pytest.raises(ParameterError):
            p.context_at_level(4)

    def test_key_context_at_level(self, p):
        ctx = p.key_context_at_level(1)
        assert ctx.moduli == p.chain_moduli[:2] + p.aux_moduli

    def test_aux_product(self, p):
        expected = 1
        for q in p.aux_moduli:
            expected *= q
        assert p.aux_product == expected

    def test_contexts_cached(self, p):
        assert p.context is p.context
