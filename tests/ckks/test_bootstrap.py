"""End-to-end bootstrapping tests (paper §II-A.6, benchmark 4).

These run at tiny parameters (N = 64) with a sparse secret — the
pipeline is the real thing: ModRaise, CoeffToSlot, EvalMod (complex
exponential + double angles), SlotToCoeff.
"""

import numpy as np
import pytest

from repro.errors import BootstrapError
from repro.ckks import (
    CkksDecryptor,
    CkksEncoder,
    CkksEncryptor,
    CkksEvaluator,
    CkksParameters,
    KeyChain,
)
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper


@pytest.fixture(scope="module")
def bs_setup():
    cfg = BootstrapConfig(taylor_degree=7, double_angles=4,
                          message_bound=0.05)
    params = CkksParameters.default(
        degree=64,
        levels=cfg.total_depth + 2,
        scale_bits=30,
        secret_hamming_weight=8,
    )
    keys = KeyChain.generate(params, seed=3)
    encoder = CkksEncoder(params)
    encryptor = CkksEncryptor(params, keys, seed=1)
    decryptor = CkksDecryptor(params, keys)
    evaluator = CkksEvaluator(params, keys)
    bootstrapper = Bootstrapper(params, evaluator, encoder, cfg)
    return params, encoder, encryptor, decryptor, evaluator, bootstrapper


class TestConfig:
    def test_depth_accounting(self):
        cfg = BootstrapConfig(taylor_degree=7, double_angles=4)
        assert cfg.depth == 12
        assert cfg.total_depth == 14

    def test_insufficient_chain_rejected(self):
        cfg = BootstrapConfig()
        params = CkksParameters.default(degree=64, levels=3)
        keys = KeyChain.generate(params, seed=0)
        enc = CkksEncoder(params)
        ev = CkksEvaluator(params, keys)
        with pytest.raises(BootstrapError):
            Bootstrapper(params, ev, enc, cfg)


class TestStages:
    def test_mod_raise_exact(self, bs_setup):
        params, encoder, encryptor, decryptor, evaluator, bs = bs_setup
        rng = np.random.default_rng(11)
        m = rng.uniform(-0.05, 0.05, params.slot_count)
        ct = evaluator.drop_to_level(encryptor.encrypt(encoder.encode(m)), 0)
        raised = bs.mod_raise(ct)
        assert raised.level == params.max_level
        # Decryption of the raised ct differs from m by multiples of
        # q0/scale — i.e. approximately integer offsets per slot-coeff.
        # Its coefficients equal m's plus q0 * I exactly; just check
        # the object is well-formed and decryptable.
        pt = decryptor.decrypt(raised)
        assert pt.poly.level_count == params.max_level + 1

    def test_mod_raise_requires_level0(self, bs_setup):
        params, encoder, encryptor, _, _, bs = bs_setup
        ct = encryptor.encrypt(encoder.encode([0.01]))
        with pytest.raises(BootstrapError):
            bs.mod_raise(ct)

    def test_coeff_to_slot_then_back(self, bs_setup):
        """S2C(C2S(ct)) ≈ ct (the linear transforms invert)."""
        params, encoder, encryptor, decryptor, evaluator, bs = bs_setup
        rng = np.random.default_rng(12)
        m = rng.uniform(-0.05, 0.05, params.slot_count)
        ct = encryptor.encrypt(encoder.encode(m))
        u, v = bs.coeff_to_slot(ct)
        back = bs.slot_to_coeff(u, v)
        out = encoder.decode(decryptor.decrypt(back)).real
        assert np.max(np.abs(out - m)) < 5e-3


class TestFullBootstrap:
    def test_refreshes_and_preserves_message(self, bs_setup):
        params, encoder, encryptor, decryptor, evaluator, bs = bs_setup
        rng = np.random.default_rng(5)
        m = rng.uniform(-0.05, 0.05, params.slot_count)
        ct0 = evaluator.drop_to_level(
            encryptor.encrypt(encoder.encode(m)), 0
        )
        out = bs.bootstrap(ct0)
        # Level refreshed well above 0.
        assert out.level >= 1
        decoded = encoder.decode(decryptor.decrypt(out)).real
        err = np.max(np.abs(decoded - m))
        assert err < 5e-3  # <10% of the message bound

    def test_enables_further_multiplication(self, bs_setup):
        """The refreshed ciphertext supports another CMult."""
        params, encoder, encryptor, decryptor, evaluator, bs = bs_setup
        m = np.full(params.slot_count, 0.04)
        ct0 = evaluator.drop_to_level(
            encryptor.encrypt(encoder.encode(m)), 0
        )
        refreshed = bs.bootstrap(ct0)
        squared = evaluator.rescale(evaluator.square(refreshed))
        decoded = encoder.decode(decryptor.decrypt(squared)).real
        assert np.max(np.abs(decoded - 0.04**2)) < 1e-3
