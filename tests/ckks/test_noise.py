"""Unit tests for the noise estimator."""

import numpy as np
import pytest

from repro.ckks.noise import NoiseEstimate, NoiseEstimator
from tests.conftest import decrypt_real


class TestNoiseEstimate:
    def test_message_bits(self):
        est = NoiseEstimate(magnitude=1.0, scale=2.0**26)
        assert est.message_bits == pytest.approx(26.0)

    def test_zero_noise_infinite_bits(self):
        est = NoiseEstimate(magnitude=0.0, scale=2.0**26)
        assert est.message_bits == float("inf")

    def test_after_add_hypot(self):
        a = NoiseEstimate(magnitude=3.0, scale=1.0)
        b = NoiseEstimate(magnitude=4.0, scale=1.0)
        assert a.after_add(b).magnitude == pytest.approx(5.0)

    def test_scaled(self):
        est = NoiseEstimate(magnitude=2.0, scale=1.0)
        assert est.scaled(-3.0).magnitude == pytest.approx(6.0)


class TestNoiseEstimator:
    def test_fresh_bound_covers_measured(self, params, encoder, encryptor,
                                         decryptor):
        """The estimator's fresh bound must exceed measured error."""
        estimator = NoiseEstimator(params)
        est = estimator.fresh()
        x = np.zeros(params.slot_count)
        ct = encryptor.encrypt(encoder.encode(x))
        measured = np.max(
            np.abs(decrypt_real(encoder, decryptor, ct))
        ) * params.scale
        assert measured < est.magnitude

    def test_fresh_bound_not_absurd(self, params):
        """...but not so loose it predicts zero usable bits."""
        est = NoiseEstimator(params).fresh()
        assert est.message_bits > 5

    def test_multiply_grows_noise(self, params):
        estimator = NoiseEstimator(params)
        fresh = estimator.fresh()
        mult = estimator.after_multiply(fresh, fresh)
        assert mult.magnitude > fresh.magnitude

    def test_rescale_shrinks_noise(self, params):
        estimator = NoiseEstimator(params)
        fresh = estimator.fresh()
        big = estimator.after_multiply(fresh, fresh)
        rescaled = estimator.after_rescale(big, params.max_level)
        assert rescaled.magnitude < big.magnitude
        assert rescaled.scale < big.scale

    def test_keyswitch_additive_positive(self, params):
        estimator = NoiseEstimator(params)
        add = estimator.keyswitch_additive(params.max_level)
        assert add > 0
        # More limbs -> more digit noise.
        assert add > estimator.keyswitch_additive(0)

    def test_depth_capacity_positive(self, params):
        estimator = NoiseEstimator(params)
        depth = estimator.depth_capacity()
        assert 0 < depth <= params.max_level
