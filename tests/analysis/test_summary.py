"""Unit tests for the headline-claims summary generator."""

import pytest

from repro.analysis.summary import (
    HeadlineClaim,
    headline_claims,
    render_markdown,
)


class TestHeadlineClaim:
    def test_ratio(self):
        claim = HeadlineClaim("x", 100.0, 50.0)
        assert claim.ratio == pytest.approx(0.5)

    def test_within(self):
        claim = HeadlineClaim("x", 100.0, 60.0)
        assert claim.within(2.0)
        assert not claim.within(1.5)

    def test_within_symmetric(self):
        low = HeadlineClaim("lo", 100.0, 51.0)
        high = HeadlineClaim("hi", 100.0, 199.0)
        assert low.within(2.0) and high.within(2.0)
        assert not HeadlineClaim("x", 100.0, 201.0).within(2.0)


class TestHeadlines:
    @pytest.fixture(scope="class")
    def claims(self):
        return {c.name: c for c in headline_claims()}

    def test_five_claims(self, claims):
        assert len(claims) == 5

    def test_all_directions_hold(self, claims):
        """Poseidon must genuinely win each comparison."""
        for claim in claims.values():
            assert claim.measured_factor > 1.0, claim.name

    def test_all_within_2x(self, claims):
        for claim in claims.values():
            assert claim.within(2.0), (claim.name, claim.ratio)


class TestRendering:
    def test_markdown_structure(self):
        text = render_markdown()
        assert text.startswith("# Reproduction summary")
        assert "| claim | paper | measured |" in text
        assert "Packed Bootstrapping" in text
