"""Unit tests for the report rendering helpers."""

from repro.analysis.report import format_value, render_shares, render_table


class TestFormatValue:
    def test_none_is_slash(self):
        assert format_value(None) == "/"

    def test_bool(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_float_ranges(self):
        assert format_value(0.0) == "0"
        assert format_value(12345.6) == "12,346"
        assert format_value(42.25) == "42.2"
        assert format_value(0.125) == "0.125"

    def test_int_passthrough(self):
        assert format_value(7) == "7"


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"],
            [{"name": "a", "value": 1}, {"name": "bb", "value": None}],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[2].startswith("-")
        assert "/" in lines[4]

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestRenderShares:
    def test_percentages(self):
        text = render_shares({"op": {"MA": 0.25, "MM": 0.75}})
        assert "25.0%" in text
        assert "75.0%" in text

    def test_missing_categories_zero(self):
        text = render_shares(
            {"a": {"MA": 1.0}, "b": {"MM": 1.0}}
        )
        assert "0.0%" in text
