"""Shape tests for the regenerated paper tables.

These assert the paper's *qualitative* claims — who wins, what
dominates, where the optimum sits — rather than absolute numbers.
Measured-vs-paper per-cell records live in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.tables import (
    PAPER_POSEIDON_MS,
    table1_operator_usage,
    table2_ntt_fusion,
    table4_basic_ops,
    table8_hfauto_resources,
    table11_core_resources,
    table12_fpga_comparison,
)


class TestTable1:
    def test_rows_match_paper(self):
        t = table1_operator_usage()
        rows = {r["operation"]: r for r in t["rows"]}
        assert rows["HAdd"]["MA"] and not rows["HAdd"]["NTT/INTT"]
        assert rows["PMult"]["MM"] and not rows["PMult"]["Automorphism"]
        assert rows["Rotation"]["Automorphism"]
        assert rows["Keyswitch"]["NTT/INTT"]
        # SBT appears only where a real digit-lift task exists: the
        # keyswitch-bearing operations, not PMult/Rescale.
        assert all(rows[op]["SBT"] for op in
                   ("CMult", "Keyswitch", "Rotation"))
        assert not any(rows[op]["SBT"] for op in
                       ("HAdd", "PMult", "Rescale"))


class TestTable2:
    def test_k_range(self):
        t = table2_ntt_fusion()
        assert [r["k"] for r in t["rows"]] == [2, 3, 4, 5, 6]

    def test_unfused_columns_exact(self):
        for row in table2_ntt_fusion()["rows"]:
            assert row["W_unfused"] == row["paper"]["W_unfused"]
            assert row["mult_unfused"] == row["paper"]["mult_unfused"]

    def test_fusion_tradeoff_shape(self):
        """Fused multiplies grow superlinearly; reductions drop ~3x."""
        rows = table2_ntt_fusion()["rows"]
        for row in rows:
            assert row["mult_fused"] > row["mult_unfused"]
            assert row["modred_fused"] < row["modred_unfused"]


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return table4_basic_ops()

    def test_all_ops_present(self, table):
        ops = [r["operation"] for r in table["rows"]]
        assert ops == ["PMult", "CMult", "NTT", "Keyswitch", "Rotation",
                       "Rescale"]

    def test_poseidon_beats_cpu_everywhere(self, table):
        for row in table["rows"]:
            assert row["speedup_vs_cpu"] > 50, row["operation"]

    def test_speedup_shape_complex_ops_highest(self, table):
        """Paper: CMult/Keyswitch/Rotation speedups exceed PMult's."""
        rows = {r["operation"]: r for r in table["rows"]}
        for name in ("CMult", "Keyswitch", "Rotation", "NTT"):
            assert (
                rows[name]["speedup_vs_cpu"]
                > rows["PMult"]["speedup_vs_cpu"]
            )

    def test_poseidon_beats_heax(self, table):
        rows = {r["operation"]: r for r in table["rows"]}
        for name in ("PMult", "CMult"):
            assert rows[name]["poseidon_ops"] > rows[name]["heax_ops"]

    def test_speedups_within_3x_of_paper(self, table):
        for row in table["rows"]:
            paper = row["paper"]["speedup_vs_cpu"]
            assert paper / 3 < row["speedup_vs_cpu"] < paper * 3, row


class TestTable8:
    def test_tradeoff(self):
        t = table8_hfauto_resources()
        auto, hfauto = t["rows"]
        assert auto["design"] == "Auto"
        assert hfauto["lut"] > auto["lut"]
        assert hfauto["latency_cycles"] < auto["latency_cycles"]

    def test_calibrated_cells(self):
        t = table8_hfauto_resources()
        hfauto = t["rows"][1]
        assert hfauto["lut"] == hfauto["paper"]["lut"]
        assert hfauto["ff"] == hfauto["paper"]["ff"]


class TestTable11And12:
    def test_core_rows(self):
        t = table11_core_resources()
        cores = [r["core"] for r in t["rows"]]
        assert cores[:5] == ["MA", "MM", "SBT", "NTT", "Automorphism"]
        assert "Total" in cores[-1]

    def test_mm_ntt_sbt_use_dsps(self):
        rows = {r["core"]: r for r in table11_core_resources()["rows"]}
        assert rows["MM"]["dsp"] > 0
        assert rows["NTT"]["dsp"] > 0
        assert rows["MA"]["dsp"] == 0

    def test_poseidon_leaner_than_rivals(self):
        rows = {r["design"]: r for r in table12_fpga_comparison()["rows"]}
        poseidon = rows["Poseidon (model)"]
        for rival in ("HEAX [32]", "Kim et al. [25][26]"):
            assert poseidon["lut"] < rows[rival]["lut"]
            assert poseidon["dsp"] < rows[rival]["dsp"]


class TestPaperConstants:
    def test_poseidon_reference_times(self):
        assert PAPER_POSEIDON_MS["Packed Bootstrapping"] == 127.45
        assert PAPER_POSEIDON_MS["LR"] == 72.98
