"""Shape tests for the regenerated paper figures."""

import pytest

from repro.analysis.figures import (
    fig7_operator_analysis,
    fig10_k_sweep,
    fig11_lane_scaling,
)


class TestFig7:
    @pytest.fixture(scope="class")
    def fig(self):
        return fig7_operator_analysis()

    def test_hadd_pure_ma(self, fig):
        shares = fig["series"]["HAdd"]
        assert shares.get("MA", 0) == pytest.approx(1.0)

    def test_pmult_pure_mm(self, fig):
        shares = fig["series"]["PMult"]
        assert shares.get("MM", 0) == pytest.approx(1.0)

    def test_rotation_touches_all(self, fig):
        shares = fig["series"]["Rotation"]
        assert set(shares) >= {"MA", "MM", "NTT", "Automorphism"}

    def test_keyswitch_ntt_heavy(self, fig):
        """Fig. 7/9: NTT dominates keyswitch time."""
        shares = fig["series"]["Keyswitch"]
        assert shares["NTT"] > shares["MA"]
        assert shares["NTT"] > shares["Automorphism"] if (
            "Automorphism" in shares
        ) else True


class TestFig10:
    @pytest.fixture(scope="class")
    def fig(self):
        return fig10_k_sweep()

    def test_best_k_is_3(self, fig):
        assert fig["best_k"] == 3

    def test_resources_inflect_at_3(self, fig):
        luts = {r["k"]: r["lut"] for r in fig["rows"]}
        assert luts[3] == min(luts.values())
        dsps = {r["k"]: r["dsp"] for r in fig["rows"]}
        assert dsps[3] == min(dsps.values())

    def test_time_inflects_at_3(self, fig):
        times = {r["k"]: r["ntt_us"] for r in fig["rows"]}
        assert times[3] == min(times.values())
        assert times[6] > times[3]
        assert times[2] > times[3]


class TestFig11:
    @pytest.fixture(scope="class")
    def fig(self):
        # LR is the cheapest benchmark to sweep.
        return fig11_lane_scaling(benchmark="LR")

    def test_lane_points(self, fig):
        assert [r["lanes"] for r in fig["rows"]] == [64, 128, 256, 512]

    def test_monotone_speedup(self, fig):
        times = [r["seconds"] for r in fig["rows"]]
        assert times == sorted(times, reverse=True)

    def test_diminishing_returns(self, fig):
        """Fig. 11: growth slows as bandwidth saturates."""
        t = [r["seconds"] for r in fig["rows"]]
        first_gain = t[0] / t[1]
        last_gain = t[2] / t[3]
        assert last_gain < first_gain
