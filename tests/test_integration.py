"""End-to-end integration: functional plane -> trace -> cycle model.

The definitive wiring test: run a real encrypted computation, capture
its operation trace through the evaluator hook, compile it, simulate
it on the Poseidon model, and check both planes' outputs.
"""

import numpy as np
import pytest

from repro.ckks import CkksEvaluator
from repro.compiler.program import compile_trace
from repro.compiler.trace import TraceRecorder
from repro.sim.config import HardwareConfig
from repro.sim.energy import EnergyModel
from repro.sim.engine import PoseidonSimulator
from tests.conftest import decrypt_real


class TestFunctionalToSimulator:
    @pytest.fixture(scope="class")
    def traced_run(self, params, keys, encoder, encryptor, decryptor,
                   slot_vectors):
        """A small encrypted pipeline with trace capture."""
        x, y = slot_vectors
        recorder = TraceRecorder()
        ev = CkksEvaluator(params, keys, recorder=recorder)
        ctx_ = encryptor.encrypt(encoder.encode(x))
        cty = encryptor.encrypt(encoder.encode(y))
        out = ev.multiply_and_rescale(ctx_, cty)     # CMult + Rescale
        offset = encoder.encode(
            y, scale=out.scale,
            context=params.context_at_level(out.level),
        )
        out = ev.add_plain(out, offset)              # HAdd (ct-pt)
        out = ev.rotate(out, 2)                      # Automorphism + KS
        decoded = decrypt_real(encoder, decryptor, out)
        expected = np.roll(x * y + y, -2)
        return recorder, decoded, expected

    def test_functional_result_correct(self, traced_run):
        _, decoded, expected = traced_run
        assert np.max(np.abs(decoded - expected)) < 5e-2

    def test_trace_captured_all_ops(self, traced_run):
        recorder, _, _ = traced_run
        hist = recorder.op_histogram()
        assert hist["CMult"] == 1
        assert hist["Rescale"] == 1
        assert hist["HAdd"] == 1  # the ct-pt addition
        assert hist["Automorphism"] == 1
        assert hist["Keyswitch"] == 2  # relin + rotation

    def test_trace_simulates(self, traced_run):
        recorder, _, _ = traced_run
        program = compile_trace(recorder)
        result = PoseidonSimulator().run(program)
        assert result.total_seconds > 0
        # Keyswitch-bearing ops dominate (paper Fig. 8).
        shares = result.op_share()
        ks_heavy = (
            shares.get("CMult", 0)
            + shares.get("Keyswitch", 0)
            + shares.get("Rotation", 0)
        )
        assert ks_heavy > 0.5

    def test_energy_accounting(self, traced_run):
        recorder, _, _ = traced_run
        program = compile_trace(recorder)
        cfg = HardwareConfig()
        result = PoseidonSimulator(cfg).run(program)
        breakdown = EnergyModel(cfg).breakdown(result, program)
        assert breakdown.total > 0
        assert sum(breakdown.shares().values()) == pytest.approx(1.0)


class TestAblationConsistency:
    def test_hfauto_ablation_speedup(self):
        """Table IX wiring: rotation-heavy traces slow down on the
        naive Auto core at hardware-scale degrees (N >> lanes)."""
        from repro.compiler.ops import FheOp, FheOpName

        ops = [
            FheOp.make(FheOpName.ROTATION, 1 << 16, 20, aux_limbs=4)
            for _ in range(3)
        ]
        program = compile_trace(ops)
        fast = PoseidonSimulator(HardwareConfig(use_hfauto=True)).run(program)
        slow = PoseidonSimulator(
            HardwareConfig(use_hfauto=False)
        ).run(program)
        assert slow.total_seconds > fast.total_seconds

    def test_hfauto_irrelevant_at_tiny_degree(self, params, keys, encoder,
                                              encryptor, slot_vectors):
        """At N <= lanes the sub-vector trick cannot help — both
        configurations time out nearly identically (sanity bound)."""
        x, _ = slot_vectors
        recorder = TraceRecorder()
        ev = CkksEvaluator(params, keys, recorder=recorder)
        ct = encryptor.encrypt(encoder.encode(x))
        ct = ev.rotate(ct, 1)
        program = compile_trace(recorder)
        fast = PoseidonSimulator(HardwareConfig(use_hfauto=True)).run(program)
        slow = PoseidonSimulator(
            HardwareConfig(use_hfauto=False)
        ).run(program)
        assert slow.total_seconds == pytest.approx(
            fast.total_seconds, rel=0.25
        )


class TestFunctionalWorkloads:
    def test_encrypted_convolution(self, params, keys, encoder, encryptor,
                                   decryptor, evaluator):
        """The ResNet building block really convolves under encryption."""
        from repro.workloads.resnet20 import (
            convolution_reference,
            packed_convolution_functional,
        )

        rng = np.random.default_rng(3)
        image = rng.uniform(-1, 1, (8, 8))
        kernel = rng.uniform(-0.5, 0.5, (3, 3))
        got = packed_convolution_functional(
            evaluator, encoder, encryptor, decryptor, image, kernel
        )
        ref = convolution_reference(image, kernel)
        # Interior only: packed rotation wraps at image borders.
        assert np.max(np.abs(got[1:-1, 1:-1] - ref[1:-1, 1:-1])) < 5e-2

    def test_encrypted_lstm_step(self, params, keys, encoder, encryptor,
                                 decryptor, evaluator):
        """A tiny recurrent step matches the plaintext recurrence."""
        from repro.workloads.lstm import (
            lstm_functional,
            lstm_plaintext_reference,
        )

        rng = np.random.default_rng(4)
        n = 8
        w0 = rng.uniform(-0.3, 0.3, (n, n))
        w1 = rng.uniform(-0.3, 0.3, (n, n))
        xs = [rng.uniform(-0.5, 0.5, n)]
        y0 = rng.uniform(-0.5, 0.5, n)
        got = lstm_functional(
            evaluator, encoder, encryptor, decryptor, w0, w1, xs, y0
        )
        ref = lstm_plaintext_reference(w0, w1, xs, y0)
        assert np.max(np.abs(got - ref)) < 5e-2
