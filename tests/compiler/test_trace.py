"""Unit tests for trace recording (evaluator hook + direct emission)."""

import pytest

from repro.compiler.ops import FheOpName
from repro.compiler.trace import TraceRecorder
from repro.errors import WorkloadError


class TestRecordHook:
    def test_record_basic(self):
        rec = TraceRecorder()
        rec.record("HAdd", degree=64, level=3, kind="ct-ct")
        assert len(rec) == 1
        op = rec.ops[0]
        assert op.name is FheOpName.HADD
        assert op.degree == 64
        assert op.level == 3
        assert op.get_meta("kind") == "ct-ct"

    def test_record_missing_metadata(self):
        rec = TraceRecorder()
        with pytest.raises(WorkloadError):
            rec.record("HAdd", degree=64)

    def test_record_unknown_op(self):
        rec = TraceRecorder()
        with pytest.raises(KeyError):
            rec.record("Nonsense", degree=64, level=1)

    def test_default_aux(self):
        rec = TraceRecorder(default_aux_limbs=3)
        rec.record("Keyswitch", degree=64, level=2)
        assert rec.ops[0].aux_limbs == 3


class TestEvaluatorIntegration:
    def test_evaluator_emits_trace(self, params, keys, encoder, encryptor):
        """A real evaluator run produces the expected op stream."""
        from repro.ckks.evaluator import CkksEvaluator

        rec = TraceRecorder()
        ev = CkksEvaluator(params, keys, recorder=rec)
        ct = encryptor.encrypt(encoder.encode([0.5]))
        ct2 = ev.multiply_and_rescale(ct, ct)
        _ = ev.rotate(ct2, 1)
        hist = rec.op_histogram()
        assert hist["CMult"] == 1
        assert hist["Keyswitch"] == 2  # relin + rotation
        assert hist["Rescale"] == 1
        assert hist["Automorphism"] == 1


class TestDirectEmission:
    def test_emit_count(self):
        rec = TraceRecorder()
        rec.emit(FheOpName.PMULT, 64, 2, count=5)
        assert len(rec) == 5

    def test_histogram_and_clear(self):
        rec = TraceRecorder()
        rec.emit(FheOpName.HADD, 64, 1, count=2)
        rec.emit(FheOpName.CMULT, 64, 1)
        assert rec.op_histogram() == {"HAdd": 2, "CMult": 1}
        rec.clear()
        assert len(rec) == 0

    def test_iteration(self):
        rec = TraceRecorder()
        rec.emit(FheOpName.HADD, 64, 1, count=3)
        assert len(list(rec)) == 3
