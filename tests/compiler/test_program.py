"""Unit tests for whole-program task assembly."""

from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.program import compile_trace
from repro.compiler.trace import TraceRecorder


def make_ops():
    return [
        FheOp.make(FheOpName.HADD, 64, 3),
        FheOp.make(FheOpName.PMULT, 64, 3),
        FheOp.make(FheOpName.CMULT, 64, 3),
    ]


class TestCompileTrace:
    def test_boundaries_partition_tasks(self):
        program = compile_trace(make_ops())
        assert len(program.op_boundaries) == 3
        spans = program.op_boundaries
        assert spans[0][0] == 0
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 == s2
        assert spans[-1][1] == program.task_count

    def test_tasks_for_op(self):
        program = compile_trace(make_ops())
        hadd_tasks = program.tasks_for_op(0)
        assert all(t.op_label == "HAdd" for t in hadd_tasks)

    def test_barrier_between_ops(self):
        """Each op's entry tasks depend on the previous op's last task."""
        program = compile_trace(make_ops())
        for idx in range(1, 3):
            start, end = program.op_boundaries[idx]
            prev_last = start - 1
            entry_deps = [
                d for t in program.tasks[start:end] for d in t.depends_on
            ]
            assert prev_last in entry_deps

    def test_dependencies_topological(self):
        program = compile_trace(make_ops())
        for i, task in enumerate(program.tasks):
            assert all(0 <= d < i for d in task.depends_on)

    def test_accepts_trace_recorder(self):
        rec = TraceRecorder()
        rec.emit(FheOpName.HADD, 64, 2, count=2)
        program = compile_trace(rec)
        assert len(program.source_ops) == 2

    def test_empty_trace(self):
        program = compile_trace([])
        assert program.task_count == 0
        assert program.op_boundaries == ()
