"""Unit tests for trace validation."""

import pytest

from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.validate import (
    count_refreshes,
    level_profile,
    validate_trace,
)
from repro.errors import WorkloadError
from repro.workloads.helr import helr_trace


class TestValidateTrace:
    def test_valid_stream(self):
        ops = [
            FheOp.make(FheOpName.HADD, 64, 3),
            FheOp.make(FheOpName.CMULT, 64, 3),
            FheOp.make(FheOpName.RESCALE, 64, 3),
        ]
        report = validate_trace(ops, chain_top=4)
        assert report.ok
        assert report.op_count == 3
        assert report.degree == 64
        assert report.max_level == 3

    def test_degree_mismatch_flagged(self):
        ops = [
            FheOp.make(FheOpName.HADD, 64, 3),
            FheOp.make(FheOpName.HADD, 128, 3),
        ]
        report = validate_trace(ops)
        assert not report.ok
        assert "degree" in report.issues[0]

    def test_level_above_chain_flagged(self):
        ops = [FheOp.make(FheOpName.HADD, 64, 9)]
        report = validate_trace(ops, chain_top=5)
        assert not report.ok

    def test_single_limb_rescale_flagged(self):
        ops = [FheOp.make(FheOpName.RESCALE, 64, 0)]
        report = validate_trace(ops)
        assert not report.ok

    def test_strict_raises(self):
        ops = [FheOp.make(FheOpName.RESCALE, 64, 0)]
        with pytest.raises(WorkloadError):
            validate_trace(ops, strict=True)

    def test_non_op_entry_flagged(self):
        report = validate_trace(["nonsense"])
        assert not report.ok

    def test_accepts_trace_recorder(self):
        trace = helr_trace(degree=1 << 12, iterations=2, bootstraps=1)
        report = validate_trace(trace, chain_top=44)
        assert report.ok, report.issues


class TestProfiles:
    def test_level_profile(self):
        ops = [
            FheOp.make(FheOpName.CMULT, 64, 3),
            FheOp.make(FheOpName.RESCALE, 64, 3),
            FheOp.make(FheOpName.HADD, 64, 2),
        ]
        assert level_profile(ops) == [3, 3, 2]

    def test_refresh_counting_on_real_trace(self):
        trace = helr_trace(degree=1 << 12, iterations=10, bootstraps=2)
        assert count_refreshes(trace) == 2

    def test_no_refreshes_in_flat_trace(self):
        ops = [FheOp.make(FheOpName.HADD, 64, 3) for _ in range(5)]
        assert count_refreshes(ops) == 0
