"""Tests for the compiler pass pipeline (repro.compiler.passes)."""

import itertools

import pytest

from repro.compiler import compile_trace
from repro.compiler.decompose import decompose_operation
from repro.compiler.ops import FheOp, FheOpName
from repro.compiler.passes import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    ProgramDraft,
    apply_pipeline,
    build_pipeline,
    dead_task_elimination_pass,
    resolve_passes,
)
from repro.errors import WorkloadError
from repro.serve.requests import _keyswitch_ops, _rotations_ops
from repro.sim.engine import PoseidonSimulator
from repro.sim.tasks import OperatorKind, OperatorTask
from repro.sim.validate import validate_program, validate_schedule
from repro.workloads.common import WorkloadBuilder

N, L, AUX = 1 << 14, 10, 2

PASS_FLAGS = (
    "hoist_rotations", "relax_barriers", "fuse_elementwise", "dce"
)

ALL_COMBOS = [
    dict(zip(PASS_FLAGS, bits))
    for bits in itertools.product((False, True), repeat=len(PASS_FLAGS))
]


def small_transform_trace():
    """An annotated two-transform trace (hoisted rotation groups)."""
    wb = WorkloadBuilder(degree=N, start_level=L, aux_limbs=AUX)
    wb.linear_transform(8)
    wb.linear_transform(8)
    return wb.build()


TRACES = {
    "keyswitch-mix": lambda: _keyswitch_ops(),
    "rotations-mix": lambda: _rotations_ops(),
    "linear-transforms": small_transform_trace,
}


# ----------------------------------------------------------------------
# Pipeline resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_none_specs(self):
        assert resolve_passes(None) == ()
        assert resolve_passes("none") == ()
        assert resolve_passes("") == ()

    def test_default_specs(self):
        assert resolve_passes("default") == DEFAULT_PIPELINE
        assert resolve_passes("all") == DEFAULT_PIPELINE
        assert set(DEFAULT_PIPELINE) == set(PASS_REGISTRY)

    def test_comma_list_and_iterable(self):
        assert resolve_passes("dce, relax-barriers") == (
            "dce", "relax-barriers"
        )
        assert resolve_passes(["fuse-elementwise"]) == ("fuse-elementwise",)

    def test_unknown_pass_raises(self):
        with pytest.raises(WorkloadError):
            resolve_passes("loop-unrolling")

    def test_build_pipeline_orders_canonically(self):
        assert build_pipeline() == DEFAULT_PIPELINE
        assert build_pipeline(dce=False) == DEFAULT_PIPELINE[:-1]
        assert build_pipeline(
            hoist_rotations=False, relax_barriers=False,
            fuse_elementwise=False, dce=False,
        ) == ()


# ----------------------------------------------------------------------
# Legacy equivalence: passes=None is byte-identical to the old assembly
# ----------------------------------------------------------------------
class TestLegacyAssembly:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    def test_serial_barrier_chain(self, trace_name):
        """passes=None reproduces the drain-barrier assembly: every
        op's entry tasks depend on exactly the previous op's sink."""
        ops = list(TRACES[trace_name]())
        program = compile_trace(ops)
        validate_program(program)
        for oi, (start, end) in enumerate(program.op_boundaries):
            local = decompose_operation(program.source_ops[oi])
            for li, task in enumerate(local):
                got = program.tasks[start + li]
                if li == 0 or not task.depends_on:
                    expected = (start - 1,) if start else ()
                    if task.depends_on:
                        expected = tuple(
                            d + start for d in task.depends_on
                        )
                    assert got.depends_on == expected
                else:
                    assert got.depends_on == tuple(
                        d + start for d in task.depends_on
                    )

    def test_compile_is_deterministic(self):
        for spec in (None, "default"):
            a = compile_trace(_keyswitch_ops(), passes=spec)
            b = compile_trace(_keyswitch_ops(), passes=spec)
            assert a.tasks == b.tasks
            assert a.op_boundaries == b.op_boundaries


# ----------------------------------------------------------------------
# Equivalence suite over every pass combination
# ----------------------------------------------------------------------
class TestPassCombinations:
    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    @pytest.mark.parametrize(
        "combo", ALL_COMBOS,
        ids=lambda c: "+".join(k for k, v in c.items() if v) or "none",
    )
    def test_invariants_hold(self, trace_name, combo):
        ops = TRACES[trace_name]()
        pipeline = build_pipeline(**combo)
        baseline = compile_trace(ops)
        program = compile_trace(ops, passes=pipeline)
        # Static DAG sanity: backward deps (acyclic), boundary
        # partition, op bookkeeping.
        validate_program(program)
        assert len(program.op_boundaries) == len(list(ops))
        # The program output (the last op's sink write) must survive
        # every pass combination.
        assert (
            program.tasks[-1].hbm_write_bytes
            == baseline.tasks[-1].hbm_write_bytes
        )
        assert program.tasks[-1].hbm_write_bytes > 0
        # Dynamic invariants: the schedule stays validator-clean.
        sim = PoseidonSimulator()
        result = sim.run(program)
        validate_schedule(result, program=program, config=sim.config)
        # Without the hoist rewrite, compute totals are preserved
        # (fusion/relax/dce only touch HBM traffic and edges).
        if not combo["hoist_rotations"]:
            assert sum(t.elements for t in program.tasks) == sum(
                t.elements for t in baseline.tasks
            )
            assert len(program.tasks) == len(baseline.tasks)

    @pytest.mark.parametrize("trace_name", sorted(TRACES))
    def test_full_pipeline_never_slower(self, trace_name):
        """The gate the benchmarks enforce, at test scale: the full
        pipeline must not regress the makespan on any suite trace."""
        ops = TRACES[trace_name]()
        sim = PoseidonSimulator()
        none = sim.run(compile_trace(ops)).total_seconds
        full = sim.run(
            compile_trace(ops, passes="default")
        ).total_seconds
        assert full <= none * (1 + 1e-9)

    def test_op_parallel_composes_with_passes(self):
        ops = _rotations_ops()
        program = compile_trace(ops, op_parallel=True, passes="default")
        validate_program(program)
        # Hoisted rotations keep their pinned edge on the cold
        # rotation even though op_parallel drops every barrier.
        start, _ = program.op_boundaries[1]
        cold_sink = program.op_boundaries[0][1] - 1
        assert cold_sink in program.tasks[start].depends_on


# ----------------------------------------------------------------------
# Golden per-pass fixtures on the serve mixes
# ----------------------------------------------------------------------
def _totals(program):
    return (
        len(program.tasks),
        sum(t.hbm_read_bytes for t in program.tasks),
        sum(t.hbm_write_bytes for t in program.tasks),
        sum(t.elements for t in program.tasks),
    )


class TestGoldenDeltas:
    """Exact task-count/byte fixtures per pass (keyswitch and
    rotations mixes at the serve shape: N=2^16, L=30, aux=4)."""

    KEYSWITCH = {
        None: (84, 453382272, 97517568, 293404672),
        "hoist-rotations": (84, 453382272, 97517568, 293404672),
        "relax-barriers": (84, 453382272, 97517568, 293404672),
        "fuse-elementwise": (84, 420876416, 65011712, 293404672),
        "dce": (84, 453382272, 97517568, 293404672),
        "default": (84, 420876416, 65011712, 293404672),
    }
    ROTATIONS = {
        None: (164, 760488192, 130023424, 566493184),
        "hoist-rotations": (107, 687350016, 81264640, 420610048),
        "relax-barriers": (164, 760488192, 130023424, 566493184),
        "fuse-elementwise": (164, 760488192, 130023424, 566493184),
        "dce": (164, 760488192, 130023424, 566493184),
        "default": (107, 687350016, 81264640, 420610048),
    }

    @pytest.mark.parametrize("spec", sorted(KEYSWITCH, key=str))
    def test_keyswitch_mix(self, spec):
        program = compile_trace(_keyswitch_ops(), passes=spec)
        assert _totals(program) == self.KEYSWITCH[spec]

    @pytest.mark.parametrize("spec", sorted(ROTATIONS, key=str))
    def test_rotations_mix(self, spec):
        program = compile_trace(_rotations_ops(), passes=spec)
        assert _totals(program) == self.ROTATIONS[spec]


# ----------------------------------------------------------------------
# Individual pass behavior
# ----------------------------------------------------------------------
class TestHoistRotations:
    def test_rewrites_annotated_run(self):
        program = compile_trace(_rotations_ops(), passes="hoist-rotations")
        names = [op.name for op in program.source_ops]
        assert names == [
            FheOpName.ROTATION,
            FheOpName.HOISTED_ROTATION,
            FheOpName.HOISTED_ROTATION,
            FheOpName.HOISTED_ROTATION,
        ]

    def test_unannotated_rotations_untouched(self):
        ops = [
            FheOp.make(FheOpName.ROTATION, N, L, aux_limbs=AUX)
            for _ in range(3)
        ]
        program = compile_trace(ops, passes="hoist-rotations")
        assert all(
            op.name is FheOpName.ROTATION for op in program.source_ops
        )

    def test_different_sources_break_the_run(self):
        ops = [
            FheOp.make(FheOpName.ROTATION, N, L, aux_limbs=AUX,
                       reads=("a",), writes=("a1",)),
            FheOp.make(FheOpName.ROTATION, N, L, aux_limbs=AUX,
                       reads=("b",), writes=("b1",)),
        ]
        program = compile_trace(ops, passes="hoist-rotations")
        assert all(
            op.name is FheOpName.ROTATION for op in program.source_ops
        )

    def test_in_place_rotation_not_hoisted(self):
        # Writing onto the source kills the value the later rotations
        # would need to share.
        ops = [
            FheOp.make(FheOpName.ROTATION, N, L, aux_limbs=AUX,
                       reads=("a",), writes=("a",))
            for _ in range(3)
        ]
        program = compile_trace(ops, passes="hoist-rotations")
        assert all(
            op.name is FheOpName.ROTATION for op in program.source_ops
        )

    def test_hoisted_graph_skips_digit_ntts(self):
        none = compile_trace(_rotations_ops())
        hoisted = compile_trace(_rotations_ops(), passes="hoist-rotations")

        def ntt_elems(p):
            return sum(
                t.elements for t in p.tasks
                if t.kind in (OperatorKind.NTT, OperatorKind.INTT)
            )

        assert ntt_elems(hoisted) < ntt_elems(none)


class TestRelaxBarriers:
    def test_independent_annotated_chains_overlap(self):
        chain_a = [
            FheOp.make(FheOpName.HADD, N, L, reads=("a",), writes=("a1",)),
            FheOp.make(FheOpName.PMULT, N, L, reads=("a1",), writes=("a2",)),
        ]
        chain_b = [
            FheOp.make(FheOpName.HADD, N, L, reads=("b",), writes=("b1",)),
            FheOp.make(FheOpName.PMULT, N, L, reads=("b1",), writes=("b2",)),
        ]
        ops = [chain_a[0], chain_b[0], chain_a[1], chain_b[1]]
        serial = compile_trace(ops)
        relaxed = compile_trace(ops, passes="relax-barriers")
        # Chain b's head must have lost its dependency on chain a.
        start_b = relaxed.op_boundaries[1][0]
        assert relaxed.tasks[start_b].depends_on == ()
        sim = PoseidonSimulator()
        r_serial = sim.run(serial)
        r_relaxed = sim.run(relaxed)
        assert r_relaxed.total_seconds <= r_serial.total_seconds * (1 + 1e-9)
        # Chain b's head is dependency-ready at t=0 now (it still
        # queues for HBM channels); serially it only became ready once
        # chain a's head finished.
        assert r_relaxed.task_records[start_b].ready_seconds == 0.0
        assert (
            r_serial.task_records[start_b].ready_seconds
            >= r_serial.task_records[serial.op_boundaries[0][1] - 1].end
        )

    def test_unannotated_trace_keeps_serial_chain(self):
        ops = _keyswitch_ops()
        serial = compile_trace(ops)
        relaxed = compile_trace(ops, passes="relax-barriers")
        assert relaxed.tasks == serial.tasks

    def test_war_and_waw_edges(self):
        ops = [
            FheOp.make(FheOpName.HADD, N, L, reads=("x",), writes=("y",)),
            FheOp.make(FheOpName.HADD, N, L, reads=("y",), writes=("z",)),
            # Overwrites y: must wait for the reader above (WAR) and
            # the writer (WAW).
            FheOp.make(FheOpName.HADD, N, L, reads=("x",), writes=("y",)),
        ]
        program = compile_trace(ops, passes="relax-barriers")
        sinks = [end - 1 for _, end in program.op_boundaries]
        entry2 = program.op_boundaries[2][0]
        deps = program.tasks[entry2].depends_on
        assert sinks[0] in deps and sinks[1] in deps

    def test_unknown_token_defers_to_barrier(self):
        ops = [
            FheOp.make(FheOpName.HADD, N, L),  # unannotated barrier
            FheOp.make(FheOpName.HADD, N, L, reads=("fresh",),
                       writes=("out",)),
        ]
        program = compile_trace(ops, passes="relax-barriers")
        entry1 = program.op_boundaries[1][0]
        sink0 = program.op_boundaries[0][1] - 1
        assert program.tasks[entry1].depends_on == (sink0,)


class TestFuseElementwise:
    def test_handoff_elides_write_and_read(self):
        none = compile_trace(_keyswitch_ops())
        fused = compile_trace(_keyswitch_ops(), passes="fuse-elementwise")
        # HAdd -> CMult handoff: the HAdd's result write disappears.
        hadd_sink = none.op_boundaries[0][1] - 1
        assert none.tasks[hadd_sink].hbm_write_bytes > 0
        assert fused.tasks[hadd_sink].hbm_write_bytes == 0
        # The CMult entry re-read shrinks by exactly that write.
        cm_entry = none.op_boundaries[1][0]
        assert (
            none.tasks[cm_entry].hbm_read_bytes
            - fused.tasks[cm_entry].hbm_read_bytes
            == none.tasks[hadd_sink].hbm_write_bytes
        )

    def test_last_op_write_is_never_fused(self):
        for trace_name, thunk in TRACES.items():
            none = compile_trace(thunk())
            fused = compile_trace(thunk(), passes="fuse-elementwise")
            assert (
                fused.tasks[-1].hbm_write_bytes
                == none.tasks[-1].hbm_write_bytes
            ), trace_name

    def test_multi_consumer_values_keep_hbm_copy(self):
        ops = [
            FheOp.make(FheOpName.HADD, N, L, reads=("a",), writes=("v",)),
            FheOp.make(FheOpName.HADD, N, L, reads=("v",), writes=("w1",)),
            FheOp.make(FheOpName.HADD, N, L, reads=("v",), writes=("w2",)),
        ]
        program = compile_trace(
            ops, passes="relax-barriers,fuse-elementwise"
        )
        sink0 = program.op_boundaries[0][1] - 1
        assert program.tasks[sink0].hbm_write_bytes > 0


class TestDeadTaskElimination:
    def test_noop_on_stock_lowerings(self):
        for thunk in TRACES.values():
            assert compile_trace(thunk(), passes="dce").tasks == (
                compile_trace(thunk()).tasks
            )

    def test_removes_synthetic_dead_chain(self):
        op = FheOp.make(FheOpName.HADD, N, L)

        def t(deps=(), write=0):
            return OperatorTask(
                kind=OperatorKind.MA, elements=N, degree=N, limbs=1,
                hbm_write_bytes=write, depends_on=deps, op_label="HAdd",
            )

        # 0 -> 1 (dead pair: no write, no consumer), 2 -> 3 (sink).
        draft = ProgramDraft(
            ops=[op],
            task_lists=[[t(), t(deps=(0,)), t(), t(deps=(2,), write=8)]],
            op_deps=[set()],
        )
        stats = dead_task_elimination_pass(draft)
        assert stats["tasks_removed"] == 2
        tasks, bounds = draft.assemble()
        assert len(tasks) == 2
        assert tasks[1].depends_on == (0,)
        validate_program_like(tasks, bounds)

    def test_keeps_hbm_writing_leaves(self):
        op = FheOp.make(FheOpName.HADD, N, L)

        def t(deps=(), write=0):
            return OperatorTask(
                kind=OperatorKind.MA, elements=N, degree=N, limbs=1,
                hbm_write_bytes=write, depends_on=deps, op_label="HAdd",
            )

        draft = ProgramDraft(
            ops=[op],
            task_lists=[[t(write=8), t(write=8)]],
            op_deps=[set()],
        )
        assert dead_task_elimination_pass(draft)["tasks_removed"] == 0
        assert len(draft.task_lists[0]) == 2


def validate_program_like(tasks, boundaries):
    for i, task in enumerate(tasks):
        for dep in task.depends_on:
            assert 0 <= dep < i
    cursor = 0
    for start, end in boundaries:
        assert start == cursor and end > start
        cursor = end
    assert cursor == len(tasks)


# ----------------------------------------------------------------------
# Metrics integration
# ----------------------------------------------------------------------
class TestPassMetrics:
    def test_per_pass_counters_recorded(self):
        from repro.obs import collecting

        with collecting() as registry:
            compile_trace(_rotations_ops(), passes="default")
        snap = registry.snapshot()
        assert snap["compiler.passes.hoist-rotations.runs"] == 1
        assert (
            snap["compiler.passes.hoist-rotations.rotations_hoisted"] == 3
        )
        assert snap["compiler.passes.relax-barriers.runs"] == 1
        assert snap["compiler.passes.dce.runs"] == 1

    def test_lowering_cache_counters(self):
        from repro.compiler.decompose import clear_lowering_cache
        from repro.obs import collecting

        clear_lowering_cache()
        with collecting() as registry:
            compile_trace(_streaming_like())
        snap = registry.snapshot()
        assert snap["compiler.lowering_cache.misses"] == 2
        assert snap["compiler.lowering_cache.hits"] == 6


def _streaming_like():
    ops = []
    for _ in range(4):
        ops.append(FheOp.make(FheOpName.HADD, N, L))
        ops.append(FheOp.make(FheOpName.PMULT, N, L))
    return ops


# ----------------------------------------------------------------------
# Pipeline equivalence pinning the two lowering bugfixes end to end
# ----------------------------------------------------------------------
class TestDraftRoundTrip:
    def test_apply_pipeline_returns_same_draft(self):
        draft = ProgramDraft.from_ops(_keyswitch_ops())
        out = apply_pipeline(draft, resolve_passes("default"))
        assert out is draft

    def test_from_ops_serial_chain(self):
        draft = ProgramDraft.from_ops(_keyswitch_ops())
        assert draft.op_deps == [set(), {0}, {1}, {2}]
        assert draft.pinned_deps == [set()] * 4

    def test_from_ops_op_parallel(self):
        draft = ProgramDraft.from_ops(_keyswitch_ops(), op_parallel=True)
        assert draft.op_deps == [set()] * 4
